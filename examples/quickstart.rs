//! Quickstart: how much does PIM help one generation iteration?
//!
//! Builds GPT-3 175B, forms a Gen-stage batch, and compares the iteration
//! latency and energy of the conventional DGX baseline against the
//! heterogeneous DGX+AttAccs platform.
//!
//! Run with: `cargo run --release --example quickstart`

use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::serving::StageExecutor;
use attacc::sim::{System, SystemExecutor};

fn main() {
    let model = ModelConfig::gpt3_175b();
    println!("model: {model}");
    println!(
        "weights: {}, KV per request at L=4096: {}",
        attacc::model::fmt_gib(model.weight_bytes()),
        attacc::model::fmt_gib(KvCacheSpec::of(&model).bytes_at(4096)),
    );
    println!();

    let batch = 32u64;
    let context = 2048u64;
    println!("one Gen iteration, batch {batch}, context {context}:");
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "system", "latency", "energy", "speedup"
    );

    let mut base_latency = None;
    for system in [
        System::dgx_base(),
        System::dgx_large(),
        System::dgx_attacc_naive(),
        System::dgx_attacc_full(),
    ] {
        let exec = SystemExecutor::new(system.clone(), &model);
        let cost = exec.gen_stage(&[(batch, context)]);
        let base = *base_latency.get_or_insert(cost.latency_s);
        println!(
            "{:<36} {:>9.2} ms {:>10.1} J {:>9.2}x",
            system.name(),
            cost.latency_s * 1e3,
            cost.energy_j,
            base / cost.latency_s
        );
    }

    println!();
    println!("why: the attention layer reads every request's private KV matrices;");
    println!("AttAcc streams them through 40,960 in-bank GEMV units at 9x the");
    println!("external bandwidth instead of hauling them across the HBM interface.");
}
