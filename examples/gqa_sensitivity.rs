//! §8 discussion: does AttAcc still pay off under GQA/MQA?
//!
//! Grouped-query attention shares KV matrices among query heads. A GPU can
//! exploit that reuse through its caches, while the default AttAcc streams
//! KV once per query head — so the PIM advantage shrinks as groups grow.
//! This example sweeps the group size for a GPT-3-shaped model.
//!
//! Run with: `cargo run --release --example gqa_sensitivity`

use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::sim::experiment::gqa_ablation;

fn main() {
    let model = ModelConfig::gpt3_175b();
    let groups = [1u32, 2, 4, 8, 16, 32, 96];
    println!("{} with varying KV sharing (batch 32, L = 2048):", model.name);
    println!(
        "{:>10} {:>9} {:>16} {:>18} {:>18}",
        "group", "KV heads", "KV GB @ L=4096", "default AttAcc", "systolic AttAcc"
    );
    for row in gqa_ablation(&model, 32, 2048, &groups) {
        let variant = if row.group_size == 1 {
            attacc::model::AttentionVariant::Mha
        } else if row.group_size == 96 {
            attacc::model::AttentionVariant::Mqa
        } else {
            attacc::model::AttentionVariant::Gqa {
                group_size: row.group_size,
            }
        };
        let m = model.with_attention(variant);
        let kv_gb = KvCacheSpec::of(&m).bytes_at(4096) as f64 / (1u64 << 30) as f64;
        println!(
            "{:>10} {:>9} {:>15.2} {:>17.2}x {:>17.2}x",
            variant.to_string(),
            m.kv_heads(),
            kv_gb,
            row.attention_speedup,
            row.systolic_speedup,
        );
    }
    println!();
    println!("the systolic reconfiguration (§8) restores KV reuse inside AttAcc at");
    println!("extra area cost — compare the two speedup columns.");
}
