//! Open-loop serving: what latency do users actually see?
//!
//! Requests arrive as a Poisson process; we report time-to-first-token
//! (TTFT), time-between-tokens (TBT) and queueing delay percentiles on the
//! baseline versus the PIM platform at the same offered load.
//!
//! Run with: `cargo run --release --example open_loop_latency`

use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::serving::{simulate_open_loop, ArrivalWorkload, SchedulerConfig};
use attacc::sim::{System, SystemExecutor};

fn main() {
    let model = ModelConfig::gpt3_175b();
    let wl = ArrivalWorkload::poisson(300, 4.0, 512, (64, 256), 2024);
    println!(
        "300 requests, Poisson 4 req/s, L_in = 512, L_out ~ U(64, 256); offered ≈ {:.0} tokens/s",
        wl.offered_tokens_per_s()
    );
    println!();
    println!(
        "{:<36} {:>9} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "system", "tokens/s", "TTFT p50", "TTFT p95", "TBT p50", "TBT p99", "queue p95"
    );
    for system in [System::dgx_base(), System::dgx_attacc_full()] {
        let exec = SystemExecutor::new(system.clone(), &model);
        let spec = KvCacheSpec::of(&model);
        let cfg = SchedulerConfig::with_capacity(
            64,
            system.kv_capacity_bytes(&model),
            spec.bytes_per_token,
        );
        let r = simulate_open_loop(&exec, &wl, &cfg);
        assert_eq!(r.completed, 300, "all requests must be served");
        println!(
            "{:<36} {:>9.1} {:>8.0}ms {:>8.0}ms {:>8.1}ms {:>8.1}ms {:>9.0}ms",
            system.name(),
            r.tokens_per_s,
            r.ttft.p50_s * 1e3,
            r.ttft.p95_s * 1e3,
            r.tbt.p50_s * 1e3,
            r.tbt.p99_s * 1e3,
            r.queue_wait.p95_s * 1e3,
        );
    }
    println!();
    println!("the PIM platform's faster iterations shorten both the tail TBT and the");
    println!("queueing backlog a burst of arrivals creates.");
}
