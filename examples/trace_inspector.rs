//! Inspecting the DRAM command schedule of a PIM attention stream.
//!
//! Drives one pseudo-channel's command engine through the beginning of a
//! `GEMV_score` stream (activate + MAC-read loops across banks) and dumps
//! the first commands with their start times — the view a DRAM-level
//! debugger of AttAcc would show.
//!
//! Run with: `cargo run --release --example trace_inspector`

use attacc::hbm::{AccessDepth, BankAddr, ChannelEngine, DramCommand, HbmConfig};

fn main() {
    let cfg = HbmConfig::hbm3_8hi();
    let mut eng = ChannelEngine::new(&cfg);
    eng.enable_trace(64);

    // PIM_ACT_AB: open row 0 in the first 6 banks (one per bank group of
    // rank 0 plus two of rank 1), then stream 4 MAC beats from each —
    // bank-level reads pay no shared-bus constraint.
    let banks: Vec<BankAddr> = (0..6)
        .map(|i| BankAddr::from_index(&cfg.geometry, i * 4))
        .collect();
    for &b in &banks {
        eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::Bank, 0)
            .expect("activate");
    }
    for beat in 0..4 {
        for &b in &banks {
            eng.issue(DramCommand::Read { bank: b }, AccessDepth::Bank, beat * 3_000)
                .expect("mac read");
        }
    }
    for &b in &banks {
        eng.issue(DramCommand::Precharge { bank: b }, AccessDepth::Bank, 0)
            .expect("precharge");
    }

    println!("{:>10}  command", "t (ns)");
    for (t, cmd) in eng.trace().expect("tracing enabled") {
        let desc = match cmd {
            DramCommand::Activate { bank, row } => format!(
                "ACT   rank {} bg {} bank {} row {row}",
                bank.rank, bank.group, bank.bank
            ),
            DramCommand::Read { bank } => format!(
                "MAC   rank {} bg {} bank {}",
                bank.rank, bank.group, bank.bank
            ),
            DramCommand::Write { bank } => format!(
                "WR    rank {} bg {} bank {}",
                bank.rank, bank.group, bank.bank
            ),
            DramCommand::Precharge { bank } => format!(
                "PRE   rank {} bg {} bank {}",
                bank.rank, bank.group, bank.bank
            ),
        };
        println!("{:>10.1}  {desc}", *t as f64 / 1000.0);
    }
    println!();
    println!(
        "energy so far: {:.1} pJ across {} commands",
        eng.energy().total_pj(),
        eng.issued_commands()
    );
}
