//! Capacity planning: how many AttAcc stacks does a deployment need?
//!
//! An operator targets a throughput under a token-latency SLO for a fixed
//! workload shape. This example sweeps the AttAcc stack count and reports
//! the smallest configuration that meets the target — the question a
//! downstream adopter of AttAcc actually asks.
//!
//! Run with: `cargo run --release --example capacity_planner`

use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::serving::{max_batch_under_slo, StageExecutor};
use attacc::sim::experiment::steady_state_groups;
use attacc::sim::{System, SystemExecutor};

fn main() {
    let model = ModelConfig::gpt3_175b();
    let (l_in, l_out) = (2048u64, 2048u64);
    let slo = 0.050f64;
    let target_tokens_per_s = 2_000.0;

    println!(
        "target: {target_tokens_per_s:.0} tokens/s under a {:.0} ms token SLO",
        slo * 1e3
    );
    println!("workload: GPT-3 175B at (L_in, L_out) = ({l_in}, {l_out})");
    println!();
    println!(
        "{:>7} {:>12} {:>10} {:>11} {:>12}  meets target?",
        "stacks", "KV capacity", "max batch", "iter (ms)", "tokens/s"
    );

    let spec = KvCacheSpec::of(&model);
    let mut needed = None;
    for stacks in [8u32, 16, 24, 32, 40, 56, 80] {
        let mut system = System::dgx_attacc_full();
        let attacc = system.attacc.as_mut().expect("PIM platform");
        attacc.n_stacks = stacks;
        let kv_capacity = system.kv_capacity_bytes(&model);
        let by_capacity =
            attacc::serving::max_batch_by_capacity(kv_capacity, spec.bytes_per_token, l_in + l_out)
                .min(512);
        let exec = SystemExecutor::new(system.clone(), &model);
        let batch = max_batch_under_slo(&exec, slo, l_in + l_out / 2, by_capacity);
        let (iter_ms, tput) = if batch == 0 {
            (f64::NAN, 0.0)
        } else {
            let t = exec
                .gen_stage(&steady_state_groups(batch, l_in, l_out))
                .latency_s;
            (t * 1e3, batch as f64 / t)
        };
        let ok = tput >= target_tokens_per_s;
        if ok && needed.is_none() {
            needed = Some(stacks);
        }
        println!(
            "{stacks:>7} {:>12} {batch:>10} {iter_ms:>11.1} {tput:>12.1}  {}",
            attacc::model::fmt_gib(kv_capacity),
            if ok { "yes" } else { "no" }
        );
    }

    println!();
    match needed {
        Some(s) => println!("=> provision {s} AttAcc stacks alongside the DGX."),
        None => println!("=> the target is out of reach even at 80 stacks; relax the SLO."),
    }
}
