//! Energy per generated token across models and platforms (Fig. 15's
//! question, framed for capacity planning), plus a component-level
//! decomposition showing *where* the joules go.
//!
//! Run with: `cargo run --release --example energy_breakdown`

use attacc::model::ModelConfig;
use attacc::sim::breakdown::energy_breakdown;
use attacc::sim::experiment::{analytic_serve, max_feasible_batch, steady_state_groups};
use attacc::sim::{System, SystemExecutor};

fn main() {
    let seqs = [(512u64, 512u64), (2048u64, 2048u64)];
    let n_requests = 1_000u64;
    println!(
        "{:<12} {:>11} {:<36} {:>7} {:>12} {:>14}",
        "model", "(Lin,Lout)", "system", "batch", "J/token", "vs DGX_Base"
    );
    for model in ModelConfig::evaluation_models() {
        for &(l_in, l_out) in &seqs {
            let mut base = None;
            for system in [System::dgx_base(), System::dgx_large(), System::dgx_attacc_full()] {
                let batch = max_feasible_batch(&system, &model, l_in, l_out, None).max(1);
                let exec = SystemExecutor::new(system.clone(), &model);
                let (_, energy) = analytic_serve(&exec, l_in, l_out, n_requests, batch);
                let per_token = energy / (n_requests * l_out) as f64;
                let b = *base.get_or_insert(per_token);
                println!(
                    "{:<12} ({:>4},{:>4}) {:<36} {:>7} {:>11.3}J {:>13.1}%",
                    model.name,
                    l_in,
                    l_out,
                    system.name(),
                    batch,
                    per_token,
                    100.0 * (1.0 - per_token / b),
                );
            }
        }
    }
    println!();
    println!("per-iteration decomposition (GPT-3 175B, batch 53, L in steady state):");
    println!(
        "{:<36} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "system", "weights", "KV", "acts", "compute", "static", "link"
    );
    let m = ModelConfig::gpt3_175b();
    for system in [System::dgx_base(), System::dgx_attacc_full()] {
        let exec = SystemExecutor::new(system.clone(), &m);
        let b = energy_breakdown(&exec, &steady_state_groups(53, 2048, 2048));
        println!(
            "{:<36} {:>8.1}J {:>8.1}J {:>8.1}J {:>8.1}J {:>8.1}J {:>6.1}J",
            system.name(),
            b.weights_j,
            b.kv_j,
            b.activations_j,
            b.compute_j,
            b.static_j,
            b.link_j,
        );
    }
    println!();
    println!("the PIM platform saves energy twice: larger batches amortize weight");
    println!("reads across more requests, and in-bank attention avoids ~90% of the");
    println!("per-bit DRAM datapath energy (watch the KV column collapse).");
}
