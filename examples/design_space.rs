//! Architecting the PIM: where should the GEMV units live?
//!
//! Reproduces the §4.1 design-space exploration from an architect's seat:
//! for each placement (buffer die, bank group, bank) it reports the
//! power-constrained concurrency, exploitable bandwidth, streaming energy,
//! silicon overhead, and the resulting attention performance on GPT-3.
//!
//! Run with: `cargo run --release --example design_space`

use attacc::hbm::HbmConfig;
use attacc::model::ModelConfig;
use attacc::pim::{AreaReport, AttAccDevice, GemvPlacement};
use attacc::sim::experiment::placement_study;

fn main() {
    let hbm = HbmConfig::hbm3_8hi();
    println!(
        "HBM3 stack: {} pCH x {} banks, {:.1} GB/s external, power budget {:.2} W/pCH",
        hbm.geometry.pseudo_channels,
        hbm.geometry.banks_per_pch(),
        hbm.external_bandwidth_bytes_per_s() / 1e9,
        hbm.power.budget_per_pch_w,
    );
    println!();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "placement", "units/pCH", "active", "BW vs ext", "pJ/bit", "die ovh"
    );
    for p in GemvPlacement::ALL {
        let area = AreaReport::for_placement(p, &hbm);
        println!(
            "{:<14} {:>10} {:>10} {:>11.1}x {:>13.2} {:>11.2}%",
            p.to_string(),
            p.units_per_pch(&hbm),
            p.max_active_per_pch(&hbm),
            p.relative_bandwidth(&hbm),
            p.stream_energy_pj_per_bit(&hbm),
            area.dram_die_overhead * 100.0,
        );
    }

    println!();
    let model = ModelConfig::gpt3_175b();
    println!("attention layer of {} (batch 50, L = 4096) per design point:", model.name);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}",
        "placement", "tput (rel)", "energy (rel)", "EDAP (rel)", "peak W"
    );
    for row in placement_study(&model, 50, 4096) {
        println!(
            "{:<14} {:>11.2}x {:>11.2}x {:>12.4} {:>10.1}",
            row.placement, row.rel_throughput, row.rel_energy, row.rel_edap, row.peak_power_w
        );
    }

    println!();
    let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    println!(
        "chosen: AttAcc_bank -> 40-stack device with {} of KV capacity and {:.0} TB/s internal bandwidth",
        attacc::model::fmt_gib(dev.capacity_bytes()),
        dev.internal_bandwidth() / 1e12,
    );
}
