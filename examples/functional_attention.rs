//! The functional face of AttAcc: real numbers through the PIM dataflow.
//!
//! Drives the AttAcc controller with the §5.2 instruction sequence —
//! `SetModel`, `UpdateRequest`, per-token `AppendKv`, `LoadQ`,
//! `RunAttention`, `ReadOutput` — on a real (small) attention head, and
//! compares the mapped, bank-partitioned, FP16 execution against an exact
//! reference.
//!
//! Run with: `cargo run --release --example functional_attention`

use attacc::hbm::StackGeometry;
use attacc::pim::numeric::attention_ref;
use attacc::pim::{AttAccController, AttInst, Precision};

fn main() {
    let d_head = 32usize;
    let l = 96usize;
    let geom = StackGeometry::hbm3_8hi();

    // Deterministic synthetic K/V/Q.
    let gen = |seed: usize, i: usize| ((seed * 131 + i * 37) % 101) as f32 * 0.02 - 1.0;

    let run = |precision: Precision| -> Vec<f32> {
        let mut ctl = AttAccController::new(&geom, 40, precision);
        ctl.execute(AttInst::SetModel { n_head: 1, d_head, max_l: 4096 }).expect("set model");
        ctl.execute(AttInst::UpdateRequest { request: 0, remove: false }).expect("admit");
        for tok in 0..l {
            let k: Vec<f32> = (0..d_head).map(|i| gen(tok, i)).collect();
            let v: Vec<f32> = (0..d_head).map(|i| gen(tok + 7919, i)).collect();
            ctl.execute(AttInst::AppendKv { request: 0, head: 0, k, v }).expect("append");
        }
        let q: Vec<f32> = (0..d_head).map(|i| gen(424_242, i)).collect();
        ctl.execute(AttInst::LoadQ { request: 0, head: 0, q }).expect("load q");
        ctl.execute(AttInst::RunAttention { request: 0, head: 0 }).expect("run");
        ctl.execute(AttInst::ReadOutput { request: 0, head: 0 })
            .expect("read")
            .expect("output present")
    };

    let exact = run(Precision::Exact);
    let fp16 = run(Precision::Fp16);

    // Reference on the same data.
    let mut kt = vec![0.0f32; d_head * l];
    let mut v = vec![0.0f32; l * d_head];
    for tok in 0..l {
        for i in 0..d_head {
            kt[i * l + tok] = gen(tok, i);
            v[tok * d_head + i] = gen(tok + 7919, i);
        }
    }
    let q: Vec<f32> = (0..d_head).map(|i| gen(424_242, i)).collect();
    let reference = attention_ref(&q, &kt, &v, l);

    println!("head: d_head = {d_head}, L = {l}, mapped over a full 1,024-bank stack");
    println!("{:>4} {:>14} {:>14} {:>14}", "dim", "reference", "exact PIM", "FP16 PIM");
    for c in 0..6 {
        println!(
            "{c:>4} {:>14.8} {:>14.8} {:>14.8}",
            reference[c], exact[c], fp16[c]
        );
    }
    let max_err_exact = exact
        .iter()
        .zip(&reference)
        .map(|(a, b)| (f64::from(*a) - b).abs())
        .fold(0.0, f64::max);
    let max_err_fp16 = fp16
        .iter()
        .zip(&reference)
        .map(|(a, b)| (f64::from(*a) - b).abs())
        .fold(0.0, f64::max);
    println!();
    println!("max |error| vs reference: exact datapath {max_err_exact:.2e}, FP16 datapath {max_err_fp16:.2e}");
    assert!(max_err_exact < 1e-4, "exact dataflow must match the reference");
    assert!(max_err_fp16 < 5e-2, "FP16 dataflow stays within half-precision error");
    println!("the hierarchical (pCH -> bank-group -> bank -> lane) mapping computes the same attention.");
}
