//! Serving a chatbot under a latency SLO.
//!
//! An operator serves GPT-3-class traffic (2,048-token prompts, 2,048-token
//! answers) and must keep each output token under a latency target. This
//! example sweeps the SLO and shows how the admissible batch — and with it
//! the throughput — collapses on GPU-only systems while the PIM platform
//! keeps its batch.
//!
//! Run with: `cargo run --release --example serving_slo`

use attacc::model::ModelConfig;
use attacc::serving::{simulate, SchedulerConfig, StageExecutor, Workload};
use attacc::sim::experiment::{max_feasible_batch, steady_state_groups};
use attacc::sim::{System, SystemExecutor};

fn main() {
    let model = ModelConfig::gpt3_175b();
    let (l_in, l_out) = (2048u64, 2048u64);
    let slos: [Option<f64>; 4] = [None, Some(0.070), Some(0.050), Some(0.030)];

    println!("GPT-3 175B, (L_in, L_out) = ({l_in}, {l_out})");
    println!(
        "{:<12} {:<36} {:>9} {:>14}",
        "SLO", "system", "batch", "tokens/s"
    );
    for slo in slos {
        for system in [System::dgx_base(), System::dgx_large(), System::dgx_attacc_full()] {
            let batch = max_feasible_batch(&system, &model, l_in, l_out, slo);
            let exec = SystemExecutor::new(system.clone(), &model);
            let tput = if batch == 0 {
                0.0
            } else {
                let groups = steady_state_groups(batch, l_in, l_out);
                batch as f64 / exec.gen_stage(&groups).latency_s
            };
            let slo_str = slo.map_or("none".to_string(), |s| format!("{:.0} ms", s * 1e3));
            println!("{slo_str:<12} {:<36} {batch:>9} {tput:>14.1}", system.name());
        }
    }

    // Cross-check one configuration with the discrete-event scheduler
    // (iteration-level scheduling over a real request population).
    println!();
    println!("discrete-event cross-check (200 requests, L_out mixed 256-768):");
    let wl = Workload::uniform_random(200, 512, (256, 768), 42);
    for system in [System::dgx_base(), System::dgx_attacc_full()] {
        let exec = SystemExecutor::new(system.clone(), &model);
        let batch = max_feasible_batch(&system, &model, 512, 768, Some(0.050)).max(1);
        let report = simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(batch));
        println!(
            "{:<36} batch {:>4}: {:>8.1} tokens/s, {:>6.3} J/token, worst iter {:>6.1} ms",
            system.name(),
            batch,
            report.tokens_per_s(),
            report.energy_per_token_j(),
            report.max_iteration_latency_s * 1e3,
        );
    }
}
