//! The Fig. 11 timing diagrams as ASCII timelines: how one decoder's
//! phases overlap under each optimization level.
//!
//! Run with: `cargo run --release --example pipeline_timeline`

use attacc::model::{FcLayer, ModelConfig, Op, Phase, StageWorkload};
use attacc::pim::{AttAccDevice, GemvPlacement};
use attacc::serving::{ff_coprocess_speedup, head_level_pipelined_s, serial_s, DecoderPhases};
use attacc::sim::System;

fn bar(label: &str, start: f64, len: f64, scale: f64) {
    let pre = (start * scale).round() as usize;
    let width = ((len * scale).round() as usize).max(1);
    println!("{label:<14} {}{}", " ".repeat(pre), "#".repeat(width));
}

fn main() {
    let model = ModelConfig::gpt3_175b();
    let batch = 48u64;
    let l = 3072u64;
    let gpu = System::dgx_base().gpu;
    let attacc = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);

    // Per-decoder phase times on the heterogeneous platform.
    let wl = StageWorkload::uniform(&model, Phase::gen(l), batch);
    let mut p = DecoderPhases::default();
    for op in &wl.decoder_ops {
        match op {
            Op::Gemm { layer: FcLayer::QkvGen, .. } => p.qkv_s += gpu.device.op_time_s(op),
            Op::Gemm { layer: FcLayer::Projection, .. } => p.proj_s += gpu.device.op_time_s(op),
            Op::Gemm { layer, .. } if layer.is_feedforward() => p.ff_s += gpu.device.op_time_s(op),
            Op::Activation { .. } => p.ff_s += gpu.device.op_time_s(op),
            Op::Attention { .. } | Op::KvAppend { .. } => {}
            _ => p.other_s += gpu.device.op_time_s(op),
        }
    }
    p.attn_s = attacc.attention_decoder_time(&model, &[(batch, l)], true).total_s;
    p.comm_s = gpu.decoder_comm_s(batch, model.d_emb, 2);

    let us = 1e6;
    println!(
        "GPT-3 175B decoder, batch {batch}, L = {l}  (all times in µs; 1 char ≈ 4 µs)"
    );
    let scale = 0.25; // chars per µs

    println!();
    println!("(a) serial (naïve DGX+AttAccs): total {:.0} µs", serial_s(&p) * us);
    let mut t = 0.0;
    bar("xPU: QKV", t, p.qkv_s * us, scale);
    t += p.qkv_s * us;
    bar("PIM: attention", t, p.attn_s * us, scale);
    t += p.attn_s * us;
    bar("xPU: proj", t, p.proj_s * us, scale);
    t += p.proj_s * us;
    bar("xPU: FF", t, p.ff_s * us, scale);

    println!();
    let hl = head_level_pipelined_s(&p, u64::from(model.n_head));
    println!("(b) + head-level pipelining: total {:.0} µs", hl * us);
    let block = (p.qkv_s + p.proj_s).max(p.attn_s) * us;
    bar("xPU: QKV+proj", 0.0, (p.qkv_s + p.proj_s) * us, scale);
    bar("PIM: attention", (p.qkv_s + p.proj_s).min(p.attn_s) * us / 96.0, p.attn_s * us, scale);
    bar("xPU: FF", block, p.ff_s * us, scale);

    println!();
    let factor = ff_coprocess_speedup(
        gpu.device.mem_bw * gpu.device.mem_eff,
        attacc.external_bandwidth() * gpu.device.mem_eff,
    );
    let mut pc = p;
    pc.ff_s *= factor;
    let full = head_level_pipelined_s(&pc, u64::from(model.n_head));
    println!(
        "(d) + feedforward co-processing (split {:.0}%/{:.0}%): total {:.0} µs",
        factor * 100.0,
        (1.0 - factor) * 100.0,
        full * us
    );
    bar("xPU: QKV+proj", 0.0, (p.qkv_s + p.proj_s) * us, scale);
    bar("PIM: attention", (p.qkv_s + p.proj_s).min(p.attn_s) * us / 96.0, p.attn_s * us, scale);
    bar("xPU: FF share", block, pc.ff_s * us, scale);
    bar("PIM: FF share", block, pc.ff_s * us, scale);

    println!();
    println!(
        "speedup over serial: head-level {:.2}x, +FF co-processing {:.2}x",
        serial_s(&p) / hl,
        serial_s(&p) / full
    );
}
