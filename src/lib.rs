//! # AttAcc simulator
//!
//! A from-scratch Rust reproduction of *AttAcc! Unleashing the Power of
//! PIM for Batched Transformer-based Generative Model Inference*
//! (ASPLOS 2024): a processing-in-memory architecture for the attention
//! layer of batched LLM inference, evaluated inside a heterogeneous
//! xPU + PIM serving platform.
//!
//! This facade re-exports the workspace crates under short names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `attacc-model` | TbGM configs, op-level workloads, KV sizing |
//! | [`hbm`] | `attacc-hbm` | HBM3 geometry/timing/power, command engine |
//! | [`pim`] | `attacc-pim` | GEMV/softmax units, mapping, AttAcc device |
//! | [`xpu`] | `attacc-xpu` | GPU/CPU rooflines, interconnects, energy |
//! | [`serving`] | `attacc-serving` | Scheduler, SLO search, pipelining |
//! | [`sim`] | `attacc-sim` | Platforms, executors, per-figure drivers |
//! | [`cluster`] | `attacc-cluster` | Multi-node discrete-event serving simulator |
//! | [`provision`] | `attacc-provision` | Fleet TCO: CostBook, mix search, monotone GBT surrogate |
//! | [`chaos`] | `attacc-chaos` | Fault injection + resilience policies over the cluster |
//! | [`trace`] | `attacc-trace` | AttAcc ISA traces: codec, graph-to-trace compiler, replay |
//!
//! # Quickstart
//!
//! ```
//! use attacc::model::ModelConfig;
//! use attacc::sim::{System, SystemExecutor};
//! use attacc::serving::StageExecutor;
//!
//! let gpt3 = ModelConfig::gpt3_175b();
//! let base = SystemExecutor::new(System::dgx_base(), &gpt3);
//! let pim = SystemExecutor::new(System::dgx_attacc_full(), &gpt3);
//! let groups = [(32u64, 2048u64)]; // batch 32, context 2048
//! let speedup = base.gen_stage(&groups).latency_s / pim.gen_stage(&groups).latency_s;
//! assert!(speedup > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use attacc_chaos as chaos;
pub use attacc_cluster as cluster;
pub use attacc_hbm as hbm;
pub use attacc_model as model;
pub use attacc_pim as pim;
pub use attacc_provision as provision;
pub use attacc_serving as serving;
pub use attacc_sim as sim;
pub use attacc_trace as trace;
pub use attacc_xpu as xpu;
