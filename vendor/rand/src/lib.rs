//! Vendored stand-in for the subset of `rand` 0.8 the workspace uses.
//!
//! Backed by a seeded xorshift64* generator (via a splitmix64 seed
//! expander), so every consumer stays fully deterministic per seed with no
//! network-fetched dependency. The statistical quality is ample for the
//! simulator's synthetic workload generators (exponential inter-arrivals,
//! uniform output lengths); it is *not* a cryptographic generator.
//!
//! Supported surface: `rngs::StdRng`, `SeedableRng::{seed_from_u64,
//! from_seed}`, and `Rng::{gen_range, gen}` over the integer and float
//! range types the workspace samples from.

use std::ops::{Range, RangeInclusive};

/// Expands a user seed into well-mixed generator state (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` convenience seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw-word interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A sample of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical `gen()` distribution.
pub trait Standard: Sized {
    /// Draws the canonical uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling; span never exceeds the
                // u64 range for the workspace's integer widths.
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = f64::sample(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xorshift64* generator standing in for `rand`'s
    /// `StdRng`. Identical seeds yield identical streams on every
    /// platform; the stream differs from upstream `StdRng` (ChaCha12),
    /// which no consumer in this workspace depends on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = u64::from_le_bytes(seed[..8].try_into().expect("8 bytes"));
            for chunk in seed[8..].chunks_exact(8) {
                s ^= u64::from_le_bytes(chunk.try_into().expect("8 bytes")).rotate_left(17);
            }
            StdRng::seed_from_u64(s)
        }

        fn seed_from_u64(seed: u64) -> StdRng {
            let mut s = seed;
            // Mix so that small consecutive seeds give unrelated streams,
            // and avoid the all-zero xorshift fixed point.
            let state = splitmix64(&mut s) | 1;
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(9);
        let diff: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&i));
            let h = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&h));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut r = StdRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
