//! Vendored stand-in for `serde`.
//!
//! Exposes the two trait names and (behind the `derive` feature) the
//! matching no-op derive macros. The simulator's types carry
//! `#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]` purely
//! as interchange metadata; nothing in the workspace bounds on the traits,
//! and the JSON/CSV emitted by `attacc-sim` is rendered by hand. To use
//! the real serde, point the workspace dependency back at crates.io.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
