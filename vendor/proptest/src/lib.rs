//! Vendored mini property-testing framework.
//!
//! Implements the subset of the `proptest` 1.x API the workspace's tests
//! use — the `proptest!` macro, range/tuple/`Just`/`prop_oneof!`/
//! `prop_map`/`collection::vec` strategies, `prop_assert*` and
//! `ProptestConfig::with_cases` — on top of a deterministic xorshift64*
//! generator seeded per test name. Differences from upstream: no
//! shrinking (failures report the raw inputs), no persistence files, and
//! arms of `prop_oneof!` are always equally weighted.

/// Strategy combinators: how test inputs are described and sampled.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` arms).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    /// A strategy producing one constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    if start == <$t>::MIN && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+ ))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of vector lengths, mirroring upstream's
    /// `SizeRange` conversions so call sites can pass bare `1..40`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end_excl: usize,
    }

    macro_rules! size_range_from {
        ($($t:ty),*) => {$(
            impl From<Range<$t>> for SizeRange {
                fn from(r: Range<$t>) -> SizeRange {
                    SizeRange { start: r.start as usize, end_excl: r.end as usize }
                }
            }
            impl From<RangeInclusive<$t>> for SizeRange {
                fn from(r: RangeInclusive<$t>) -> SizeRange {
                    SizeRange { start: *r.start() as usize, end_excl: *r.end() as usize + 1 }
                }
            }
        )*};
    }

    size_range_from!(usize, u32, i32);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> SizeRange {
            SizeRange { start: len, end_excl: len + 1 }
        }
    }

    /// A strategy for `Vec`s with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// Generates vectors whose length is sampled uniformly from `sizes`
    /// (e.g. `1..40`, `len..=len`, or a fixed `usize`).
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        let sizes = sizes.into();
        assert!(sizes.start < sizes.end_excl, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end_excl - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test execution: configuration, RNG and failure reporting.
pub mod test_runner {
    use std::fmt;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* generator seeded from the test's name,
    /// so every run of a property replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `name` (typically the test path).
        #[must_use]
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name, then force a non-zero state.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Alias so tests can write `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}\n  inputs: {}\n  {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            inputs,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @body ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
/// Unlike upstream, arms are always equally weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the rest of the case when the assumption fails (no retry, unlike
/// upstream: the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            a in 1u64..10,
            b in 0.5f64..2.0,
            pair in (1usize..4, 0i32..100),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
            prop_assert!(pair.1 < 100);
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in prop::collection::vec(
                prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 3),
                2..6,
            ),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x == 3 || x == 6, "x = {x}");
            }
        }

        #[test]
        fn early_ok_return_is_supported(n in 0u32..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n.min(9), n);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        let (s1, s2, s3): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..8).map(|_| a.next_u64()).collect(),
            (0..8).map(|_| b.next_u64()).collect(),
            (0..8).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }
}
