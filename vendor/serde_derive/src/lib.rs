//! Vendored stand-in for `serde_derive`.
//!
//! The derives expand to nothing: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as metadata (no generic code bounds
//! on the traits), and all JSON emitted by the simulator is hand-rendered.
//! Keeping the derive macros around lets every `#[cfg_attr(feature =
//! "serde", derive(...))]` in the tree compile offline; swapping this
//! crate for the real `serde`/`serde_derive` needs only a change to the
//! workspace `[workspace.dependencies]` table.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input, emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
