//! Vendored minimal benchmark harness.
//!
//! Covers the slice of the `criterion` 0.5 API the workspace's benches
//! use: `Criterion::{benchmark_group, bench_function}`, group
//! `sample_size`/`finish`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Each bench warms up once, then runs batches
//! until a small time budget is spent and reports the mean wall-clock
//! time per iteration to stdout. No statistics, plots or HTML reports —
//! point the workspace dependency back at crates.io for those.

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also protects against a first-call outlier).
        std::hint::black_box(routine());
        let budget = Duration::from_millis(200);
        let max_iters = self.samples.max(1);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < max_iters && start.elapsed() < budget {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.mean = start.elapsed() / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, mean: Duration::ZERO };
    f(&mut b);
    println!("{label:<44} {:>12.3?}/iter", b.mean);
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: 100, _criterion: self }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 100, &mut f);
        self
    }
}

/// Collects benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_free_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        c.bench_function("two", |b| b.iter(|| ran += 1));
        assert!(ran >= 2, "both benches executed at least warm-up: {ran}");
    }
}
