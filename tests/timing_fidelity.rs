//! Cross-fidelity consistency: the device-level closed-form attention
//! model, the per-head command schedule, and the event-driven DRAM engine
//! must tell the same story.

mod common;

use attacc::pim::{execute_head, schedule_head, GemvPlacement};
use common::{head_job, paper_rig};

#[test]
fn device_model_matches_engine_per_head() {
    // The device charges heads.div_ceil(stacks) per critical stack; with
    // exactly n_stacks × k heads the per-head times must align with the
    // engine's trace within the closed form's tolerance.
    let rig = paper_rig();
    for l in [2048u64, 4096] {
        // 40 stacks × 96 heads/request ⇒ 40 requests put 96 heads/stack.
        let t_dev = rig.device.attention_decoder_time(&rig.model, &[(40, l)], false).serial_s;
        let trace = execute_head(&rig.hbm, GemvPlacement::Bank, &rig.softmax, head_job(l));
        let t_engine = trace.serial_s() * 96.0;
        let err = (t_dev - t_engine).abs() / t_engine;
        assert!(
            err < 0.25,
            "L={l}: device {t_dev:.3e} vs engine {t_engine:.3e} ({:.0}%)",
            err * 100.0
        );
    }
}

#[test]
fn schedule_and_engine_agree_across_placements() {
    let rig = paper_rig();
    for placement in [GemvPlacement::Bank, GemvPlacement::BankGroup, GemvPlacement::Buffer] {
        let sched = schedule_head(&rig.hbm, placement, &rig.softmax, head_job(4096));
        let trace = execute_head(&rig.hbm, placement, &rig.softmax, head_job(4096));
        let engine = trace.score_s + trace.softmax_s + trace.context_s;
        let err = (sched.total_s - engine).abs() / engine;
        assert!(
            err < 0.25,
            "{placement}: schedule {:.3e} vs engine {engine:.3e}",
            sched.total_s
        );
    }
}

#[test]
fn engine_mac_counts_match_device_traffic() {
    // The bytes the engine actually reads equal the KV traffic the
    // analytical model charges (per head, both K and V).
    let rig = paper_rig();
    let j = head_job(8192);
    let trace = execute_head(&rig.hbm, GemvPlacement::Bank, &rig.softmax, j);
    let engine_bytes = trace.mac_commands * rig.hbm.geometry.prefetch_bytes;
    let model_bytes = j.kv_bytes();
    let over = engine_bytes as f64 / model_bytes as f64;
    assert!(
        (1.0..1.05).contains(&over),
        "engine reads {engine_bytes} vs model {model_bytes}"
    );
}

#[test]
fn placement_ratios_consistent_at_every_level() {
    // 9:3:1 must emerge identically from the analytic placement model,
    // the engine, and the end-to-end device.
    let rig = paper_rig();
    let analytic = |p: GemvPlacement| p.relative_bandwidth(&rig.hbm);
    let engine = |p: GemvPlacement| {
        let t = execute_head(&rig.hbm, p, &rig.softmax, head_job(16 * 1024));
        1.0 / (t.score_s + t.context_s)
    };
    let a_ratio = analytic(GemvPlacement::Bank) / analytic(GemvPlacement::BankGroup);
    let e_ratio = engine(GemvPlacement::Bank) / engine(GemvPlacement::BankGroup);
    assert!(
        (a_ratio - e_ratio).abs() / a_ratio < 0.15,
        "analytic {a_ratio} vs engine {e_ratio}"
    );
}
