//! Property tests pinning the fleet-chaos contracts.
//!
//! Over random fault schedules (crash / straggler / link / correlated
//! zone processes), pool bounds, degradation policies and recovery
//! modes, every fleet-chaos run must honor:
//!
//! 1. **Bounds**: applied scale actions stay inside `[min, max]` and
//!    move exactly one node at a time — faults never push a pool out of
//!    its envelope.
//! 2. **Routing**: cold-starting nodes are never routed work before
//!    warm-up, and crashed nodes are never routed work while an up node
//!    is eligible. Both are hard-asserted inside `route_in_pool` on
//!    every decision, so any violation panics the run; the cold-start
//!    half is additionally re-checked here against `first_route_s`.
//! 3. **Billing**: node-second billing never charges a down node — per
//!    node, billed active time plus measured downtime fits inside the
//!    makespan.
//! 4. **Conservation**: every admitted request completes (shed ones are
//!    the only arrivals that don't), and availability is a valid
//!    fraction that only drops below 1 when something actually crashed.
//! 5. **Determinism**: the whole `FleetChaosReport` is a pure function
//!    of its inputs.

use attacc::chaos::{
    simulate_fleet_chaos, DegradePolicy, FaultSchedule, FaultSpec, FleetChaosConfig, RecoveryMode,
};
use attacc::cluster::{
    AutoscalerConfig, FleetConfig, FleetMix, InterconnectModel, PoolConfig, PoolKind,
    RouterPolicy, ScaleDirection, SloSpec, StageExecutor,
};
use attacc::serving::{ArrivalWorkload, SchedulerConfig, StageCost};
use proptest::prelude::*;

/// Irrational-valued costs so any accumulation-order divergence between
/// the two determinism runs shows up in the float bits.
struct Toy;
impl StageExecutor for Toy {
    fn sum_stage(&self, b: u64, l: u64) -> StageCost {
        StageCost { latency_s: 1e-4 * ((b * l) as f64).sqrt(), energy_j: 0.37 * b as f64 }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        let work: f64 = groups.iter().map(|&(c, l)| (c * l) as f64).sum();
        StageCost { latency_s: 2e-4 + 1e-7 * work.sqrt() * n as f64, energy_j: 0.011 * work }
    }
}

fn policy_of(i: usize) -> RouterPolicy {
    match i % 4 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvBytes,
        _ => RouterPolicy::WeightedLeastLoad,
    }
}

fn degrade_of(i: usize) -> DegradePolicy {
    match i % 3 {
        0 => DegradePolicy::off(),
        1 => DegradePolicy::full(16.0),
        _ => DegradePolicy { brownout: None, ..DegradePolicy::full(24.0) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fleet_chaos_respects_bounds_routing_and_billing(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n_req in 30usize..80,
        rate in 50.0f64..1200.0,
        disagg_pick in 0usize..2,
        pol in 0usize..4,
        deg in 0usize..3,
        recover_pick in 0usize..2,
        d_min in 1usize..3,
        d_max_extra in 1usize..3,
        mtbf_s in 0.05f64..5.0,
        mttr_s in 0.01f64..0.5,
        zones_pick in 0usize..3,
        scaled_pick in 0usize..2,
    ) {
        let decode = PoolConfig::elastic(d_min, d_min, d_min + d_max_extra);
        let disagg = disagg_pick == 1;
        let prefill = disagg.then(|| PoolConfig::elastic(1, 1, 2));
        let fleet = FleetConfig {
            prefill,
            decode,
            scheduler: SchedulerConfig::unlimited(6),
            policy: policy_of(pol),
            interconnect: InterconnectModel::ethernet_400g().with_kv_bytes_per_token(64),
            slo: SloSpec::chatbot(),
            autoscaler: (scaled_pick == 1).then(|| AutoscalerConfig::queue_depth(0.01)),
        };
        let cfg = FleetChaosConfig {
            fleet,
            recovery: if recover_pick == 0 { RecoveryMode::Reprefill } else { RecoveryMode::KvMigrate },
            degrade: degrade_of(deg),
        };
        let w = ArrivalWorkload::poisson(n_req as u64, rate, 48, (1, 24), seed);

        let p_max = prefill.map_or(0, |p| p.max_nodes);
        let n = p_max + decode.max_nodes;
        let mut spec = FaultSpec {
            mtbf_s,
            mttr_s,
            straggler_mtbf_s: 2.0 * mtbf_s,
            straggler_duration_s: mttr_s,
            straggler_factor: 3.0,
            link_mtbf_s: 4.0 * mtbf_s,
            link_duration_s: mttr_s,
            link_factor: 2.0,
            ..FaultSpec::crashes_only(mtbf_s, mttr_s)
        };
        if zones_pick > 0 {
            spec = spec.with_zones(zones_pick + 1, 4.0 * mtbf_s, mttr_s);
        }
        let faults = FaultSchedule::generate(n, 2.0, &spec, fault_seed);

        let toys: Vec<Toy> = (0..n).map(|_| Toy).collect();
        let refs: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
        let mix = FleetMix::uniform();
        let r = simulate_fleet_chaos(&refs[..p_max], &refs[p_max..], &mix, &w, &cfg, &faults);

        // 5. Determinism: a second run agrees on every field.
        let again = simulate_fleet_chaos(&refs[..p_max], &refs[p_max..], &mix, &w, &cfg, &faults);
        prop_assert!(r == again, "fleet-chaos report is not a pure function of its inputs");

        // 4. Conservation: admitted work always completes; shedding is
        // the only admission-time loss.
        prop_assert_eq!(r.unique_completed + r.shed_requests, n_req as u64);
        if cfg.degrade.shed.is_none() {
            prop_assert_eq!(r.shed_requests, 0);
        }
        prop_assert!(r.availability > 0.0 && r.availability <= 1.0);
        if r.crashes == 0 {
            prop_assert_eq!(r.availability, 1.0);
            prop_assert!(r.node_downtime_s.iter().all(|&d| d == 0.0));
        }

        let makespan = r.fleet.cluster.makespan_s;

        // 1. Bounds: faults never push a pool outside its envelope.
        for e in &r.fleet.scale_events {
            let bounds = match e.pool {
                PoolKind::Prefill => prefill.expect("prefill event implies a prefill pool"),
                PoolKind::Decode => decode,
            };
            prop_assert!(e.from_nodes >= bounds.min_nodes && e.from_nodes <= bounds.max_nodes);
            prop_assert!(e.to_nodes >= bounds.min_nodes && e.to_nodes <= bounds.max_nodes);
            match e.direction {
                ScaleDirection::Out => prop_assert_eq!(e.to_nodes, e.from_nodes + 1),
                ScaleDirection::In => prop_assert_eq!(e.to_nodes, e.from_nodes - 1),
            }
        }
        prop_assert!(r.fleet.prefill_peak_nodes <= p_max);
        prop_assert!(r.fleet.decode_peak_nodes <= decode.max_nodes);

        // 2. Cold start: a node first activated by scale-out is never
        // routed to before its warm-up completes. (The crashed-node half
        // of the routing contract is a hard assert inside route_in_pool:
        // reaching this line means no run violated it.)
        let initially_active = |g: usize| {
            if g < p_max { g < 1 } else { g - p_max < decode.initial_nodes }
        };
        for g in 0..n {
            if initially_active(g) {
                continue;
            }
            let first_out = r
                .fleet
                .scale_events
                .iter()
                .find(|e| e.node == g && e.direction == ScaleDirection::Out);
            match (first_out, r.fleet.first_route_s[g]) {
                (Some(e), Some(t)) => prop_assert!(
                    t >= e.warm_at_s - 1e-12,
                    "node {g} routed at {t} before warm-up at {}", e.warm_at_s
                ),
                (None, Some(t)) => prop_assert!(false, "node {g} never activated yet routed at {t}"),
                _ => {}
            }
        }

        // 3. Billing never charges a down node: per node, billed active
        // seconds and measured downtime are disjoint, so their sum fits
        // inside the billing horizon. The horizon extends slightly past
        // the makespan because scale-in events and fault transitions
        // after the last completion still close meters at their own
        // time (mirroring the fleet loop's billing), bounded by the
        // fault schedule's end (generation horizon 2 s + repair) plus
        // one autoscaler tick.
        let horizon = makespan.max(2.0 + mttr_s) + 0.02;
        prop_assert_eq!(r.node_downtime_s.len(), n);
        for g in 0..n {
            prop_assert!(
                r.fleet.node_active_s[g] + r.node_downtime_s[g] <= horizon + 1e-9,
                "node {g}: active {} + down {} exceeds horizon {}",
                r.fleet.node_active_s[g], r.node_downtime_s[g], horizon
            );
            prop_assert!(r.fleet.node_active_s[g] >= 0.0);
            prop_assert!(r.node_downtime_s[g] >= 0.0);
        }
        let sum: f64 = r.fleet.node_active_s.iter().sum();
        prop_assert!((sum - r.fleet.node_seconds).abs() < 1e-6);
        prop_assert!(r.fleet.node_seconds <= n as f64 * horizon + 1e-9);
    }
}
