//! Multi-request, multi-head functional run through the AttAcc controller:
//! the full §5.2 instruction flow over several Gen stages, checked against
//! reference attention at every stage.

use attacc::hbm::StackGeometry;
use attacc::pim::numeric::attention_ref;
use attacc::pim::{AttAccController, AttInst, Precision};

fn gen_val(request: u64, head: u32, tok: usize, i: usize, salt: u64) -> f32 {
    let x = request
        .wrapping_mul(1_000_003)
        .wrapping_add(u64::from(head) * 7_919)
        .wrapping_add(tok as u64 * 131)
        .wrapping_add(i as u64 * 17)
        .wrapping_add(salt);
    ((x % 211) as f32) * 0.01 - 1.05
}

#[test]
fn multi_request_multi_head_generation_matches_reference() {
    let d = 16usize;
    let n_head = 3u32;
    let requests = [10u64, 11, 12];
    let geom = StackGeometry {
        pseudo_channels: 4,
        bank_groups_per_rank: 2,
        ranks: 2,
        banks_per_group: 2,
        ..StackGeometry::hbm3_8hi()
    };
    let mut ctl = AttAccController::new(&geom, 4, Precision::Exact);
    ctl.execute(AttInst::SetModel { n_head, d_head: d, max_l: 4096 }).unwrap();
    for &r in &requests {
        ctl.execute(AttInst::UpdateRequest { request: r, remove: false }).unwrap();
    }

    // Simulate 6 Gen stages: each appends one KV vector per head per
    // request, then runs attention for every head.
    let mut lens = vec![0usize; requests.len()];
    for stage in 0..6usize {
        for (ri, &r) in requests.iter().enumerate() {
            for h in 0..n_head {
                let k: Vec<f32> = (0..d).map(|i| gen_val(r, h, stage, i, 1)).collect();
                let v: Vec<f32> = (0..d).map(|i| gen_val(r, h, stage, i, 2)).collect();
                ctl.execute(AttInst::AppendKv { request: r, head: h, k, v }).unwrap();
            }
            lens[ri] = stage + 1;
        }
        for &r in &requests {
            for h in 0..n_head {
                let q: Vec<f32> = (0..d).map(|i| gen_val(r, h, stage, i, 3)).collect();
                ctl.execute(AttInst::LoadQ { request: r, head: h, q: q.clone() }).unwrap();
                ctl.execute(AttInst::RunAttention { request: r, head: h }).unwrap();
                let out = ctl
                    .execute(AttInst::ReadOutput { request: r, head: h })
                    .unwrap()
                    .unwrap();

                // Reference over this head's full history.
                let l = stage + 1;
                let mut kt = vec![0.0f32; d * l];
                let mut v = vec![0.0f32; l * d];
                for tok in 0..l {
                    for i in 0..d {
                        kt[i * l + tok] = gen_val(r, h, tok, i, 1);
                        v[tok * d + i] = gen_val(r, h, tok, i, 2);
                    }
                }
                let want = attention_ref(&q, &kt, &v, l);
                for (g, w) in out.iter().zip(&want) {
                    assert!(
                        (f64::from(*g) - w).abs() < 1e-4,
                        "stage {stage} request {r} head {h}: {g} vs {w}"
                    );
                }
            }
        }
    }

    // KV residency: 3 requests × 3 heads × 6 tokens × 2 (K+V) × d × 2B.
    let expect = 3 * 6 * 2 * (d as u64) * 2 * 3;
    assert_eq!(ctl.allocator().total_load(), expect);

    // Retire one request mid-flight (iteration-level scheduling).
    ctl.execute(AttInst::UpdateRequest { request: 11, remove: true }).unwrap();
    assert_eq!(ctl.allocator().total_load(), expect * 2 / 3);

    // The survivors keep generating correctly.
    let q: Vec<f32> = (0..d).map(|i| gen_val(10, 0, 6, i, 3)).collect();
    ctl.execute(AttInst::LoadQ { request: 10, head: 0, q }).unwrap();
    ctl.execute(AttInst::RunAttention { request: 10, head: 0 }).unwrap();
    assert!(ctl
        .execute(AttInst::ReadOutput { request: 10, head: 0 })
        .unwrap()
        .is_some());
}

#[test]
fn fp16_pipeline_tracks_exact_pipeline() {
    let d = 8usize;
    let geom = StackGeometry {
        pseudo_channels: 2,
        bank_groups_per_rank: 2,
        ranks: 1,
        banks_per_group: 2,
        ..StackGeometry::hbm3_8hi()
    };
    let run = |precision: Precision| {
        let mut ctl = AttAccController::new(&geom, 2, precision);
        ctl.execute(AttInst::SetModel { n_head: 1, d_head: d, max_l: 4096 }).unwrap();
        ctl.execute(AttInst::UpdateRequest { request: 0, remove: false }).unwrap();
        let mut outs = Vec::new();
        for stage in 0..10usize {
            let k: Vec<f32> = (0..d).map(|i| gen_val(0, 0, stage, i, 1)).collect();
            let v: Vec<f32> = (0..d).map(|i| gen_val(0, 0, stage, i, 2)).collect();
            ctl.execute(AttInst::AppendKv { request: 0, head: 0, k, v }).unwrap();
            let q: Vec<f32> = (0..d).map(|i| gen_val(0, 0, stage, i, 3)).collect();
            ctl.execute(AttInst::LoadQ { request: 0, head: 0, q }).unwrap();
            ctl.execute(AttInst::RunAttention { request: 0, head: 0 }).unwrap();
            outs.push(
                ctl.execute(AttInst::ReadOutput { request: 0, head: 0 })
                    .unwrap()
                    .unwrap(),
            );
        }
        outs
    };
    let exact = run(Precision::Exact);
    let fp16 = run(Precision::Fp16);
    for (stage, (e, f)) in exact.iter().zip(&fp16).enumerate() {
        for (a, b) in e.iter().zip(f) {
            assert!((a - b).abs() < 0.05, "stage {stage}: {a} vs {b}");
        }
    }
}
