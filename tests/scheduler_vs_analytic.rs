//! The steady-state analytic serving model used by the figure sweeps must
//! agree with the discrete-event iteration-level scheduler.

mod common;

use attacc::model::ModelConfig;
use attacc::serving::{simulate, SchedulerConfig, Workload};
use attacc::sim::{System, SystemExecutor};
use common::assert_sim_matches_analytic;

#[test]
fn analytic_matches_simulation_on_dgx_base() {
    assert_sim_matches_analytic(System::dgx_base(), 64, 256, 64, 16, 0.10);
}

#[test]
fn analytic_matches_simulation_on_dgx_attacc() {
    assert_sim_matches_analytic(System::dgx_attacc_full(), 64, 256, 64, 16, 0.10);
}

#[test]
fn analytic_matches_simulation_small_batch() {
    assert_sim_matches_analytic(System::dgx_base(), 24, 128, 32, 4, 0.10);
}

#[test]
fn analytic_matches_simulation_batch_of_one() {
    assert_sim_matches_analytic(System::dgx_attacc_full(), 8, 128, 16, 1, 0.12);
}

#[test]
fn simulation_ranks_systems_like_the_analytic_model() {
    let model = ModelConfig::gpt3_175b();
    let wl = Workload::fixed(32, 512, 64);
    let run = |system: System| {
        let exec = SystemExecutor::new(system, &model);
        simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(16)).total_time_s
    };
    let base = run(System::dgx_base());
    let pim = run(System::dgx_attacc_full());
    assert!(pim < base, "pim {pim} vs base {base}");
}
