//! The steady-state analytic serving model used by the figure sweeps must
//! agree with the discrete-event iteration-level scheduler.

use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::serving::{simulate, SchedulerConfig, Workload};
use attacc::sim::experiment::analytic_serve;
use attacc::sim::{System, SystemExecutor};

fn check(system: System, n: u64, l_in: u64, l_out: u64, batch: u64, tol: f64) {
    let model = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(system.clone(), &model);
    let (analytic_t, analytic_e) = analytic_serve(&exec, l_in, l_out, n, batch);

    let wl = Workload::fixed(n, l_in, l_out);
    let spec = KvCacheSpec::of(&model);
    let cfg = SchedulerConfig::with_capacity(
        batch,
        system.kv_capacity_bytes(&model),
        spec.bytes_per_token,
    );
    let sim = simulate(&exec, &wl.requests(), &cfg);
    assert_eq!(sim.tokens_generated, n * l_out);

    let t_err = (sim.total_time_s - analytic_t).abs() / sim.total_time_s;
    assert!(
        t_err < tol,
        "{}: sim {:.2}s vs analytic {:.2}s (err {:.1}%)",
        system.name(),
        sim.total_time_s,
        analytic_t,
        100.0 * t_err
    );
    let e_err = (sim.energy_j - analytic_e).abs() / sim.energy_j;
    assert!(
        e_err < tol,
        "{}: sim {:.0}J vs analytic {:.0}J (err {:.1}%)",
        system.name(),
        sim.energy_j,
        analytic_e,
        100.0 * e_err
    );
}

#[test]
fn analytic_matches_simulation_on_dgx_base() {
    check(System::dgx_base(), 64, 256, 64, 16, 0.10);
}

#[test]
fn analytic_matches_simulation_on_dgx_attacc() {
    check(System::dgx_attacc_full(), 64, 256, 64, 16, 0.10);
}

#[test]
fn analytic_matches_simulation_small_batch() {
    check(System::dgx_base(), 24, 128, 32, 4, 0.10);
}

#[test]
fn analytic_matches_simulation_batch_of_one() {
    check(System::dgx_attacc_full(), 8, 128, 16, 1, 0.12);
}

#[test]
fn simulation_ranks_systems_like_the_analytic_model() {
    let model = ModelConfig::gpt3_175b();
    let wl = Workload::fixed(32, 512, 64);
    let run = |system: System| {
        let exec = SystemExecutor::new(system, &model);
        simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(16)).total_time_s
    };
    let base = run(System::dgx_base());
    let pim = run(System::dgx_attacc_full());
    assert!(pim < base, "pim {pim} vs base {base}");
}
