//! Shared fixtures for the integration-test suites.
//!
//! The cross-fidelity suites all probe the same paper configuration —
//! HBM3 8-high stacks, the 40-stack AttAcc device with bank-level GEMV,
//! GPT-3 175B, fp16 KV — so the builders live here once. Each test file
//! pulls them in with `mod common;`; `dead_code` is allowed because no
//! single suite uses every fixture.

#![allow(dead_code)]

use attacc::hbm::HbmConfig;
use attacc::model::{KvCacheSpec, ModelConfig};
use attacc::pim::attention::HeadJob;
use attacc::pim::{AttAccDevice, GemvPlacement, SoftmaxUnit};
use attacc::serving::{simulate, SchedulerConfig, Workload};
use attacc::sim::experiment::analytic_serve;
use attacc::sim::{System, SystemExecutor};

/// The paper's device-level stack: HBM3 8-high, the evaluated softmax
/// unit, the 40-stack AttAcc appliance, and GPT-3 175B.
pub struct PaperRig {
    /// HBM3 8-high stack configuration.
    pub hbm: HbmConfig,
    /// The near-bank softmax unit.
    pub softmax: SoftmaxUnit,
    /// 40-stack AttAcc device with the given GEMV placement.
    pub device: AttAccDevice,
    /// GPT-3 175B.
    pub model: ModelConfig,
}

/// The paper rig with bank-level GEMV placement (the headline config).
#[must_use]
pub fn paper_rig() -> PaperRig {
    PaperRig {
        hbm: HbmConfig::hbm3_8hi(),
        softmax: SoftmaxUnit::new(),
        device: AttAccDevice::paper_40_stacks(GemvPlacement::Bank),
        model: ModelConfig::gpt3_175b(),
    }
}

/// One GPT-3-shaped attention head over an `l`-token context: `d_head`
/// 128, fp16 KV (2 bytes/element).
#[must_use]
pub fn head_job(l: u64) -> HeadJob {
    HeadJob::new(l, 128, 2)
}

/// Asserts the iteration-level scheduler and the steady-state analytic
/// serving model agree on total time and energy within `tol` (relative)
/// for `n` fixed `(l_in, l_out)` requests at the given batch size on
/// `system`, running GPT-3 175B with the system's real KV capacity.
pub fn assert_sim_matches_analytic(
    system: System,
    n: u64,
    l_in: u64,
    l_out: u64,
    batch: u64,
    tol: f64,
) {
    let model = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(system.clone(), &model);
    let (analytic_t, analytic_e) = analytic_serve(&exec, l_in, l_out, n, batch);

    let wl = Workload::fixed(n, l_in, l_out);
    let spec = KvCacheSpec::of(&model);
    let cfg = SchedulerConfig::with_capacity(
        batch,
        system.kv_capacity_bytes(&model),
        spec.bytes_per_token,
    );
    let sim = simulate(&exec, &wl.requests(), &cfg);
    assert_eq!(sim.tokens_generated, n * l_out);

    let t_err = (sim.total_time_s - analytic_t).abs() / sim.total_time_s;
    assert!(
        t_err < tol,
        "{}: sim {:.2}s vs analytic {:.2}s (err {:.1}%)",
        system.name(),
        sim.total_time_s,
        analytic_t,
        100.0 * t_err
    );
    let e_err = (sim.energy_j - analytic_e).abs() / sim.energy_j;
    assert!(
        e_err < tol,
        "{}: sim {:.0}J vs analytic {:.0}J (err {:.1}%)",
        system.name(),
        sim.energy_j,
        analytic_e,
        100.0 * e_err
    );
}
