//! Acceptance tests for the fleet-chaos headline claims.
//!
//! The `chaos_fleet_sim` sweep is the evidence that fleet-level fault
//! injection, autoscaler-aware recovery and graceful degradation
//! interact the way the docs say they do. These tests pin the claims on
//! the exact cells the binary prints:
//!
//! 1. per configuration, availability **and** goodput under failure
//!    degrade monotonically as the per-node crash MTBF shrinks,
//! 2. warm KV re-shipping keeps more requests inside the TTFT SLO than
//!    cold re-prefill at every failure rate, and
//! 3. the degradation levers (shedding, brownout) only ever engage when
//!    something is actually down.

use attacc::model::ModelConfig;
use attacc_bench::{
    chaos_fleet_cell, chaos_fleet_configs, ChaosFleetCellStats, CHAOS_FLEET_MTBFS,
    CHAOS_FLEET_REQUESTS,
};

/// The binary's own `CHAOS_FLEET_REQUESTS`: the claims are about the
/// shipped sweep, so the tests run the exact cells `chaos_fleet_sim`
/// prints.
const N: u64 = CHAOS_FLEET_REQUESTS;

fn ladder_cells() -> Vec<(&'static str, Vec<ChaosFleetCellStats>)> {
    let model = ModelConfig::gpt3_175b();
    chaos_fleet_configs()
        .into_iter()
        .map(|(name, recovery, degrade)| {
            let cells = CHAOS_FLEET_MTBFS
                .iter()
                .map(|&mtbf| chaos_fleet_cell(&model, recovery, degrade, mtbf, N))
                .collect();
            (name, cells)
        })
        .collect()
}

#[test]
fn availability_and_goodput_degrade_monotonically_with_mtbf() {
    for (name, cells) in ladder_cells() {
        for pair in cells.windows(2) {
            assert!(
                pair[0].availability >= pair[1].availability - 1e-12,
                "{name}: availability must not improve as MTBF shrinks: {} < {}",
                pair[0].availability,
                pair[1].availability
            );
            assert!(
                pair[0].goodput_tokens_per_s >= pair[1].goodput_tokens_per_s - 1e-9,
                "{name}: goodput must not improve as MTBF shrinks: {} < {}",
                pair[0].goodput_tokens_per_s,
                pair[1].goodput_tokens_per_s
            );
        }
        let (first, last) = (&cells[0], &cells[cells.len() - 1]);
        assert_eq!(first.availability, 1.0, "{name}: no faults, full availability");
        assert!(
            first.availability > last.availability + 0.05,
            "{name}: the deepest failure rate must cost real availability"
        );
    }
}

#[test]
fn kv_reshipping_keeps_more_requests_in_slo_than_reprefill() {
    let ladder = ladder_cells();
    let (_, reprefill) = &ladder[0];
    let (_, reship) = &ladder[1];
    // Skip the fault-free anchor: without crashes the modes are
    // identical by construction.
    for (i, &mtbf) in CHAOS_FLEET_MTBFS.iter().enumerate().skip(1) {
        assert!(
            reship[i].requests_in_slo >= reprefill[i].requests_in_slo,
            "KV re-shipping must not lose SLO ground to re-prefill at MTBF {mtbf}: {} vs {}",
            reship[i].requests_in_slo,
            reprefill[i].requests_in_slo
        );
        assert!(
            reship[i].recovery_reships > 0.0 || reprefill[i].recomputed_tokens == 0.0,
            "when crashes displace work, KvMigrate must actually re-ship at MTBF {mtbf}"
        );
    }
    // And at the deeper failure rates the win is strict, not a tie.
    let deepest = CHAOS_FLEET_MTBFS.len() - 1;
    assert!(
        reship[deepest].goodput_tokens_per_s > reprefill[deepest].goodput_tokens_per_s,
        "warm recovery should out-run cold re-prefill at the deepest MTBF: {} vs {}",
        reship[deepest].goodput_tokens_per_s,
        reprefill[deepest].goodput_tokens_per_s
    );
}

#[test]
fn degradation_levers_engage_only_under_failure() {
    let ladder = ladder_cells();
    let (_, degrade) = &ladder[2];
    let healthy = &degrade[0];
    assert_eq!(healthy.shed_requests, 0.0, "no shedding on a healthy fleet");
    assert_eq!(healthy.browned_out, 0.0, "no brownout on a healthy fleet");
    let deepest = &degrade[CHAOS_FLEET_MTBFS.len() - 1];
    assert!(
        deepest.browned_out > 0.0,
        "sustained crashes must push the fleet into brownout"
    );
    // Degradation trades answer length for admission: it must never
    // finish with *fewer* requests inside the SLO than doing nothing.
    let (_, reprefill) = &ladder[0];
    assert!(
        deepest.requests_in_slo >= reprefill[CHAOS_FLEET_MTBFS.len() - 1].requests_in_slo,
        "degradation should protect SLO attainment under failure"
    );
}
