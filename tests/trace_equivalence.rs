//! Acceptance suite for trace-driven execution.
//!
//! The contract of the trace subsystem is *zero drift*: executing a
//! workload through an instruction trace must reproduce what the direct
//! (non-trace) paths produce — bit-exactly, not approximately.
//!
//! * Timing: a compiled paper workload replayed by
//!   [`attacc::trace::execute_timing`] prices the exact same heads as a
//!   direct loop over [`attacc::trace::head_cost`] — same bits in the
//!   accumulated attention clock.
//! * Functional: a compiled functional trace replayed through the
//!   [`attacc::pim::AttAccController`] returns the same floats as
//!   [`attacc::pim::ProtectedAttention`]'s pipeline over the same
//!   operands.
//! * Reporting: the `trace_sim` tables are byte-identical at any sweep
//!   thread count and with a cold or warm timing cache — like every
//!   other table of the evaluation.

use attacc::pim::{
    AttAccController, FaultPlan, GemvMode, MappingPolicy, Precision, ProtectedAttention,
};
use attacc::pim::numeric::Matrix;
use attacc::trace::{
    compile, execute_timing, head_cost, kv_pair, paged_resident, q_vector, replay,
    DecodeSchedule, KvPolicy, TimingConfig, Trace, TracePayload,
};
use attacc_hbm::StackGeometry;
use attacc_model::{DataType, ModelConfig};
use attacc_sim::engine::{self, TimingCache};
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide thread override or the
/// global timing cache.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn timing_replay_prices_the_exact_head_schedule() {
    let cfg = TimingConfig::paper();
    let (batch, prompt_l, steps) = (2usize, 512u64, 4u64);
    let sched = DecodeSchedule::uniform(batch, prompt_l, steps, KvPolicy::Full, TracePayload::Timing);
    let trace = compile(&ModelConfig::gpt3_175b(), &sched);
    let report = execute_timing(&cfg, &trace).unwrap();

    // The direct path: the same heads in the same order, priced by the
    // same engine helper. Bit-exact equality, not a tolerance.
    let n_head = 96u64;
    let mut want_attention = 0.0f64;
    let mut want_energy = 0.0f64;
    for step in 0..steps {
        for _request in 0..batch {
            // One launch (`run_batch`) sums its heads before folding into
            // the per-opcode total — mirror that association exactly.
            let mut launch_energy = 0.0f64;
            for _head in 0..n_head {
                let cost = head_cost(&cfg, prompt_l + step + 1, 128);
                want_attention += cost.time_s;
                launch_energy += cost.energy_j;
            }
            want_energy += launch_energy;
        }
    }
    assert_eq!(report.heads_run, batch as u64 * steps * n_head);
    assert_eq!(report.attention_s.to_bits(), want_attention.to_bits());
    // Energy also carries the KV-ingest term; the kernel share alone
    // must match the direct loop bit-for-bit.
    let kernel_j: f64 = report
        .per_opcode
        .iter()
        .filter(|(op, _)| *op == "run_batch")
        .map(|(_, c)| c.energy_j)
        .sum();
    assert_eq!(kernel_j.to_bits(), want_energy.to_bits());
}

/// Round-tripping a trace through its text form must not change what it
/// computes: same instructions, same report.
#[test]
fn timing_report_survives_the_text_codec() {
    let cfg = TimingConfig::paper();
    for policy in [
        KvPolicy::Full,
        KvPolicy::SlidingWindow { window: 256 },
        KvPolicy::Paged { tokens_per_page: 256, recent_pages: 2 },
    ] {
        let sched = DecodeSchedule::uniform(2, 2048, 4, policy, TracePayload::Timing);
        let trace = compile(&ModelConfig::gpt3_175b(), &sched);
        let reparsed = Trace::parse(&trace.to_text()).unwrap();
        assert_eq!(reparsed, trace);
        let a = execute_timing(&cfg, &trace).unwrap();
        let b = execute_timing(&cfg, &reparsed).unwrap();
        assert_eq!(a, b, "{policy:?}");
    }
}

fn functional_controller() -> AttAccController {
    let geom = StackGeometry {
        pseudo_channels: 4,
        bank_groups_per_rank: 2,
        ranks: 2,
        banks_per_group: 2,
        ..StackGeometry::hbm3_8hi()
    };
    let mut ctl = AttAccController::new(&geom, 2, Precision::Exact);
    // Flat mapping (no hierarchy) on the exact datapath reproduces the
    // integrity pipeline's arithmetic exactly.
    ctl.set_policies(
        MappingPolicy { levels: vec![], unit_mode: GemvMode::AdderTree },
        MappingPolicy { levels: vec![], unit_mode: GemvMode::Accumulator },
    );
    ctl
}

fn tiny_model() -> ModelConfig {
    ModelConfig::builder("tiny")
        .decoders(2)
        .embedding(16)
        .heads(2)
        .feedforward(32)
        .vocab(100)
        .max_seq_len(128)
        .dtype(DataType::Fp16)
        .build()
        .unwrap()
}

#[test]
fn functional_replay_matches_the_direct_attention_path_bit_for_bit() {
    let d_head = 8usize;
    let (prompt_l, steps, seed) = (6u64, 3u64, 20260808u64);
    for policy in [
        KvPolicy::Full,
        KvPolicy::SlidingWindow { window: 4 },
        KvPolicy::Paged { tokens_per_page: 3, recent_pages: 1 },
    ] {
        let sched = DecodeSchedule::uniform(
            2,
            prompt_l,
            steps,
            policy,
            TracePayload::Functional { seed },
        );
        let trace = compile(&tiny_model(), &sched);
        let mut ctl = functional_controller();
        let outcome = replay(&mut ctl, &trace).unwrap();
        assert_eq!(outcome.outputs.len() as u64, 2 * steps * 2, "{policy:?}");

        let reference = ProtectedAttention::exact();
        let mut seen = std::collections::HashMap::<(u64, u32), u64>::new();
        for ((request, head), got) in &outcome.outputs {
            let step = seen.entry((*request, *head)).or_insert(0);
            let total = prompt_l + *step + 1;
            let tokens: Vec<u64> = match policy {
                KvPolicy::Full => (0..total).collect(),
                KvPolicy::SlidingWindow { window } => (total - total.min(window)..total).collect(),
                KvPolicy::Paged { tokens_per_page, recent_pages } => {
                    let pages = paged_resident(total, tokens_per_page, recent_pages);
                    (0..total).filter(|t| pages.contains(&(t / tokens_per_page))).collect()
                }
            };
            let l = tokens.len();
            let mut kt = Matrix::zeros(d_head, l);
            let mut v = Matrix::zeros(l, d_head);
            for (j, &tok) in tokens.iter().enumerate() {
                let (kv_k, kv_v) = kv_pair(seed, *request, *head, tok, d_head);
                for r in 0..d_head {
                    kt.set(r, j, kv_k[r]);
                    v.set(j, r, kv_v[r]);
                }
            }
            let q = q_vector(seed, *request, *head, *step, d_head);
            let want = reference.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
            let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
            let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "{policy:?} req {request} head {head} step {step}");
            *step += 1;
        }
    }
}

fn render_trace_tables() -> String {
    format!(
        "{}\n{}\n{}",
        attacc_bench::trace_paper_table(),
        attacc_bench::trace_workloads_table(),
        attacc_bench::trace_opcode_table(),
    )
}

#[test]
fn trace_tables_are_byte_identical_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = render_trace_tables();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = render_trace_tables();
        assert_eq!(serial, parallel, "trace tables changed between 1 and {threads} threads");
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn trace_tables_are_cache_state_invariant() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    TimingCache::global().clear();
    let cold = render_trace_tables();
    let warm = render_trace_tables();
    assert_eq!(cold, warm, "trace tables changed between cold and warm timing cache");
}
