//! Equivalence and determinism guarantees of the cluster simulator.
//!
//! The cluster layer must add *zero* modeling drift over the single-node
//! serving simulator: a 1-node cluster behind a pass-through router over
//! an ideal interconnect is required to reproduce
//! [`attacc_serving::simulate_open_loop`] **bit-exactly** — same floats,
//! not just close floats. And like every other layer of the stack, the
//! cluster report must be byte-identical at any thread count and with a
//! cold or warm timing cache.

use attacc::cluster::{simulate_cluster, ClusterConfig};
use attacc::serving::{
    simulate_open_loop, ArrivalWorkload, SchedulerConfig, StageCost, StageExecutor,
};
use attacc_sim::engine::{self, TimingCache};
use attacc_sim::{System, SystemExecutor};
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide thread override or the
/// global timing cache.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

/// A toy executor with irrational-valued costs so any divergence in
/// floating-point accumulation order shows up immediately.
struct Toy;
impl StageExecutor for Toy {
    fn sum_stage(&self, b: u64, l: u64) -> StageCost {
        StageCost {
            latency_s: 1e-3 * ((b * l) as f64).sqrt(),
            energy_j: 0.37 * b as f64,
        }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        let work: f64 = groups.iter().map(|&(c, l)| (c * l) as f64).sum();
        StageCost {
            latency_s: 7e-4 + 1e-7 * work.sqrt() * n as f64,
            energy_j: 0.011 * work,
        }
    }
}

fn assert_bit_exact<E: StageExecutor>(executor: &E, w: &ArrivalWorkload, cfg: SchedulerConfig) {
    let single = simulate_open_loop(executor, w, &cfg);
    let nodes: [&dyn StageExecutor; 1] = [executor];
    let cluster = simulate_cluster(&nodes, w, &ClusterConfig::pass_through(cfg));
    assert_eq!(
        cluster.to_open_loop_report(),
        single,
        "1-node pass-through cluster must reproduce simulate_open_loop bit-for-bit"
    );
    assert_eq!(cluster.completed + cluster.abandoned, w.arrivals.len() as u64);
}

#[test]
fn one_node_pass_through_is_bit_exact() {
    let w = ArrivalWorkload::poisson(80, 120.0, 48, (4, 24), 17);
    assert_bit_exact(&Toy, &w, SchedulerConfig::unlimited(8));
}

#[test]
fn one_node_bit_exact_under_kv_pressure() {
    // Capacity for two in-flight requests (final_len = 16 + l_out ≤ 40,
    // capacity 80 tokens): admission head-blocks constantly but every
    // request is feasible, exercising the KV-reservation path on both
    // sides.
    let w = ArrivalWorkload::poisson(60, 300.0, 16, (8, 24), 23);
    assert_bit_exact(&Toy, &w, SchedulerConfig::with_capacity(8, 80, 1));
}

#[test]
fn one_node_bit_exact_on_bursty_and_diurnal_shapes() {
    for w in [
        ArrivalWorkload::bursty(50, 60.0, 5.0, 0.5, 0.2, 32, (4, 16), 31),
        ArrivalWorkload::diurnal(50, 60.0, 0.9, 1.5, 32, (4, 16), 31),
    ] {
        assert_bit_exact(&Toy, &w, SchedulerConfig::unlimited(6));
    }
}

#[test]
fn one_node_bit_exact_on_real_platform() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let model = attacc::model::ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_attacc_full(), &model);
    let w = ArrivalWorkload::poisson(24, 8.0, 512, (16, 48), 5);
    assert_bit_exact(&exec, &w, SchedulerConfig::unlimited(16));
}

#[test]
fn cluster_report_is_byte_identical_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = attacc_bench::cluster_frontier(24).to_string();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = attacc_bench::cluster_frontier(24).to_string();
        assert_eq!(
            serial, parallel,
            "cluster frontier changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn chaos_wrapper_with_zero_faults_is_bit_exact_with_cluster() {
    use attacc::chaos::{simulate_chaos, ChaosConfig, FaultSchedule};
    use attacc::cluster::RouterPolicy;

    // The same golden workloads as the 1-node parity cases, on a 3-node
    // cluster under every router policy: an empty fault schedule and the
    // inert resilience policy must leave simulate_cluster's report
    // untouched — same floats, not just close floats.
    let w = ArrivalWorkload::poisson(80, 120.0, 48, (4, 24), 17);
    let toys = [Toy, Toy, Toy];
    let nodes: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
    for policy in [
        RouterPolicy::PassThrough,
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvBytes,
        RouterPolicy::SessionAffinity { spill_backlog: 4 },
    ] {
        let cfg = ClusterConfig {
            policy,
            ..ClusterConfig::pass_through(SchedulerConfig::unlimited(8))
        };
        let base = simulate_cluster(&nodes, &w, &cfg);
        let chaos = simulate_chaos(&nodes, &w, &ChaosConfig::inert(cfg), &FaultSchedule::none());
        assert_eq!(
            chaos.cluster, base,
            "zero-fault chaos run diverged from simulate_cluster under {}",
            policy.name()
        );
        assert_eq!(chaos.faults_injected, 0);
        assert_eq!(chaos.availability, 1.0);
        assert_eq!((chaos.retries, chaos.hedges, chaos.lost_tokens), (0, 0, 0));
    }
}

#[test]
fn chaos_report_is_byte_identical_across_thread_counts() {
    // A *faulty* fixed-seed run this time: the frontier sweeps real crash
    // schedules, so this pins fault injection, recovery dispatch, retry
    // jitter and EWMA health state to byte-identical output at any
    // parallelism.
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = attacc_bench::chaos_goodput_frontier(24).to_string();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = attacc_bench::chaos_goodput_frontier(24).to_string();
        assert_eq!(
            serial, parallel,
            "chaos frontier changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn chaos_report_is_byte_identical_cold_and_warm_cache() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = attacc_bench::chaos_routing_matrix(24).to_string();
    let warm = attacc_bench::chaos_routing_matrix(24).to_string();
    assert_eq!(cold, warm, "cache hits changed the chaos routing matrix");
}

#[test]
fn cluster_report_is_byte_identical_cold_and_warm_cache() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = attacc_bench::cluster_frontier(24).to_string();
    assert!(!cache.is_empty(), "cluster cells should populate the timing cache");
    let warm = attacc_bench::cluster_frontier(24).to_string();
    let stats = cache.stats();
    assert_eq!(cold, warm, "cache hits changed the cluster frontier");
    assert!(stats.hits > 0, "second run should hit the cache");
}

#[test]
fn reports_are_byte_identical_with_fast_path_forced_on_and_off() {
    // The analytic steady-state fast path (ATTACC_FASTPATH, forced here
    // via the programmatic override) must be an *identity* over the
    // exact command-level engine: the golden cluster and chaos frontiers
    // rendered with the fast path forced off and forced on have to match
    // byte for byte, cold cache both times.
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let render = |fastpath: bool| {
        engine::set_fastpath(Some(fastpath));
        TimingCache::global().clear();
        let cluster = attacc_bench::cluster_frontier(24).to_string();
        let chaos = attacc_bench::chaos_goodput_frontier(24).to_string();
        let autoscale = attacc_bench::autoscale_frontier(2048).to_string();
        let chaos_fleet = attacc_bench::chaos_fleet_frontier(24).to_string();
        (cluster, chaos, autoscale, chaos_fleet)
    };
    let exact = render(false);
    let fast = render(true);
    engine::set_fastpath(None); // restore the ATTACC_FASTPATH env default
    assert_eq!(exact.0, fast.0, "fast path changed the cluster frontier");
    assert_eq!(exact.1, fast.1, "fast path changed the chaos goodput frontier");
    assert_eq!(exact.2, fast.2, "fast path changed the autoscale frontier");
    assert_eq!(exact.3, fast.3, "fast path changed the fleet-chaos frontier");
}

#[test]
fn monolithic_fleet_is_bit_exact_with_simulate_cluster() {
    use attacc::cluster::{simulate_fleet, FleetConfig, RouterPolicy};

    // The fleet layer's equivalence pin at workspace level, on the
    // irrational-cost executor: with no prefill pool, a static decode
    // pool and no autoscaler, simulate_fleet must hand back
    // simulate_cluster's exact report — same floats, not just close.
    let w = ArrivalWorkload::poisson(80, 120.0, 48, (4, 24), 17);
    let toys = [Toy, Toy, Toy];
    let nodes: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
    for policy in [
        RouterPolicy::PassThrough,
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvBytes,
        RouterPolicy::SessionAffinity { spill_backlog: 4 },
    ] {
        let cfg = ClusterConfig {
            policy,
            ..ClusterConfig::pass_through(SchedulerConfig::unlimited(8))
        };
        let base = simulate_cluster(&nodes, &w, &cfg);
        let fleet = simulate_fleet(&[], &nodes, &w, &FleetConfig::monolithic(&cfg, 3));
        assert_eq!(
            fleet.cluster, base,
            "monolithic fleet diverged from simulate_cluster under {}",
            policy.name()
        );
        assert_eq!((fleet.kv_ships, fleet.scale_events.len()), (0, 0));
    }
}

/// Costs built only from power-of-two factors, so every float sum a
/// report takes is exact regardless of association order — this lets the
/// disaggregated fleet, which splits one node's work across two nodes
/// (and therefore sums energies and latencies in a different order), be
/// compared bit-for-bit against the monolithic run.
struct Dyadic;
impl StageExecutor for Dyadic {
    fn sum_stage(&self, b: u64, l: u64) -> StageCost {
        StageCost { latency_s: (b * l) as f64 / 1024.0, energy_j: (b * l) as f64 / 4.0 }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let work: u64 = groups.iter().map(|&(c, l)| c * l).sum();
        StageCost { latency_s: work as f64 / 8192.0, energy_j: work as f64 / 16.0 }
    }
}

#[test]
fn disaggregated_pair_with_free_shipping_matches_monolithic_node() {
    use attacc::cluster::{
        simulate_fleet, FleetConfig, InterconnectModel, PoolConfig, RouterPolicy, SloSpec,
    };
    use attacc::model::Request;

    // One prefill node + one decode node over a zero-cost interconnect,
    // arrivals spaced far enough apart that exactly one request is in
    // flight at a time: the prefill node runs the same Sum the
    // monolithic node would, the hand-off ships for free at the same
    // instant, and the decode node resumes with the identical Gen group
    // lengths. Every aggregate the two runs share must match bit-exactly
    // (per-node detail necessarily differs: two nodes split the work).
    let arrivals: Vec<(f64, Request)> =
        (0..12).map(|i| (i as f64, Request::new(i, 8, 2 + i % 3))).collect();
    let w = ArrivalWorkload { arrivals };
    let scheduler = SchedulerConfig::unlimited(8);
    let mono = simulate_cluster(
        &[&Dyadic],
        &w,
        &ClusterConfig::pass_through(scheduler),
    );
    let fleet = simulate_fleet(
        &[&Dyadic],
        &[&Dyadic],
        &w,
        &FleetConfig {
            prefill: Some(PoolConfig::fixed(1)),
            decode: PoolConfig::fixed(1),
            scheduler,
            policy: RouterPolicy::PassThrough,
            interconnect: InterconnectModel::ideal(),
            slo: SloSpec::chatbot(),
            autoscaler: None,
        },
    );
    let f = &fleet.cluster;
    assert_eq!(f.completed, mono.completed);
    assert_eq!(f.abandoned, 0);
    assert_eq!(f.makespan_s.to_bits(), mono.makespan_s.to_bits(), "makespan drifted");
    assert_eq!(f.tokens_per_s.to_bits(), mono.tokens_per_s.to_bits(), "throughput drifted");
    assert_eq!(f.energy_j.to_bits(), mono.energy_j.to_bits(), "energy drifted");
    assert_eq!(f.ttft, mono.ttft, "TTFT stats drifted");
    assert_eq!(f.tbt, mono.tbt, "TBT stats drifted");
    assert_eq!(f.queue_wait, mono.queue_wait, "queue-wait stats drifted");
    assert_eq!(f.goodput, mono.goodput, "goodput drifted");
    // Every request generated ≥ 2 tokens, so every one shipped exactly
    // once; single-token completions would retire at the prefill node.
    assert_eq!(fleet.kv_ships, w.arrivals.len() as u64);
}

#[test]
fn fleet_chaos_with_zero_faults_is_bit_exact_with_fleet_mix() {
    use attacc::chaos::{simulate_fleet_chaos, FaultSchedule, FleetChaosConfig};
    use attacc::cluster::{
        simulate_fleet_mix, AutoscalerConfig, FleetConfig, FleetMix, InterconnectModel,
        PoolConfig, RouterPolicy, SloSpec,
    };

    // The fleet-scale strict-superset pin at workspace level: an empty
    // fault schedule and the inert config (re-prefill recovery, every
    // degradation lever off) must leave simulate_fleet_mix's report
    // untouched — same floats — on both a disaggregated fixed fleet and
    // a monolithic autoscaled one, under every pool router policy.
    let w = ArrivalWorkload::poisson(80, 120.0, 48, (4, 24), 17);
    let toys = [Toy, Toy, Toy, Toy];
    let nodes: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
    let mix = FleetMix::uniform();
    let fleets = [
        FleetConfig {
            prefill: Some(PoolConfig::fixed(1)),
            decode: PoolConfig::fixed(3),
            scheduler: SchedulerConfig::unlimited(8),
            policy: RouterPolicy::JoinShortestQueue,
            interconnect: InterconnectModel::ethernet_400g().with_kv_bytes_per_token(64),
            slo: SloSpec::chatbot(),
            autoscaler: None,
        },
        FleetConfig {
            prefill: None,
            decode: PoolConfig::elastic(2, 2, 4),
            scheduler: SchedulerConfig::unlimited(8),
            policy: RouterPolicy::JoinShortestQueue,
            interconnect: InterconnectModel::ethernet_400g().with_kv_bytes_per_token(64),
            slo: SloSpec::chatbot(),
            autoscaler: Some(AutoscalerConfig::queue_depth(0.05)),
        },
    ];
    for fleet in fleets {
        let p_max = fleet.prefill.map_or(0, |p| p.max_nodes);
        for policy in [
            RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastKvBytes,
            RouterPolicy::WeightedLeastLoad,
        ] {
            let cfg = FleetConfig { policy, ..fleet };
            let base = simulate_fleet_mix(&nodes[..p_max], &nodes[p_max..], &mix, &w, &cfg);
            let chaos = simulate_fleet_chaos(
                &nodes[..p_max],
                &nodes[p_max..],
                &mix,
                &w,
                &FleetChaosConfig::inert(cfg),
                &FaultSchedule::none(),
            );
            assert_eq!(
                chaos.fleet,
                base,
                "zero-fault fleet-chaos run diverged from simulate_fleet_mix under {} ({})",
                policy.name(),
                if p_max > 0 { "disaggregated" } else { "monolithic" }
            );
            assert_eq!(chaos.faults_injected, 0);
            assert_eq!(chaos.availability, 1.0);
            assert_eq!((chaos.crashes, chaos.shed_requests, chaos.browned_out_requests), (0, 0, 0));
        }
    }
}

#[test]
fn fleet_chaos_frontier_is_byte_identical_across_thread_counts() {
    // A faulty fixed-seed fleet run: the frontier sweeps real crash
    // schedules through the autoscaled disaggregated fleet, so this pins
    // fault injection, recovery re-shipping, degradation and replacement
    // provisioning to byte-identical output at any parallelism.
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = attacc_bench::chaos_fleet_frontier(24).to_string();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = attacc_bench::chaos_fleet_frontier(24).to_string();
        assert_eq!(
            serial, parallel,
            "fleet-chaos frontier changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn fleet_chaos_frontier_is_byte_identical_cold_and_warm_cache() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = attacc_bench::chaos_fleet_frontier(24).to_string();
    let warm = attacc_bench::chaos_fleet_frontier(24).to_string();
    assert_eq!(cold, warm, "cache hits changed the fleet-chaos frontier");
}

#[test]
fn autoscale_frontier_is_byte_identical_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = attacc_bench::autoscale_frontier(2048).to_string();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = attacc_bench::autoscale_frontier(2048).to_string();
        assert_eq!(
            serial, parallel,
            "autoscale frontier changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn autoscale_frontier_is_byte_identical_cold_and_warm_cache() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = attacc_bench::autoscale_frontier(2048).to_string();
    let warm = attacc_bench::autoscale_frontier(2048).to_string();
    assert_eq!(cold, warm, "cache hits changed the autoscale frontier");
}

#[test]
fn integrity_with_zero_ber_is_bit_exact_with_cluster() {
    use attacc::chaos::{
        simulate_chaos, simulate_integrity, ChaosConfig, CorruptionSpec, FaultSchedule,
    };
    use attacc::cluster::RouterPolicy;

    // A clean channel over an empty fault schedule and the inert policy:
    // the integrity wrapper must hand back simulate_cluster's exact
    // report — same floats — with every corruption counter at zero.
    let w = ArrivalWorkload::poisson(80, 120.0, 48, (4, 24), 17);
    let toys = [Toy, Toy, Toy];
    let nodes: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
    let cfg = ClusterConfig {
        policy: RouterPolicy::JoinShortestQueue,
        ..ClusterConfig::pass_through(SchedulerConfig::unlimited(8))
    };
    let base = simulate_cluster(&nodes, &w, &cfg);
    let chaos_cfg = ChaosConfig::inert(cfg);
    let plain = simulate_chaos(&nodes, &w, &chaos_cfg, &FaultSchedule::none());
    let r = simulate_integrity(
        &nodes,
        &w,
        &chaos_cfg,
        &FaultSchedule::none(),
        &CorruptionSpec::clean(),
    );
    assert_eq!(r.chaos.cluster, base, "zero-BER integrity run diverged from simulate_cluster");
    assert_eq!(r.chaos, plain, "zero-BER integrity run diverged from simulate_chaos");
    assert_eq!(
        (r.sdc_tokens, r.detected_tokens, r.corrected_tokens, r.corrupted_requests),
        (0, 0, 0, 0)
    );
}

#[test]
fn integrity_report_is_byte_identical_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = attacc_bench::integrity_frontier(24).to_string();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = attacc_bench::integrity_frontier(24).to_string();
        assert_eq!(
            serial, parallel,
            "integrity frontier changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn integrity_report_is_byte_identical_cold_and_warm_cache() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = attacc_bench::integrity_frontier(24).to_string();
    let warm = attacc_bench::integrity_frontier(24).to_string();
    assert_eq!(cold, warm, "cache hits changed the integrity frontier");
}
