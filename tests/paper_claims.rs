//! A claims audit: every quantitative statement the paper makes in prose
//! (outside the figures, which EXPERIMENTS.md covers) gets one assertion.

use attacc::hbm::HbmConfig;
use attacc::model::{AttnShape, DataType, ModelConfig, Op, Phase, StageWorkload, GIB};
use attacc::pim::{AttAccDevice, GemvPlacement, SoftmaxUnit};
use attacc::sim::{System, SystemExecutor};

#[test]
fn claim_intro_gpt3_total_flops() {
    // §1: GPT-3 "requires 1,475 TFLOPs of computation" for one request at
    // (L_in, L_out) = (2048, 2048).
    let m = ModelConfig::gpt3_175b();
    let mut flops = StageWorkload::uniform(&m, Phase::sum(2048), 1).flops() as f64;
    for i in 0..2047u64 {
        flops += StageWorkload::uniform(&m, Phase::gen(2049 + i), 1).flops() as f64;
    }
    let tflops = flops / 1e12;
    assert!(
        (tflops - 1475.0).abs() / 1475.0 < 0.25,
        "total = {tflops:.0} TFLOPs (paper: 1,475)"
    );
}

#[test]
fn claim_intro_batch1_utilization_below_1pct() {
    // §1: batch-1 inference leaves "compute unit utilization below 1%".
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_base(), &m);
    let d = exec.gen_stage_detail(&[(1, 2048)]);
    assert!(d.utilization < 0.01, "util = {}", d.utilization);
}

#[test]
fn claim_s33_external_internal_traffic_ratio() {
    // §3.3: the external-to-internal bandwidth ratio of the attention
    // layer is (d_emb + N_head·L)/(L·d_emb), "up to 1/128 for GPT-3 …
    // with L ≥ 2,048".
    let d_emb = 12288.0f64;
    let n_head = 96.0f64;
    let l = 2048.0f64;
    let ratio = (d_emb + n_head * l) / (l * d_emb);
    assert!((ratio - 1.0 / 120.9).abs() < 1e-4, "formula ratio = {ratio}");
    assert!(ratio <= 1.0 / 100.0, "≈1/128 class: {ratio}");
    // Our op model agrees: per-request attention act bytes over KV bytes
    // is the same order.
    let op = Op::Attention {
        groups: vec![AttnShape::single(2048, 1)],
        n_head: 96,
        kv_heads: 96,
        d_head: 128,
        kv_dtype: DataType::Fp16,
        act_dtype: DataType::Fp16,
    };
    let t = op.traffic();
    let model_ratio = t.act_bytes as f64 / t.kv_bytes as f64;
    assert!(model_ratio < 1.0 / 100.0, "model ratio = {model_ratio}");
}

#[test]
fn claim_s41_softmax_unit_budget() {
    // §4.1: softmax needs N_head/d_emb (~1/128) of the GEMV bandwidth, and
    // the buffer die provisions 1/9 of AttAcc_bank's aggregate internal
    // bandwidth — comfortably enough.
    let hbm = HbmConfig::hbm3_8hi();
    let sfm_need = 96.0 / 12288.0; // fraction of GEMV stream
    let buffer_fraction = 1.0
        / GemvPlacement::Bank.relative_bandwidth(&hbm);
    assert!(buffer_fraction > 10.0 * sfm_need, "{buffer_fraction} vs {sfm_need}");
    // And the softmax unit's throughput covers the score-element rate.
    let sm = SoftmaxUnit::new();
    let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    let elems_per_s = dev.internal_bandwidth() / (2.0 * 128.0 * 2.0); // scores per KV byte stream
    let sm_capacity = sm.throughput_elems_per_s() * f64::from(dev.n_stacks);
    assert!(sm_capacity > elems_per_s, "{sm_capacity} vs {elems_per_s}");
}

#[test]
fn claim_s41_softmax_units_vs_banks() {
    // §4.1: "the maximum number of softmax units is … 4,800 for 96 heads
    // and a batch size of 50", versus 40,960 parallel banks — the reason
    // softmax lives on the buffer die.
    let heads_in_flight = 96u64 * 50;
    assert_eq!(heads_in_flight, 4_800);
    let banks = u64::from(HbmConfig::hbm3_8hi().geometry.total_banks()) * 40;
    assert_eq!(banks, 40_960);
    assert!(banks > 8 * heads_in_flight);
}

#[test]
fn claim_s32_hypothetical_5tb_dgx_slo_batch() {
    // §1/§3.2: even a hypothetical DGX with 5,000 GB of memory stays in
    // the tens — not 256 — under a 50 ms SLO ("the maximum batch size can
    // be merely 27"). Our baseline iterates slightly faster than the
    // paper's (see EXPERIMENTS.md, Fig. 14 note), so the admitted batch
    // lands a bit above 27; the claim is the order of magnitude.
    let m = ModelConfig::gpt3_175b();
    let mut sys = System::dgx_base();
    sys.gpu.capacity_bytes = 5_000 * GIB;
    let b = attacc::sim::experiment::max_feasible_batch(&sys, &m, 2048, 2048, Some(0.050));
    assert!(
        (14..=48).contains(&b),
        "batch under 50 ms SLO = {b} (paper: ~27)"
    );
    // The capacity itself would have admitted far more.
    let unconstrained =
        attacc::sim::experiment::max_feasible_batch(&sys, &m, 2048, 2048, None);
    assert!(unconstrained > 4 * b, "capacity batch = {unconstrained}");
}

#[test]
fn claim_s62_ff_split_ratio_is_bandwidth_proportional() {
    // §6.2: the GEMM throughput ratio between xPUs and AttAccs for the
    // feedforward block is BW_xPU : BW_AttAcc (both bandwidth-bound).
    let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    let gpu = System::dgx_base().gpu;
    let share = attacc::serving::ff_coprocess_speedup(
        gpu.device.mem_bw,
        dev.external_bandwidth(),
    );
    // Equal HBM complements → a ~50/50 split.
    assert!((share - 0.5).abs() < 0.01, "xPU share = {share}");
}

#[test]
fn claim_s76_2xdgx_attention_bandwidth_deficit() {
    // §7.6: 2×DGX's aggregate bandwidth for attention is "4.5× smaller
    // than that of DGX+AttAccs".
    let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    let two_dgx_bw = System::two_dgx().gpu.device.mem_bw;
    let ratio = dev.internal_bandwidth() / two_dgx_bw;
    assert!((ratio - 4.5).abs() < 0.3, "ratio = {ratio}");
}

#[test]
fn claim_s22_gen_dominates_for_gpt2_class_too() {
    // §2.2: "This trend can also be confirmed by prior works studying
    // GPT-2" — the Gen share holds for small models as well.
    let m = ModelConfig::gpt2_xl();
    let f = attacc::sim::experiment::gen_stage_fraction(&System::dgx_base(), &m, 128, 128);
    assert!(f > 0.9, "GPT-2 Gen share = {f}");
}

#[test]
fn claim_abstract_end_to_end_bands() {
    // Abstract: "improving performance and energy efficiency of running a
    // 175B TbGM by up to 2.81× and 2.67×" (same-capacity comparison, i.e.
    // vs DGX_Large; the per-model §7.2 table refines this). Our GPT-3
    // vs-Large speedup and energy ratio must land in that neighborhood.
    let m = ModelConfig::gpt3_175b();
    let run = |sys: System| {
        let b = attacc::sim::experiment::max_feasible_batch(&sys, &m, 2048, 2048, None).max(1);
        attacc::sim::experiment::analytic_serve(
            &SystemExecutor::new(sys, &m),
            2048,
            2048,
            1_000,
            b,
        )
    };
    let (t_large, e_large) = run(System::dgx_large());
    let (t_pim, e_pim) = run(System::dgx_attacc_full());
    let speedup = t_large / t_pim;
    let energy_ratio = e_large / e_pim;
    assert!((1.8..=3.6).contains(&speedup), "speedup = {speedup}");
    assert!((1.3..=3.4).contains(&energy_ratio), "energy = {energy_ratio}");
}

#[test]
fn claim_s51_gemv_unit_shape() {
    // §5.1: "Each GEMV unit consists of 16 FP16 multipliers, 16 FP16
    // adders" clocked at 666 MHz from tCCDS.
    let unit = attacc::pim::GemvUnit::new();
    assert_eq!(unit.lanes, 16);
    let t = HbmConfig::hbm3_8hi().timing;
    assert!((1e6 / t.t_ccd_s as f64 - 666.7).abs() < 1.0);
    // And the softmax unit: 256 FP32 lanes at 1.3 GHz with a 512 KB buffer.
    let sm = SoftmaxUnit::new();
    assert_eq!(sm.lanes, 256);
    assert!((sm.clock_ghz - 1.3).abs() < 1e-9);
    assert_eq!(sm.buffer_bytes, 512 * 1024);
}

#[test]
fn claim_gen_stage_executes_one_token_per_request() {
    // §2.2: each Gen stage produces exactly one token per request; our
    // scheduler obeys by construction — assert through a run.
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_base(), &m);
    let wl = attacc::serving::Workload::fixed(6, 64, 5);
    let r = attacc::serving::simulate(
        &exec,
        &wl.requests(),
        &attacc::serving::SchedulerConfig::unlimited(3),
    );
    assert_eq!(r.tokens_generated, 30);
    // 6 requests × 4 Gen stages each (Sum yields the first token), shared
    // across a batch of 3 → at least 8 iterations.
    assert!(r.gen_iterations >= 8);
}
