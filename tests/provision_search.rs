//! Acceptance contract of the surrogate-pruned provisioning search
//! (ISSUE 9): on the golden grid the pruned search must return the same
//! optimum as exhaustive exact search — byte-for-byte, at 1, 2 and 8
//! sweep threads — while never exactly simulating more than 10% of the
//! grid, and every shortlisted pick must carry a genuinely exact
//! re-simulation next to the surrogate's own reported error.

use attacc::provision::{
    exhaustive_search, simulate_cell, CostBook, SearchOutcome, TrafficSpec,
};
use attacc_bench::{provision_specs, provision_traffic, PROVISION_USERS};
use attacc_cluster::SloSpec;
use attacc_model::ModelConfig;
use attacc_sim::engine;
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide thread override.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn golden_outcome() -> SearchOutcome {
    attacc_bench::provision_outcome(PROVISION_USERS)
}

fn golden_traffic() -> TrafficSpec {
    provision_traffic(PROVISION_USERS)
}

#[test]
fn pruned_search_matches_exhaustive_on_golden_grid() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let outcome = golden_outcome();
    let truth = exhaustive_search(
        &ModelConfig::gpt3_175b(),
        &provision_specs(),
        &golden_traffic(),
        SloSpec::chatbot(),
        &CostBook::paper_defaults(),
    );
    engine::set_threads(0); // restore env-resolved default

    let (best_idx, best) = outcome.best.as_ref().expect("search found a feasible fleet");
    let (truth_idx, truth_cell) = truth.as_ref().expect("exhaustive found a feasible fleet");
    assert_eq!(best_idx, truth_idx, "pruned search picked a different grid cell");
    assert_eq!(
        best, truth_cell,
        "pruned search's exact bill differs from the exhaustive one"
    );
    // The search may only have *skipped* cells, never approximated one:
    // the optimum's exact cost is bitwise what the ground truth computed.
    assert_eq!(
        best.cost.usd_per_mtok.to_bits(),
        truth_cell.cost.usd_per_mtok.to_bits()
    );
}

#[test]
fn search_prunes_at_least_ninety_percent_of_the_grid() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let outcome = golden_outcome();
    assert!(
        outcome.pruned_frac >= 0.90,
        "only pruned {:.1}% of the {}-cell grid",
        outcome.pruned_frac * 100.0,
        outcome.grid_size
    );
    let exact_sims = outcome.trained + outcome.verified;
    assert_eq!(
        outcome.pruned_frac,
        1.0 - exact_sims as f64 / outcome.grid_size as f64,
        "pruned_frac must account for every exact simulation"
    );
}

#[test]
fn search_outcome_is_byte_identical_across_thread_counts() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = golden_outcome();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let parallel = golden_outcome();
        assert_eq!(
            serial, parallel,
            "search outcome changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn shortlist_picks_are_exactly_reverified_and_error_is_reported() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let outcome = golden_outcome();
    assert!(!outcome.picks.is_empty(), "search verified no candidates");
    assert_eq!(outcome.verified, outcome.picks.len());

    // Each pick's "exact" field really is the exact simulation: rerun
    // the cell from scratch and demand the identical result.
    let model = ModelConfig::gpt3_175b();
    let specs = provision_specs();
    let traffic = golden_traffic();
    let book = CostBook::paper_defaults();
    for p in outcome.picks.iter().take(3) {
        let fresh = simulate_cell(&model, &specs[p.grid_index], &traffic, SloSpec::chatbot(), &book);
        assert_eq!(
            fresh, p.exact,
            "pick at grid index {} is not an exact re-simulation",
            p.grid_index
        );
    }

    // The reported surrogate error is consistent and within the pinned
    // envelope for the golden grid (MAE ≈ 0.7 $/Mtok as of this pin).
    assert!(outcome.surrogate_mae_usd_per_mtok.is_finite());
    assert!(outcome.surrogate_max_err_usd_per_mtok >= outcome.surrogate_mae_usd_per_mtok);
    assert!(
        outcome.surrogate_mae_usd_per_mtok <= 2.0,
        "surrogate MAE {} $/Mtok exceeds the pinned 2.0 envelope",
        outcome.surrogate_mae_usd_per_mtok
    );
}
