//! End-to-end integration tests asserting the paper's headline shapes
//! (§7.2–§7.4): who wins, by roughly what factor, and where the trends
//! point.

use attacc::model::ModelConfig;
use attacc::sim::experiment::{analytic_serve, end_to_end, max_feasible_batch};
use attacc::sim::{System, SystemExecutor};

const SEQS: [(u64, u64); 2] = [(512, 512), (2048, 2048)];
const N: u64 = 1_000;

fn rows() -> Vec<attacc::sim::experiment::EndToEndRow> {
    end_to_end(&ModelConfig::evaluation_models(), &SEQS, N)
}

fn time_of<'a>(
    rows: &'a [attacc::sim::experiment::EndToEndRow],
    model: &str,
    seq: (u64, u64),
    system: &str,
) -> &'a attacc::sim::experiment::EndToEndRow {
    rows.iter()
        .find(|r| r.model == model && (r.l_in, r.l_out) == seq && r.system == system)
        .unwrap_or_else(|| panic!("missing row {model} {seq:?} {system}"))
}

#[test]
fn system_ordering_holds_everywhere() {
    // DGX_Base ≥ DGX_Large ≥ naïve DGX+AttAccs ≥ +HL pipe ≥ full.
    let rows = rows();
    for model in ["LLAMA 65B", "GPT-3 175B", "MT-NLG 530B"] {
        for seq in SEQS {
            let t = |sys: &str| time_of(&rows, model, seq, sys).time_s;
            let base = t("DGX_Base");
            let large = t("DGX_Large");
            let naive = t("DGX+AttAccs");
            let hl = t("DGX+AttAccs +HL pipe");
            let full = t("DGX+AttAccs +HL pipe +FF co-proc");
            assert!(large <= base, "{model} {seq:?}");
            assert!(naive < large, "{model} {seq:?}");
            assert!(hl <= naive, "{model} {seq:?}");
            assert!(full <= hl, "{model} {seq:?}");
        }
    }
}

#[test]
fn headline_speedups_are_in_the_papers_band() {
    // §7.2: the full platform achieves up to 3.49×/3.91×/5.93× over
    // DGX_Base (LLAMA/GPT-3/MT-NLG) and up to 2.81×/2.39×/2.01× over
    // DGX_Large at (2048, 2048). Our reproduction must land in the same
    // bands (generous ±40%).
    let rows = rows();
    let cases = [
        ("LLAMA 65B", 3.49, 2.81),
        ("GPT-3 175B", 3.91, 2.39),
        ("MT-NLG 530B", 5.93, 2.01),
    ];
    for (model, vs_base, vs_large) in cases {
        let t = |sys: &str| time_of(&rows, model, (2048, 2048), sys).time_s;
        let full = t("DGX+AttAccs +HL pipe +FF co-proc");
        let got_base = t("DGX_Base") / full;
        let got_large = t("DGX_Large") / full;
        assert!(
            got_base > vs_base * 0.6 && got_base < vs_base * 1.4,
            "{model}: vs base {got_base:.2} (paper {vs_base})"
        );
        assert!(
            got_large > vs_large * 0.6 && got_large < vs_large * 1.5,
            "{model}: vs large {got_large:.2} (paper {vs_large})"
        );
    }
}

#[test]
fn speedup_grows_with_sequence_length() {
    // §7.2: "The performance improvement rate of DGX+AttAccs tends to be
    // higher when the sequence length is longer."
    let rows = rows();
    for model in ["LLAMA 65B", "GPT-3 175B", "MT-NLG 530B"] {
        let ratio = |seq| {
            time_of(&rows, model, seq, "DGX_Base").time_s
                / time_of(&rows, model, seq, "DGX+AttAccs +HL pipe +FF co-proc").time_s
        };
        assert!(
            ratio((2048, 2048)) > ratio((512, 512)),
            "{model}: {} vs {}",
            ratio((2048, 2048)),
            ratio((512, 512))
        );
    }
}

#[test]
fn bigger_models_gain_more_from_extra_capacity() {
    // §7.2: for large models the win comes mostly from batch-size
    // (capacity) relief — so DGX_Large helps MT-NLG far more than LLAMA.
    let rows = rows();
    let gain = |model| {
        time_of(&rows, model, (2048, 2048), "DGX_Base").time_s
            / time_of(&rows, model, (2048, 2048), "DGX_Large").time_s
    };
    assert!(gain("MT-NLG 530B") > gain("GPT-3 175B"));
    assert!(gain("GPT-3 175B") > gain("LLAMA 65B"));
}

#[test]
fn energy_reductions_match_paper_bands() {
    // §7.4: up to 66.7%/65.9%/66.8% saved vs DGX_Base and 62.6%/48.8%/
    // 29.1% vs DGX_Large for LLAMA/GPT-3/MT-NLG.
    let rows = rows();
    let cases = [
        ("LLAMA 65B", 66.7, 62.6),
        ("GPT-3 175B", 65.9, 48.8),
        ("MT-NLG 530B", 66.8, 29.1),
    ];
    for (model, vs_base_pct, vs_large_pct) in cases {
        let e = |sys: &str| time_of(&rows, model, (2048, 2048), sys).energy_per_token_j;
        let full = e("DGX+AttAccs +HL pipe +FF co-proc");
        let saved_base = 100.0 * (1.0 - full / e("DGX_Base"));
        let saved_large = 100.0 * (1.0 - full / e("DGX_Large"));
        assert!(
            (saved_base - vs_base_pct).abs() < 15.0,
            "{model}: saved {saved_base:.1}% vs paper {vs_base_pct}%"
        );
        assert!(
            (saved_large - vs_large_pct).abs() < 18.0,
            "{model}: saved {saved_large:.1}% vs paper {vs_large_pct}%"
        );
    }
}

#[test]
fn capacity_relief_matches_paper_ratios() {
    // §7.2: KV capacity grows 2.3× for LLAMA and 5.4× for MT-NLG moving
    // from DGX_Base to DGX+AttAccs.
    let llama = ModelConfig::llama_65b();
    let mt = ModelConfig::mt_nlg_530b();
    let ratio = |m: &ModelConfig| {
        System::dgx_attacc_full().kv_capacity_bytes(m) as f64
            / System::dgx_base().kv_capacity_bytes(m) as f64
    };
    assert!((ratio(&llama) - 2.3).abs() < 0.2, "LLAMA ratio {}", ratio(&llama));
    assert!((ratio(&mt) - 5.4).abs() < 0.4, "MT-NLG ratio {}", ratio(&mt));
}

#[test]
fn int8_sensitivity_matches_fig16() {
    // §7.5 / Fig. 16: with INT8, the gap to DGX_Base shrinks (the baseline
    // gets the bigger capacity relief) while speedups stay substantial —
    // the paper reports up to 3.47× over Base and 2.59× over Large.
    use attacc::model::DataType;
    let fp16 = ModelConfig::gpt3_175b();
    let int8 = fp16.with_dtype(DataType::Int8);
    let speedup = |m: &ModelConfig, against: System| {
        let b = max_feasible_batch(&against, m, 2048, 2048, None).max(1);
        let t_sys =
            analytic_serve(&SystemExecutor::new(against.clone(), m), 2048, 2048, N, b).0;
        let bp = max_feasible_batch(&System::dgx_attacc_full(), m, 2048, 2048, None).max(1);
        let t_pim = analytic_serve(
            &SystemExecutor::new(System::dgx_attacc_full(), m),
            2048,
            2048,
            N,
            bp,
        )
        .0;
        t_sys / t_pim
    };
    let int8_base = speedup(&int8, System::dgx_base());
    let int8_large = speedup(&int8, System::dgx_large());
    assert!(
        int8_base < speedup(&fp16, System::dgx_base()),
        "quantization relieves the baseline's capacity pressure"
    );
    assert!(
        (int8_base - 3.47).abs() < 1.4,
        "INT8 vs Base {int8_base:.2} (paper 3.47)"
    );
    assert!(
        (int8_large - 2.59).abs() < 1.0,
        "INT8 vs Large {int8_large:.2} (paper 2.59)"
    );
}
