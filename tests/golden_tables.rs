//! Golden-figure regression suite.
//!
//! Each test renders one evaluation driver from `attacc-bench` and diffs
//! the result against a checked-in snapshot under `tests/golden/`. The
//! snapshots are the same tables recorded in `results_all_tables.txt`, so
//! any timing-model change that moves a published number fails here with
//! a line-level diff.
//!
//! To regenerate after an intentional model change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_tables
//! ```

use attacc_sim::Table;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn render(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        // Matches the figure binaries: one blank line between tables.
        writeln!(out, "{t}").expect("string write cannot fail");
    }
    out
}

/// Diffs `tables` against `tests/golden/<name>.txt`, or rewrites the
/// snapshot when `BLESS=1` is set.
fn check(name: &str, tables: &[Table]) {
    let rendered = render(tables);
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with `BLESS=1 cargo test --test golden_tables`",
            path.display()
        )
    });
    if rendered != expected {
        let diff: String = expected
            .lines()
            .zip(rendered.lines())
            .enumerate()
            .filter(|(_, (e, r))| e != r)
            .take(10)
            .map(|(i, (e, r))| format!("  line {}:\n    golden: {e}\n    actual: {r}\n", i + 1))
            .collect();
        panic!(
            "{name} diverged from golden snapshot {} \
             (golden {} lines, actual {} lines):\n{diff}\
             if the change is intentional, re-bless with \
             `BLESS=1 cargo test --test golden_tables`",
            path.display(),
            expected.lines().count(),
            rendered.lines().count(),
        );
    }
}

#[test]
fn golden_table1() {
    check("table1", &[attacc_bench::table1()]);
}

#[test]
fn golden_capacity() {
    check("capacity", &[attacc_bench::capacity_table()]);
}

#[test]
fn golden_fig02() {
    check("fig02", &[attacc_bench::fig02()]);
}

#[test]
fn golden_fig03() {
    check("fig03", &[attacc_bench::fig03()]);
}

#[test]
fn golden_fig04() {
    check("fig04", &attacc_bench::fig04());
}

#[test]
fn golden_fig07() {
    check("fig07", &[attacc_bench::fig07()]);
}

#[test]
fn golden_fig13() {
    check("fig13", &[attacc_bench::fig13(attacc_bench::N_REQUESTS)]);
}

#[test]
fn golden_fig14() {
    check("fig14", &[attacc_bench::fig14()]);
}

#[test]
fn golden_fig16() {
    check("fig16", &[attacc_bench::fig16(attacc_bench::N_REQUESTS)]);
}

#[test]
fn golden_area() {
    check("area", &[attacc_bench::area_table()]);
}

#[test]
fn golden_validation() {
    check("validation", &[attacc_bench::validation_table()]);
}

#[test]
fn golden_ablation_gqa() {
    check("ablation_gqa", &[attacc_bench::ablation_gqa()]);
}

#[test]
fn golden_cluster() {
    // Smaller than the binary's CLUSTER_REQUESTS: the snapshot pins the
    // event loop, routing and percentile math, not steady-state numbers.
    check(
        "cluster",
        &[
            attacc_bench::cluster_frontier(48),
            attacc_bench::cluster_load_shapes(48),
        ],
    );
}

#[test]
fn golden_chaos() {
    // Smaller than the binary's CHAOS_REQUESTS: the snapshot pins fault
    // injection, recovery dispatch and retry/hedge bookkeeping, not the
    // headline goodput numbers (tests/chaos_resilience.rs pins those).
    check(
        "chaos",
        &[
            attacc_bench::chaos_goodput_frontier(48),
            attacc_bench::chaos_routing_matrix(48),
        ],
    );
}

#[test]
fn golden_chaos_fleet() {
    // Smaller than the binary's CHAOS_FLEET_REQUESTS: the snapshot pins
    // fleet-level fault injection, autoscaler-aware replacement, warm KV
    // re-shipping, degradation bookkeeping and the cost-book billing,
    // not the headline frontier numbers
    // (tests/chaos_fleet_resilience.rs pins those).
    check(
        "chaos_fleet",
        &[
            attacc_bench::chaos_fleet_frontier(48),
            attacc_bench::chaos_fleet_redundancy(48),
        ],
    );
}

#[test]
fn golden_autoscale() {
    // Smaller than the binary's AUTOSCALE_SESSIONS but above the KV
    // stride-sampling threshold (1024): the snapshot pins pool routing,
    // scale decisions, cold-start accounting and node-second billing,
    // not the headline 10^5-session numbers.
    check("autoscale", &[attacc_bench::autoscale_frontier(2048)]);
}

#[test]
fn golden_trace() {
    // Pins the graph-to-trace compiler (instruction counts, policy
    // maintenance) and the timing executor's attribution down to the
    // rendered digits, for the paper workloads and both new trace-only
    // workloads (sliding window, paged KV).
    check(
        "trace",
        &[
            attacc_bench::trace_paper_table(),
            attacc_bench::trace_workloads_table(),
            attacc_bench::trace_opcode_table(),
        ],
    );
}

#[test]
fn golden_integrity() {
    // Smaller than the binary's INTEGRITY_REQUESTS: the snapshot pins
    // token-fate sampling, the analytic SDC/DUE ladder and the ECC
    // command-engine overheads (tests/data_integrity.rs pins the
    // zero-SDC acceptance contract).
    check(
        "integrity",
        &[attacc_bench::integrity_frontier(48), attacc_bench::ecc_overhead_table()],
    );
}

#[test]
fn golden_provision() {
    // Pins the cost book (CapEx/wattage derivation from the power/area
    // tables) and the surrogate-pruned search end to end: training-set
    // choice, GBT splits, shortlist ranking and the exact re-verified
    // bills, down to the rendered digits.
    check(
        "provision",
        &[
            attacc_bench::provision_cost_book_table(),
            attacc_bench::provision_frontier(attacc_bench::PROVISION_USERS),
        ],
    );
}
