//! Property tests for the memoized timing cache.
//!
//! The cache must be *transparent*: for any query, the cached path
//! returns exactly (bitwise) what a fresh recompute returns, and clearing
//! the cache between queries never changes any result.

use attacc_sim::engine::TimingCache;
use attacc_sim::{System, SystemExecutor};
use attacc_serving::StageExecutor;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that clear the process-wide cache.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

fn systems() -> Vec<System> {
    vec![System::dgx_base(), System::dgx_attacc_full()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_gen_breakdown_is_bitwise_equal_to_recompute(
        groups in prop::collection::vec((1u64..=64, 16u64..=4096), 1..4),
        sys_idx in 0usize..2,
    ) {
        let _guard = CACHE_LOCK.lock().expect("cache lock");
        let model = attacc_model::ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(systems()[sys_idx].clone(), &model);
        let cached = exec.gen_stage_detail(&groups);
        let direct = exec.gen_stage_detail_uncached(&groups);
        prop_assert_eq!(cached, direct);
        // A second (guaranteed-hit) lookup returns the same value again.
        prop_assert_eq!(exec.gen_stage_detail(&groups), direct);
    }

    #[test]
    fn cached_sum_cost_is_bitwise_equal_to_recompute(
        batch in 1u64..=64,
        l_in in 16u64..=4096,
        sys_idx in 0usize..2,
    ) {
        let _guard = CACHE_LOCK.lock().expect("cache lock");
        let model = attacc_model::ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(systems()[sys_idx].clone(), &model);
        let cached = exec.sum_stage(batch, l_in);
        let direct = exec.sum_stage_uncached(batch, l_in);
        prop_assert_eq!(cached, direct);
    }

    #[test]
    fn clearing_the_cache_never_changes_results(
        groups in prop::collection::vec((1u64..=32, 16u64..=2048), 1..3),
    ) {
        let _guard = CACHE_LOCK.lock().expect("cache lock");
        let model = attacc_model::ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(System::dgx_attacc_full(), &model);
        let warm = exec.gen_stage_detail(&groups);
        TimingCache::global().clear();
        let cold = exec.gen_stage_detail(&groups);
        prop_assert_eq!(warm, cold);
    }
}
