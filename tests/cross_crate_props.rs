//! Cross-crate property tests: invariants that must hold for any batch
//! shape, sequence length or SLO across the composed system stack.

use attacc::model::ModelConfig;
use attacc::serving::{max_batch_under_slo, StageExecutor};
use attacc::sim::experiment::max_feasible_batch;
use attacc::sim::{System, SystemExecutor};
use proptest::prelude::*;

fn gpt3() -> ModelConfig {
    ModelConfig::gpt3_175b()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gen-iteration latency is monotone non-decreasing in batch size on
    /// every platform (the assumption behind the SLO binary search).
    #[test]
    fn latency_monotone_in_batch(l in 64u64..4096, b in 1u64..128) {
        let m = gpt3();
        for system in [
            System::dgx_base(),
            System::dgx_attacc_full(),
            System::two_dgx(),
            System::dgx_cpu(),
        ] {
            let exec = SystemExecutor::new(system, &m);
            let t1 = exec.gen_stage(&[(b, l)]).latency_s;
            let t2 = exec.gen_stage(&[(b + 1, l)]).latency_s;
            prop_assert!(t2 >= t1 * 0.999, "b={b} l={l}: {t1} -> {t2}");
        }
    }

    /// Latency is monotone in context length.
    #[test]
    fn latency_monotone_in_context(l in 64u64..4000, b in 1u64..64) {
        let m = gpt3();
        let exec = SystemExecutor::new(System::dgx_attacc_full(), &m);
        let t1 = exec.gen_stage(&[(b, l)]).latency_s;
        let t2 = exec.gen_stage(&[(b, l + 64)]).latency_s;
        prop_assert!(t2 >= t1 * 0.999);
    }

    /// The PIM platform never loses to the baseline on a Gen iteration.
    #[test]
    fn pim_never_loses_gen_iterations(l in 128u64..4096, b in 1u64..128) {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m).gen_stage(&[(b, l)]);
        let pim = SystemExecutor::new(System::dgx_attacc_full(), &m).gen_stage(&[(b, l)]);
        prop_assert!(pim.latency_s <= base.latency_s * 1.001);
        prop_assert!(pim.energy_j <= base.energy_j * 1.05);
    }

    /// The SLO search returns a batch whose latency honors the SLO, and a
    /// one-larger batch that violates it (unless capacity-capped).
    #[test]
    fn slo_search_is_tight(slo_ms in 10.0f64..200.0, l in 512u64..4096) {
        let m = gpt3();
        let exec = SystemExecutor::new(System::dgx_base(), &m);
        let slo = slo_ms * 1e-3;
        let b = max_batch_under_slo(&exec, slo, l, 512);
        if b > 0 {
            prop_assert!(exec.gen_stage(&[(b, l)]).latency_s <= slo);
        }
        if b < 512 {
            prop_assert!(exec.gen_stage(&[(b + 1, l)]).latency_s > slo);
        }
    }

    /// Feasible batch is monotone: looser SLOs and bigger systems admit at
    /// least as many requests.
    #[test]
    fn feasible_batch_monotone(lout in 128u64..2048) {
        let m = gpt3();
        let tight = max_feasible_batch(&System::dgx_base(), &m, 2048, lout, Some(0.030));
        let loose = max_feasible_batch(&System::dgx_base(), &m, 2048, lout, Some(0.070));
        let unlimited = max_feasible_batch(&System::dgx_base(), &m, 2048, lout, None);
        prop_assert!(tight <= loose && loose <= unlimited);
        let large = max_feasible_batch(&System::dgx_large(), &m, 2048, lout, None);
        prop_assert!(unlimited <= large);
    }

    /// Splitting a uniform batch into two context groups never changes the
    /// cost by more than the head-distribution rounding.
    #[test]
    fn group_splitting_is_consistent(l in 256u64..3000, b in 4u64..64) {
        let m = gpt3();
        let exec = SystemExecutor::new(System::dgx_attacc_full(), &m);
        let whole = exec.gen_stage(&[(b, l)]).latency_s;
        let split = exec.gen_stage(&[(b / 2, l), (b - b / 2, l)]).latency_s;
        prop_assert!((whole - split).abs() / whole < 0.15, "{whole} vs {split}");
    }

    /// Energy and latency scale sublinearly when doubling the batch on the
    /// baseline (weights amortize), but attention-dominated regimes stay
    /// close to linear.
    #[test]
    fn batching_amortizes_weights(b in 1u64..64) {
        let m = gpt3();
        let exec = SystemExecutor::new(System::dgx_base(), &m);
        let one = exec.gen_stage(&[(b, 1024)]);
        let two = exec.gen_stage(&[(2 * b, 1024)]);
        prop_assert!(two.latency_s < 2.0 * one.latency_s);
        prop_assert!(two.energy_j < 2.0 * one.energy_j);
    }
}
