//! Failure injection and degenerate-condition tests for the serving layer
//! driving real system executors.

use attacc::model::{KvCacheSpec, ModelConfig, Request};
use attacc::serving::{
    simulate, simulate_open_loop, simulate_with_policy, AdmissionPolicy, ArrivalWorkload,
    SchedulerConfig, StageCost, StageExecutor, Workload,
};
use attacc::sim::{System, SystemExecutor};

/// An adversarial executor: zero-cost Sum stages and wildly varying Gen
/// costs (including zero). The scheduler must still conserve tokens and
/// terminate.
struct Adversarial;

impl StageExecutor for Adversarial {
    fn sum_stage(&self, _batch: u64, _l_in: u64) -> StageCost {
        StageCost::default()
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        // Latency oscillates between 0 and large depending on parity.
        let latency_s = if n.is_multiple_of(2) { 0.0 } else { 10.0 };
        StageCost {
            latency_s,
            energy_j: 0.0,
        }
    }
}

#[test]
fn scheduler_survives_zero_and_spiky_costs() {
    let wl = Workload::uniform_random(30, 8, (1, 9), 77);
    let r = simulate(&Adversarial, &wl.requests(), &SchedulerConfig::unlimited(7));
    assert_eq!(r.tokens_generated, wl.total_output_tokens());
    assert_eq!(r.requests_completed, 30);
    assert!(r.total_time_s.is_finite());
}

#[test]
fn open_loop_survives_bursts_on_a_real_system() {
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_attacc_full(), &m);
    let wl = ArrivalWorkload::bursty(120, 2.0, 20.0, 5.0, 0.2, 256, (16, 64), 99);
    let spec = KvCacheSpec::of(&m);
    let cfg = SchedulerConfig::with_capacity(
        32,
        System::dgx_attacc_full().kv_capacity_bytes(&m),
        spec.bytes_per_token,
    );
    let r = simulate_open_loop(&exec, &wl, &cfg);
    assert_eq!(r.completed, 120);
    assert!(r.queue_wait.p99_s >= r.queue_wait.p50_s);
    assert!(r.ttft.max_s >= r.ttft.p99_s);
}

#[test]
fn single_slot_batch_still_drains_everything() {
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_base(), &m);
    let wl = Workload::fixed(5, 32, 6);
    let r = simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(1));
    assert_eq!(r.tokens_generated, 30);
    // Strictly serial: iterations = Σ (l_out − 1).
    assert_eq!(r.gen_iterations, 5 * 5);
}

#[test]
fn oversized_request_is_skipped_without_livelock() {
    // First request can never fit; capacity admits the rest one at a time.
    let reqs = vec![
        Request::new(0, 1_000, 1_000), // needs 2000 tokens of KV
        Request::new(1, 8, 4),
        Request::new(2, 8, 4),
    ];
    let cfg = SchedulerConfig::with_capacity(4, 100 * 100, 100); // 100 tokens
    let exec = Adversarial;
    let r = simulate(&exec, &reqs, &cfg);
    // FCFS blocks behind the giant: nothing runs — but we must terminate.
    assert_eq!(r.requests_completed, 0);
    // SJF admits the small ones around it.
    let r2 = simulate_with_policy(&exec, &reqs, &cfg, AdmissionPolicy::ShortestJobFirst);
    assert_eq!(r2.requests_completed, 2, "small requests served");
}

#[test]
fn policies_agree_on_uniform_workloads() {
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_base(), &m);
    let wl = Workload::fixed(12, 64, 8);
    let cfg = SchedulerConfig::unlimited(4);
    let fcfs = simulate_with_policy(&exec, &wl.requests(), &cfg, AdmissionPolicy::Fcfs);
    let sjf =
        simulate_with_policy(&exec, &wl.requests(), &cfg, AdmissionPolicy::ShortestJobFirst);
    assert_eq!(fcfs.tokens_generated, sjf.tokens_generated);
    assert!((fcfs.total_time_s - sjf.total_time_s).abs() / fcfs.total_time_s < 1e-9);
}

#[test]
fn trace_roundtrip_preserves_open_loop_results() {
    let m = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_base(), &m);
    let wl = ArrivalWorkload::poisson(40, 3.0, 128, (8, 32), 7);
    let replayed =
        attacc::serving::parse_trace(&attacc::serving::format_trace(&wl)).expect("roundtrip");
    let cfg = SchedulerConfig::unlimited(8);
    let a = simulate_open_loop(&exec, &wl, &cfg);
    let b = simulate_open_loop(&exec, &replayed, &cfg);
    assert_eq!(a.completed, b.completed);
    assert!((a.makespan_s - b.makespan_s).abs() < 1e-4);
}
