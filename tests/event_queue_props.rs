//! Property tests pinning the time-wheel event queue to a reference
//! binary-heap model.
//!
//! The cluster/chaos simulators' determinism contract rests on the
//! event queue popping in exactly the `(time, kind rank, sequence)`
//! order a binary heap over the same comparator would produce — the
//! time-wheel internals (near/far blocks, occupancy bitmaps, the sorted
//! overflow level, cursor clamping of past pushes) must never leak into
//! the pop sequence. These tests replay seeded push/pop interleavings
//! against an independent reference model and demand an identical
//! trace, including rank ties at equal times (fault transitions must
//! keep running before work).

use attacc::cluster::{splitmix64, Event, EventKind, EventQueue};
use attacc::model::Request;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The tie-break rank the queue documents: fault transitions first,
/// then arrivals, deliveries, timers, node wake-ups, and scale ticks
/// last (reimplemented here so the test cannot accidentally share code
/// with the queue).
fn rank(kind: &EventKind) -> u16 {
    match kind {
        EventKind::NodeDown { .. } => 0,
        EventKind::NodeUp { .. } => 1,
        EventKind::Slowdown { .. } => 2,
        EventKind::LinkFactor { .. } => 3,
        EventKind::Arrival { .. } => 4,
        EventKind::Deliver { .. } => 5,
        EventKind::Timer { .. } => 6,
        EventKind::NodeReady { .. } => 7,
        EventKind::ScaleTick => 8,
    }
}

/// Reference model key: a min-heap over `(time, rank, seq)` via
/// `Reverse`, with `total_cmp` float ordering like the real queue.
#[derive(Debug, PartialEq)]
struct Key {
    time_s: f64,
    rank: u16,
    seq: u64,
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_s
            .total_cmp(&other.time_s)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A deterministic stream of pseudo-random `u64`s.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }
}

/// One of the nine event kinds, chosen by `pick` (covers every rank,
/// including the payload-carrying arrival/delivery kinds).
fn kind_of(pick: u64) -> EventKind {
    match pick % 9 {
        0 => EventKind::NodeDown { node: (pick / 8 % 5) as usize },
        1 => EventKind::NodeUp { node: (pick / 8 % 5) as usize },
        2 => EventKind::Slowdown { node: (pick / 8 % 5) as usize, factor: 2.0 },
        3 => EventKind::LinkFactor { factor: 1.5 },
        4 => EventKind::Arrival { request: Request::new(pick, 64, 8) },
        5 => EventKind::Deliver {
            node: (pick / 8 % 5) as usize,
            arrival_s: 0.0,
            request: Request::new(pick, 64, 8),
            warm: pick % 16 >= 8,
        },
        6 => EventKind::Timer {
            id: pick / 8,
            attempt: (pick % 3) as u32,
            hedge: pick.is_multiple_of(2),
        },
        7 => EventKind::NodeReady { node: (pick / 8 % 5) as usize },
        _ => EventKind::ScaleTick,
    }
}

/// Drives the real queue and the reference heap through the same
/// seeded interleaving of pushes and pops, asserting every popped
/// event matches the model bit-for-bit on `(time, rank, seq)`.
///
/// `time_of` maps a random draw to a (possibly past or far-future)
/// virtual time offset from the latest pop, exercising whichever wheel
/// levels the caller aims at.
fn check_interleaving(seed: u64, steps: u32, time_of: impl Fn(&mut Rng, f64) -> f64) {
    let mut rng = Rng(seed);
    let mut q = EventQueue::new();
    let mut model: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    let mut next_seq = 0u64;
    let mut now = 0.0f64;

    let drain = |q: &mut EventQueue, model: &mut BinaryHeap<Reverse<Key>>, now: &mut f64| {
        let peek = q.next_time();
        let want_peek = model.peek().map(|Reverse(k)| k.time_s);
        assert_eq!(peek, want_peek, "next_time diverged from reference heap (seed {seed})");
        let ev: Event = q.pop().expect("model non-empty implies queue non-empty");
        let Reverse(want) = model.pop().expect("queue non-empty implies model non-empty");
        let got = Key { time_s: ev.time_s, rank: rank(&ev.kind), seq: ev.seq };
        assert_eq!(got, want, "pop diverged from reference heap (seed {seed})");
        *now = now.max(ev.time_s);
    };

    for _ in 0..steps {
        let r = rng.next();
        // ~2/3 pushes, ~1/3 pops, so the population grows and both
        // wheels stay occupied.
        if r % 3 < 2 || model.is_empty() {
            let t = time_of(&mut rng, now);
            let kind = kind_of(rng.next());
            model.push(Reverse(Key { time_s: t, rank: rank(&kind), seq: next_seq }));
            next_seq += 1;
            q.push(t, kind);
            assert_eq!(q.len(), model.len());
        } else {
            drain(&mut q, &mut model, &mut now);
        }
    }
    while !model.is_empty() {
        drain(&mut q, &mut model, &mut now);
    }
    assert!(q.is_empty(), "queue must drain exactly when the model does");
}

#[test]
fn pop_order_matches_reference_heap_on_decode_scale_times() {
    // Times in the few-milliseconds-per-round regime the simulators
    // live in: most events land in the near wheel.
    for seed in 0..32 {
        check_interleaving(seed, 500, |rng, now| {
            now + 1e-3 * (rng.next() % 50) as f64
        });
    }
}

#[test]
fn pop_order_matches_reference_heap_across_wheel_horizons() {
    // A mix of near-slot, far-block, and beyond-horizon times (the
    // overflow level starts 262 s past the cursor) plus occasional
    // pushes *behind* the current time, which the wheel clamps to its
    // cursor slot — the reference heap has no such clamp, so any
    // ordering effect of clamping would show up here.
    for seed in 0..32 {
        check_interleaving(seed, 400, |rng, now| match rng.next() % 8 {
            0..=2 => now + 1e-3 * (rng.next() % 30) as f64,
            3..=4 => now + 0.5 + 0.037 * (rng.next() % 100) as f64,
            5 => now + 300.0 + (rng.next() % 1000) as f64,
            6 => (now - 0.25).max(0.0),
            _ => now,
        });
    }
}

#[test]
fn rank_ties_resolve_fault_first_in_insertion_order() {
    // Many events at *identical* times: order must fall back to kind
    // rank (faults before arrivals before deliveries before timers
    // before wake-ups) and then to insertion order, exactly like the
    // reference heap.
    for seed in 0..16 {
        check_interleaving(seed, 300, |rng, now| {
            now + 1e-3 * (rng.next() % 3) as f64
        });
    }
}
