//! Smoke tests over the figure regenerators: every table renders and the
//! spot values the paper states in prose come out right.

use attacc::sim::experiment::gen_stage_fraction;
use attacc::sim::{System, Table};
use attacc::model::ModelConfig;

#[test]
fn fig2_prose_cells() {
    // Fig. 2's corner values quoted in §2.2: (32,32) > 96%, (2048,128)
    // > 85%, (2,2) = 50%.
    let sys = System::dgx_base();
    let m = ModelConfig::gpt3_175b();
    assert!(gen_stage_fraction(&sys, &m, 32, 32) > 0.93);
    assert!(gen_stage_fraction(&sys, &m, 2048, 128) > 0.85);
    let half = gen_stage_fraction(&sys, &m, 2, 2);
    assert!((half - 0.5).abs() < 0.03, "(2,2) = {half}");
}

#[test]
fn fig2_monotone_in_both_axes() {
    let sys = System::dgx_base();
    let m = ModelConfig::gpt3_175b();
    // More output tokens → more Gen share; longer prompts → less.
    assert!(
        gen_stage_fraction(&sys, &m, 128, 512) > gen_stage_fraction(&sys, &m, 128, 32)
    );
    assert!(
        gen_stage_fraction(&sys, &m, 2048, 32) < gen_stage_fraction(&sys, &m, 32, 32)
    );
}

#[test]
fn table_helpers_roundtrip() {
    let mut t = Table::new("x", &["a"]);
    t.push_row(vec![Table::num(4.5678)]);
    assert!(t.to_string().contains("4.57"));
}

#[test]
fn validation_anchor_holds() {
    let r = attacc::sim::validate::validate_opt66b();
    assert!(r.ratio > 0.4 && r.ratio < 1.2, "ratio = {}", r.ratio);
}
