//! Determinism guarantees of the sweep engine.
//!
//! The whole point of `SweepRunner`'s merge-by-index design is that
//! parallelism is *unobservable*: any thread count produces byte-identical
//! tables, and a warm timing cache produces byte-identical results to a
//! cold one. These tests pin both properties on real figure drivers.

use attacc_sim::engine::{self, TimingCache};
use attacc_sim::sweep::{grid_table, speedup_grid};
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide thread override or the
/// global timing cache.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn render_drivers() -> String {
    let model = attacc_model::ModelConfig::gpt3_175b();
    let lens = [128u64, 512, 2048];
    let grid = grid_table("grid", &lens, &speedup_grid(&model, &lens, 500));
    let fig13 = attacc_bench::fig13(1_000);
    let fig04 = attacc_bench::fig04()
        .iter()
        .map(ToString::to_string)
        .collect::<String>();
    format!("{grid}{fig13}{fig04}")
}

#[test]
fn parallel_sweeps_are_byte_identical_to_serial() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    engine::set_threads(1);
    let serial = render_drivers();
    for threads in [2, 3, 8] {
        engine::set_threads(threads);
        let parallel = render_drivers();
        assert_eq!(
            serial, parallel,
            "sweep output changed between 1 and {threads} threads"
        );
    }
    engine::set_threads(0); // restore env-resolved default
}

#[test]
fn warm_cache_runs_equal_cold_cache_runs() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let cache = TimingCache::global();
    cache.clear();
    cache.reset_stats();
    let cold = render_drivers();
    let after_cold = cache.stats();
    assert!(
        !cache.is_empty(),
        "figure drivers should populate the timing cache"
    );
    let warm = render_drivers();
    let after_warm = cache.stats();
    assert_eq!(cold, warm, "cache hits changed figure output");
    assert!(
        after_warm.hits > after_cold.hits,
        "second run should hit the cache ({after_cold:?} -> {after_warm:?})"
    );
}
