//! Property tests pinning the fleet autoscaler's contracts.
//!
//! Over random pool bounds, signals, timing knobs, router policies and
//! workloads, every fleet run must honor four invariants:
//!
//! 1. **Bounds**: applied scale actions stay inside `[min, max]` and
//!    move exactly one node at a time.
//! 2. **Cold start**: a node activated by scale-out never receives work
//!    before its warm-up completes (the simulator also hard-asserts this
//!    on every routing decision).
//! 3. **Hysteresis**: a pool never reverses direction within the
//!    cooldown window — no scale-out immediately chased by a scale-in.
//! 4. **Determinism**: the whole `FleetReport` is a pure function of the
//!    inputs — two runs over the same executors agree on every field.

use attacc::cluster::{
    simulate_fleet, AutoscalerConfig, FleetConfig, InterconnectModel, PoolConfig, PoolKind,
    RouterPolicy, ScaleDirection, ScaleSignal, SloSpec, StageExecutor,
};
use attacc::serving::{ArrivalWorkload, SchedulerConfig, StageCost};
use proptest::prelude::*;

/// Irrational-valued costs so any accumulation-order divergence between
/// the two determinism runs shows up in the float bits.
struct Toy;
impl StageExecutor for Toy {
    fn sum_stage(&self, b: u64, l: u64) -> StageCost {
        StageCost { latency_s: 1e-4 * ((b * l) as f64).sqrt(), energy_j: 0.37 * b as f64 }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        let work: f64 = groups.iter().map(|&(c, l)| (c * l) as f64).sum();
        StageCost { latency_s: 2e-4 + 1e-7 * work.sqrt() * n as f64, energy_j: 0.011 * work }
    }
}

fn policy_of(i: usize) -> RouterPolicy {
    match i % 4 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        2 => RouterPolicy::LeastKvBytes,
        _ => RouterPolicy::SessionAffinity { spill_backlog: 2 },
    }
}

fn signal_of(i: usize) -> ScaleSignal {
    match i % 3 {
        0 => ScaleSignal::QueueDepth { out_per_node: 3.0, in_per_node: 1.0 },
        1 => ScaleSignal::KvOccupancy { out_frac: 0.25, in_frac: 0.02 },
        _ => ScaleSignal::PredictedLoad {
            alpha: 0.4,
            out_rate_per_node: 120.0,
            in_rate_per_node: 20.0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn autoscaled_fleets_respect_bounds_cold_starts_and_hysteresis(
        seed in 0u64..1_000_000,
        n_req in 30usize..90,
        rate in 50.0f64..1500.0,
        disagg_pick in 0usize..2,
        pol in 0usize..4,
        sig in 0usize..3,
        d_min in 1usize..3,
        d_init_extra in 0usize..2,
        d_max_extra in 1usize..4,
        interval_ms in 2.0f64..20.0,
        cold_mult in 0.0f64..3.0,
        cool_mult in 0.0f64..4.0,
    ) {
        let decode = PoolConfig::elastic(
            d_min,
            d_min + d_init_extra,
            d_min + d_init_extra + d_max_extra,
        );
        let disagg = disagg_pick == 1;
        let prefill = disagg.then(|| PoolConfig::elastic(1, 1, 1 + d_max_extra));
        let interval_s = interval_ms * 1e-3;
        let cold_start_s = cold_mult * interval_s;
        let cooldown_s = cool_mult * interval_s;
        // A KV signal needs a byte-per-token cost model to observe
        // occupancy; capacity is generous enough that nothing abandons.
        let scheduler = if sig % 3 == 1 {
            SchedulerConfig::with_capacity(6, 4096, 1)
        } else {
            SchedulerConfig::unlimited(6)
        };
        let cfg = FleetConfig {
            prefill,
            decode,
            scheduler,
            policy: policy_of(pol),
            interconnect: InterconnectModel::ethernet_400g().with_kv_bytes_per_token(64),
            slo: SloSpec::chatbot(),
            autoscaler: Some(AutoscalerConfig {
                interval_s,
                cold_start_s,
                cooldown_s,
                signal: signal_of(sig),
            }),
        };
        let w = ArrivalWorkload::poisson(n_req as u64, rate, 48, (1, 24), seed);

        let p_max = prefill.map_or(0, |p| p.max_nodes);
        let toys: Vec<Toy> = (0..p_max + decode.max_nodes).map(|_| Toy).collect();
        let refs: Vec<&dyn StageExecutor> = toys.iter().map(|t| t as &dyn StageExecutor).collect();
        let r = simulate_fleet(&refs[..p_max], &refs[p_max..], &w, &cfg);

        // 4. Determinism: a second run agrees on every field.
        let again = simulate_fleet(&refs[..p_max], &refs[p_max..], &w, &cfg);
        prop_assert!(r == again, "fleet report is not a pure function of its inputs");

        prop_assert_eq!(r.cluster.completed, n_req as u64);
        prop_assert_eq!(r.cluster.abandoned, 0);

        // 1. Bounds, one node at a time, cold start stamped on the event.
        for e in &r.scale_events {
            let bounds = match e.pool {
                PoolKind::Prefill => prefill.expect("prefill event implies a prefill pool"),
                PoolKind::Decode => decode,
            };
            prop_assert!(
                e.from_nodes >= bounds.min_nodes && e.from_nodes <= bounds.max_nodes,
                "from_nodes {} outside [{}, {}]", e.from_nodes, bounds.min_nodes, bounds.max_nodes
            );
            prop_assert!(
                e.to_nodes >= bounds.min_nodes && e.to_nodes <= bounds.max_nodes,
                "to_nodes {} outside [{}, {}]", e.to_nodes, bounds.min_nodes, bounds.max_nodes
            );
            match e.direction {
                ScaleDirection::Out => {
                    prop_assert_eq!(e.to_nodes, e.from_nodes + 1);
                    prop_assert!((e.warm_at_s - (e.t_s + cold_start_s)).abs() < 1e-12);
                }
                ScaleDirection::In => prop_assert_eq!(e.to_nodes, e.from_nodes - 1),
            }
        }

        // 2. Cold start: a node whose first activation came from a
        // scale-out is never routed to before its warm-up completes.
        let initially_active = |g: usize| {
            if g < p_max {
                g < prefill.map_or(0, |p| p.initial_nodes)
            } else {
                g - p_max < decode.initial_nodes
            }
        };
        for g in 0..p_max + decode.max_nodes {
            if initially_active(g) {
                continue;
            }
            let first_out = r
                .scale_events
                .iter()
                .find(|e| e.node == g && e.direction == ScaleDirection::Out);
            match (first_out, r.first_route_s[g]) {
                (Some(e), Some(t)) => prop_assert!(
                    t >= e.warm_at_s - 1e-12,
                    "node {g} routed at {t} before warm-up at {}", e.warm_at_s
                ),
                (None, Some(t)) => prop_assert!(
                    false,
                    "node {g} was never activated yet routed at {t}"
                ),
                _ => {}
            }
        }

        // 3. Hysteresis: per pool, no direction reversal inside the
        // cooldown window.
        for kind in [PoolKind::Prefill, PoolKind::Decode] {
            let mut last: Option<(ScaleDirection, f64)> = None;
            for e in r.scale_events.iter().filter(|e| e.pool == kind) {
                if let Some((dir, t)) = last {
                    if dir != e.direction {
                        prop_assert!(
                            e.t_s - t >= cooldown_s - 1e-12,
                            "{:?} pool reversed {:?}->{:?} after {} s < cooldown {} s",
                            kind, dir, e.direction, e.t_s - t, cooldown_s
                        );
                    }
                }
                last = Some((e.direction, e.t_s));
            }
        }

        // Node-seconds are bounded by renting every node for the whole
        // run, and a fleet that scaled in must bill strictly less.
        let total = (p_max + decode.max_nodes) as f64;
        prop_assert!(r.node_seconds >= 0.0);
        prop_assert!(r.node_seconds <= total * r.cluster.makespan_s + 1e-9);
    }
}
