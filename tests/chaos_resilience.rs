//! Acceptance tests for the chaos subsystem's headline claims.
//!
//! The `chaos_sim` sweep is the evidence that the fault model and the
//! resilience policies interact the way the docs say they do. These
//! tests pin the two claims on the exact cells the binary prints (at a
//! reduced request count):
//!
//! 1. with resilience **off**, goodput under failure degrades
//!    monotonically as the per-node crash MTBF shrinks, and
//! 2. the full retry + hedge + health + KV-migration stack wins a
//!    measurable share of it back at every failure rate.

use attacc::chaos::ResiliencePolicy;
use attacc::cluster::RouterPolicy;
use attacc::model::ModelConfig;
use attacc_bench::{chaos_cell, chaos_policies};

/// The binary's own `CHAOS_REQUESTS`: the claims are about the shipped
/// sweep, so the test runs the exact cells `chaos_sim` prints.
const N: u64 = attacc_bench::CHAOS_REQUESTS;

fn goodput(policy: ResiliencePolicy, mtbf_s: f64) -> f64 {
    let model = ModelConfig::gpt3_175b();
    chaos_cell(&model, 4, RouterPolicy::JoinShortestQueue, policy, mtbf_s, N)
        .goodput_tokens_per_s
}

/// The MTBF axis the `chaos_sim` frontier sweeps.
const MTBFS: [f64; 4] = [f64::INFINITY, 60.0, 20.0, 6.0];

#[test]
fn goodput_degrades_monotonically_without_resilience() {
    let ladder = chaos_policies();
    let blind: Vec<f64> = MTBFS.iter().map(|&m| goodput(ladder[0], m)).collect();
    for pair in blind.windows(2) {
        assert!(
            pair[0] >= pair[1],
            "blind goodput must not improve as MTBF shrinks: {blind:?}"
        );
    }
    assert!(
        blind[0] > blind[MTBFS.len() - 1] * 1.05,
        "the deepest failure rate must cost noticeably more than none: {blind:?}"
    );
}

#[test]
fn retry_and_hedging_win_goodput_back() {
    let ladder = chaos_policies();
    let (off, full) = (ladder[0], ladder[3]);
    for &mtbf in &MTBFS[1..] {
        let blind = goodput(off, mtbf);
        let resilient = goodput(full, mtbf);
        assert!(
            resilient > blind,
            "full stack must beat blind at MTBF {mtbf}: {resilient} vs {blind}"
        );
    }
    // And at the deepest point the recovery is substantial, not noise.
    let deepest = MTBFS[MTBFS.len() - 1];
    let (blind, resilient) = (goodput(off, deepest), goodput(full, deepest));
    assert!(
        resilient > blind * 1.05,
        "recovery at MTBF {deepest} should be well over 5 %: {resilient} vs {blind}"
    );
}
