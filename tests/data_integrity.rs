//! Acceptance contract of the data-integrity layer.
//!
//! Three properties hold by construction and are pinned here:
//!
//! 1. **Inert when off.** With faults disabled the hooked datapaths are
//!    bit-exact with the unhooked ones — protection never perturbs a
//!    healthy run.
//! 2. **Zero silent corruption under single-bit faults.** Across a
//!    seeded ensemble of ≥ 100 single-bit faults injected anywhere in
//!    the covered attention dataflow, the ECC+ABFT+guard pipeline's
//!    final output is bit-identical to the fault-free output — while the
//!    unprotected pipeline visibly corrupts a healthy fraction of them.
//! 3. **The protection ladder strictly reduces SDC.** At any fixed
//!    non-zero BER the analytic per-token silent-corruption rate drops
//!    strictly at each rung: raw cells → SEC-DED → SEC-DED+ABFT+guards.

use attacc::chaos::{
    simulate_integrity, ChaosConfig, CorruptionSpec, FaultSchedule, FaultSpec, Protection,
    ResiliencePolicy,
};
use attacc::cluster::{ClusterConfig, RouterPolicy};
use attacc::hbm::integrity::{word_error_probs, EccConfig, EccOutcome};
use attacc::pim::integrity::{sample_single_fault, FaultPlan, ProtectedAttention};
use attacc::pim::numeric::Matrix;
use attacc::pim::{GemvMode, GemvUnit};
use attacc::serving::{ArrivalWorkload, SchedulerConfig, StageCost, StageExecutor};

/// Dense, zero-free head operands (all values exact binary16 multiples):
/// a zero cell would make low-bit flips both sub-detectable and
/// sub-observable, which real KV data does not exhibit.
fn head(d: usize, l: usize) -> (Vec<f32>, Matrix, Matrix) {
    let q: Vec<f32> = (0..d).map(|i| ((i * 7 + 3) % 11) as f32 * 0.125 - 0.5625).collect();
    let kt = Matrix::from_vec(
        d,
        l,
        (0..d * l).map(|i| ((i * 13 + 5) % 17) as f32 * 0.0625 - 0.53125).collect(),
    );
    let v = Matrix::from_vec(
        l,
        d,
        (0..l * d).map(|i| ((i * 11 + 7) % 17) as f32 * 0.0625 - 0.53125).collect(),
    );
    (q, kt, v)
}

#[test]
fn faults_disabled_is_bit_exact_with_unhooked_pipeline() {
    let (q, kt, v) = head(32, 96);
    for p in [ProtectedAttention::exact(), ProtectedAttention::fp16()] {
        // The unprotected path with an empty plan IS the raw pipeline;
        // the protected path must agree float-for-float.
        let raw = p.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
        let (protected, report) = p.attention(&q, &kt, &v, &FaultPlan::none());
        assert_eq!(protected, raw, "protection perturbed a healthy run");
        assert!(!report.any_detected(), "false positive on a healthy run");
        assert_eq!(report.recomputed_cols, 0);
    }
    // And the hook plumbing itself is inert at the unit level.
    let unit = GemvUnit::new();
    for mode in [GemvMode::AdderTree, GemvMode::Accumulator] {
        assert_eq!(
            unit.gemv_with_faults(mode, &q, &kt, &FaultPlan::none()),
            unit.gemv(mode, &q, &kt),
        );
    }
}

#[test]
fn single_bit_fault_ensemble_has_zero_silent_corruptions() {
    const SEEDS: u64 = 128; // ≥ 100 per the acceptance contract
    let (q, kt, v) = head(32, 64);
    let p = ProtectedAttention::exact();
    let baseline = p.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
    let mut detected = 0u64;
    let mut unprotected_corrupt = 0u64;
    for seed in 0..SEEDS {
        let flip = sample_single_fault(seed, 32, 64);
        let plan = FaultPlan::single(flip);
        let (out, report) = p.attention(&q, &kt, &v, &plan);
        assert_eq!(
            out, baseline,
            "seed {seed} ({flip:?}): silent corruption leaked through ECC+ABFT+guards"
        );
        detected += u64::from(report.any_detected());
        if p.attention_unprotected(&q, &kt, &v, &plan) != baseline {
            unprotected_corrupt += 1;
        }
    }
    // The ensemble must be materially faulty, not vacuously clean: most
    // draws corrupt the unprotected pipeline, and the mitigations fire.
    assert!(
        unprotected_corrupt * 2 > SEEDS,
        "only {unprotected_corrupt}/{SEEDS} faults were visible unprotected"
    );
    assert!(detected * 2 > SEEDS, "only {detected}/{SEEDS} faults detected");
}

#[test]
fn ecc_corrects_what_abft_would_otherwise_catch() {
    // Cross-layer coverage: a single flipped bit in a stored word is
    // corrected by SEC-DED before the dataflow ever sees it; the same
    // fault injected past ECC (as a cell read) is repaired by ABFT.
    assert_eq!(EccConfig::hbm3().decode(1), EccOutcome::Corrected);
    let (q, kt, v) = head(32, 64);
    let p = ProtectedAttention::exact();
    let baseline = p.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
    let plan = FaultPlan::single(attacc::pim::integrity::BitFlip {
        stage: attacc::pim::integrity::Stage::Score,
        site: attacc::pim::integrity::Site::Cell { r: 7, c: 21, bit: 11 },
    });
    let (out, report) = p.attention(&q, &kt, &v, &plan);
    assert_eq!(out, baseline);
    assert!(report.score_detected > 0);
}

struct Toy;
impl StageExecutor for Toy {
    fn sum_stage(&self, b: u64, l: u64) -> StageCost {
        StageCost { latency_s: 1e-6 * (b * l) as f64, energy_j: 0.0 }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        StageCost { latency_s: 1e-4 * n as f64, energy_j: 0.0 }
    }
}

#[test]
fn protection_ladder_strictly_reduces_sdc_at_every_ber() {
    let workload = ArrivalWorkload::poisson(40, 80.0, 64, (4, 16), 1);
    let cluster = ClusterConfig {
        policy: RouterPolicy::JoinShortestQueue,
        ..ClusterConfig::pass_through(SchedulerConfig::unlimited(8))
    };
    let cfg = ChaosConfig { cluster, policy: ResiliencePolicy::retrying(), seed: 7 };
    let faults = FaultSchedule::generate(2, 0.5, &FaultSpec::crashes_only(4.0, 0.2), 42);
    let nodes: Vec<&dyn StageExecutor> = vec![&Toy, &Toy];
    for ber in [1e-9, 1e-8, 1e-7] {
        let rates: Vec<f64> = Protection::ladder()
            .into_iter()
            .map(|protection| {
                let spec =
                    CorruptionSpec { ber, words_per_token: 1 << 20, protection, seed: 11 };
                simulate_integrity(&nodes, &workload, &cfg, &faults, &spec).analytic_sdc_rate
            })
            .collect();
        assert!(
            rates[0] > rates[1] && rates[1] > rates[2],
            "SDC ladder not strictly decreasing at BER {ber:e}: {rates:?}"
        );
        // The analytic rates come straight from the closed-form word
        // model; cross-check the ECC rung against it.
        let token = word_error_probs(ber, 128, Some(&EccConfig::hbm3())).over_words(1 << 20);
        assert!((rates[1] - token.silent).abs() <= 1e-15 * token.silent.max(1e-300));
    }
}
