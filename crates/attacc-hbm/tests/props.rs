//! Property-based tests for the DRAM substrate.

use attacc_hbm::engine::{simulate_stream, stream_time_estimate_ps};
use attacc_hbm::{
    AccessDepth, BankAddr, ChannelEngine, DramCommand, HbmConfig, StreamSpec, TimingParams,
};
use proptest::prelude::*;

fn cfg() -> HbmConfig {
    HbmConfig::hbm3_8hi()
}

proptest! {
    /// Successive reads to one bank are never closer than tCCDL, and never
    /// earlier than tRCD after its activate — regardless of request order.
    #[test]
    fn per_bank_read_cadence_holds(gaps in prop::collection::vec(0u64..5_000, 1..40)) {
        let cfg = cfg();
        let t = TimingParams::hbm3();
        let mut eng = ChannelEngine::new(&cfg);
        let b = BankAddr::from_index(&cfg.geometry, 0);
        let act = eng
            .issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::Bank, 0)
            .unwrap();
        let mut prev: Option<u64> = None;
        let mut at = 0;
        for g in gaps {
            at += g;
            let s = eng
                .issue(DramCommand::Read { bank: b }, AccessDepth::Bank, at)
                .unwrap();
            prop_assert!(s >= act + t.t_rcd);
            if let Some(p) = prev {
                prop_assert!(s >= p + t.t_ccd_l, "reads {p} and {s} too close");
            }
            prev = Some(s);
        }
    }

    /// The channel bus never carries two external beats within tCCDS.
    #[test]
    fn channel_bus_cadence_holds(order in prop::collection::vec(0u32..8, 2..60)) {
        let cfg = cfg();
        let t = TimingParams::hbm3();
        let mut eng = ChannelEngine::new(&cfg);
        // Open row 0 in bank 0 of every group.
        for g in 0..cfg.geometry.bank_groups_per_pch() {
            let b = BankAddr::from_index(&cfg.geometry, g * cfg.geometry.banks_per_group);
            eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::External, 0)
                .unwrap();
        }
        let mut starts = Vec::new();
        for g in order {
            let b = BankAddr::from_index(&cfg.geometry, g * cfg.geometry.banks_per_group);
            starts.push(
                eng.issue(DramCommand::Read { bank: b }, AccessDepth::External, 0)
                    .unwrap(),
            );
        }
        starts.sort_unstable();
        for w in starts.windows(2) {
            prop_assert!(w[1] >= w[0] + t.t_ccd_s, "bus beats {w:?} overlap");
        }
    }

    /// The closed-form stream estimate stays within 15% of the event-driven
    /// simulation across sizes, skews and concurrency caps.
    #[test]
    fn stream_estimate_matches_engine(
        kib_per_bank in 1u64..256,
        active in 1u32..33,
        populated in 1usize..33,
    ) {
        let cfg = cfg();
        let mut bytes = vec![0u64; 32];
        for b in bytes.iter_mut().take(populated) {
            *b = kib_per_bank * 1024;
        }
        let spec = StreamSpec { bytes_per_bank: bytes, max_active: active, depth: AccessDepth::Bank };
        let sim = simulate_stream(&cfg, &spec).elapsed_ps as f64;
        let est = stream_time_estimate_ps(&cfg, &spec) as f64;
        prop_assert!(sim > 0.0);
        let err = (sim - est).abs() / sim;
        prop_assert!(err < 0.15, "sim={sim} est={est} err={err}");
    }

    /// Streaming time is monotone non-increasing in the concurrency cap.
    #[test]
    fn stream_time_monotone_in_tokens(kib in 1u64..128) {
        let cfg = cfg();
        let mut prev = u64::MAX;
        for active in [1u32, 2, 6, 12, 18, 32] {
            let spec = StreamSpec::uniform(&cfg.geometry, kib * 1024 * 32, active);
            let t = simulate_stream(&cfg, &spec).elapsed_ps;
            prop_assert!(t <= prev, "active={active}: {t} > {prev}");
            prev = t;
        }
    }

    /// Energy is linear in the streamed volume (same spec shape).
    #[test]
    fn stream_energy_linear(kib in 1u64..64) {
        let cfg = cfg();
        let one = simulate_stream(&cfg, &StreamSpec::uniform(&cfg.geometry, kib * 1024 * 32, 18));
        let two = simulate_stream(&cfg, &StreamSpec::uniform(&cfg.geometry, 2 * kib * 1024 * 32, 18));
        let ratio = two.energy.total_pj() / one.energy.total_pj();
        prop_assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    /// PIM MAC_AB reads exactly the currently open banks; ACT_AB honors
    /// its bank cap and never double-activates.
    #[test]
    fn pim_commands_respect_bank_state(cap in 1u32..33, rounds in 1u64..8) {
        use attacc_hbm::PimCommand;
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let act = eng.issue_pim(PimCommand::ActAb { row: 0 }, cap, 0).unwrap();
        prop_assert_eq!(act.commands, u64::from(cap.min(32)));
        let mut t = act.done_ps;
        for _ in 0..rounds {
            let mac = eng.issue_pim(PimCommand::MacAb, cap, t).unwrap();
            prop_assert_eq!(mac.commands, u64::from(cap.min(32)));
            prop_assert!(mac.done_ps >= t + cfg.timing.t_ccd_l);
            t = mac.done_ps;
        }
        // A second ActAb can only open the remaining banks.
        let second = eng.issue_pim(PimCommand::ActAb { row: 1 }, 32, t).unwrap();
        prop_assert_eq!(second.commands, u64::from(32 - cap.min(32)));
        prop_assert_eq!(
            eng.stats().column_commands(),
            rounds * u64::from(cap.min(32))
        );
    }

    /// Reads never exceed what the data volume requires, and activates
    /// never exceed one per row touched.
    #[test]
    fn stream_command_counts_bounded(total_kib in 1u64..512, active in 1u32..33) {
        let cfg = cfg();
        let spec = StreamSpec::uniform(&cfg.geometry, total_kib * 1024, active);
        let out = simulate_stream(&cfg, &spec);
        let beats: u64 = spec
            .bytes_per_bank
            .iter()
            .map(|b| b.div_ceil(cfg.geometry.prefetch_bytes))
            .sum();
        prop_assert_eq!(out.reads, beats);
        let max_rows: u64 = spec
            .bytes_per_bank
            .iter()
            .map(|b| b.div_ceil(cfg.geometry.row_bytes).max(u64::from(*b > 0)))
            .sum();
        prop_assert!(out.activates <= max_rows + 32);
    }
}
