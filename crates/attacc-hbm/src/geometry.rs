//! Physical organization of an HBM stack.
//!
//! The geometry reconciles the paper's load-bearing totals (see DESIGN.md
//! §3.1): an 8-Hi stack exposes 32 external pseudo-channels, each reaching
//! 2 ranks × 4 bank groups × 4 banks = 32 banks, for 1,024 banks per stack
//! (40 stacks → the paper's 40,960 parallel banks).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Organization of one HBM stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StackGeometry {
    /// Number of DRAM dies (the buffer die is separate).
    pub dram_dies: u32,
    /// Number of ranks (groups of dies sharing a channel).
    pub ranks: u32,
    /// External pseudo-channels per stack.
    pub pseudo_channels: u32,
    /// Bank groups per pseudo-channel per rank.
    pub bank_groups_per_rank: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Total external data pins.
    pub pins: u32,
    /// DRAM row (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Bytes delivered by one column (read) command.
    pub prefetch_bytes: u64,
    /// Total stack capacity in bytes.
    pub capacity_bytes: u64,
}

impl StackGeometry {
    /// The paper's 8-Hi HBM3 organization (16 GB).
    #[must_use]
    pub fn hbm3_8hi() -> StackGeometry {
        StackGeometry {
            dram_dies: 8,
            ranks: 2,
            pseudo_channels: 32,
            bank_groups_per_rank: 4,
            banks_per_group: 4,
            pins: 1024,
            row_bytes: 1024,
            prefetch_bytes: 32,
            capacity_bytes: 16 * (1 << 30),
        }
    }

    /// Bank groups reachable from one pseudo-channel (both ranks).
    #[must_use]
    pub const fn bank_groups_per_pch(&self) -> u32 {
        self.ranks * self.bank_groups_per_rank
    }

    /// Banks reachable from one pseudo-channel (both ranks).
    #[must_use]
    pub const fn banks_per_pch(&self) -> u32 {
        self.bank_groups_per_pch() * self.banks_per_group
    }

    /// Total banks in the stack.
    #[must_use]
    pub const fn total_banks(&self) -> u32 {
        self.pseudo_channels * self.banks_per_pch()
    }

    /// Total bank groups in the stack.
    #[must_use]
    pub const fn total_bank_groups(&self) -> u32 {
        self.pseudo_channels * self.bank_groups_per_pch()
    }

    /// Capacity of a single bank in bytes.
    #[must_use]
    pub const fn bank_capacity_bytes(&self) -> u64 {
        self.capacity_bytes / self.total_banks() as u64
    }

    /// Rows per bank.
    #[must_use]
    pub const fn rows_per_bank(&self) -> u64 {
        self.bank_capacity_bytes() / self.row_bytes
    }

    /// Data pins per pseudo-channel.
    #[must_use]
    pub const fn pins_per_pch(&self) -> u32 {
        self.pins / self.pseudo_channels
    }
}

/// Address of a bank within one pseudo-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BankAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank-group index within the rank.
    pub group: u32,
    /// Bank index within the group.
    pub bank: u32,
}

impl BankAddr {
    /// Flattens to a dense index in `0..banks_per_pch()`.
    #[must_use]
    pub const fn index(&self, geom: &StackGeometry) -> u32 {
        (self.rank * geom.bank_groups_per_rank + self.group) * geom.banks_per_group + self.bank
    }

    /// Inverse of [`BankAddr::index`].
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn from_index(geom: &StackGeometry, index: u32) -> BankAddr {
        assert!(index < geom.banks_per_pch(), "bank index out of range");
        let bank = index % geom.banks_per_group;
        let g = index / geom.banks_per_group;
        let group = g % geom.bank_groups_per_rank;
        let rank = g / geom.bank_groups_per_rank;
        BankAddr { rank, group, bank }
    }

    /// Dense bank-group index in `0..bank_groups_per_pch()`.
    #[must_use]
    pub const fn group_index(&self, geom: &StackGeometry) -> u32 {
        self.rank * geom.bank_groups_per_rank + self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let g = StackGeometry::hbm3_8hi();
        assert_eq!(g.banks_per_pch(), 32);
        assert_eq!(g.total_banks(), 1024);
        // §4.1: "the total number of banks operating in parallel for
        // AttAcc_bank with 40 8-Hi HBM3 is 40,960".
        assert_eq!(40 * g.total_banks(), 40_960);
        assert_eq!(g.bank_groups_per_pch(), 8);
        assert_eq!(g.pins_per_pch(), 32);
    }

    #[test]
    fn bank_capacity_is_plausible() {
        let g = StackGeometry::hbm3_8hi();
        assert_eq!(g.bank_capacity_bytes(), 16 * (1 << 30) / 1024);
        assert_eq!(g.rows_per_bank(), 16 * 1024);
    }

    #[test]
    fn bank_addr_roundtrip() {
        let g = StackGeometry::hbm3_8hi();
        for i in 0..g.banks_per_pch() {
            let a = BankAddr::from_index(&g, i);
            assert_eq!(a.index(&g), i);
            assert!(a.rank < g.ranks);
            assert!(a.group < g.bank_groups_per_rank);
            assert!(a.bank < g.banks_per_group);
        }
    }

    #[test]
    fn group_index_is_dense() {
        let g = StackGeometry::hbm3_8hi();
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.banks_per_pch() {
            let a = BankAddr::from_index(&g, i);
            seen.insert(a.group_index(&g));
        }
        assert_eq!(seen.len() as u32, g.bank_groups_per_pch());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let g = StackGeometry::hbm3_8hi();
        let _ = BankAddr::from_index(&g, g.banks_per_pch());
    }
}
