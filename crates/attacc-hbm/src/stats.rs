//! Channel statistics: per-bank command counts, row-buffer behaviour and
//! bus occupancy.

use crate::StackGeometry;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Counters one [`crate::ChannelEngine`] maintains while executing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ChannelStats {
    /// Activates per bank (dense bank index).
    pub acts: Vec<u64>,
    /// Reads per bank.
    pub reads: Vec<u64>,
    /// Writes per bank.
    pub writes: Vec<u64>,
    /// Precharges per bank.
    pub precharges: Vec<u64>,
    /// Column commands that hit an already-open row (no activate needed
    /// since the previous column command).
    pub row_hits: u64,
    /// Column commands that required a fresh activate.
    pub row_opens: u64,
    /// Picoseconds the shared channel bus carried data.
    pub bus_busy_ps: u64,
}

impl ChannelStats {
    /// Zeroed counters for a channel of `geom`.
    #[must_use]
    pub fn new(geom: &StackGeometry) -> ChannelStats {
        let n = geom.banks_per_pch() as usize;
        ChannelStats {
            acts: vec![0; n],
            reads: vec![0; n],
            writes: vec![0; n],
            precharges: vec![0; n],
            row_hits: 0,
            row_opens: 0,
            bus_busy_ps: 0,
        }
    }

    /// Total column commands.
    #[must_use]
    pub fn column_commands(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Row-buffer hit rate over column commands (0 when none issued).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_opens;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Index and read count of the most-read bank.
    #[must_use]
    pub fn busiest_bank(&self) -> (usize, u64) {
        self.reads
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .unwrap_or((0, 0))
    }

    /// Read-imbalance across banks: max/mean (1.0 = perfectly even).
    #[must_use]
    pub fn read_imbalance(&self) -> f64 {
        let total: u64 = self.reads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.reads.len() as f64;
        self.busiest_bank().1 as f64 / mean
    }

    /// Channel-bus utilization over a `window_ps` interval.
    #[must_use]
    pub fn bus_utilization(&self, window_ps: u64) -> f64 {
        if window_ps == 0 {
            0.0
        } else {
            self.bus_busy_ps as f64 / window_ps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ChannelStats {
        ChannelStats::new(&StackGeometry::hbm3_8hi())
    }

    #[test]
    fn new_stats_are_zero() {
        let s = stats();
        assert_eq!(s.column_commands(), 0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.read_imbalance(), 1.0);
        assert_eq!(s.bus_utilization(1000), 0.0);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = stats();
        s.row_hits = 30;
        s.row_opens = 10;
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn busiest_bank_and_imbalance() {
        let mut s = stats();
        s.reads[3] = 64;
        s.reads[7] = 32;
        assert_eq!(s.busiest_bank(), (3, 64));
        let mean = 96.0 / 32.0;
        assert!((s.read_imbalance() - 64.0 / mean).abs() < 1e-12);
    }

    #[test]
    fn bus_utilization_bounds() {
        let mut s = stats();
        s.bus_busy_ps = 500;
        assert!((s.bus_utilization(1000) - 0.5).abs() < 1e-12);
        assert_eq!(s.bus_utilization(0), 0.0);
    }
}
