//! HBM3 device substrate for the AttAcc simulator.
//!
//! This crate plays the role Ramulator plays in the AttAcc paper: it models
//! an 8-Hi HBM3 stack at the command level — stack geometry, DRAM timing
//! constraints (tRCD/tRP/tRAS/tRC, tCCDS/tCCDL, tFAW), an IDD7-style power
//! budget that limits how many banks may stream concurrently, and energy
//! accounting per command with a depth-aware datapath model (bank → bank
//! group → buffer die → external I/O).
//!
//! The central abstraction is [`ChannelEngine`], an event-driven per-
//! pseudo-channel command scheduler. The PIM layer (`attacc-pim`) drives it
//! with all-bank activate/MAC streams; a closed-form fast path
//! ([`engine::stream_time_estimate_ps`]) is validated against the engine by
//! tests and used inside large parameter sweeps.
//!
//! # Example
//!
//! ```
//! use attacc_hbm::{HbmConfig, StreamSpec};
//!
//! let hbm = HbmConfig::hbm3_8hi();
//! // External bandwidth of one stack: 1024 pins × 5.2 Gbps ≈ 665.6 GB/s.
//! let gbs = hbm.external_bandwidth_bytes_per_s() / 1e9;
//! assert!((gbs - 665.6).abs() < 1.0);
//!
//! // Stream 1 MiB spread over all banks of one pseudo-channel with the
//! // power-constrained concurrency of bank-level PIM.
//! let spec = StreamSpec::uniform(&hbm.geometry, 1 << 20, hbm.power.max_active_banks);
//! let t = attacc_hbm::engine::simulate_stream(&hbm, &spec);
//! assert!(t.elapsed_ps > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod command;
pub mod energy;
pub mod engine;
pub mod geometry;
pub mod integrity;
pub mod power;
pub mod stack;
pub mod stats;
pub mod timing;

pub use address::{AddressMap, Interleave, PhysicalAddr};
pub use bank::{BankPhase, BankState};
pub use command::{DramCommand, PimCommand};
pub use energy::{AccessDepth, EnergyCounter, EnergyModel};
pub use engine::{ChannelEngine, PimIssueOutcome, StreamOutcome, StreamSpec, TimingViolation};
pub use geometry::{BankAddr, StackGeometry};
pub use integrity::{
    word_error_probs, BitFaultModel, EccConfig, EccOutcome, FaultKind, IntegrityCounters,
    WordErrorProbs,
};
pub use power::PowerConstraint;
pub use stack::{simulate_stack, StackOutcome, StackStreamSpec};
pub use stats::ChannelStats;
pub use timing::TimingParams;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A complete HBM stack configuration: geometry, timing, energy constants
/// and the derived power constraint.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HbmConfig {
    /// Physical organization of the stack.
    pub geometry: StackGeometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Per-bit energy constants by datapath depth.
    pub energy: EnergyModel,
    /// IDD7-derived concurrency limits.
    pub power: PowerConstraint,
}

impl HbmConfig {
    /// The paper's 8-Hi HBM3 stack (16 GB, 5.2 Gbps/pin): the `DGX_Base`
    /// building block.
    #[must_use]
    pub fn hbm3_8hi() -> HbmConfig {
        let geometry = StackGeometry::hbm3_8hi();
        let timing = TimingParams::hbm3();
        let energy = EnergyModel::hbm3();
        let power = PowerConstraint::from_idd7(&geometry, &timing, &energy);
        HbmConfig {
            geometry,
            timing,
            energy,
            power,
        }
    }

    /// Peak power draw of one stack (watts) when every unit allowed by
    /// the IDD7 budget streams at `depth` concurrently. Convenience
    /// wrapper over [`PowerConstraint::peak_stack_power_w`] so callers
    /// holding a full config (e.g. the provisioning cost model) need not
    /// unpack its fields.
    #[must_use]
    pub fn peak_power_w(&self, depth: AccessDepth) -> f64 {
        self.power
            .peak_stack_power_w(&self.geometry, &self.timing, &self.energy, depth)
    }

    /// A double-capacity stack (32 GB): the `DGX_Large` building block.
    /// Bandwidth and timing are unchanged; only capacity doubles.
    #[must_use]
    pub fn hbm3_8hi_32gb() -> HbmConfig {
        let mut cfg = HbmConfig::hbm3_8hi();
        cfg.geometry.capacity_bytes *= 2;
        cfg
    }

    /// A projected HBM4-class stack: doubled interface width (2,048 pins
    /// over 64 pseudo-channels), 6.4 Gbps/pin, 32 GB. A what-if point for
    /// the design space, not a paper configuration.
    #[must_use]
    pub fn hbm4_projected() -> HbmConfig {
        let geometry = StackGeometry {
            pseudo_channels: 64,
            pins: 2048,
            capacity_bytes: 32 * (1 << 30),
            ..StackGeometry::hbm3_8hi()
        };
        let timing = TimingParams {
            data_rate_gbps: 6.4,
            ..TimingParams::hbm3()
        };
        let energy = EnergyModel::hbm3();
        let power = PowerConstraint::from_idd7(&geometry, &timing, &energy);
        HbmConfig {
            geometry,
            timing,
            energy,
            power,
        }
    }

    /// External (off-chip) bandwidth of the stack in bytes per second.
    #[must_use]
    pub fn external_bandwidth_bytes_per_s(&self) -> f64 {
        f64::from(self.geometry.pins) * self.timing.data_rate_gbps * 1e9 / 8.0
    }

    /// Aggregate internal bandwidth exploitable by bank-level PIM under the
    /// power constraint, in bytes per second.
    ///
    /// With the paper's parameters this is 9× the external bandwidth
    /// (18 concurrently active banks per pseudo-channel, each delivering
    /// one 32 B beat per tCCDL).
    #[must_use]
    pub fn pim_bank_bandwidth_bytes_per_s(&self) -> f64 {
        let per_bank = self.geometry.prefetch_bytes as f64 / self.timing.tccd_l_s();
        f64::from(self.power.max_active_banks) * f64::from(self.geometry.pseudo_channels) * per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep engine shares HBM configs across worker threads by
    /// reference; they must be `Send + Sync`.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn configs_are_shareable_across_threads() {
        assert_send_sync::<HbmConfig>();
    }

    #[test]
    fn stack_external_bandwidth_matches_paper() {
        let hbm = HbmConfig::hbm3_8hi();
        let gbs = hbm.external_bandwidth_bytes_per_s() / 1e9;
        assert!((gbs - 665.6).abs() < 1.0, "external = {gbs} GB/s");
        // 40 stacks ≈ the paper's 26.8 TB/s DGX figure (26.6 with exact pins).
        let dgx = 40.0 * gbs / 1000.0;
        assert!((dgx - 26.8).abs() < 0.3, "DGX = {dgx} TB/s");
    }

    #[test]
    fn pim_bank_bandwidth_is_9x_external() {
        let hbm = HbmConfig::hbm3_8hi();
        let ratio =
            hbm.pim_bank_bandwidth_bytes_per_s() / hbm.external_bandwidth_bytes_per_s();
        assert!((ratio - 9.0).abs() < 0.3, "ratio = {ratio}");
        // §7.1: 242 TB/s aggregate for 40 stacks.
        let agg = 40.0 * hbm.pim_bank_bandwidth_bytes_per_s() / 1e12;
        assert!((agg - 242.0).abs() < 8.0, "aggregate = {agg} TB/s");
    }

    #[test]
    fn large_stack_doubles_capacity_only() {
        let a = HbmConfig::hbm3_8hi();
        let b = HbmConfig::hbm3_8hi_32gb();
        assert_eq!(b.geometry.capacity_bytes, 2 * a.geometry.capacity_bytes);
        assert_eq!(
            a.external_bandwidth_bytes_per_s(),
            b.external_bandwidth_bytes_per_s()
        );
    }

    #[test]
    fn hbm4_projection_scales_both_bandwidths() {
        let h3 = HbmConfig::hbm3_8hi();
        let h4 = HbmConfig::hbm4_projected();
        // External: 2048 pins × 6.4 Gbps ≈ 1.64 TB/s (2.46× HBM3).
        let ext_ratio =
            h4.external_bandwidth_bytes_per_s() / h3.external_bandwidth_bytes_per_s();
        assert!((ext_ratio - 2.46).abs() < 0.05, "ext ratio = {ext_ratio}");
        // PIM bandwidth scales with the doubled channel count; the
        // power-derived per-channel concurrency stays put.
        let pim_ratio =
            h4.pim_bank_bandwidth_bytes_per_s() / h3.pim_bank_bandwidth_bytes_per_s();
        assert!(pim_ratio > 1.8, "pim ratio = {pim_ratio}");
        assert_eq!(h4.power.max_active_banks, h3.power.max_active_banks);
    }
}
