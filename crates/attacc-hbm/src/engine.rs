//! Event-driven per-pseudo-channel command engine.
//!
//! Two levels of fidelity are provided:
//!
//! * [`ChannelEngine`] — issue individual DRAM commands with full timing
//!   legality (tFAW, tRRD, per-bank-group tCCDL, channel-bus tCCDS) and
//!   per-command energy accounting. Used by unit tests and fine-grained
//!   PIM sequences.
//! * [`simulate_stream`] — an event-driven scheduler for the PIM streaming
//!   pattern (`PIM_ACT_AB` / `PIM_MAC_AB` loops): every participating bank
//!   repeatedly activates a row and streams it into its GEMV unit, while a
//!   power-budget token pool caps how many banks stream concurrently
//!   (§4.1: 18 of 32 per pCH at bank level). Banks without a token
//!   activate/precharge in the background, which is exactly how the paper
//!   hides row-switch latency.
//!
//! [`stream_time_estimate_ps`] is a closed-form approximation of
//! [`simulate_stream`], validated against it by property tests and used
//! inside large sweeps.

use crate::stats::ChannelStats;
use crate::{
    AccessDepth, BankAddr, BankState, DramCommand, EnergyCounter, HbmConfig, StackGeometry,
};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Error returned when a command cannot legally execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingViolation {
    /// A read or precharge targeted a bank with no open row.
    RowNotOpen {
        /// Offending bank.
        bank: BankAddr,
    },
    /// An activate targeted a bank whose row is still open.
    RowAlreadyOpen {
        /// Offending bank.
        bank: BankAddr,
    },
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingViolation::RowNotOpen { bank } => {
                write!(f, "bank {bank:?} has no open row")
            }
            TimingViolation::RowAlreadyOpen { bank } => {
                write!(f, "bank {bank:?} already has an open row")
            }
        }
    }
}

impl std::error::Error for TimingViolation {}

/// Per-pseudo-channel command engine with full timing state.
#[derive(Debug, Clone)]
pub struct ChannelEngine {
    cfg: HbmConfig,
    banks: Vec<BankState>,
    /// Earliest next column command per bank group (tCCDL).
    group_ready_ps: Vec<u64>,
    /// Earliest next column command on the shared channel bus (tCCDS).
    bus_ready_ps: u64,
    /// Recent activate start times for the tFAW window (per rank).
    act_history: Vec<VecDeque<u64>>,
    /// Earliest next activate per rank (tRRD).
    rank_act_ready_ps: Vec<u64>,
    energy: EnergyCounter,
    issued: u64,
    trace: Option<Vec<(u64, DramCommand)>>,
    trace_cap: usize,
    stats: ChannelStats,
    /// Per bank: has a column command hit the currently open row yet?
    col_since_act: Vec<bool>,
}

impl ChannelEngine {
    /// Creates an engine for one pseudo-channel of `cfg`.
    #[must_use]
    pub fn new(cfg: &HbmConfig) -> ChannelEngine {
        let g = &cfg.geometry;
        ChannelEngine {
            cfg: cfg.clone(),
            banks: vec![BankState::new(); g.banks_per_pch() as usize],
            group_ready_ps: vec![0; g.bank_groups_per_pch() as usize],
            bus_ready_ps: 0,
            act_history: vec![VecDeque::new(); g.ranks as usize],
            rank_act_ready_ps: vec![0; g.ranks as usize],
            energy: EnergyCounter::default(),
            issued: 0,
            trace: None,
            trace_cap: 0,
            stats: ChannelStats::new(&cfg.geometry),
            col_since_act: vec![false; cfg.geometry.banks_per_pch() as usize],
        }
    }

    /// Channel statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Starts recording `(start_ps, command)` pairs for the next commands,
    /// keeping at most `cap` entries (older entries are retained; the
    /// trace simply stops growing at the cap).
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Vec::with_capacity(cap.min(4096)));
        self.trace_cap = cap;
    }

    /// The recorded command trace, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&[(u64, DramCommand)]> {
        self.trace.as_deref()
    }

    fn record(&mut self, start: u64, cmd: DramCommand) {
        let cap = self.trace_cap;
        if let Some(t) = &mut self.trace {
            if t.len() < cap {
                t.push((start, cmd));
            }
        }
    }

    /// The stack configuration this engine simulates.
    #[must_use]
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }

    /// Accumulated energy of all issued commands.
    #[must_use]
    pub fn energy(&self) -> &EnergyCounter {
        &self.energy
    }

    /// Number of commands issued so far.
    #[must_use]
    pub fn issued_commands(&self) -> u64 {
        self.issued
    }

    /// State of a bank (for assertions and debugging).
    ///
    /// # Panics
    /// Panics if the address is out of range.
    #[must_use]
    pub fn bank(&self, addr: BankAddr) -> &BankState {
        &self.banks[addr.index(&self.cfg.geometry) as usize]
    }

    /// Issues `cmd` at the earliest legal time ≥ `not_before`.
    ///
    /// For reads, `depth` selects how far the data travels (and therefore
    /// which shared-bus constraints and energies apply): bank-level PIM
    /// reads pay no bus constraint; buffer/external reads serialize on the
    /// channel bus at tCCDS and on their bank group at tCCDL.
    ///
    /// Returns the command's start time.
    ///
    /// # Errors
    /// Returns [`TimingViolation`] if the command is illegal in the current
    /// bank state (e.g. read with no open row).
    pub fn issue(
        &mut self,
        cmd: DramCommand,
        depth: AccessDepth,
        not_before: u64,
    ) -> Result<u64, TimingViolation> {
        let g = self.cfg.geometry.clone();
        let t = self.cfg.timing.clone();
        let e = self.cfg.energy.clone();
        self.issued += 1;
        match cmd {
            DramCommand::Activate { bank, row } => {
                let idx = bank.index(&g) as usize;
                if self.banks[idx].phase == crate::BankPhase::Active {
                    return Err(TimingViolation::RowAlreadyOpen { bank });
                }
                let rank = bank.rank as usize;
                // tFAW: at most 4 activates per rolling window per rank.
                let faw_gate = if self.act_history[rank].len() >= 4 {
                    self.act_history[rank][self.act_history[rank].len() - 4] + t.t_faw
                } else {
                    0
                };
                let earliest = not_before
                    .max(faw_gate)
                    .max(self.rank_act_ready_ps[rank]);
                let start = self.banks[idx].activate(&t, row, earliest);
                self.rank_act_ready_ps[rank] = start + t.t_rrd;
                let hist = &mut self.act_history[rank];
                hist.push_back(start);
                if hist.len() > 8 {
                    hist.pop_front();
                }
                self.energy.activation_pj += e.act_energy_pj(g.row_bytes);
                self.stats.acts[idx] += 1;
                self.col_since_act[idx] = false;
                self.record(start, cmd);
                Ok(start)
            }
            DramCommand::Read { bank } | DramCommand::Write { bank } => {
                let is_write = matches!(cmd, DramCommand::Write { .. });
                let idx = bank.index(&g) as usize;
                if self.banks[idx].phase != crate::BankPhase::Active {
                    return Err(TimingViolation::RowNotOpen { bank });
                }
                let mut earliest = not_before;
                if depth >= AccessDepth::BankGroup {
                    let gi = bank.group_index(&g) as usize;
                    earliest = earliest.max(self.group_ready_ps[gi]);
                }
                if depth >= AccessDepth::Buffer {
                    earliest = earliest.max(self.bus_ready_ps);
                }
                let start = if is_write {
                    self.banks[idx].write(&t, earliest)
                } else {
                    self.banks[idx].read(&t, earliest)
                };
                if depth >= AccessDepth::BankGroup {
                    let gi = bank.group_index(&g) as usize;
                    self.group_ready_ps[gi] = start + t.t_ccd_l;
                }
                if depth >= AccessDepth::Buffer {
                    self.bus_ready_ps = start + t.t_ccd_s;
                }
                let with_mac = !is_write && depth < AccessDepth::Buffer;
                let pj = e.read_energy_pj(depth, g.prefetch_bytes, with_mac);
                let io = if depth == AccessDepth::External {
                    e.io_pj_per_bit * g.prefetch_bytes as f64 * 8.0
                } else {
                    0.0
                };
                self.energy.datapath_pj += pj - io;
                self.energy.io_pj += io;
                if with_mac {
                    let mac = e.mac_pj_per_bit * g.prefetch_bytes as f64 * 8.0;
                    self.energy.datapath_pj -= mac;
                    self.energy.compute_pj += mac;
                }
                if is_write {
                    self.stats.writes[idx] += 1;
                } else {
                    self.stats.reads[idx] += 1;
                }
                if self.col_since_act[idx] {
                    self.stats.row_hits += 1;
                } else {
                    self.stats.row_opens += 1;
                    self.col_since_act[idx] = true;
                }
                if depth >= AccessDepth::Buffer {
                    self.stats.bus_busy_ps += t.t_ccd_s;
                }
                self.record(start, cmd);
                Ok(start)
            }
            DramCommand::Precharge { bank } => {
                let idx = bank.index(&g) as usize;
                if self.banks[idx].phase != crate::BankPhase::Active {
                    return Err(TimingViolation::RowNotOpen { bank });
                }
                let start = self.banks[idx].precharge(&t, not_before);
                self.stats.precharges[idx] += 1;
                self.record(start, cmd);
                Ok(start)
            }
        }
    }
}

/// Outcome of issuing one PIM command through [`ChannelEngine::issue_pim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PimIssueOutcome {
    /// Earliest start across the touched banks (ps).
    pub start_ps: u64,
    /// Latest completion across the touched banks (ps).
    pub done_ps: u64,
    /// Underlying DRAM commands issued.
    pub commands: u64,
}

impl ChannelEngine {
    /// Issues one PIM command (§5.1) against this channel, expanding it to
    /// its per-bank DRAM commands:
    ///
    /// * `ActAb` activates `row` in the first `banks` idle banks.
    /// * `MacAb` reads one beat (bank depth, MAC energy) from every bank
    ///   with an open row.
    /// * Buffer-die commands (`Sfm`, `WrGb`, `MvGb`, `MvSb`, `RdSb`,
    ///   `SetConfig`) issue no DRAM commands; their cost lives in the
    ///   softmax/transfer models.
    ///
    /// `banks` caps how many banks an `ActAb` touches — the controller
    /// uses it to stay inside the power budget.
    ///
    /// # Errors
    /// Propagates [`TimingViolation`] from the underlying commands (e.g.
    /// `MacAb` with no open rows is a no-op, not an error).
    pub fn issue_pim(
        &mut self,
        cmd: crate::PimCommand,
        banks: u32,
        not_before: u64,
    ) -> Result<PimIssueOutcome, TimingViolation> {
        use crate::{BankPhase, PimCommand};
        let g = self.cfg.geometry.clone();
        let t = self.cfg.timing.clone();
        match cmd {
            PimCommand::ActAb { row } => {
                let mut first = u64::MAX;
                let mut last = 0u64;
                let mut n = 0u64;
                for i in 0..g.banks_per_pch() {
                    if n >= u64::from(banks) {
                        break;
                    }
                    let addr = BankAddr::from_index(&g, i);
                    if self.bank(addr).phase == BankPhase::Idle {
                        let s = self.issue(
                            DramCommand::Activate { bank: addr, row },
                            AccessDepth::Bank,
                            not_before,
                        )?;
                        first = first.min(s);
                        last = last.max(s + t.t_rcd);
                        n += 1;
                    }
                }
                Ok(PimIssueOutcome {
                    start_ps: if n == 0 { not_before } else { first },
                    done_ps: last.max(not_before),
                    commands: n,
                })
            }
            PimCommand::MacAb => {
                let mut first = u64::MAX;
                let mut last = 0u64;
                let mut n = 0u64;
                for i in 0..g.banks_per_pch() {
                    let addr = BankAddr::from_index(&g, i);
                    if self.bank(addr).phase == BankPhase::Active {
                        let s = self.issue(
                            DramCommand::Read { bank: addr },
                            AccessDepth::Bank,
                            not_before,
                        )?;
                        first = first.min(s);
                        last = last.max(s + t.t_ccd_l);
                        n += 1;
                    }
                }
                Ok(PimIssueOutcome {
                    start_ps: if n == 0 { not_before } else { first },
                    done_ps: last.max(not_before),
                    commands: n,
                })
            }
            PimCommand::SetConfig => Ok(PimIssueOutcome {
                start_ps: not_before,
                done_ps: not_before,
                commands: 0,
            }),
            PimCommand::Sfm { .. }
            | PimCommand::WrGb { .. }
            | PimCommand::MvGb { .. }
            | PimCommand::MvSb { .. }
            | PimCommand::RdSb { .. } => Ok(PimIssueOutcome {
                start_ps: not_before,
                done_ps: not_before,
                commands: 0,
            }),
        }
    }
}

/// A PIM streaming job over one pseudo-channel: how many bytes each bank
/// must deliver to its GEMV unit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StreamSpec {
    /// Bytes to stream per bank (index = dense bank index; zero = unused).
    pub bytes_per_bank: Vec<u64>,
    /// Power-budget cap on concurrently streaming banks.
    pub max_active: u32,
    /// Where the streamed data is consumed.
    pub depth: AccessDepth,
}

impl StreamSpec {
    /// Spreads `total_bytes` evenly over every bank of the channel at
    /// bank-level depth with concurrency `max_active`.
    #[must_use]
    pub fn uniform(geom: &StackGeometry, total_bytes: u64, max_active: u32) -> StreamSpec {
        let n = geom.banks_per_pch() as u64;
        let per = total_bytes / n;
        let mut rem = total_bytes % n;
        let bytes_per_bank = (0..n)
            .map(|_| {
                let extra = u64::from(rem > 0);
                rem = rem.saturating_sub(1);
                per + extra
            })
            .collect();
        StreamSpec {
            bytes_per_bank,
            max_active,
            depth: AccessDepth::Bank,
        }
    }

    /// Total bytes across all banks.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_bank.iter().sum()
    }
}

/// Result of a streaming simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StreamOutcome {
    /// Wall-clock picoseconds from first activate to last beat.
    pub elapsed_ps: u64,
    /// Column (MAC) commands issued.
    pub reads: u64,
    /// Row activations issued.
    pub activates: u64,
    /// Energy consumed.
    pub energy: EnergyCounter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    ActDone,
    StreamDone,
}

/// Simulates the PIM streaming pattern over one pseudo-channel.
///
/// Every bank with data loops over its rows: activate (tRCD), stream the
/// row's beats at one per tCCDL *while holding a power token*, precharge
/// (tRP, overlapped). At most `spec.max_active` banks hold tokens at once;
/// the rest perform their row switches in the shadow of others' streaming,
/// reproducing the paper's observation that AttAcc_bank hides
/// activate/precharge latency when the power budget keeps some banks idle.
#[must_use]
pub fn simulate_stream(cfg: &HbmConfig, spec: &StreamSpec) -> StreamOutcome {
    let g = &cfg.geometry;
    let t = &cfg.timing;
    let e = &cfg.energy;
    assert_eq!(
        spec.bytes_per_bank.len(),
        g.banks_per_pch() as usize,
        "spec must cover every bank of the channel"
    );
    assert!(spec.max_active > 0, "at least one bank must be allowed to stream");

    // Remaining full/partial rows per bank, expressed in beats.
    struct BankJob {
        beats_left: u64,
        beats_per_row: u64,
    }
    let beats_per_row = g.row_bytes / g.prefetch_bytes;
    let mut jobs: Vec<BankJob> = spec
        .bytes_per_bank
        .iter()
        .map(|&b| BankJob {
            beats_left: b.div_ceil(g.prefetch_bytes),
            beats_per_row,
        })
        .collect();

    let mut tokens = spec.max_active;
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize, Event)>> = BinaryHeap::new();
    let mut last_act: Vec<u64> = vec![0; jobs.len()];
    let mut activates = 0u64;
    let mut reads = 0u64;
    let mut elapsed = 0u64;

    // Initial activations. The controller staggers banks by one row-burst
    // worth of phase across the pool: command-bus serialization plus
    // deliberate phase offsets prevent the power-token pool from
    // synchronizing into release waves (which would strand tokens for a
    // switch-time every row).
    let beats_per_row_ps = beats_per_row.max(1) * t.t_ccd_l;
    let populated_count = jobs.iter().filter(|j| j.beats_left > 0).count().max(1) as u64;
    // Waves only form when tokens are contended AND banks make row
    // switches (single-row jobs have nothing to park for).
    let multi_row = jobs.iter().any(|j| j.beats_left > beats_per_row);
    let contended = u64::from(spec.max_active) < populated_count && multi_row;
    for (i, job) in jobs.iter().enumerate() {
        if job.beats_left > 0 {
            let phase = if contended {
                (i as u64 * beats_per_row_ps) / populated_count
            } else {
                0
            };
            heap.push(Reverse((phase + t.t_rcd, i, Event::ActDone)));
            last_act[i] = phase;
            activates += 1;
        }
    }

    // Per-beat gating: bank-level streams pay tCCDL per bank only; deeper
    // consumers serialize on shared buses, which we conservatively model by
    // lowering effective concurrency (callers pass the right max_active).
    while let Some(Reverse((now, idx, ev))) = heap.pop() {
        elapsed = elapsed.max(now);
        match ev {
            Event::ActDone => {
                waiting.push_back(idx);
            }
            Event::StreamDone => {
                tokens += 1;
                let job = &mut jobs[idx];
                if job.beats_left > 0 {
                    // Row switch: precharge then activate the next row.
                    let pre_start = now.max(last_act[idx] + t.t_ras);
                    let act_start = (pre_start + t.t_rp).max(last_act[idx] + t.t_rc());
                    last_act[idx] = act_start;
                    activates += 1;
                    heap.push(Reverse((act_start + t.t_rcd, idx, Event::ActDone)));
                }
            }
        }
        // Grant tokens to ready banks FIFO.
        while tokens > 0 {
            let Some(next) = waiting.pop_front() else { break };
            let job = &mut jobs[next];
            let burst = job.beats_left.min(job.beats_per_row);
            job.beats_left -= burst;
            reads += burst;
            tokens -= 1;
            heap.push(Reverse((now + burst * t.t_ccd_l, next, Event::StreamDone)));
        }
    }

    let beat_bits = g.prefetch_bytes as f64 * 8.0;
    let energy = EnergyCounter {
        activation_pj: activates as f64 * e.act_energy_pj(g.row_bytes),
        datapath_pj: reads as f64 * e.read_path_pj_per_bit(spec.depth) * beat_bits,
        compute_pj: reads as f64 * e.mac_pj_per_bit * beat_bits,
        ..EnergyCounter::default()
    };

    StreamOutcome {
        elapsed_ps: t.with_refresh(elapsed),
        reads,
        activates,
        energy,
    }
}

/// Closed-form approximation of [`simulate_stream`]'s elapsed time.
///
/// Two lower bounds are combined: the token-throughput bound (total beats
/// divided by the concurrency cap) and the slowest single bank's serial
/// time (its beats plus un-hideable row switches when every bank streams).
#[must_use]
pub fn stream_time_estimate_ps(cfg: &HbmConfig, spec: &StreamSpec) -> u64 {
    let g = &cfg.geometry;
    let t = &cfg.timing;
    let beats_per_row = g.row_bytes / g.prefetch_bytes;
    let populated = spec.bytes_per_bank.iter().filter(|&&b| b > 0).count() as u64;
    if populated == 0 {
        return 0;
    }
    let total_beats: u64 = spec
        .bytes_per_bank
        .iter()
        .map(|&b| b.div_ceil(g.prefetch_bytes))
        .sum();
    let conc = u64::from(spec.max_active).min(populated);
    let throughput_bound = total_beats * t.t_ccd_l / conc;
    // Single-row jobs cannot be split across power tokens: the stream
    // quantizes into ceil(populated / conc) whole-burst waves.
    let max_beats_any = spec
        .bytes_per_bank
        .iter()
        .map(|&b| b.div_ceil(g.prefetch_bytes))
        .max()
        .unwrap_or(0);
    let throughput_bound = if max_beats_any <= beats_per_row {
        throughput_bound.max(populated.div_ceil(conc) * max_beats_any * t.t_ccd_l)
    } else {
        throughput_bound
    };

    // Per-bank serial bound: a bank that always holds a token still pays
    // tRP + tRCD (or the tRC gap, whichever is larger) at every row switch.
    let max_beats = spec
        .bytes_per_bank
        .iter()
        .map(|&b| b.div_ceil(g.prefetch_bytes))
        .max()
        .unwrap_or(0);
    let rows = max_beats.div_ceil(beats_per_row);
    let switch = (t.t_rp + t.t_rcd).max(t.t_rc().saturating_sub(beats_per_row * t.t_ccd_l));
    let serial_bound = max_beats * t.t_ccd_l + rows.saturating_sub(1) * switch;

    // Pipeline-drain correction: with a contended token pool, multi-row
    // jobs and a pool that does not divide the bank count, the final row
    // wave cannot pack perfectly; on average half a row cycle of
    // raggedness is exposed.
    let drain = if conc < populated && rows >= 2 && !populated.is_multiple_of(conc) {
        (beats_per_row * t.t_ccd_l + switch) / 2
    } else {
        0
    };

    t.with_refresh(t.t_rcd + throughput_bound.max(serial_bound) + drain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BankPhase;

    fn cfg() -> HbmConfig {
        HbmConfig::hbm3_8hi()
    }

    fn addr(cfg: &HbmConfig, i: u32) -> BankAddr {
        BankAddr::from_index(&cfg.geometry, i)
    }

    #[test]
    fn engine_streams_external_at_channel_rate() {
        // Interleaved external reads across bank groups sustain one beat
        // per tCCDS — the IDD7 pattern.
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let t = cfg.timing.clone();
        // Open a row in the first bank of each of 4 groups (one rank).
        for gidx in 0..4 {
            let b = BankAddr {
                rank: 0,
                group: gidx,
                bank: 0,
            };
            eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::External, 0)
                .unwrap();
        }
        // Issue 64 interleaved reads.
        let mut last = 0;
        for i in 0..64u32 {
            let b = BankAddr {
                rank: 0,
                group: i % 4,
                bank: 0,
            };
            last = eng
                .issue(DramCommand::Read { bank: b }, AccessDepth::External, 0)
                .unwrap();
        }
        // Steady state: 64 beats at tCCDS each (after tRCD warmup).
        let expect = 63 * t.t_ccd_s;
        assert!(
            last >= expect && last <= expect + t.t_rcd + 4 * t.t_rrd,
            "last = {last}, expect ≈ {expect}"
        );
    }

    #[test]
    fn engine_rejects_read_on_closed_row() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let err = eng
            .issue(
                DramCommand::Read { bank: addr(&cfg, 0) },
                AccessDepth::Bank,
                0,
            )
            .unwrap_err();
        assert!(matches!(err, TimingViolation::RowNotOpen { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn engine_rejects_double_activate() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let b = addr(&cfg, 0);
        eng.issue(DramCommand::Activate { bank: b, row: 1 }, AccessDepth::Bank, 0)
            .unwrap();
        let err = eng
            .issue(DramCommand::Activate { bank: b, row: 2 }, AccessDepth::Bank, 0)
            .unwrap_err();
        assert!(matches!(err, TimingViolation::RowAlreadyOpen { .. }));
    }

    #[test]
    fn tfaw_throttles_bursts_of_activates() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let t = cfg.timing.clone();
        let mut starts = Vec::new();
        for i in 0..5 {
            let b = addr(&cfg, i);
            starts.push(
                eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::Bank, 0)
                    .unwrap(),
            );
        }
        // All five banks are in rank 0; the fifth activate must wait tFAW
        // after the first.
        assert!(starts[4] >= starts[0] + t.t_faw, "starts = {starts:?}");
    }

    #[test]
    fn precharge_closes_row() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let b = addr(&cfg, 3);
        eng.issue(DramCommand::Activate { bank: b, row: 5 }, AccessDepth::Bank, 0)
            .unwrap();
        assert_eq!(eng.bank(b).phase, BankPhase::Active);
        eng.issue(DramCommand::Precharge { bank: b }, AccessDepth::Bank, 0)
            .unwrap();
        assert_eq!(eng.bank(b).phase, BankPhase::Idle);
    }

    #[test]
    fn energy_accrues_per_command() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let b = addr(&cfg, 0);
        eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::Bank, 0)
            .unwrap();
        let after_act = eng.energy().total_pj();
        assert!(after_act > 0.0);
        eng.issue(DramCommand::Read { bank: b }, AccessDepth::Bank, 0)
            .unwrap();
        assert!(eng.energy().total_pj() > after_act);
        assert!(eng.energy().compute_pj > 0.0, "bank read carries MAC energy");
        assert_eq!(eng.issued_commands(), 2);
    }

    #[test]
    fn pim_commands_expand_to_dram_commands() {
        use crate::PimCommand;
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        // Activate 18 banks (the power budget), then stream 4 beats each.
        let act = eng.issue_pim(PimCommand::ActAb { row: 0 }, 18, 0).unwrap();
        assert_eq!(act.commands, 18);
        let mut done = act.done_ps;
        let mut macs = 0;
        for _ in 0..4 {
            let mac = eng.issue_pim(PimCommand::MacAb, 18, done).unwrap();
            assert_eq!(mac.commands, 18);
            macs += mac.commands;
            done = mac.done_ps;
        }
        assert_eq!(macs, 72);
        assert_eq!(eng.stats().column_commands(), 72);
        // Buffer-die commands issue nothing.
        let sfm = eng.issue_pim(PimCommand::Sfm { elems: 100 }, 0, done).unwrap();
        assert_eq!(sfm.commands, 0);
    }

    #[test]
    fn pim_mac_stream_rate_matches_stream_model() {
        use crate::PimCommand;
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let act = eng.issue_pim(PimCommand::ActAb { row: 0 }, 18, 0).unwrap();
        // Stream 32 beats per bank (one row) via MAC_AB.
        let mut done = act.done_ps;
        for _ in 0..32 {
            done = eng.issue_pim(PimCommand::MacAb, 18, done).unwrap().done_ps;
        }
        // 32 beats at tCCDL each after tRCD, plus the tFAW ramp of the 18
        // activates (issue_pim routes through regular ACTs — conservative
        // versus the paper's special all-bank activate, which
        // simulate_stream models).
        let faw_ramp = (18u64.div_ceil(4) - 1) * cfg.timing.t_faw;
        let expect = faw_ramp + cfg.timing.t_rcd + 32 * cfg.timing.t_ccd_l;
        assert!(
            done >= 32 * cfg.timing.t_ccd_l && done <= expect + cfg.timing.t_faw,
            "done = {done}, expect ≈ {expect}"
        );
    }

    #[test]
    fn act_ab_skips_open_banks() {
        use crate::PimCommand;
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        eng.issue_pim(PimCommand::ActAb { row: 0 }, 4, 0).unwrap();
        let second = eng.issue_pim(PimCommand::ActAb { row: 1 }, 4, 0).unwrap();
        // The first four banks are busy; the next four are used instead.
        assert_eq!(second.commands, 4);
        let open: u32 = (0..cfg.geometry.banks_per_pch())
            .filter(|&i| {
                eng.bank(BankAddr::from_index(&cfg.geometry, i)).phase == BankPhase::Active
            })
            .count() as u32;
        assert_eq!(open, 8);
    }

    #[test]
    fn stats_track_commands_and_hits() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        let b = addr(&cfg, 2);
        eng.issue(DramCommand::Activate { bank: b, row: 0 }, AccessDepth::External, 0)
            .unwrap();
        for _ in 0..4 {
            eng.issue(DramCommand::Read { bank: b }, AccessDepth::External, 0)
                .unwrap();
        }
        eng.issue(DramCommand::Write { bank: b }, AccessDepth::External, 0)
            .unwrap();
        eng.issue(DramCommand::Precharge { bank: b }, AccessDepth::External, 0)
            .unwrap();
        let s = eng.stats();
        assert_eq!(s.acts[2], 1);
        assert_eq!(s.reads[2], 4);
        assert_eq!(s.writes[2], 1);
        assert_eq!(s.precharges[2], 1);
        assert_eq!(s.row_opens, 1);
        assert_eq!(s.row_hits, 4);
        assert!((s.row_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(s.bus_busy_ps, 5 * cfg.timing.t_ccd_s);
        assert_eq!(s.busiest_bank().0, 2);
    }

    #[test]
    fn trace_records_commands_in_order() {
        let cfg = cfg();
        let mut eng = ChannelEngine::new(&cfg);
        assert!(eng.trace().is_none());
        eng.enable_trace(3);
        let b = addr(&cfg, 0);
        eng.issue(DramCommand::Activate { bank: b, row: 1 }, AccessDepth::Bank, 0)
            .unwrap();
        for _ in 0..5 {
            eng.issue(DramCommand::Read { bank: b }, AccessDepth::Bank, 0)
                .unwrap();
        }
        let trace = eng.trace().unwrap();
        assert_eq!(trace.len(), 3, "trace respects its cap");
        assert!(matches!(trace[0].1, DramCommand::Activate { .. }));
        assert!(trace.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn stream_sustains_power_limited_rate() {
        // 32 banks, 18 tokens: sustained rate must be ≈ 18 beats/tCCDL,
        // i.e. 9× the external channel rate, with row switches hidden.
        let cfg = cfg();
        let per_bank = 64 * 1024u64; // 64 KiB per bank, 64 rows
        let spec = StreamSpec {
            bytes_per_bank: vec![per_bank; 32],
            max_active: cfg.power.max_active_banks,
            depth: AccessDepth::Bank,
        };
        let out = simulate_stream(&cfg, &spec);
        let total_beats = 32 * per_bank / 32;
        let ideal = cfg.timing.with_refresh(total_beats * cfg.timing.t_ccd_l / 18);
        let ratio = out.elapsed_ps as f64 / ideal as f64;
        assert!(
            ratio < 1.08,
            "elapsed {} vs ideal {} (ratio {ratio})",
            out.elapsed_ps,
            ideal
        );
    }

    #[test]
    fn stream_exposes_row_switch_when_unconstrained() {
        // With all 32 banks streaming simultaneously (no power cap), each
        // bank's row switches cannot hide behind parked banks.
        let cfg = cfg();
        let per_bank = 64 * 1024u64;
        let capped = simulate_stream(
            &cfg,
            &StreamSpec {
                bytes_per_bank: vec![per_bank; 32],
                max_active: 18,
                depth: AccessDepth::Bank,
            },
        );
        let uncapped = simulate_stream(
            &cfg,
            &StreamSpec {
                bytes_per_bank: vec![per_bank; 32],
                max_active: 32,
                depth: AccessDepth::Bank,
            },
        );
        // Uncapped is still faster in wall clock (more parallelism)…
        assert!(uncapped.elapsed_ps < capped.elapsed_ps);
        // …but it cannot reach the 32/18 speedup because tRC > row beats ×
        // tCCDL exposes switches.
        let speedup = capped.elapsed_ps as f64 / uncapped.elapsed_ps as f64;
        assert!(speedup < 32.0 / 18.0, "speedup = {speedup}");
    }

    #[test]
    fn stream_counts_match_geometry() {
        let cfg = cfg();
        let spec = StreamSpec::uniform(&cfg.geometry, 1 << 20, 18);
        let out = simulate_stream(&cfg, &spec);
        assert_eq!(out.reads, (1 << 20) / 32);
        // One activate per row per bank: 1 MiB / 1 KiB rows = 1024.
        assert_eq!(out.activates, 1024);
        assert!(out.energy.total_pj() > 0.0);
    }

    #[test]
    fn stream_estimate_tracks_simulation() {
        let cfg = cfg();
        for (bytes, active) in [(1u64 << 18, 18u32), (1 << 22, 18), (1 << 20, 6), (1 << 16, 32)] {
            let spec = StreamSpec::uniform(&cfg.geometry, bytes, active);
            let sim = simulate_stream(&cfg, &spec).elapsed_ps as f64;
            let est = stream_time_estimate_ps(&cfg, &spec) as f64;
            let err = (sim - est).abs() / sim;
            assert!(err < 0.15, "bytes={bytes} active={active}: sim={sim} est={est}");
        }
    }

    #[test]
    fn empty_stream_is_instant() {
        let cfg = cfg();
        let spec = StreamSpec {
            bytes_per_bank: vec![0; 32],
            max_active: 18,
            depth: AccessDepth::Bank,
        };
        assert_eq!(simulate_stream(&cfg, &spec).reads, 0);
        assert_eq!(stream_time_estimate_ps(&cfg, &spec), 0);
    }

    #[test]
    fn uniform_spec_distributes_remainder() {
        let cfg = cfg();
        let spec = StreamSpec::uniform(&cfg.geometry, 100, 18);
        assert_eq!(spec.total_bytes(), 100);
        let max = spec.bytes_per_bank.iter().max().unwrap();
        let min = spec.bytes_per_bank.iter().min().unwrap();
        assert!(max - min <= 1);
    }
}
