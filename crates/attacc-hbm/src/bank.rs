//! Per-bank DRAM state machine with timing legality checks.

use crate::TimingParams;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The operational phase of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum BankPhase {
    /// No row open; ready to activate once tRP has elapsed.
    Idle,
    /// A row is open and readable after tRCD.
    Active,
}

/// Timing state of a single bank.
///
/// All timestamps are picoseconds on the channel clock. The bank enforces
/// tRCD (activate→read), tRAS (activate→precharge), tRP (precharge→
/// activate), tRC (activate→activate) and the per-bank read cadence
/// (tCCDL — one beat per column command to the same bank group, which a
/// single bank trivially is a member of).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BankState {
    /// Current phase.
    pub phase: BankPhase,
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Time of the last activate.
    pub last_act_ps: u64,
    /// Earliest time the next activate may start.
    pub act_ready_ps: u64,
    /// Earliest time the next read may start.
    pub read_ready_ps: u64,
    /// Earliest time a precharge may start.
    pub pre_ready_ps: u64,
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

impl BankState {
    /// A freshly powered-up, precharged bank.
    #[must_use]
    pub const fn new() -> BankState {
        BankState {
            phase: BankPhase::Idle,
            open_row: None,
            last_act_ps: 0,
            act_ready_ps: 0,
            read_ready_ps: 0,
            pre_ready_ps: 0,
        }
    }

    /// Activates `row` no earlier than `not_before`; returns the actual
    /// start time.
    ///
    /// # Panics
    /// Panics if a row is already open (precharge first).
    pub fn activate(&mut self, t: &TimingParams, row: u64, not_before: u64) -> u64 {
        assert_eq!(self.phase, BankPhase::Idle, "activate requires a precharged bank");
        let start = not_before.max(self.act_ready_ps);
        self.phase = BankPhase::Active;
        self.open_row = Some(row);
        self.last_act_ps = start;
        self.read_ready_ps = self.read_ready_ps.max(start + t.t_rcd);
        self.pre_ready_ps = start + t.t_ras;
        self.act_ready_ps = start + t.t_rc();
        start
    }

    /// Reads one beat no earlier than `not_before`; returns the start time.
    /// Subsequent reads to this bank are gated by `t_ccd_l`.
    ///
    /// # Panics
    /// Panics if no row is open.
    pub fn read(&mut self, t: &TimingParams, not_before: u64) -> u64 {
        assert_eq!(self.phase, BankPhase::Active, "read requires an open row");
        let start = not_before.max(self.read_ready_ps);
        self.read_ready_ps = start + t.t_ccd_l;
        // Reads extend the earliest legal precharge (data restore).
        self.pre_ready_ps = self.pre_ready_ps.max(start + t.t_ccd_l);
        start
    }

    /// Writes one beat no earlier than `not_before`; returns the start
    /// time. Writes share the column cadence with reads but push the
    /// earliest precharge out by the write-recovery time `t_wr`.
    ///
    /// # Panics
    /// Panics if no row is open.
    pub fn write(&mut self, t: &TimingParams, not_before: u64) -> u64 {
        assert_eq!(self.phase, BankPhase::Active, "write requires an open row");
        let start = not_before.max(self.read_ready_ps);
        self.read_ready_ps = start + t.t_ccd_l;
        self.pre_ready_ps = self.pre_ready_ps.max(start + t.t_ccd_l + t.t_wr);
        start
    }

    /// Precharges no earlier than `not_before`; returns the start time.
    ///
    /// # Panics
    /// Panics if no row is open.
    pub fn precharge(&mut self, t: &TimingParams, not_before: u64) -> u64 {
        assert_eq!(self.phase, BankPhase::Active, "precharge requires an open row");
        let start = not_before.max(self.pre_ready_ps);
        self.phase = BankPhase::Idle;
        self.open_row = None;
        self.act_ready_ps = self.act_ready_ps.max(start + t.t_rp);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::hbm3()
    }

    #[test]
    fn activate_read_precharge_cycle() {
        let tp = t();
        let mut b = BankState::new();
        let a0 = b.activate(&tp, 7, 0);
        assert_eq!(a0, 0);
        assert_eq!(b.open_row, Some(7));
        let r0 = b.read(&tp, 0);
        assert_eq!(r0, tp.t_rcd, "first read waits tRCD");
        let r1 = b.read(&tp, 0);
        assert_eq!(r1, r0 + tp.t_ccd_l, "reads separated by tCCDL");
        let p = b.precharge(&tp, 0);
        assert!(p >= tp.t_ras, "precharge respects tRAS");
        let a1 = b.activate(&tp, 8, 0);
        assert!(a1 >= p + tp.t_rp, "activate respects tRP");
        assert!(a1 >= a0 + tp.t_rc(), "activate respects tRC");
    }

    #[test]
    fn not_before_is_respected() {
        let tp = t();
        let mut b = BankState::new();
        assert_eq!(b.activate(&tp, 0, 123_000), 123_000);
        assert_eq!(b.read(&tp, 999_000), 999_000);
    }

    #[test]
    #[should_panic(expected = "requires an open row")]
    fn read_without_activate_panics() {
        let mut b = BankState::new();
        let _ = b.read(&t(), 0);
    }

    #[test]
    #[should_panic(expected = "requires a precharged bank")]
    fn double_activate_panics() {
        let tp = t();
        let mut b = BankState::new();
        let _ = b.activate(&tp, 0, 0);
        let _ = b.activate(&tp, 1, 0);
    }

    #[test]
    fn write_recovery_defers_precharge() {
        let tp = t();
        let mut b = BankState::new();
        let _ = b.activate(&tp, 0, 0);
        let w = b.write(&tp, 0);
        assert_eq!(w, tp.t_rcd);
        let p = b.precharge(&tp, 0);
        assert!(p >= w + tp.t_ccd_l + tp.t_wr, "p = {p}");
    }

    #[test]
    fn reads_and_writes_share_column_cadence() {
        let tp = t();
        let mut b = BankState::new();
        let _ = b.activate(&tp, 0, 0);
        let r = b.read(&tp, 0);
        let w = b.write(&tp, 0);
        assert!(w >= r + tp.t_ccd_l);
    }

    #[test]
    fn long_read_burst_defers_precharge() {
        let tp = t();
        let mut b = BankState::new();
        let _ = b.activate(&tp, 0, 0);
        let mut last = 0;
        for _ in 0..32 {
            last = b.read(&tp, 0);
        }
        let p = b.precharge(&tp, 0);
        assert!(p >= last + tp.t_ccd_l);
    }
}
