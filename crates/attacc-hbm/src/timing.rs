//! DRAM timing parameters (picosecond granularity).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One nanosecond in picoseconds.
pub const NS: u64 = 1_000;

/// DRAM timing parameters of an HBM stack, in picoseconds.
///
/// The values follow the public HBM3 figures the paper quotes: 5.2 Gbps
/// per pin, tCCDS = 1.5 ns (the GEMV unit's 666 MHz clock is derived from
/// it, §7.1), tCCDL = 3 ns (§8's "every tCCDL (3 ns)").
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TimingParams {
    /// Per-pin data rate in Gbit/s.
    pub data_rate_gbps: f64,
    /// Column-to-column delay, different bank groups (ps).
    pub t_ccd_s: u64,
    /// Column-to-column delay, same bank group (ps).
    pub t_ccd_l: u64,
    /// Activate-to-read delay (ps).
    pub t_rcd: u64,
    /// Precharge period (ps).
    pub t_rp: u64,
    /// Activate-to-precharge minimum (ps).
    pub t_ras: u64,
    /// Four-activate window (ps).
    pub t_faw: u64,
    /// Activate-to-activate, different banks same rank (ps).
    pub t_rrd: u64,
    /// Read latency: column command to first data (ps).
    pub t_rl: u64,
    /// Write recovery: last write beat to precharge (ps).
    pub t_wr: u64,
    /// Average refresh interval (ps).
    pub t_refi: u64,
    /// Refresh cycle time: the channel stalls this long per refresh (ps).
    pub t_rfc: u64,
}

impl TimingParams {
    /// Public HBM3 timing preset.
    #[must_use]
    pub fn hbm3() -> TimingParams {
        TimingParams {
            data_rate_gbps: 5.2,
            t_ccd_s: 1_500,
            t_ccd_l: 3_000,
            t_rcd: 14_000,
            t_rp: 14_000,
            t_ras: 33_000,
            t_faw: 16_000,
            t_rrd: 4_000,
            t_rl: 18_000,
            t_wr: 15_000,
            t_refi: 3_900_000,
            t_rfc: 260_000,
        }
    }

    /// HBM2e timing (the real DGX A100's memory): 3.2 Gbps/pin, slightly
    /// relaxed core timing. Used by the §7.1 validation configuration.
    #[must_use]
    pub fn hbm2e() -> TimingParams {
        TimingParams {
            data_rate_gbps: 3.2,
            t_ccd_s: 2_000,
            t_ccd_l: 4_000,
            t_rcd: 14_000,
            t_rp: 14_000,
            t_ras: 33_000,
            t_faw: 16_000,
            t_rrd: 4_000,
            t_rl: 18_000,
            t_wr: 16_000,
            t_refi: 3_900_000,
            t_rfc: 260_000,
        }
    }

    /// Fraction of wall-clock time lost to refresh: `tRFC / tREFI`.
    ///
    /// Applied as a multiplicative derate to sustained-stream times; the
    /// engine's tests confirm the closed form matches injecting explicit
    /// refresh stalls.
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        if self.t_refi == 0 {
            return 0.0;
        }
        self.t_rfc as f64 / self.t_refi as f64
    }

    /// Stretches a busy interval to account for refresh stalls.
    #[must_use]
    pub fn with_refresh(&self, busy_ps: u64) -> u64 {
        let stalls = busy_ps / self.t_refi.max(1);
        busy_ps + stalls * self.t_rfc
    }

    /// Row-cycle time: minimum interval between activates to the same bank.
    #[must_use]
    pub const fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }

    /// tCCDL in seconds.
    #[must_use]
    pub fn tccd_l_s(&self) -> f64 {
        self.t_ccd_l as f64 * 1e-12
    }

    /// tCCDS in seconds.
    #[must_use]
    pub fn tccd_s_s(&self) -> f64 {
        self.t_ccd_s as f64 * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm3_preset_sanity() {
        let t = TimingParams::hbm3();
        assert_eq!(t.t_ccd_l, 2 * t.t_ccd_s);
        assert!(t.t_rcd < t.t_ras);
        assert_eq!(t.t_rc(), 47_000);
        assert!(t.t_wr > 0);
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        let t = TimingParams::hbm3();
        let o = t.refresh_overhead();
        assert!(o > 0.02 && o < 0.10, "overhead = {o}");
    }

    #[test]
    fn with_refresh_injects_one_stall_per_trefi() {
        let t = TimingParams::hbm3();
        assert_eq!(t.with_refresh(0), 0);
        assert_eq!(t.with_refresh(t.t_refi), t.t_refi + t.t_rfc);
        let long = 10 * t.t_refi;
        assert_eq!(t.with_refresh(long), long + 10 * t.t_rfc);
    }

    #[test]
    fn hbm2e_is_slower_than_hbm3() {
        let e = TimingParams::hbm2e();
        let h = TimingParams::hbm3();
        assert!(e.data_rate_gbps < h.data_rate_gbps);
        assert!(e.t_ccd_s > h.t_ccd_s);
    }

    #[test]
    fn gemv_clock_from_tccds() {
        // §7.1: GEMV units run at 666 MHz "considering tCCDS (1.5 ns)".
        let t = TimingParams::hbm3();
        let mhz = 1e6 / t.t_ccd_s as f64;
        assert!((mhz - 666.7).abs() < 1.0, "clock = {mhz} MHz");
    }

    #[test]
    fn prefetch_rate_matches_pin_rate() {
        // 32 B per tCCDS over 32 pins at 5.2 Gbps should agree within 10%:
        // 32 B / 1.5 ns = 21.3 GB/s vs 32 pin × 5.2 Gbps = 20.8 GB/s.
        let t = TimingParams::hbm3();
        let beat = 32.0 / (t.t_ccd_s as f64 * 1e-12) / 1e9;
        let pins = 32.0 * t.data_rate_gbps / 8.0;
        assert!((beat - pins).abs() / pins < 0.1, "{beat} vs {pins}");
    }
}
