//! Physical address decomposition for the stack.
//!
//! The PIM controller and the KV-placement logic need to translate linear
//! device addresses into (pseudo-channel, rank, bank group, bank, row,
//! column) coordinates. Two interleaving policies are provided:
//!
//! * [`Interleave::RowInterleaved`] — consecutive row-sized blocks rotate
//!   across banks (the streaming-friendly layout AttAcc uses for KV
//!   matrices: every bank holds contiguous rows of a tile).
//! * [`Interleave::BlockInterleaved`] — consecutive prefetch-sized beats
//!   rotate across pseudo-channels then banks (the bandwidth-spreading
//!   layout a conventional controller uses).

use crate::{BankAddr, StackGeometry};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Full physical coordinates of one prefetch-sized beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PhysicalAddr {
    /// Pseudo-channel index.
    pub pch: u32,
    /// Bank coordinates within the channel.
    pub bank: BankAddr,
    /// Row within the bank.
    pub row: u64,
    /// Column (beat) within the row.
    pub col: u64,
}

/// Address-interleaving policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Interleave {
    /// Row-sized blocks rotate over (bank, pCH); rows stay contiguous
    /// within a bank.
    RowInterleaved,
    /// Prefetch-sized beats rotate over (pCH, bank).
    BlockInterleaved,
}

/// An address mapper for one stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AddressMap {
    geom: StackGeometry,
    policy: Interleave,
}

impl AddressMap {
    /// Creates a mapper.
    #[must_use]
    pub fn new(geom: StackGeometry, policy: Interleave) -> AddressMap {
        AddressMap { geom, policy }
    }

    /// The interleave policy.
    #[must_use]
    pub fn policy(&self) -> Interleave {
        self.policy
    }

    /// Total addressable beats in the stack.
    #[must_use]
    pub fn total_beats(&self) -> u64 {
        self.geom.capacity_bytes / self.geom.prefetch_bytes
    }

    /// Decomposes a linear beat index into physical coordinates.
    ///
    /// # Panics
    /// Panics if `beat` is beyond the stack capacity.
    #[must_use]
    pub fn decode(&self, beat: u64) -> PhysicalAddr {
        assert!(beat < self.total_beats(), "beat {beat} beyond stack capacity");
        let g = &self.geom;
        let beats_per_row = g.row_bytes / g.prefetch_bytes;
        let banks = u64::from(g.banks_per_pch());
        let pchs = u64::from(g.pseudo_channels);
        match self.policy {
            Interleave::RowInterleaved => {
                // [row-block id][col]; block id rotates bank→pCH→row.
                let col = beat % beats_per_row;
                let block = beat / beats_per_row;
                let bank = block % banks;
                let pch = (block / banks) % pchs;
                let row = block / (banks * pchs);
                PhysicalAddr {
                    pch: pch as u32,
                    bank: BankAddr::from_index(g, bank as u32),
                    row,
                    col,
                }
            }
            Interleave::BlockInterleaved => {
                // Beat rotates pCH→bank→col→row.
                let pch = beat % pchs;
                let rest = beat / pchs;
                let bank = rest % banks;
                let rest = rest / banks;
                let col = rest % beats_per_row;
                let row = rest / beats_per_row;
                PhysicalAddr {
                    pch: pch as u32,
                    bank: BankAddr::from_index(g, bank as u32),
                    row,
                    col,
                }
            }
        }
    }

    /// Inverse of [`AddressMap::decode`].
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn encode(&self, addr: PhysicalAddr) -> u64 {
        let g = &self.geom;
        let beats_per_row = g.row_bytes / g.prefetch_bytes;
        let banks = u64::from(g.banks_per_pch());
        let pchs = u64::from(g.pseudo_channels);
        assert!(u64::from(addr.pch) < pchs, "pCH out of range");
        assert!(addr.col < beats_per_row, "column out of range");
        let bank = u64::from(addr.bank.index(g));
        match self.policy {
            Interleave::RowInterleaved => {
                let block = addr.row * banks * pchs + u64::from(addr.pch) * banks + bank;
                block * beats_per_row + addr.col
            }
            Interleave::BlockInterleaved => {
                ((addr.row * beats_per_row + addr.col) * banks + bank) * pchs
                    + u64::from(addr.pch)
            }
        }
    }

    /// Number of distinct banks touched by a contiguous `bytes`-long
    /// region starting at linear byte offset `start` — the quantity that
    /// determines streaming parallelism.
    #[must_use]
    pub fn banks_touched(&self, start: u64, bytes: u64) -> usize {
        let g = &self.geom;
        let first = start / g.prefetch_bytes;
        let last = (start + bytes.max(1) - 1) / g.prefetch_bytes;
        let mut seen = std::collections::HashSet::new();
        for beat in first..=last.min(self.total_beats() - 1) {
            let a = self.decode(beat);
            seen.insert((a.pch, a.bank));
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(policy: Interleave) -> AddressMap {
        AddressMap::new(StackGeometry::hbm3_8hi(), policy)
    }

    #[test]
    fn decode_encode_roundtrip_row_interleaved() {
        let m = map(Interleave::RowInterleaved);
        for beat in [0u64, 1, 31, 32, 1000, 123_456_789] {
            assert_eq!(m.encode(m.decode(beat)), beat, "beat {beat}");
        }
    }

    #[test]
    fn decode_encode_roundtrip_block_interleaved() {
        let m = map(Interleave::BlockInterleaved);
        for beat in [0u64, 1, 31, 32, 1000, 123_456_789] {
            assert_eq!(m.encode(m.decode(beat)), beat, "beat {beat}");
        }
    }

    #[test]
    fn row_interleave_keeps_rows_contiguous() {
        let m = map(Interleave::RowInterleaved);
        let beats_per_row = 1024 / 32;
        let a = m.decode(0);
        let b = m.decode(beats_per_row - 1);
        assert_eq!((a.pch, a.bank, a.row), (b.pch, b.bank, b.row));
        let c = m.decode(beats_per_row);
        assert_ne!((a.pch, a.bank), (c.pch, c.bank), "next block moves bank");
    }

    #[test]
    fn block_interleave_spreads_consecutive_beats() {
        let m = map(Interleave::BlockInterleaved);
        let a = m.decode(0);
        let b = m.decode(1);
        assert_ne!(a.pch, b.pch, "consecutive beats hit different channels");
    }

    #[test]
    fn large_region_touches_many_banks() {
        // A 1 MiB KV tile should spread over every bank of a channel group
        // under row interleaving.
        let m = map(Interleave::RowInterleaved);
        let touched = m.banks_touched(0, 1 << 20);
        assert!(touched >= 32, "touched = {touched}");
    }

    #[test]
    fn tiny_region_touches_one_bank() {
        let m = map(Interleave::RowInterleaved);
        assert_eq!(m.banks_touched(0, 32), 1);
    }

    #[test]
    #[should_panic(expected = "beyond stack capacity")]
    fn decode_rejects_out_of_range() {
        let m = map(Interleave::RowInterleaved);
        let _ = m.decode(m.total_beats());
    }

    #[test]
    fn coordinates_stay_in_range() {
        let g = StackGeometry::hbm3_8hi();
        let m = map(Interleave::BlockInterleaved);
        for beat in (0..m.total_beats()).step_by(999_983) {
            let a = m.decode(beat);
            assert!(a.pch < g.pseudo_channels);
            assert!(a.row < g.rows_per_bank());
            assert!(a.col < g.row_bytes / g.prefetch_bytes);
        }
    }
}
