//! IDD7-derived power budget and PIM concurrency limits.
//!
//! The paper bounds PIM parallelism by the HBM power budget, computed from
//! the loop pattern of the all-bank interleaved-read current (IDD7, §4.1):
//! the stack may not draw more power than it would when streaming reads at
//! full external bandwidth. Because a bank-level PIM read travels a much
//! shorter (cheaper) path than an external read, many more of them fit in
//! the same budget — 18 concurrently streaming banks per pseudo-channel
//! versus 6 bank-group readers, reproducing the paper's figures.

use crate::{AccessDepth, EnergyModel, StackGeometry, TimingParams};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Concurrency limits derived from the IDD7 power budget.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PowerConstraint {
    /// Power budget per pseudo-channel in watts.
    pub budget_per_pch_w: f64,
    /// Maximum concurrently streaming bank-level GEMV units per pCH.
    pub max_active_banks: u32,
    /// Maximum concurrently streaming BG-level GEMV units per pCH.
    pub max_active_bank_groups: u32,
}

impl PowerConstraint {
    /// Derives the constraint from the IDD7 loop: the budget equals the
    /// power of streaming external reads at full rate (activation included,
    /// amortized over full rows).
    #[must_use]
    pub fn from_idd7(
        geom: &StackGeometry,
        timing: &TimingParams,
        energy: &EnergyModel,
    ) -> PowerConstraint {
        let budget = Self::unit_power_w(geom, timing, energy, AccessDepth::External, false);
        let bank = Self::unit_power_w(geom, timing, energy, AccessDepth::Bank, true);
        let bg = Self::unit_power_w(geom, timing, energy, AccessDepth::BankGroup, true);
        PowerConstraint {
            budget_per_pch_w: budget,
            max_active_banks: ((budget / bank).floor() as u32).min(geom.banks_per_pch()),
            max_active_bank_groups: ((budget / bg).floor() as u32).min(geom.bank_groups_per_pch()),
        }
    }

    /// Power of one streaming reader at `depth` in watts. External readers
    /// stream a beat per tCCDS (full channel rate); in-stack PIM readers
    /// stream a beat per tCCDL.
    #[must_use]
    pub fn unit_power_w(
        geom: &StackGeometry,
        timing: &TimingParams,
        energy: &EnergyModel,
        depth: AccessDepth,
        with_mac: bool,
    ) -> f64 {
        let interval_s = match depth {
            AccessDepth::External | AccessDepth::Buffer => timing.tccd_s_s(),
            AccessDepth::Bank | AccessDepth::BankGroup => timing.tccd_l_s(),
        };
        let bits_per_s = geom.prefetch_bytes as f64 * 8.0 / interval_s;
        energy.streaming_pj_per_bit(depth, with_mac) * 1e-12 * bits_per_s
    }

    /// Maximum concurrently streaming units per pCH for a design point.
    #[must_use]
    pub fn max_active_units(&self, depth: AccessDepth, geom: &StackGeometry) -> u32 {
        match depth {
            AccessDepth::Bank => self.max_active_banks,
            AccessDepth::BankGroup => self.max_active_bank_groups,
            // One unit per pCH; the budget always admits it.
            AccessDepth::Buffer | AccessDepth::External => 1,
        }
        .min(match depth {
            AccessDepth::Bank => geom.banks_per_pch(),
            AccessDepth::BankGroup => geom.bank_groups_per_pch(),
            _ => 1,
        })
    }

    /// Peak stack power when a design point streams at its concurrency
    /// limit (watts). Used by the Fig. 7(a) reproduction.
    #[must_use]
    pub fn peak_stack_power_w(
        &self,
        geom: &StackGeometry,
        timing: &TimingParams,
        energy: &EnergyModel,
        depth: AccessDepth,
    ) -> f64 {
        let units = f64::from(self.max_active_units(depth, geom));
        let with_mac = !matches!(depth, AccessDepth::External);
        let unit = Self::unit_power_w(geom, timing, energy, depth, with_mac);
        units * unit * f64::from(geom.pseudo_channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StackGeometry, TimingParams, EnergyModel, PowerConstraint) {
        let g = StackGeometry::hbm3_8hi();
        let t = TimingParams::hbm3();
        let e = EnergyModel::hbm3();
        let p = PowerConstraint::from_idd7(&g, &t, &e);
        (g, t, e, p)
    }

    #[test]
    fn paper_concurrency_limits() {
        // §4.1: 18 GEMV units per pCH at bank level, 6 at BG level.
        let (_, _, _, p) = setup();
        assert_eq!(p.max_active_banks, 18);
        assert_eq!(p.max_active_bank_groups, 6);
    }

    #[test]
    fn bank_level_bandwidth_ratio_is_9x() {
        // 18 banks × (tCCDL beat) = 9× the external (tCCDS beat) rate.
        let (_, _, _, p) = setup();
        let ratio = f64::from(p.max_active_banks) * 0.5;
        assert!((ratio - 9.0).abs() < 1e-9);
    }

    #[test]
    fn bg_level_bandwidth_ratio_is_3x() {
        let (_, _, _, p) = setup();
        let ratio = f64::from(p.max_active_bank_groups) * 0.5;
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn budget_is_subwatt_per_pch() {
        let (_, _, _, p) = setup();
        assert!(p.budget_per_pch_w > 0.5 && p.budget_per_pch_w < 1.0);
    }

    #[test]
    fn peak_power_ordering() {
        // Buffer-level PIM draws the least; bank- and BG-level approach the
        // budget; none exceed it.
        let (g, t, e, p) = setup();
        let pw = |d| p.peak_stack_power_w(&g, &t, &e, d);
        let buffer = pw(AccessDepth::Buffer);
        let bg = pw(AccessDepth::BankGroup);
        let bank = pw(AccessDepth::Bank);
        let budget = p.budget_per_pch_w * f64::from(g.pseudo_channels);
        assert!(buffer < bg && bg < bank, "{buffer} {bg} {bank}");
        assert!(bank <= budget * 1.0001, "bank {bank} > budget {budget}");
    }

    #[test]
    fn limits_never_exceed_physical_counts() {
        let (g, _, _, p) = setup();
        assert!(p.max_active_banks <= g.banks_per_pch());
        assert!(p.max_active_bank_groups <= g.bank_groups_per_pch());
        assert_eq!(p.max_active_units(AccessDepth::Buffer, &g), 1);
    }
}
