//! Per-bit energy constants and energy accounting.
//!
//! The datapath is modeled as nested segments; an access that terminates at
//! depth *d* pays for every segment from the cell array up to *d*:
//!
//! ```text
//! cell array ── bank I/O ──► [Bank]
//!     bank ── BG bus ──► [BankGroup]
//!     BG ── GBUS + TSV ──► [Buffer]
//!     buffer ── PHY + interposer ──► [External]
//! ```
//!
//! The constants are calibrated against two anchors: (1) the ~4 pJ/bit
//! external HBM access energy reported by O'Connor et al. (MICRO'17, the
//! paper’s energy reference \[43\]), and (2) the paper's IDD7-derived
//! concurrency limits (18 bank-level / 6 BG-level GEMV units per pCH,
//! §4.1), which pin the *ratios* between the segment energies.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Where in the stack hierarchy an access terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum AccessDepth {
    /// Data consumed at the bank (bank-level PIM).
    Bank,
    /// Data consumed at the bank-group GBUS controller (BG-level PIM).
    BankGroup,
    /// Data consumed on the buffer die (buffer-level PIM, softmax unit).
    Buffer,
    /// Data leaves the stack (conventional access).
    External,
}

/// Per-bit energy constants of the HBM datapath.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyModel {
    /// Row-activation energy, amortized per bit of the row (pJ/bit).
    pub act_pj_per_bit: f64,
    /// Cell array to bank I/O (pJ/bit).
    pub array_pj_per_bit: f64,
    /// Bank to bank-group controller (pJ/bit).
    pub bg_bus_pj_per_bit: f64,
    /// GBUS across the die plus TSV to the buffer die (pJ/bit).
    pub tsv_pj_per_bit: f64,
    /// Buffer-die PHY and interposer to the host (pJ/bit).
    pub io_pj_per_bit: f64,
    /// PIM MAC datapath energy per bit of operand streamed (pJ/bit).
    pub mac_pj_per_bit: f64,
}

impl EnergyModel {
    /// HBM3 preset (see module docs for calibration).
    #[must_use]
    pub fn hbm3() -> EnergyModel {
        EnergyModel {
            act_pj_per_bit: 0.10,
            array_pj_per_bit: 0.29,
            bg_bus_pj_per_bit: 0.85,
            tsv_pj_per_bit: 0.90,
            io_pj_per_bit: 1.90,
            mac_pj_per_bit: 0.05,
        }
    }

    /// Datapath energy for moving one bit from the cell array to `depth`
    /// (activation not included).
    #[must_use]
    pub fn read_path_pj_per_bit(&self, depth: AccessDepth) -> f64 {
        let mut e = self.array_pj_per_bit;
        if depth >= AccessDepth::BankGroup {
            e += self.bg_bus_pj_per_bit;
        }
        if depth >= AccessDepth::Buffer {
            e += self.tsv_pj_per_bit;
        }
        if depth >= AccessDepth::External {
            e += self.io_pj_per_bit;
        }
        e
    }

    /// Energy of one row activation (pJ) for a `row_bytes`-byte row.
    #[must_use]
    pub fn act_energy_pj(&self, row_bytes: u64) -> f64 {
        self.act_pj_per_bit * row_bytes as f64 * 8.0
    }

    /// Energy of one read of `bytes` terminating at `depth`, with an
    /// optional PIM MAC charge (pJ). Activation is charged separately.
    #[must_use]
    pub fn read_energy_pj(&self, depth: AccessDepth, bytes: u64, with_mac: bool) -> f64 {
        let bits = bytes as f64 * 8.0;
        let mut per_bit = self.read_path_pj_per_bit(depth);
        if with_mac {
            per_bit += self.mac_pj_per_bit;
        }
        per_bit * bits
    }

    /// Effective streaming energy per bit at `depth` including row-
    /// activation amortized over a full row and the MAC charge if PIM.
    /// This is the quantity the power budget divides by.
    #[must_use]
    pub fn streaming_pj_per_bit(&self, depth: AccessDepth, with_mac: bool) -> f64 {
        let mut e = self.act_pj_per_bit + self.read_path_pj_per_bit(depth);
        if with_mac {
            e += self.mac_pj_per_bit;
        }
        e
    }
}

/// Accumulated energy by category, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyCounter {
    /// Row activations.
    pub activation_pj: f64,
    /// Read/write datapath movement inside the stack.
    pub datapath_pj: f64,
    /// External I/O crossings.
    pub io_pj: f64,
    /// PIM arithmetic (GEMV MACs, softmax).
    pub compute_pj: f64,
}

impl EnergyCounter {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.activation_pj + self.datapath_pj + self.io_pj + self.compute_pj
    }

    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: &EnergyCounter) {
        self.activation_pj += other.activation_pj;
        self.datapath_pj += other.datapath_pj;
        self.io_pj += other.io_pj;
        self.compute_pj += other.compute_pj;
    }

    /// Scales every component (e.g. to replicate one simulated channel
    /// across a stack).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EnergyCounter {
        EnergyCounter {
            activation_pj: self.activation_pj * factor,
            datapath_pj: self.datapath_pj * factor,
            io_pj: self.io_pj * factor,
            compute_pj: self.compute_pj * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_access_is_about_4pj_per_bit() {
        let e = EnergyModel::hbm3();
        let total = e.streaming_pj_per_bit(AccessDepth::External, false);
        assert!((total - 4.04).abs() < 0.1, "external = {total} pJ/bit");
    }

    #[test]
    fn depth_energy_is_monotone() {
        let e = EnergyModel::hbm3();
        let d = [
            AccessDepth::Bank,
            AccessDepth::BankGroup,
            AccessDepth::Buffer,
            AccessDepth::External,
        ];
        for w in d.windows(2) {
            assert!(e.read_path_pj_per_bit(w[0]) < e.read_path_pj_per_bit(w[1]));
        }
    }

    #[test]
    fn bank_read_is_much_cheaper_than_external() {
        // The PIM energy win: a bank-level read avoids ~90% of the path.
        let e = EnergyModel::hbm3();
        let ratio = e.read_path_pj_per_bit(AccessDepth::External)
            / e.read_path_pj_per_bit(AccessDepth::Bank);
        assert!(ratio > 5.0, "ratio = {ratio}");
    }

    #[test]
    fn act_energy_scales_with_row() {
        let e = EnergyModel::hbm3();
        assert!((e.act_energy_pj(2048) - 2.0 * e.act_energy_pj(1024)).abs() < 1e-9);
    }

    #[test]
    fn counter_absorbs_and_scales() {
        let mut a = EnergyCounter {
            activation_pj: 1.0,
            datapath_pj: 2.0,
            io_pj: 3.0,
            compute_pj: 4.0,
        };
        a.absorb(&a.clone().scaled(1.0));
        assert!((a.total_pj() - 20.0).abs() < 1e-12);
        assert!((a.total_j() - 20e-12).abs() < 1e-24);
    }

    #[test]
    fn mac_charge_applied_when_requested() {
        let e = EnergyModel::hbm3();
        let plain = e.read_energy_pj(AccessDepth::Bank, 32, false);
        let mac = e.read_energy_pj(AccessDepth::Bank, 32, true);
        assert!(mac > plain);
        assert!((mac - plain - e.mac_pj_per_bit * 256.0).abs() < 1e-9);
    }
}
