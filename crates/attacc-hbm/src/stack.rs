//! Stack-level PIM execution: all pseudo-channels driven together.
//!
//! The AttAcc controller issues `PIM_ACT_AB` / `PIM_MAC_AB` to a whole
//! stack; every pseudo-channel executes the same stream against its slice
//! of the data. [`simulate_stack`] coordinates the per-channel streams and
//! reports stack-level time (the slowest channel), aggregate energy, and
//! total command counts — the quantity the PIM device model charges per
//! head.

use crate::engine::{simulate_stream, StreamOutcome, StreamSpec};
use crate::{EnergyCounter, HbmConfig};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A stack-level streaming job: one [`StreamSpec`] per pseudo-channel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StackStreamSpec {
    /// Per-channel specs (length must equal the stack's channel count).
    pub channels: Vec<StreamSpec>,
}

impl StackStreamSpec {
    /// Spreads `total_bytes` evenly over every bank of every channel at
    /// the given concurrency cap.
    #[must_use]
    pub fn uniform(cfg: &HbmConfig, total_bytes: u64, max_active: u32) -> StackStreamSpec {
        let pchs = u64::from(cfg.geometry.pseudo_channels);
        let base = total_bytes / pchs;
        let mut rem = total_bytes % pchs;
        let channels = (0..pchs)
            .map(|_| {
                let extra = u64::from(rem > 0);
                rem = rem.saturating_sub(1);
                StreamSpec::uniform(&cfg.geometry, base + extra, max_active)
            })
            .collect();
        StackStreamSpec { channels }
    }

    /// Total bytes across the stack.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(StreamSpec::total_bytes).sum()
    }
}

/// Outcome of a stack-level stream.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StackOutcome {
    /// Stack completion time: the slowest channel (ps).
    pub elapsed_ps: u64,
    /// Channel-balance ratio: slowest / fastest elapsed (1.0 = perfect).
    pub imbalance: f64,
    /// Total MAC beats across channels.
    pub reads: u64,
    /// Total activations across channels.
    pub activates: u64,
    /// Aggregate energy.
    pub energy: EnergyCounter,
}

/// Executes all channels of a stack-level job.
///
/// # Panics
/// Panics if the spec's channel count does not match the geometry.
#[must_use]
pub fn simulate_stack(cfg: &HbmConfig, spec: &StackStreamSpec) -> StackOutcome {
    assert_eq!(
        spec.channels.len(),
        cfg.geometry.pseudo_channels as usize,
        "spec must cover every pseudo-channel"
    );
    let mut slowest = 0u64;
    let mut fastest = u64::MAX;
    let mut reads = 0u64;
    let mut activates = 0u64;
    let mut energy = EnergyCounter::default();
    for ch in &spec.channels {
        let out: StreamOutcome = simulate_stream(cfg, ch);
        slowest = slowest.max(out.elapsed_ps);
        if out.reads > 0 {
            fastest = fastest.min(out.elapsed_ps);
        }
        reads += out.reads;
        activates += out.activates;
        energy.absorb(&out.energy);
    }
    StackOutcome {
        elapsed_ps: slowest,
        imbalance: if fastest == u64::MAX || fastest == 0 {
            1.0
        } else {
            slowest as f64 / fastest as f64
        },
        reads,
        activates,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessDepth;

    fn cfg() -> HbmConfig {
        HbmConfig::hbm3_8hi()
    }

    #[test]
    fn uniform_stack_spec_covers_everything() {
        let c = cfg();
        let spec = StackStreamSpec::uniform(&c, 10 << 20, 18);
        assert_eq!(spec.channels.len(), 32);
        assert_eq!(spec.total_bytes(), 10 << 20);
    }

    #[test]
    fn balanced_job_has_no_imbalance() {
        let c = cfg();
        let spec = StackStreamSpec::uniform(&c, 32 << 20, c.power.max_active_banks);
        let out = simulate_stack(&c, &spec);
        assert!((out.imbalance - 1.0).abs() < 0.01, "imbalance = {}", out.imbalance);
        assert_eq!(out.reads, (32 << 20) / 32);
    }

    #[test]
    fn stack_time_equals_channel_time_for_even_jobs() {
        // All channels identical → stack time = per-channel time.
        let c = cfg();
        let spec = StackStreamSpec::uniform(&c, 32 << 20, 18);
        let stack = simulate_stack(&c, &spec);
        let one = simulate_stream(&c, &spec.channels[0]);
        assert_eq!(stack.elapsed_ps, one.elapsed_ps);
        // Energy is 32 channels' worth.
        let ratio = stack.energy.total_pj() / one.energy.total_pj();
        assert!((ratio - 32.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn skewed_job_reports_imbalance() {
        let c = cfg();
        let mut spec = StackStreamSpec::uniform(&c, 32 << 20, 18);
        // Overload channel 0 with 4× the data.
        spec.channels[0] = StreamSpec::uniform(&c.geometry, 4 << 20, 18);
        let out = simulate_stack(&c, &spec);
        assert!(out.imbalance > 2.0, "imbalance = {}", out.imbalance);
    }

    #[test]
    fn stack_bandwidth_reaches_nine_x() {
        // A large stack-level stream sustains ~9× the external bandwidth.
        let c = cfg();
        let bytes = 256u64 << 20;
        let spec = StackStreamSpec::uniform(&c, bytes, c.power.max_active_banks);
        let out = simulate_stack(&c, &spec);
        let achieved = bytes as f64 / (out.elapsed_ps as f64 * 1e-12);
        let ratio = achieved / c.external_bandwidth_bytes_per_s();
        // Refresh costs ~6%, so expect ≈ 8.4–9×.
        assert!(ratio > 8.0 && ratio < 9.5, "ratio = {ratio}");
    }

    #[test]
    fn empty_channels_are_tolerated() {
        let c = cfg();
        let mut spec = StackStreamSpec::uniform(&c, 0, 18);
        spec.channels[3] = StreamSpec {
            bytes_per_bank: vec![1024; 32],
            max_active: 18,
            depth: AccessDepth::Bank,
        };
        let out = simulate_stack(&c, &spec);
        assert!(out.elapsed_ps > 0);
        assert_eq!(out.imbalance, 1.0, "single active channel is trivially balanced");
    }
}
