//! DRAM and PIM command vocabularies.

use crate::BankAddr;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A conventional per-bank DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum DramCommand {
    /// Open `row` in `bank`.
    Activate {
        /// Target bank.
        bank: BankAddr,
        /// Row to open.
        row: u64,
    },
    /// Read one prefetch-sized beat from the open row of `bank`.
    Read {
        /// Target bank.
        bank: BankAddr,
    },
    /// Write one prefetch-sized beat to the open row of `bank`.
    Write {
        /// Target bank.
        bank: BankAddr,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Target bank.
        bank: BankAddr,
    },
}

/// The AttAcc PIM command set (§5.1). All are encoded as RFU commands on
/// the standard HBM command path; the simulator gives each its timing and
/// energy semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum PimCommand {
    /// `PIM_SET_CONFIG`: write KV-partitioning metadata to the GEMV units.
    SetConfig,
    /// `PIM_ACT_AB`: activate the same `row` in all banks of the channel.
    ActAb {
        /// Row opened in every bank.
        row: u64,
    },
    /// `PIM_MAC_AB`: one multiply-accumulate beat in all banks — each
    /// streaming bank reads one prefetch from its open row into its GEMV
    /// unit.
    MacAb,
    /// `PIM_SFM`: run the softmax unit over `elems` score elements.
    Sfm {
        /// Score-vector length processed.
        elems: u64,
    },
    /// `PIM_WR_GB`: write `bytes` into a GEMV-unit input buffer.
    WrGb {
        /// Payload size.
        bytes: u64,
    },
    /// `PIM_MV_GB`: move `bytes` of GEMV output to the softmax buffer.
    MvGb {
        /// Payload size.
        bytes: u64,
    },
    /// `PIM_MV_SB`: move `bytes` of softmax output to the GEMV buffers.
    MvSb {
        /// Payload size.
        bytes: u64,
    },
    /// `PIM_RD_SB`: read `bytes` of final context output from the softmax
    /// buffer to the host.
    RdSb {
        /// Payload size.
        bytes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StackGeometry;

    #[test]
    fn commands_are_comparable_and_hashable() {
        let g = StackGeometry::hbm3_8hi();
        let b = BankAddr::from_index(&g, 3);
        let a = DramCommand::Read { bank: b };
        assert_eq!(a, DramCommand::Read { bank: b });
        let mut set = std::collections::HashSet::new();
        set.insert(PimCommand::MacAb);
        set.insert(PimCommand::MacAb);
        assert_eq!(set.len(), 1);
    }
}
