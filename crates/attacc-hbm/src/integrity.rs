//! Data-plane integrity: seeded bit-fault injection and on-die SEC-DED
//! ECC (HBM3-style).
//!
//! AttAcc consumes cell reads *inside* the stack, so a flipped bit never
//! crosses a link-level CRC — it flows straight into a MAC lane. This
//! module supplies the two device-level halves of the integrity story:
//!
//! * [`BitFaultModel`] — a seeded raw-bit-error process over read words.
//!   Same determinism contract as the chaos layer: every draw comes from
//!   a SplitMix64 counter stream keyed by `(seed, word index)`, no wall
//!   clock, no hash-map iteration, so a given `(seed, index)` always
//!   yields the same flips at any thread count.
//! * [`EccConfig`] — an on-die SEC-DED code (the HBM3 default is the
//!   (136, 128) code: 128 data bits + 8 check bits). It classifies a
//!   word's flip count into [`EccOutcome`]s, inflates streamed bytes by
//!   its [`EccConfig::overhead_factor`] so the *existing* command engine
//!   charges the timing cost of moving check bits, and derives a
//!   protected [`EnergyModel`](crate::energy::EnergyModel) via
//!   [`EnergyModel::with_ecc`](crate::energy::EnergyModel::with_ecc).
//!
//! The closed-form [`word_error_probs`] gives the exact binomial
//! probability of each outcome per word, and
//! [`WordErrorProbs::over_words`] lifts it to a many-word read (e.g. all
//! KV words behind one generated token). The serving-layer sweeps use
//! these analytic rates so that vanishingly rare events (an SDC under
//! ECC) still produce exact, strictly ordered figures instead of sampled
//! zeros.

use crate::energy::EnergyModel;
use crate::engine::StreamSpec;
use crate::geometry::StackGeometry;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// SplitMix64 — the same generator `attacc-cluster` uses (duplicated here
/// because the dependency arrow points the other way: the cluster crates
/// sit *above* the device layer).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A counter-mode uniform stream over `splitmix64`.
#[derive(Debug, Clone, Copy)]
struct Stream {
    state: u64,
    counter: u64,
}

impl Stream {
    fn new(seed: u64) -> Stream {
        Stream { state: seed, counter: 0 }
    }

    fn next_u64(&mut self) -> u64 {
        let v = splitmix64(self.state ^ self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        self.counter += 1;
        v
    }

    /// Uniform in `[0, 1)` with 53 random bits (the chaos-layer idiom).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Whether a fault site produces fresh flips on every read or the same
/// flips on every read of the same word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum FaultKind {
    /// Soft errors: independent draws per *read*. Callers pass a
    /// monotonically increasing read sequence number as the word index.
    Transient,
    /// Hard faults: a pure function of the *cell address*. Re-reading the
    /// same word reproduces the same flips.
    StuckAt,
}

/// A seeded raw-bit-error process over read words.
///
/// `ber` is the probability that any single stored bit is read inverted.
/// Flip counts per word follow the exact binomial distribution (drawn by
/// CDF inversion from one uniform), and flip positions are drawn without
/// replacement — all from the `(seed, index)` stream, so the model is a
/// pure function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BitFaultModel {
    /// Raw bit error rate (probability per stored bit per read).
    pub ber: f64,
    /// Stream seed.
    pub seed: u64,
    /// Transient (per-read) vs stuck-at (per-cell) semantics.
    pub kind: FaultKind,
}

impl BitFaultModel {
    /// No faults at all — the inert model.
    #[must_use]
    pub fn none() -> BitFaultModel {
        BitFaultModel { ber: 0.0, seed: 0, kind: FaultKind::Transient }
    }

    /// A transient (soft-error) model.
    #[must_use]
    pub fn transient(ber: f64, seed: u64) -> BitFaultModel {
        BitFaultModel { ber, seed, kind: FaultKind::Transient }
    }

    /// A stuck-at (hard-fault) model.
    #[must_use]
    pub fn stuck_at(ber: f64, seed: u64) -> BitFaultModel {
        BitFaultModel { ber, seed, kind: FaultKind::StuckAt }
    }

    fn stream(&self, index: u64) -> Stream {
        // Distinct kinds get distinct streams so switching semantics also
        // reseeds (a stuck-at map is not a replay of the transient one).
        let tag = match self.kind {
            FaultKind::Transient => 0x54u64 << 56,
            FaultKind::StuckAt => 0x53u64 << 56,
        };
        Stream::new(splitmix64(self.seed ^ tag ^ index))
    }

    /// Number of flipped bits when reading word `index` of `word_bits`
    /// bits: an exact binomial draw via CDF inversion.
    #[must_use]
    pub fn flip_count(&self, index: u64, word_bits: u32) -> u32 {
        if self.ber <= 0.0 || word_bits == 0 {
            return 0;
        }
        if self.ber >= 1.0 {
            return word_bits;
        }
        let u = self.stream(index).next_f64();
        let n = f64::from(word_bits);
        let p = self.ber;
        // Walk the binomial CDF: pmf(0) = (1-p)^n, then the usual ratio
        // recurrence. Tiny p makes pmf(0) ≈ 1, so this loop almost always
        // stops at k = 0.
        let mut pmf = (1.0 - p).powf(n);
        let mut cdf = pmf;
        let mut k = 0u32;
        while u >= cdf && k < word_bits {
            pmf *= (n - f64::from(k)) / f64::from(k + 1) * (p / (1.0 - p));
            cdf += pmf;
            k += 1;
            if pmf == 0.0 {
                break;
            }
        }
        k
    }

    /// The flipped bit positions (distinct, in draw order) for word
    /// `index`. Length equals [`BitFaultModel::flip_count`].
    #[must_use]
    pub fn flip_positions(&self, index: u64, word_bits: u32) -> Vec<u32> {
        let count = self.flip_count(index, word_bits);
        let mut s = self.stream(index);
        s.next_f64(); // burn the flip-count draw to decorrelate positions
        let mut out: Vec<u32> = Vec::with_capacity(count as usize);
        while out.len() < count as usize {
            let bit = (s.next_u64() % u64::from(word_bits)) as u32;
            if !out.contains(&bit) {
                out.push(bit);
            }
        }
        out
    }
}

/// What the on-die decoder concluded about one word read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum EccOutcome {
    /// No flips: the word is delivered as stored.
    Clean,
    /// Exactly one flip: corrected in-line, correct data delivered.
    Corrected,
    /// An even flip count ≥ 2: detected but uncorrectable (DUE). The
    /// consumer sees a poisoned word and must recompute or drop.
    Detected,
    /// An odd flip count ≥ 3: the SEC-DED syndrome looks like a single
    /// correctable error, the decoder "corrects" the wrong bit, and
    /// corrupt data is delivered silently (SDC).
    Silent,
}

/// An on-die SEC-DED code: `data_bits` of payload carry `check_bits` of
/// redundancy per code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EccConfig {
    /// Payload bits per code word.
    pub data_bits: u32,
    /// Check bits per code word.
    pub check_bits: u32,
}

impl EccConfig {
    /// The HBM3 on-die code: (136, 128) SEC-DED.
    #[must_use]
    pub const fn hbm3() -> EccConfig {
        EccConfig { data_bits: 128, check_bits: 8 }
    }

    /// Total stored bits per code word.
    #[must_use]
    pub const fn word_bits(&self) -> u32 {
        self.data_bits + self.check_bits
    }

    /// Fraction of stored bits that are payload (128/136 ≈ 0.941 for the
    /// HBM3 code).
    #[must_use]
    pub fn code_rate(&self) -> f64 {
        f64::from(self.data_bits) / f64::from(self.word_bits())
    }

    /// Stored-bit inflation over the raw payload (136/128 = 1.0625 for
    /// the HBM3 code) — the factor by which protected streams grow.
    #[must_use]
    pub fn overhead_factor(&self) -> f64 {
        f64::from(self.word_bits()) / f64::from(self.data_bits)
    }

    /// Stored bytes needed to hold `payload_bytes` of protected payload
    /// (rounded up to whole bytes).
    #[must_use]
    pub fn protected_bytes(&self, payload_bytes: u64) -> u64 {
        let num = payload_bytes
            .checked_mul(u64::from(self.word_bits()))
            .expect("protected payload size overflows u64");
        num.div_ceil(u64::from(self.data_bits))
    }

    /// A [`StreamSpec`] that moves `payload_bytes` of *protected* data:
    /// the existing command engine then charges the extra activates,
    /// column commands and energy of the check bits with no special
    /// cases.
    #[must_use]
    pub fn protected_stream(
        &self,
        geom: &StackGeometry,
        payload_bytes: u64,
        max_active: u32,
    ) -> StreamSpec {
        StreamSpec::uniform(geom, self.protected_bytes(payload_bytes), max_active)
    }

    /// Classifies a raw flip count over one stored code word.
    #[must_use]
    pub fn decode(&self, flips: u32) -> EccOutcome {
        match flips {
            0 => EccOutcome::Clean,
            1 => EccOutcome::Corrected,
            f if f % 2 == 0 => EccOutcome::Detected,
            _ => EccOutcome::Silent,
        }
    }
}

/// Per-bit decode energy of the SEC-DED logic (pJ/bit). Small next to the
/// 0.29 pJ/bit cell-array charge: the decoder is a thin XOR tree.
pub const ECC_LOGIC_PJ_PER_BIT: f64 = 0.02;

impl EnergyModel {
    /// The energy model of an ECC-protected datapath: every in-stack
    /// segment (activation, array, bank-group bus, TSV) moves
    /// `overhead_factor` more bits per payload bit, and the bank I/O pays
    /// `ecc_logic_pj_per_bit` of decode logic. External I/O is unchanged —
    /// on-die ECC strips check bits before the PHY.
    #[must_use]
    pub fn with_ecc(&self, overhead_factor: f64, ecc_logic_pj_per_bit: f64) -> EnergyModel {
        EnergyModel {
            act_pj_per_bit: self.act_pj_per_bit * overhead_factor,
            array_pj_per_bit: self.array_pj_per_bit * overhead_factor + ecc_logic_pj_per_bit,
            bg_bus_pj_per_bit: self.bg_bus_pj_per_bit * overhead_factor,
            tsv_pj_per_bit: self.tsv_pj_per_bit * overhead_factor,
            io_pj_per_bit: self.io_pj_per_bit,
            mac_pj_per_bit: self.mac_pj_per_bit,
        }
    }
}

impl EccConfig {
    /// [`EnergyModel::with_ecc`] with this code's overhead and the stock
    /// decoder charge.
    #[must_use]
    pub fn energy_model(&self, base: &EnergyModel) -> EnergyModel {
        base.with_ecc(self.overhead_factor(), ECC_LOGIC_PJ_PER_BIT)
    }
}

/// Exact per-word outcome probabilities under a raw bit error rate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WordErrorProbs {
    /// P(word delivered clean, no event).
    pub clean: f64,
    /// P(corrected single-bit error).
    pub corrected: f64,
    /// P(detected-uncorrectable error).
    pub detected: f64,
    /// P(silent data corruption).
    pub silent: f64,
}

impl WordErrorProbs {
    /// Lifts per-word probabilities to a read of `words` independent
    /// words, classified by the worst event observed (silent > detected >
    /// corrected > clean).
    #[must_use]
    pub fn over_words(&self, words: u64) -> WordErrorProbs {
        let w = words as f64;
        // P(no event of severity ≥ X across all words) via exp/ln_1p so
        // astronomically small per-word probabilities stay exact.
        let none_ge = |p: f64| -> f64 {
            if p <= 0.0 {
                1.0
            } else if p >= 1.0 {
                0.0
            } else {
                (w * (-p).ln_1p()).exp()
            }
        };
        let no_silent = none_ge(self.silent);
        let no_det = none_ge(self.silent + self.detected);
        let no_corr = none_ge(self.silent + self.detected + self.corrected);
        WordErrorProbs {
            clean: no_corr,
            corrected: no_det - no_corr,
            detected: no_silent - no_det,
            silent: 1.0 - no_silent,
        }
    }
}

/// Exact binomial outcome probabilities for one word read at raw bit
/// error rate `ber`. With `ecc = None` the word is unprotected `data_bits`
/// wide and *any* flip is silent; with a code, the stored word is
/// `word_bits` wide and flips classify per [`EccConfig::decode`].
#[must_use]
pub fn word_error_probs(ber: f64, data_bits: u32, ecc: Option<&EccConfig>) -> WordErrorProbs {
    let bits = ecc.map_or(data_bits, EccConfig::word_bits);
    let mut probs =
        WordErrorProbs { clean: 0.0, corrected: 0.0, detected: 0.0, silent: 0.0 };
    if ber <= 0.0 || bits == 0 {
        probs.clean = 1.0;
        return probs;
    }
    let p = ber.min(1.0);
    let n = f64::from(bits);
    // pmf(k) by the ratio recurrence; terms vanish fast for tiny p.
    let mut pmf = (1.0 - p).powf(n);
    for k in 0..=bits {
        let outcome = match ecc {
            Some(code) => code.decode(k),
            None => {
                if k == 0 {
                    EccOutcome::Clean
                } else {
                    EccOutcome::Silent
                }
            }
        };
        match outcome {
            EccOutcome::Clean => probs.clean += pmf,
            EccOutcome::Corrected => probs.corrected += pmf,
            EccOutcome::Detected => probs.detected += pmf,
            EccOutcome::Silent => probs.silent += pmf,
        }
        if k < bits {
            if p >= 1.0 {
                pmf = if k + 1 == bits { 1.0 } else { 0.0 };
            } else {
                pmf *= (n - f64::from(k)) / f64::from(k + 1) * (p / (1.0 - p));
            }
            if pmf == 0.0 && k > 0 {
                break;
            }
        }
    }
    probs
}

/// Running outcome counts for a stream of decoded words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct IntegrityCounters {
    /// Words read.
    pub words: u64,
    /// Raw bits flipped before decoding.
    pub flipped_bits: u64,
    /// Words corrected in-line.
    pub corrected: u64,
    /// Detected-uncorrectable words.
    pub detected: u64,
    /// Silently corrupted words.
    pub silent: u64,
}

impl IntegrityCounters {
    /// Records one decoded word.
    pub fn record(&mut self, flips: u32, outcome: EccOutcome) {
        self.words += 1;
        self.flipped_bits += u64::from(flips);
        match outcome {
            EccOutcome::Clean => {}
            EccOutcome::Corrected => self.corrected += 1,
            EccOutcome::Detected => self.detected += 1,
            EccOutcome::Silent => self.silent += 1,
        }
    }

    /// Component-wise accumulation.
    pub fn absorb(&mut self, other: &IntegrityCounters) {
        self.words += other.words;
        self.flipped_bits += other.flipped_bits;
        self.corrected += other.corrected;
        self.detected += other.detected;
        self.silent += other.silent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_stream;
    use crate::HbmConfig;

    #[test]
    fn zero_ber_never_flips() {
        let m = BitFaultModel::none();
        for i in 0..1000 {
            assert_eq!(m.flip_count(i, 136), 0);
            assert!(m.flip_positions(i, 136).is_empty());
        }
    }

    #[test]
    fn flips_are_deterministic_per_seed_and_index() {
        let a = BitFaultModel::transient(1e-3, 42);
        let b = BitFaultModel::transient(1e-3, 42);
        let c = BitFaultModel::transient(1e-3, 43);
        let mut diverged = false;
        for i in 0..5000 {
            assert_eq!(a.flip_count(i, 136), b.flip_count(i, 136));
            assert_eq!(a.flip_positions(i, 136), b.flip_positions(i, 136));
            diverged |= a.flip_count(i, 136) != c.flip_count(i, 136);
        }
        assert!(diverged, "different seeds must give different flip maps");
    }

    #[test]
    fn transient_and_stuck_at_streams_differ() {
        let t = BitFaultModel::transient(0.5, 9);
        let s = BitFaultModel::stuck_at(0.5, 9);
        let differs = (0..64).any(|i| t.flip_count(i, 136) != s.flip_count(i, 136));
        assert!(differs);
    }

    #[test]
    fn flip_rate_tracks_ber() {
        let m = BitFaultModel::transient(0.01, 7);
        let total: u64 = (0..20_000).map(|i| u64::from(m.flip_count(i, 136))).sum();
        let rate = total as f64 / (20_000.0 * 136.0);
        assert!((rate - 0.01).abs() < 0.002, "observed rate {rate}");
    }

    #[test]
    fn positions_are_distinct_and_in_range() {
        let m = BitFaultModel::transient(0.05, 3);
        for i in 0..2000 {
            let pos = m.flip_positions(i, 136);
            assert_eq!(pos.len() as u32, m.flip_count(i, 136));
            for (a, &p) in pos.iter().enumerate() {
                assert!(p < 136);
                assert!(!pos[a + 1..].contains(&p), "duplicate bit {p}");
            }
        }
    }

    #[test]
    fn sec_ded_classification() {
        let e = EccConfig::hbm3();
        assert_eq!(e.decode(0), EccOutcome::Clean);
        assert_eq!(e.decode(1), EccOutcome::Corrected);
        assert_eq!(e.decode(2), EccOutcome::Detected);
        assert_eq!(e.decode(3), EccOutcome::Silent);
        assert_eq!(e.decode(4), EccOutcome::Detected);
        assert_eq!(e.decode(5), EccOutcome::Silent);
    }

    #[test]
    fn hbm3_code_rate_and_overhead() {
        let e = EccConfig::hbm3();
        assert_eq!(e.word_bits(), 136);
        assert!((e.code_rate() - 128.0 / 136.0).abs() < 1e-12);
        assert!((e.overhead_factor() - 1.0625).abs() < 1e-12);
        assert_eq!(e.protected_bytes(128), 136);
        assert_eq!(e.protected_bytes(0), 0);
        // Rounds up to whole bytes.
        assert_eq!(e.protected_bytes(1), 2);
    }

    #[test]
    fn word_probs_sum_to_one_and_order_sanely() {
        for &ber in &[0.0, 1e-12, 1e-6, 1e-3, 0.1] {
            let p = word_error_probs(ber, 128, Some(&EccConfig::hbm3()));
            let sum = p.clean + p.corrected + p.detected + p.silent;
            assert!((sum - 1.0).abs() < 1e-9, "ber {ber}: sum {sum}");
            if ber > 0.0 && ber <= 1e-3 {
                // In the rare-error regime single-bit events dominate
                // doubles dominate triples (at ber ~ 0.1 the mass moves to
                // high flip counts and the even/odd split washes out).
                assert!(p.corrected > p.detected);
                assert!(p.detected > p.silent);
            }
        }
    }

    #[test]
    fn ecc_slashes_silent_corruption() {
        let ber = 1e-6;
        let unprot = word_error_probs(ber, 128, None);
        let prot = word_error_probs(ber, 128, Some(&EccConfig::hbm3()));
        assert!(prot.silent < unprot.silent * 1e-6, "{} vs {}", prot.silent, unprot.silent);
        assert_eq!(unprot.corrected, 0.0);
        assert_eq!(unprot.detected, 0.0);
    }

    #[test]
    fn over_words_preserves_total_and_priority() {
        let p = word_error_probs(1e-7, 128, Some(&EccConfig::hbm3())).over_words(1_000_000);
        let sum = p.clean + p.corrected + p.detected + p.silent;
        assert!((sum - 1.0).abs() < 1e-9);
        // A million words: corrected events near-certain, silent still rare.
        assert!(p.corrected > 0.9, "corrected {}", p.corrected);
        assert!(p.silent < 1e-6, "silent {}", p.silent);
        // Zero-word reads are clean with certainty.
        let z = p.over_words(0);
        assert_eq!(z.clean, 1.0);
    }

    #[test]
    fn protected_stream_costs_more_time_and_energy() {
        let hbm = HbmConfig::hbm3_8hi();
        let code = EccConfig::hbm3();
        let payload = 1u64 << 20;
        let plain = simulate_stream(
            &hbm,
            &StreamSpec::uniform(&hbm.geometry, payload, hbm.power.max_active_banks),
        );
        let mut protected_cfg = hbm.clone();
        protected_cfg.energy = code.energy_model(&hbm.energy);
        let prot = simulate_stream(
            &protected_cfg,
            &code.protected_stream(&hbm.geometry, payload, hbm.power.max_active_banks),
        );
        assert!(prot.elapsed_ps > plain.elapsed_ps);
        assert!(prot.energy.total_pj() > plain.energy.total_pj());
        // The time overhead is close to the code-rate inflation, never 2×.
        let ratio = prot.elapsed_ps as f64 / plain.elapsed_ps as f64;
        assert!(ratio < 1.15, "time ratio {ratio}");
    }

    #[test]
    fn ecc_energy_model_scales_in_stack_segments_only() {
        let base = EnergyModel::hbm3();
        let prot = EccConfig::hbm3().energy_model(&base);
        assert!(prot.array_pj_per_bit > base.array_pj_per_bit);
        assert!(prot.tsv_pj_per_bit > base.tsv_pj_per_bit);
        assert_eq!(prot.io_pj_per_bit, base.io_pj_per_bit);
        assert_eq!(prot.mac_pj_per_bit, base.mac_pj_per_bit);
    }

    #[test]
    fn counters_record_and_absorb() {
        let mut c = IntegrityCounters::default();
        c.record(0, EccOutcome::Clean);
        c.record(1, EccOutcome::Corrected);
        c.record(2, EccOutcome::Detected);
        c.record(3, EccOutcome::Silent);
        let mut total = IntegrityCounters::default();
        total.absorb(&c);
        total.absorb(&c);
        assert_eq!(total.words, 8);
        assert_eq!(total.flipped_bits, 12);
        assert_eq!(total.corrected, 2);
        assert_eq!(total.detected, 2);
        assert_eq!(total.silent, 2);
    }
}
