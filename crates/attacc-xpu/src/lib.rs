//! Conventional-platform (xPU) models for the AttAcc simulator.
//!
//! The paper's GPU baseline is a roofline machine: the DGX A100 with its
//! memory replaced by HBM3 (2.5 PFLOPS FP16, 26.8 TB/s, 640 GB for
//! `DGX_Base`). This crate models:
//!
//! * [`ComputeDevice`] — a roofline device executing [`attacc_model::Op`]s,
//! * [`GpuSystem`] — DGX-class systems (`DGX_Base`, `DGX_Large`, `2×DGX`),
//! * [`CpuSystem`] — the `DGX_CPU` alternative that runs attention on CPU
//!   memory (§7.6),
//! * [`Interconnect`] — NVLink/PCIe-class links and all-reduce costs,
//! * [`XpuEnergyModel`] — compute, DRAM and link energy constants.
//!
//! # Example
//!
//! ```
//! use attacc_xpu::GpuSystem;
//! use attacc_model::{ModelConfig, Phase, StageWorkload};
//!
//! let dgx = GpuSystem::dgx_base();
//! let m = ModelConfig::gpt3_175b();
//! let wl = StageWorkload::uniform(&m, Phase::gen(2048), 1);
//! let t = dgx.stage_time(&wl);
//! // A batch-1 Gen stage is dominated by reading the 326 GB of weights.
//! assert!(t.total_s > 0.010 && t.total_s < 0.030);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod energy;
pub mod gpu;
pub mod interconnect;
pub mod roofline;
pub mod sharding;
pub mod tiling;

pub use cpu::CpuSystem;
pub use energy::XpuEnergyModel;
pub use gpu::{GpuSystem, StageTime};
pub use interconnect::Interconnect;
pub use roofline::ComputeDevice;
pub use sharding::{DecoderSharding, Shard, ShardAxis, ShardingError};
pub use tiling::TilingPlan;
