//! The `DGX_CPU` alternative (§7.6): attention offloaded to CPU memory.
//!
//! The host CPUs contribute a large DDR pool (enabling bigger batches) but
//! little bandwidth, so the attention layer — bandwidth-bound — runs far
//! slower than on the GPUs, let alone on AttAcc.

use crate::ComputeDevice;
use attacc_model::{Op, GIB};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A dual-socket server CPU subsystem holding the KV caches.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CpuSystem {
    /// Roofline device for attention execution on the CPUs.
    pub device: ComputeDevice,
    /// DDR capacity available for KV caches, bytes.
    pub capacity_bytes: u64,
}

impl CpuSystem {
    /// Dual-socket DDR5 host of a DGX-class box: ~0.8 TB/s, 4 TB DDR.
    #[must_use]
    pub fn dgx_host() -> CpuSystem {
        CpuSystem {
            device: ComputeDevice {
                name: "host CPUs".into(),
                peak_flops_fp16: 50e12,
                mem_bw: 0.8e12,
                compute_eff: 0.8,
                mem_eff: 0.8,
                launch_s: 5e-6,
            },
            capacity_bytes: 4096 * GIB,
        }
    }

    /// Time to execute an attention op on the CPUs.
    #[must_use]
    pub fn attention_time_s(&self, op: &Op) -> f64 {
        debug_assert!(matches!(op, Op::Attention { .. }));
        self.device.op_time_s(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_model::{AttnShape, DataType};

    fn attn(batch: u64) -> Op {
        Op::Attention {
            groups: vec![AttnShape {
                n_requests: batch,
                l: 2048,
                q_rows: 1,
            }],
            n_head: 96,
            kv_heads: 96,
            d_head: 128,
            kv_dtype: DataType::Fp16,
            act_dtype: DataType::Fp16,
        }
    }

    #[test]
    fn cpu_attention_is_much_slower_than_gpu() {
        let cpu = CpuSystem::dgx_host();
        let gpu = crate::GpuSystem::dgx_base();
        let op = attn(32);
        let t_cpu = cpu.attention_time_s(&op);
        let t_gpu = gpu.device.op_time_s(&op);
        assert!(t_cpu > 20.0 * t_gpu, "{t_cpu} vs {t_gpu}");
    }

    #[test]
    fn cpu_has_big_capacity() {
        let cpu = CpuSystem::dgx_host();
        assert!(cpu.capacity_bytes > 6 * crate::GpuSystem::dgx_base().capacity_bytes);
    }
}
