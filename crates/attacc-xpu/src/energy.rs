//! Energy model of the conventional platform.
//!
//! Calibration: an A100-class GPU delivers ~312 TFLOPS FP16 at ~400 W, or
//! roughly 1 pJ per FLOP at high utilization; an off-chip HBM access costs
//! ~4 pJ/bit at the device plus controller/PHY overheads on the processor
//! side (~6 pJ/bit end to end, O'Connor et al. \[43\]); NVLink-class SerDes
//! move data at ~10 pJ/bit. Idle (static) power of a DGX-class box is
//! charged against wall-clock time.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Energy constants of an xPU system.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct XpuEnergyModel {
    /// Compute energy per floating-point (or INT8 MAC) operation, pJ.
    pub pj_per_flop: f64,
    /// End-to-end off-chip DRAM access energy, pJ/bit.
    pub dram_pj_per_bit: f64,
    /// Inter-device link energy, pJ/bit.
    pub link_pj_per_bit: f64,
    /// Static (idle) power of the whole system, watts.
    pub static_w: f64,
}

impl XpuEnergyModel {
    /// DGX-A100-class defaults.
    #[must_use]
    pub fn dgx() -> XpuEnergyModel {
        XpuEnergyModel {
            pj_per_flop: 1.0,
            dram_pj_per_bit: 6.0,
            link_pj_per_bit: 10.0,
            static_w: 1_000.0,
        }
    }

    /// Energy of executing `flops` operations and moving `dram_bytes` over
    /// `elapsed_s` seconds (joules).
    #[must_use]
    pub fn execution_j(&self, flops: f64, dram_bytes: f64, elapsed_s: f64) -> f64 {
        self.pj_per_flop * 1e-12 * flops
            + self.dram_pj_per_bit * 1e-12 * dram_bytes * 8.0
            + self.static_w * elapsed_s
    }

    /// Energy of moving `bytes` over a link (joules).
    #[must_use]
    pub fn link_j(&self, bytes: f64) -> f64 {
        self.link_pj_per_bit * 1e-12 * bytes * 8.0
    }

    /// Peak sustained power (watts) when the system runs at `flops_per_s`
    /// compute rate while streaming `dram_bytes_per_s` from DRAM: the
    /// dynamic terms of [`execution_j`] per second, plus static power.
    /// The provisioning cost model derives its `W/node` ceiling here so
    /// billing and energy accounting share one set of constants.
    ///
    /// [`execution_j`]: XpuEnergyModel::execution_j
    #[must_use]
    pub fn peak_execution_w(&self, flops_per_s: f64, dram_bytes_per_s: f64) -> f64 {
        self.execution_j(flops_per_s, dram_bytes_per_s, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_read_energy_scale() {
        // Reading GPT-3's 350 GB of weights once ≈ 17 J at 6 pJ/bit.
        let e = XpuEnergyModel::dgx();
        let j = e.execution_j(0.0, 350e9, 0.0);
        assert!((j - 16.8).abs() < 0.5, "j = {j}");
    }

    #[test]
    fn static_power_accrues_with_time() {
        let e = XpuEnergyModel::dgx();
        assert_eq!(e.execution_j(0.0, 0.0, 2.0), 2_000.0);
    }

    #[test]
    fn link_energy_linear() {
        let e = XpuEnergyModel::dgx();
        assert!((e.link_j(2e9) - 2.0 * e.link_j(1e9)).abs() < 1e-12);
    }
}
