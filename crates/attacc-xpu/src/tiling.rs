//! GEMM tiling under finite on-chip SRAM.
//!
//! §6.1 rests on a premise: "xPUs typically exploit tiling for the FC
//! layer due to limited on-chip cache capacity … only a limited number of
//! attention head inputs will be generated in xPUs at a time". This module
//! makes that premise quantitative: given SRAM capacity, it plans an
//! output-stationary tiling of `C[m×n] = A[m×k]·B[k×n]`, reports how many
//! times each operand crosses DRAM, and how many output chunks emerge —
//! the head-granularity stream the pipelining model consumes.

use attacc_model::DataType;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// An output-stationary tiling plan of one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TilingPlan {
    /// Batch rows per tile.
    pub tile_m: u64,
    /// Output columns per tile.
    pub tile_n: u64,
    /// Reduction depth per pass (full `k`: weights stream through).
    pub tile_k: u64,
    /// Times the weight matrix is read from DRAM (`ceil(m / tile_m)`).
    pub weight_passes: u64,
    /// Times the activation matrix is read (`ceil(n / tile_n)`).
    pub activation_passes: u64,
    /// Output tiles produced over the GEMM's lifetime.
    pub output_chunks: u64,
}

impl TilingPlan {
    /// Plans `C[m×n] = A[m×k] · B[k×n]` with `sram_bytes` of on-chip
    /// storage for one `A` panel, one `B` panel and one `C` tile.
    ///
    /// Strategy: keep the whole batch panel resident when it fits
    /// (`tile_m = m`, one weight pass — the inference regime); otherwise
    /// split `m`. `tile_n` takes the rest of the SRAM.
    ///
    /// # Panics
    /// Panics if any dimension is zero or the SRAM cannot hold even a
    /// minimal 1×1 tile pipeline.
    #[must_use]
    pub fn plan(m: u64, k: u64, n: u64, dtype: DataType, sram_bytes: u64) -> TilingPlan {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be positive");
        let e = dtype.bytes();
        // Reserve half the SRAM for the streamed B panel and C tile.
        let a_budget = sram_bytes / 2;
        let tile_m = (a_budget / (k * e)).clamp(1, m);
        // Remaining budget: B panel (k × tile_n) + C tile (tile_m × tile_n).
        let rest = sram_bytes - (tile_m * k * e).min(sram_bytes / 2);
        let denom = (k + tile_m) * e;
        let tile_n = (rest / denom).clamp(1, n);
        assert!(
            tile_m >= 1 && tile_n >= 1,
            "SRAM too small for any tile: {sram_bytes} bytes"
        );
        let weight_passes = m.div_ceil(tile_m);
        let activation_passes = n.div_ceil(tile_n);
        TilingPlan {
            tile_m,
            tile_n,
            tile_k: k,
            weight_passes,
            activation_passes,
            output_chunks: weight_passes * activation_passes,
        }
    }

    /// DRAM traffic of the tiled GEMM in bytes: each operand crosses once
    /// per pass of the other dimension; the output is written once.
    #[must_use]
    pub fn dram_traffic_bytes(&self, m: u64, k: u64, n: u64, dtype: DataType) -> u64 {
        let e = dtype.bytes();
        let weights = k * n * e * self.weight_passes;
        let acts = m * k * e * self.activation_passes;
        let out = m * n * e;
        weights + acts + out
    }

    /// The un-tiled lower bound: every operand crosses DRAM exactly once.
    #[must_use]
    pub fn traffic_lower_bound(m: u64, k: u64, n: u64, dtype: DataType) -> u64 {
        (m * k + k * n + m * n) * dtype.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A100-class on-chip storage (L2 + SMEM) per GPU.
    const SRAM: u64 = 48 << 20;

    #[test]
    fn inference_batches_read_weights_once() {
        // Gen-stage QKV GEMM of GPT-3 at batch 256: the whole batch panel
        // fits, so weights stream exactly once — the roofline accounting
        // the whole paper (and our Op model) relies on.
        let p = TilingPlan::plan(256, 12288, 3 * 12288, DataType::Fp16, SRAM);
        assert_eq!(p.tile_m, 256);
        assert_eq!(p.weight_passes, 1);
        let t = p.dram_traffic_bytes(256, 12288, 3 * 12288, DataType::Fp16);
        let lb = TilingPlan::traffic_lower_bound(256, 12288, 3 * 12288, DataType::Fp16);
        // Activations are tiny next to weights; re-reads cost little.
        assert!(t < 2 * lb, "traffic {t} vs bound {lb}");
    }

    #[test]
    fn outputs_emerge_in_many_chunks() {
        // §6.1's premise: the QKV outputs appear tile-by-tile, so heads
        // can stream into AttAcc long before the GEMM finishes.
        let p = TilingPlan::plan(128, 12288, 3 * 12288, DataType::Fp16, SRAM);
        assert!(p.output_chunks >= 8, "chunks = {}", p.output_chunks);
    }

    #[test]
    fn prefill_scale_batches_need_multiple_weight_passes() {
        // A Sum stage with 64 × 2048 token rows exceeds the panel budget.
        let p = TilingPlan::plan(64 * 2048, 12288, 49152, DataType::Fp16, SRAM);
        assert!(p.weight_passes > 1, "passes = {}", p.weight_passes);
    }

    #[test]
    fn traffic_never_beats_lower_bound() {
        for (m, k, n) in [(1u64, 64, 64), (256, 12288, 12288), (4096, 512, 2048)] {
            let p = TilingPlan::plan(m, k, n, DataType::Fp16, SRAM);
            let t = p.dram_traffic_bytes(m, k, n, DataType::Fp16);
            assert!(t >= TilingPlan::traffic_lower_bound(m, k, n, DataType::Fp16));
        }
    }

    #[test]
    fn tiny_sram_still_produces_a_plan() {
        let p = TilingPlan::plan(64, 1024, 1024, DataType::Fp16, 1 << 16);
        assert!(p.tile_m >= 1 && p.tile_n >= 1);
        assert!(p.weight_passes >= 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_rejected() {
        let _ = TilingPlan::plan(0, 1, 1, DataType::Fp16, SRAM);
    }
}
