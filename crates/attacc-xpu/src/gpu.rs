//! DGX-class GPU systems (`DGX_Base`, `DGX_Large`, `2×DGX`).

use crate::{ComputeDevice, Interconnect, XpuEnergyModel};
use attacc_model::{Op, OpClass, StageWorkload, GIB};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A (possibly multi-node) GPU system executing full model stages.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct GpuSystem {
    /// The aggregate roofline device (all GPUs of all nodes).
    pub device: ComputeDevice,
    /// GPUs per node.
    pub n_gpus: u32,
    /// Number of DGX nodes.
    pub n_nodes: u32,
    /// Total HBM capacity in bytes.
    pub capacity_bytes: u64,
    /// Intra-node fabric for tensor-parallel collectives.
    pub intra_node: Interconnect,
    /// Inter-node fabric (used when `n_nodes > 1`).
    pub inter_node: Interconnect,
    /// Energy constants.
    pub energy: XpuEnergyModel,
}

/// Execution time of one stage, broken down by op class (Fig. 4(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StageTime {
    /// Batched FC layers.
    pub fc_s: f64,
    /// The attention layer.
    pub attn_s: f64,
    /// Normalization, activation, residual, KV append.
    pub other_s: f64,
    /// Tensor-parallel collectives (and inter-node traffic).
    pub comm_s: f64,
    /// End-to-end stage time.
    pub total_s: f64,
    /// FLOPs executed.
    pub flops: f64,
    /// Off-chip bytes moved.
    pub dram_bytes: f64,
    /// Energy consumed (joules).
    pub energy_j: f64,
    /// Compute utilization: flops / (total · peak).
    pub utilization: f64,
}

impl GpuSystem {
    /// The paper's baseline: one DGX A100 with HBM3 — 2.5 PFLOPS FP16,
    /// 26.6 TB/s (40 stacks × 665.6 GB/s), 640 GB.
    #[must_use]
    pub fn dgx_base() -> GpuSystem {
        GpuSystem {
            device: ComputeDevice {
                name: "DGX (HBM3)".into(),
                peak_flops_fp16: 2.5e15,
                mem_bw: 26.6e12,
                compute_eff: 0.85,
                mem_eff: 0.75,
                launch_s: 2e-6,
            },
            n_gpus: 8,
            n_nodes: 1,
            capacity_bytes: 640 * GIB,
            intra_node: Interconnect::nvlink(),
            inter_node: Interconnect::inter_node(),
            energy: XpuEnergyModel::dgx(),
        }
    }

    /// `DGX_Large`: the baseline with doubled capacity (taller stacks),
    /// same bandwidth and compute.
    #[must_use]
    pub fn dgx_large() -> GpuSystem {
        let mut s = GpuSystem::dgx_base();
        s.capacity_bytes = 1_280 * GIB;
        s.device.name = "DGX_Large".into();
        s
    }

    /// A next-generation DGX (H100-class): ~4× the FP16 compute,
    /// ~1.3× the HBM bandwidth of the baseline. Faster FC layers make the
    /// bandwidth-bound attention an even larger share of the Gen stage —
    /// the AttAcc argument strengthens on newer GPUs.
    #[must_use]
    pub fn dgx_next_gen() -> GpuSystem {
        let mut s = GpuSystem::dgx_base();
        s.device.name = "DGX (next-gen)".into();
        s.device.peak_flops_fp16 = 8.0e15;
        s.device.mem_bw = 33.6e12;
        s.capacity_bytes = 640 * GIB;
        s.intra_node.bw_bytes_per_s = 7.2e12;
        s
    }

    /// A TPU-v4-pod-slice-like xPU (§4: "high-performance compute units
    /// (xPUs) such as GPUs or TPUs"): 8 chips ≈ 2.2 PFLOPS BF16,
    /// 9.8 TB/s of HBM, 256 GB, ICI fabric.
    #[must_use]
    pub fn tpu_pod_slice() -> GpuSystem {
        GpuSystem {
            device: ComputeDevice {
                name: "TPU pod slice".into(),
                peak_flops_fp16: 2.2e15,
                mem_bw: 9.8e12,
                compute_eff: 0.85,
                mem_eff: 0.80,
                launch_s: 2e-6,
            },
            n_gpus: 8,
            n_nodes: 1,
            capacity_bytes: 256 * GIB,
            intra_node: Interconnect {
                name: "ICI".into(),
                bw_bytes_per_s: 2.4e12,
                latency_s: 2e-6,
            },
            inter_node: Interconnect::inter_node(),
            energy: XpuEnergyModel::dgx(),
        }
    }

    /// `2×DGX`: two baseline boxes — doubled compute, bandwidth and
    /// capacity, but tensor parallelism now spans the inter-node fabric
    /// (§7.6).
    #[must_use]
    pub fn two_dgx() -> GpuSystem {
        let mut s = GpuSystem::dgx_base();
        s.n_nodes = 2;
        s.device.peak_flops_fp16 *= 2.0;
        s.device.mem_bw *= 2.0;
        s.capacity_bytes *= 2;
        s.device.name = "2xDGX".into();
        s
    }

    /// Capacity remaining for KV caches after `weight_bytes` of weights.
    #[must_use]
    pub fn kv_capacity_bytes(&self, weight_bytes: u64) -> u64 {
        self.capacity_bytes.saturating_sub(weight_bytes)
    }

    /// Tensor-parallel communication time for one decoder: two all-reduces
    /// of the activation matrix (after projection and after FF2), plus the
    /// inter-node share when the system spans nodes.
    #[must_use]
    pub fn decoder_comm_s(&self, rows: u64, d_emb: u64, act_bytes: u64) -> f64 {
        let buf = rows * d_emb * act_bytes;
        let intra = 2.0 * self.intra_node.allreduce_s(buf, self.n_gpus);
        let inter = if self.n_nodes > 1 {
            2.0 * self.inter_node.allreduce_s(buf, self.n_nodes)
        } else {
            0.0
        };
        intra + inter
    }

    /// Executes a full stage and reports the per-class breakdown.
    #[must_use]
    pub fn stage_time(&self, wl: &StageWorkload) -> StageTime {
        let mut fc = 0.0;
        let mut attn = 0.0;
        let mut other = 0.0;
        let mut flops = 0.0;
        let mut bytes = 0.0;
        let mut rows = 0u64;
        let mut d_emb = 0u64;
        let mut act_bytes = 2u64;
        for (op, n) in wl.iter_unique_ops() {
            let t = self.device.op_time_s(op) * n as f64;
            match op.class() {
                OpClass::FullyConnected => fc += t,
                OpClass::Attention => attn += t,
                OpClass::Other | OpClass::Communication => other += t,
            }
            flops += op.flops() as f64 * n as f64;
            bytes += op.traffic().total() as f64 * n as f64;
            if let Op::LayerNorm { rows: r, d, dtype } = op {
                rows = *r;
                d_emb = *d;
                act_bytes = dtype.bytes();
            }
        }
        let comm = self.decoder_comm_s(rows, d_emb, act_bytes) * f64::from(wl.n_decoder);
        let total = fc + attn + other + comm;
        let energy_j = self.energy.execution_j(flops, bytes, total)
            + self
                .energy
                .link_j(2.0 * (rows * d_emb * act_bytes) as f64 * f64::from(wl.n_decoder));
        StageTime {
            fc_s: fc,
            attn_s: attn,
            other_s: other,
            comm_s: comm,
            total_s: total,
            flops,
            dram_bytes: bytes,
            energy_j,
            utilization: if total > 0.0 {
                flops / (total * self.device.peak_flops_fp16)
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_model::{ModelConfig, Phase};

    #[test]
    fn batch1_gen_utilization_below_one_percent() {
        // §1: "compute unit utilization below 1%" for batch-1 GPT-3.
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let wl = StageWorkload::uniform(&m, Phase::gen(2048), 1);
        let t = dgx.stage_time(&wl);
        assert!(t.utilization < 0.01, "util = {}", t.utilization);
    }

    #[test]
    fn large_batch_fc_utilization_improves() {
        // §1: with batch 256 (unlimited memory) utilization reaches ~71%
        // for the FC-dominant workload at short contexts; overall compute
        // utilization rises well above 10%.
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let wl = StageWorkload::uniform(&m, Phase::gen(128), 256);
        let t = dgx.stage_time(&wl);
        assert!(t.utilization > 0.3, "util = {}", t.utilization);
    }

    #[test]
    fn batching_barely_changes_fc_time() {
        // §3.1: the FC layer's time stays nearly flat with batch size.
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let t1 = dgx.stage_time(&StageWorkload::uniform(&m, Phase::gen(2048), 1));
        let t64 = dgx.stage_time(&StageWorkload::uniform(&m, Phase::gen(2048), 64));
        assert!(t64.fc_s < 1.6 * t1.fc_s, "{} vs {}", t64.fc_s, t1.fc_s);
        // While attention time scales with the batch.
        assert!(t64.attn_s > 40.0 * t1.attn_s);
    }

    #[test]
    fn attention_majority_at_batch64_long_context() {
        // Fig. 4(c): attention is more than half the Gen-stage time at
        // batch 64 with long contexts.
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let t = dgx.stage_time(&StageWorkload::uniform(&m, Phase::gen(3072), 64));
        assert!(t.attn_s > 0.5 * t.total_s, "attn {} of {}", t.attn_s, t.total_s);
        // And the latency violates a 50 ms SLO (the paper reports ~80 ms).
        assert!(t.total_s > 0.050, "total = {}", t.total_s);
        assert!(t.total_s < 0.120, "total = {}", t.total_s);
    }

    #[test]
    fn two_dgx_doubles_fc_but_pays_comm() {
        let base = GpuSystem::dgx_base();
        let two = GpuSystem::two_dgx();
        let m = ModelConfig::gpt3_175b();
        let wl = StageWorkload::uniform(&m, Phase::gen(2048), 32);
        let tb = base.stage_time(&wl);
        let tt = two.stage_time(&wl);
        assert!(tt.fc_s < 0.6 * tb.fc_s);
        assert!(tt.comm_s > tb.comm_s);
    }

    #[test]
    fn kv_capacity_subtracts_weights() {
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let free = dgx.kv_capacity_bytes(m.weight_bytes());
        assert!(free < dgx.capacity_bytes);
        assert!(free > 300 * GIB);
    }

    #[test]
    fn newer_gpus_stay_bandwidth_walled() {
        // 4× the compute buys at most the 1.26× bandwidth improvement on a
        // Gen stage: the attention-vs-FC balance is unchanged (both are
        // bandwidth-bound), so the PIM case carries over to newer GPUs.
        let old = GpuSystem::dgx_base();
        let new = GpuSystem::dgx_next_gen();
        let m = ModelConfig::gpt3_175b();
        let wl = StageWorkload::uniform(&m, Phase::gen(3072), 64);
        let t_old = old.stage_time(&wl);
        let t_new = new.stage_time(&wl);
        let speedup = t_old.total_s / t_new.total_s;
        assert!(speedup > 1.1 && speedup < 1.35, "speedup = {speedup}");
        let balance = |t: StageTime| t.attn_s / (t.attn_s + t.fc_s);
        assert!((balance(t_new) - balance(t_old)).abs() < 0.01);
    }

    #[test]
    fn tpu_slice_is_bandwidth_starved_for_attention() {
        // A TPU-class xPU has ~2.7× less memory bandwidth than the HBM3
        // DGX, so the memory-bound Gen stage runs correspondingly slower —
        // the same motivation for AttAcc applies to any xPU.
        let dgx = GpuSystem::dgx_base();
        let tpu = GpuSystem::tpu_pod_slice();
        let m = ModelConfig::gpt3_175b();
        let wl = StageWorkload::uniform(&m, Phase::gen(2048), 16);
        let ratio = tpu.stage_time(&wl).total_s / dgx.stage_time(&wl).total_s;
        assert!(ratio > 2.0 && ratio < 3.5, "ratio = {ratio}");
    }

    #[test]
    fn energy_includes_static_floor() {
        let dgx = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let t = dgx.stage_time(&StageWorkload::uniform(&m, Phase::gen(64), 1));
        assert!(t.energy_j > t.total_s * 999.0);
    }
}
