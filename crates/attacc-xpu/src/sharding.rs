//! Tensor-parallel sharding of a decoder across the xPUs.
//!
//! The DGX runs each decoder Megatron-style: the QKV-generation and FF1
//! (and FF-gate) matrices are **column-parallel** (each GPU produces a
//! slice of the hidden activations and its share of the attention heads),
//! the projection and FF2 matrices are **row-parallel** (each GPU
//! produces a partial sum). One all-reduce follows the projection and one
//! follows FF2 — the two collectives per decoder the communication model
//! charges ([`crate::GpuSystem::decoder_comm_s`]).
//!
//! This module derives the per-GPU shard shapes, validates divisibility,
//! and exposes the collective volume from first principles.

use attacc_model::ModelConfig;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// How one weight matrix is split across the tensor-parallel group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ShardAxis {
    /// Output columns split: no collective needed afterwards, but every
    /// GPU needs the full input.
    ColumnParallel,
    /// Input rows split: each GPU produces a partial sum; an all-reduce
    /// follows.
    RowParallel,
}

/// Shard of one FC matrix on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Shard {
    /// Split direction.
    pub axis: ShardAxis,
    /// Local rows (reduction dim).
    pub rows: u64,
    /// Local columns (output dim).
    pub cols: u64,
}

impl Shard {
    /// Parameter count of the shard.
    #[must_use]
    pub const fn params(&self) -> u64 {
        self.rows * self.cols
    }
}

/// Error returned when a model cannot be evenly tensor-parallelized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingError {
    /// The dimension that failed to divide.
    pub dimension: &'static str,
    /// Its size.
    pub size: u64,
    /// The tensor-parallel degree.
    pub ways: u32,
}

impl fmt::Display for ShardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of size {} does not divide across {} GPUs",
            self.dimension, self.size, self.ways
        )
    }
}

impl std::error::Error for ShardingError {}

/// The tensor-parallel plan of one decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DecoderSharding {
    /// Tensor-parallel degree.
    pub ways: u32,
    /// QKV-generation shard (column-parallel).
    pub qkv: Shard,
    /// Projection shard (row-parallel).
    pub projection: Shard,
    /// FF1 shard — and the gate for SwiGLU models (column-parallel each).
    pub ff1: Shard,
    /// FF2 shard (row-parallel).
    pub ff2: Shard,
    /// Attention heads owned per GPU.
    pub heads_per_gpu: u32,
    /// All-reduces per decoder (always 2 in this scheme).
    pub allreduces: u32,
}

impl DecoderSharding {
    /// Plans `model`'s decoder across `ways` GPUs.
    ///
    /// # Errors
    /// Returns [`ShardingError`] if heads, `d_ff`, or the QKV width do not
    /// divide evenly.
    pub fn plan(model: &ModelConfig, ways: u32) -> Result<DecoderSharding, ShardingError> {
        if ways == 0 || !model.n_head.is_multiple_of(ways) {
            return Err(ShardingError {
                dimension: "attention heads",
                size: u64::from(model.n_head),
                ways,
            });
        }
        if !model.d_ff.is_multiple_of(u64::from(ways)) {
            return Err(ShardingError {
                dimension: "d_ff",
                size: model.d_ff,
                ways,
            });
        }
        let d = model.d_emb;
        let kv = u64::from(model.kv_heads()) * model.d_head;
        let qkv_cols = d + 2 * kv;
        if !qkv_cols.is_multiple_of(u64::from(ways)) {
            return Err(ShardingError {
                dimension: "QKV width",
                size: qkv_cols,
                ways,
            });
        }
        let w = u64::from(ways);
        Ok(DecoderSharding {
            ways,
            qkv: Shard {
                axis: ShardAxis::ColumnParallel,
                rows: d,
                cols: qkv_cols / w,
            },
            projection: Shard {
                axis: ShardAxis::RowParallel,
                rows: d / w,
                cols: d,
            },
            ff1: Shard {
                axis: ShardAxis::ColumnParallel,
                rows: d,
                cols: model.d_ff / w,
            },
            ff2: Shard {
                axis: ShardAxis::RowParallel,
                rows: model.d_ff / w,
                cols: d,
            },
            heads_per_gpu: model.n_head / ways,
            allreduces: 2,
        })
    }

    /// Per-GPU parameter count of the decoder under this plan (the gate
    /// matrix of SwiGLU models duplicates the FF1 shard shape).
    #[must_use]
    pub fn params_per_gpu(&self, model: &ModelConfig) -> u64 {
        let ff_extra = (model.ff_kind.matrix_count() - 2) * self.ff1.params();
        self.qkv.params() + self.projection.params() + self.ff1.params() + ff_extra
            + self.ff2.params()
    }

    /// Bytes all-reduced per decoder for a batch of `rows` token vectors.
    #[must_use]
    pub fn allreduce_bytes(&self, model: &ModelConfig, rows: u64) -> u64 {
        u64::from(self.allreduces) * rows * model.d_emb * model.dtype.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_shards_evenly_across_8() {
        let m = ModelConfig::gpt3_175b();
        let p = DecoderSharding::plan(&m, 8).unwrap();
        assert_eq!(p.heads_per_gpu, 12);
        assert_eq!(p.qkv.cols, 3 * 12288 / 8);
        assert_eq!(p.ff1.cols, 4 * 12288 / 8);
        assert_eq!(p.allreduces, 2);
        // Shards reassemble the full decoder.
        assert_eq!(8 * p.params_per_gpu(&m), m.decoder_params());
    }

    #[test]
    fn llama2_gqa_shards() {
        let m = ModelConfig::llama2_70b();
        let p = DecoderSharding::plan(&m, 8).unwrap();
        assert_eq!(p.heads_per_gpu, 8);
        assert_eq!(8 * p.params_per_gpu(&m), m.decoder_params());
    }

    #[test]
    fn indivisible_ways_rejected() {
        let m = ModelConfig::gpt3_175b(); // 96 heads
        let err = DecoderSharding::plan(&m, 7).unwrap_err();
        assert_eq!(err.dimension, "attention heads");
        assert!(!err.to_string().is_empty());
        assert!(DecoderSharding::plan(&m, 0).is_err());
    }

    #[test]
    fn allreduce_volume_matches_comm_model() {
        // The GpuSystem comm model charges 2 all-reduces of rows×d_emb —
        // exactly what the sharding plan derives.
        let m = ModelConfig::gpt3_175b();
        let p = DecoderSharding::plan(&m, 8).unwrap();
        assert_eq!(p.allreduce_bytes(&m, 64), 2 * 64 * 12288 * 2);
    }

    #[test]
    fn axes_are_as_megatron_prescribes() {
        let m = ModelConfig::gpt3_175b();
        let p = DecoderSharding::plan(&m, 4).unwrap();
        assert_eq!(p.qkv.axis, ShardAxis::ColumnParallel);
        assert_eq!(p.projection.axis, ShardAxis::RowParallel);
        assert_eq!(p.ff1.axis, ShardAxis::ColumnParallel);
        assert_eq!(p.ff2.axis, ShardAxis::RowParallel);
    }
}
