//! A roofline compute device executing model operations.

use attacc_model::{DataType, Op};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A roofline machine: peak compute, peak memory bandwidth, achievable
/// efficiencies, and a per-kernel launch overhead.
///
/// Execution time of an op is
/// `max(flops / (peak·eff_c), bytes / (bw·eff_m)) + launch`.
/// INT8 ops run at twice the FP16 peak (tensor-core style).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ComputeDevice {
    /// Device name for reports.
    pub name: String,
    /// Peak FP16 FLOP/s.
    pub peak_flops_fp16: f64,
    /// Peak memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak compute achievable on large GEMMs.
    pub compute_eff: f64,
    /// Fraction of peak bandwidth achievable on streaming reads.
    pub mem_eff: f64,
    /// Fixed per-op overhead in seconds (kernel launch, sync).
    pub launch_s: f64,
}

impl ComputeDevice {
    /// Effective peak ops/s for a data type.
    #[must_use]
    pub fn peak_for(&self, dtype: DataType) -> f64 {
        let scale = match dtype {
            DataType::Int8 => 2.0,
            DataType::Fp32 => 0.5,
            DataType::Fp16 | DataType::Bf16 => 1.0,
        };
        self.peak_flops_fp16 * scale
    }

    /// Dominant numeric type of an op (weights for GEMMs, KV for
    /// attention).
    fn op_dtype(op: &Op) -> DataType {
        match op {
            Op::Gemm { weight_dtype, .. } => *weight_dtype,
            Op::Attention { kv_dtype, .. } => *kv_dtype,
            Op::LayerNorm { dtype, .. }
            | Op::Activation { dtype, .. }
            | Op::Residual { dtype, .. } => *dtype,
            Op::KvAppend { kv_dtype, .. } => *kv_dtype,
            Op::Transfer { .. } => DataType::Fp16,
        }
    }

    /// Compute-side time of `op` (seconds, no launch overhead).
    #[must_use]
    pub fn compute_time_s(&self, op: &Op) -> f64 {
        let peak = self.peak_for(Self::op_dtype(op)) * self.compute_eff;
        op.flops() as f64 / peak
    }

    /// Memory-side time of `op` (seconds, no launch overhead).
    #[must_use]
    pub fn memory_time_s(&self, op: &Op) -> f64 {
        op.traffic().total() as f64 / (self.mem_bw * self.mem_eff)
    }

    /// Roofline execution time of `op` (seconds).
    #[must_use]
    pub fn op_time_s(&self, op: &Op) -> f64 {
        if op.flops() == 0 && op.traffic().total() == 0 {
            return 0.0;
        }
        self.compute_time_s(op).max(self.memory_time_s(op)) + self.launch_s
    }

    /// `true` when the op is memory-bound on this device.
    #[must_use]
    pub fn is_memory_bound(&self, op: &Op) -> bool {
        self.memory_time_s(op) >= self.compute_time_s(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_model::{AttnShape, FcLayer};

    fn dev() -> ComputeDevice {
        ComputeDevice {
            name: "test".into(),
            peak_flops_fp16: 2.5e15,
            mem_bw: 26.8e12,
            compute_eff: 1.0,
            mem_eff: 1.0,
            launch_s: 0.0,
        }
    }

    fn gemm(rows: u64) -> Op {
        Op::Gemm {
            layer: FcLayer::Ff1,
            rows,
            k: 12288,
            n: 49152,
            weight_dtype: DataType::Fp16,
            act_dtype: DataType::Fp16,
        }
    }

    #[test]
    fn batch_one_gemm_is_memory_bound() {
        let d = dev();
        assert!(d.is_memory_bound(&gemm(1)));
        assert!(!d.is_memory_bound(&gemm(1024)));
    }

    #[test]
    fn gen_attention_memory_bound_at_any_batch() {
        let d = dev();
        let attn = Op::Attention {
            groups: vec![AttnShape {
                n_requests: 256,
                l: 2048,
                q_rows: 1,
            }],
            n_head: 96,
            kv_heads: 96,
            d_head: 128,
            kv_dtype: DataType::Fp16,
            act_dtype: DataType::Fp16,
        };
        assert!(d.is_memory_bound(&attn));
    }

    #[test]
    fn int8_doubles_compute_peak() {
        let d = dev();
        assert_eq!(d.peak_for(DataType::Int8), 2.0 * d.peak_for(DataType::Fp16));
        assert_eq!(d.peak_for(DataType::Fp32), 0.5 * d.peak_for(DataType::Fp16));
    }

    #[test]
    fn memory_bound_time_matches_bandwidth() {
        let d = dev();
        let op = gemm(1);
        let expect = op.traffic().total() as f64 / 26.8e12;
        assert!((d.op_time_s(&op) - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn launch_overhead_added_once() {
        let mut d = dev();
        d.launch_s = 1e-6;
        let base = dev().op_time_s(&gemm(1));
        assert!((d.op_time_s(&gemm(1)) - base - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn pure_transfer_ops_cost_memory_time() {
        let d = dev();
        let t = d.op_time_s(&Op::Transfer { bytes: 26_800 });
        assert!(t > 0.0);
    }

    #[test]
    fn efficiencies_slow_things_down() {
        let mut d = dev();
        d.mem_eff = 0.5;
        assert!((d.op_time_s(&gemm(1)) / dev().op_time_s(&gemm(1)) - 2.0).abs() < 1e-9);
    }
}
