//! Device-to-device interconnect models (NVLink, PCIe, inter-node).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A bidirectional interconnect with aggregate bandwidth and per-message
/// latency.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Interconnect {
    /// Name for reports.
    pub name: String,
    /// Aggregate bandwidth in bytes/s.
    pub bw_bytes_per_s: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl Interconnect {
    /// Intra-node NVLink/NVSwitch fabric of a DGX (aggregate ~4.8 TB/s).
    #[must_use]
    pub fn nvlink() -> Interconnect {
        Interconnect {
            name: "NVLink".into(),
            bw_bytes_per_s: 4.8e12,
            latency_s: 2e-6,
        }
    }

    /// PCIe Gen5 ×16 link (~64 GB/s), the xPU↔AttAcc attach point.
    #[must_use]
    pub fn pcie_gen5() -> Interconnect {
        Interconnect {
            name: "PCIe Gen5 x16".into(),
            bw_bytes_per_s: 64e9,
            latency_s: 1e-6,
        }
    }

    /// A high-bandwidth xPU↔AttAcc bridge (NVLink-class, the paper assumes
    /// "commercial high-bandwidth interconnects").
    #[must_use]
    pub fn accelerator_bridge() -> Interconnect {
        Interconnect {
            name: "xPU-AttAcc bridge".into(),
            bw_bytes_per_s: 1.2e12,
            latency_s: 2e-6,
        }
    }

    /// Inter-node fabric between two DGX boxes (InfiniBand-class,
    /// ~400 GB/s aggregate).
    #[must_use]
    pub fn inter_node() -> Interconnect {
        Interconnect {
            name: "inter-node".into(),
            bw_bytes_per_s: 400e9,
            latency_s: 5e-6,
        }
    }

    /// Time to move `bytes` point-to-point.
    #[must_use]
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bw_bytes_per_s
    }

    /// Ring all-reduce time of a `bytes`-sized buffer across `n` peers:
    /// `2·(n-1)/n` traversals of the buffer over the fabric.
    #[must_use]
    pub fn allreduce_s(&self, bytes: u64, n: u32) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let factor = 2.0 * f64::from(n - 1) / f64::from(n);
        self.latency_s * f64::from(n - 1) + factor * bytes as f64 / self.bw_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency() {
        let link = Interconnect::pcie_gen5();
        assert!(link.transfer_s(0) >= link.latency_s);
        let t = link.transfer_s(64_000_000_000);
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn allreduce_single_peer_is_free() {
        assert_eq!(Interconnect::nvlink().allreduce_s(1 << 30, 1), 0.0);
    }

    #[test]
    fn allreduce_grows_with_peers() {
        let link = Interconnect::nvlink();
        let t2 = link.allreduce_s(1 << 30, 2);
        let t8 = link.allreduce_s(1 << 30, 8);
        assert!(t8 > t2);
        // Asymptote: 2× buffer traversal.
        let t_inf = 2.0 * (1u64 << 30) as f64 / link.bw_bytes_per_s;
        assert!(t8 < t_inf * 1.2);
    }

    #[test]
    fn inter_node_is_slower_than_nvlink() {
        assert!(
            Interconnect::inter_node().bw_bytes_per_s < Interconnect::nvlink().bw_bytes_per_s
        );
    }
}
