//! Property-based tests for the roofline and interconnect models.

use attacc_model::{DataType, FcLayer, ModelConfig, Op, Phase, StageWorkload};
use attacc_xpu::{ComputeDevice, GpuSystem, Interconnect};
use proptest::prelude::*;

fn dev() -> ComputeDevice {
    GpuSystem::dgx_base().device
}

proptest! {
    /// Roofline time is exactly max(compute, memory) + launch.
    #[test]
    fn roofline_is_max_of_sides(rows in 1u64..2000, k in 1u64..2000, n in 1u64..2000) {
        let d = dev();
        let op = Op::Gemm {
            layer: FcLayer::Ff1,
            rows, k, n,
            weight_dtype: DataType::Fp16,
            act_dtype: DataType::Fp16,
        };
        let t = d.op_time_s(&op);
        let want = d.compute_time_s(&op).max(d.memory_time_s(&op)) + d.launch_s;
        prop_assert!((t - want).abs() < 1e-15);
        prop_assert!(t >= d.launch_s);
    }

    /// Stage time is monotone in batch size and in context length.
    #[test]
    fn stage_time_monotone(b in 1u64..64, l in 16u64..2048) {
        let gpu = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let t = |b, l| gpu.stage_time(&StageWorkload::uniform(&m, Phase::gen(l), b)).total_s;
        prop_assert!(t(b + 1, l) >= t(b, l) * 0.999);
        prop_assert!(t(b, l + 16) >= t(b, l) * 0.999);
    }

    /// Utilization never exceeds 100% and energy is positive.
    #[test]
    fn utilization_bounded(b in 1u64..256, l in 16u64..3000) {
        let gpu = GpuSystem::dgx_base();
        let m = ModelConfig::gpt3_175b();
        let st = gpu.stage_time(&StageWorkload::uniform(&m, Phase::gen(l), b));
        prop_assert!(st.utilization > 0.0 && st.utilization <= 1.0);
        prop_assert!(st.energy_j > 0.0);
    }

    /// All-reduce time is monotone in peers and buffer size, and bounded
    /// by 2 buffer traversals plus latencies.
    #[test]
    fn allreduce_bounds(bytes in 1u64..(1 << 30), n in 2u32..64) {
        let link = Interconnect::nvlink();
        let t = link.allreduce_s(bytes, n);
        prop_assert!(t >= link.allreduce_s(bytes, n - 1) - 1e-12 || n == 2);
        prop_assert!(t <= 2.0 * bytes as f64 / link.bw_bytes_per_s + f64::from(n) * link.latency_s);
        prop_assert!(link.allreduce_s(bytes + 1024, n) >= t);
    }

    /// Transfers decompose: moving twice the bytes costs at most twice the
    /// time (latency amortizes).
    #[test]
    fn transfer_subadditive(bytes in 1u64..(1 << 32)) {
        let link = Interconnect::pcie_gen5();
        prop_assert!(link.transfer_s(2 * bytes) <= 2.0 * link.transfer_s(bytes));
    }

    /// INT8 quantization never makes an op slower on the GPU.
    #[test]
    fn int8_never_slower(rows in 1u64..512) {
        let d = dev();
        let mk = |dt: DataType| Op::Gemm {
            layer: FcLayer::Ff1,
            rows,
            k: 12288,
            n: 12288,
            weight_dtype: dt,
            act_dtype: dt,
        };
        prop_assert!(d.op_time_s(&mk(DataType::Int8)) <= d.op_time_s(&mk(DataType::Fp16)) + 1e-15);
    }
}
