//! Property tests for the provisioning surrogate (ISSUE 9 satellite):
//! determinism across thread counts, monotonicity in offered load, and
//! a pinned training-error bound.

use attacc_cluster::SloSpec;
use attacc_model::ModelConfig;
use attacc_provision::{
    tail_monotone, CostBook, DatasetBuilder, FeatureContext, FleetSpec, Gbt, GbtParams,
    NodeVariant, TrafficSpec,
};
use attacc_sim::engine;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that mutate the process-wide thread setting.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn traffic(rate: f64, seed: u64) -> TrafficSpec {
    TrafficSpec {
        users: 16,
        rate_per_s: rate,
        l_in: 64,
        l_out: (8, 16),
        seed,
    }
}

/// A small deterministic pseudo-random stream for synthetic datasets.
fn lcg(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fit on a synthetic surface twice → bitwise-identical predictions.
    #[test]
    fn surrogate_training_is_deterministic(seed in 1u64..5000, rounds in 10usize..60) {
        let mut st = seed;
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..3).map(|_| lcg(&mut st) * 10.0).collect())
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + x[1] * x[2] + lcg(&mut st)).collect();
        let params = GbtParams { rounds, ..GbtParams::default() };
        let a = Gbt::fit(&xs, &ys, &params);
        let b = Gbt::fit(&xs, &ys, &params);
        prop_assert_eq!(&a, &b);
        for x in xs.iter().take(8) {
            prop_assert_eq!(a.predict(x).to_bits(), b.predict(x).to_bits());
        }
    }

    /// A `+1`-constrained feature never decreases the prediction, on
    /// arbitrary (even noisy, non-monotone) training data — the
    /// constraint is structural, not statistical.
    #[test]
    fn monotone_constraint_is_structural(seed in 1u64..5000) {
        let mut st = seed;
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![lcg(&mut st) * 8.0, lcg(&mut st) * 4.0])
            .collect();
        // Deliberately non-monotone target: sine + noise.
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * 1.3).sin() * 5.0 + x[1] + lcg(&mut st) * 2.0)
            .collect();
        let params = GbtParams { monotone: vec![1, 0], ..GbtParams::default() };
        let model = Gbt::fit(&xs, &ys, &params);
        for probe in 0..6 {
            let x1 = probe as f64 * 0.7;
            let mut prev = f64::NEG_INFINITY;
            for step in 0..60 {
                let y = model.predict(&[step as f64 * 0.15, x1]);
                prop_assert!(
                    y >= prev - 1e-12,
                    "prediction decreased in the constrained feature: {} < {}",
                    y, prev
                );
                prev = y;
            }
        }
    }

    /// Train→predict error on the training set stays below a pinned
    /// tolerance for smooth surfaces (the regime the provisioning
    /// targets live in).
    #[test]
    fn training_error_is_bounded(scale in 1.0f64..20.0, seed in 1u64..2000) {
        let mut st = seed;
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![lcg(&mut st) * 6.0, lcg(&mut st) * 6.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| scale * (x[0] + 0.5 * x[1] * x[1])).collect();
        let model = Gbt::fit(&xs, &ys, &GbtParams::default());
        let spread = ys.iter().cloned().fold(f64::MIN, f64::max)
            - ys.iter().cloned().fold(f64::MAX, f64::min);
        let mae = model.mae(&xs, &ys);
        // Pinned tolerance: 5% of the target spread.
        prop_assert!(
            mae <= 0.05 * spread,
            "training MAE {} exceeds 5% of spread {}",
            mae, spread
        );
    }
}

/// Dataset → surrogate → predictions, byte-identical at 1, 2 and 8
/// sweep threads: the parallel sweep merges by index and training is
/// serial, so thread count must be invisible.
#[test]
fn surrogate_pipeline_is_thread_invariant() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let model = ModelConfig::gpt3_175b();
    let specs = [
        FleetSpec::homogeneous(NodeVariant::DgxBase, 1),
        FleetSpec::homogeneous(NodeVariant::AttAccBank, 1),
        FleetSpec { counts: [1, 0, 0, 1, 0] },
        FleetSpec { counts: [0, 1, 0, 0, 1] },
    ];
    let traffics = [traffic(2.0, 3), traffic(6.0, 3)];

    let ctx = FeatureContext::new(model.clone(), CostBook::paper_defaults());
    let run = || {
        let mut b = DatasetBuilder::new(model.clone(), SloSpec::chatbot(), CostBook::paper_defaults());
        b.grid(&specs, &traffics);
        let data = b.build();
        let gbt = Gbt::fit(&data.xs, &data.usd_per_mtok, &GbtParams::default());
        let probe = ctx.features(&specs[2], &traffic(4.0, 3));
        (data, gbt.predict(&probe).to_bits())
    };

    engine::set_threads(1);
    let (serial_data, serial_pred) = run();
    for threads in [2, 8] {
        engine::set_threads(threads);
        let (data, pred) = run();
        assert_eq!(serial_data, data, "dataset differs at {threads} threads");
        assert_eq!(serial_pred, pred, "prediction differs at {threads} threads");
    }
    engine::set_threads(0); // restore env-resolved default
}

/// More offered load, same fleet: the monotone-constrained p99.9
/// surrogate must never predict a better tail. Trains on real simulated
/// cells, then checks the constraint on a dense rate sweep.
#[test]
fn tail_surrogate_is_monotone_in_offered_load() {
    let _guard = ENGINE_LOCK.lock().expect("engine lock");
    let model = ModelConfig::gpt3_175b();
    let spec = FleetSpec::homogeneous(NodeVariant::AttAccBank, 1);
    let rates = [1.0, 2.0, 4.0, 8.0, 16.0];
    let mut b = DatasetBuilder::new(model.clone(), SloSpec::chatbot(), CostBook::paper_defaults());
    for &r in &rates {
        b.cell(spec, traffic(r, 5));
    }
    let data = b.build();
    let params = GbtParams { monotone: tail_monotone(), ..GbtParams::default() };
    let tail = Gbt::fit(&data.xs, &data.p999, &params);
    let ctx = FeatureContext::new(model.clone(), CostBook::paper_defaults());
    let mut prev = f64::NEG_INFINITY;
    for step in 0..100 {
        let r = 0.5 + step as f64 * 0.2;
        let y = tail.predict(&ctx.features(&spec, &traffic(r, 5)));
        assert!(
            y >= prev - 1e-12,
            "predicted p99.9 improved under more load: {y} < {prev} at rate {r}"
        );
        prev = y;
    }
}
