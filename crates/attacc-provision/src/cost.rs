//! The `CostBook`: the single source of truth for $ and watts.
//!
//! Every electrical constant here is *derived* from the tables the
//! simulator already charges energy against — [`XpuEnergyModel`] for the
//! GPU chassis, [`HbmConfig::peak_power_w`] (IDD7 budget) for the AttAcc
//! stacks, [`attacc_sim::ATTACC_STATIC_W`] for the board idle — so the
//! provisioning bill and the per-stage energy accounting can never
//! drift apart. CapEx figures are the only new inputs, and they live
//! here and nowhere else.

use crate::variant::NodeVariant;
use attacc_cluster::FleetReport;
use attacc_pim::AreaReport;
use attacc_xpu::XpuEnergyModel;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// List price of one DGX-class chassis (8 GPUs + host), USD.
pub const DGX_CAPEX_USD: f64 = 200_000.0;

/// Base cost of one plain HBM3 stack on the AttAcc board, USD. PIM
/// variants scale this by `1 + dram_die_overhead` from the §6.3 area
/// model: silicon you add is silicon you pay for.
pub const HBM_STACK_CAPEX_USD: f64 = 1_500.0;

/// DDR5 for the CPU-offload pool, USD per GiB.
pub const DDR_USD_PER_GIB: f64 = 4.0;

/// Default electricity price, USD per kWh.
pub const USD_PER_KWH: f64 = 0.12;

/// Default CapEx amortization horizon: three years, in seconds.
pub const AMORTIZATION_S: f64 = 3.0 * 365.0 * 86_400.0;

/// Procurement and electrical profile of one node variant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeCost {
    /// Purchase price, USD.
    pub capex_usd: f64,
    /// Idle draw, watts — what a node burns while active but not
    /// executing rounds (including cold-start spin-up).
    pub idle_w: f64,
    /// Peak sustained draw, watts — compute and memory streaming flat
    /// out. Informational ceiling; actual dynamic energy comes from the
    /// simulator's per-stage accounting.
    pub peak_w: f64,
}

/// Prices and electrical constants for every [`NodeVariant`], plus the
/// tariff that turns joules and node-seconds into dollars.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CostBook {
    /// Electricity price, USD/kWh.
    pub usd_per_kwh: f64,
    /// CapEx amortization horizon in seconds: a node-second costs
    /// `capex_usd / amortization_s`.
    pub amortization_s: f64,
    /// Per-variant costs, indexed by [`NodeVariant::index`].
    pub nodes: [NodeCost; 5],
}

impl CostBook {
    /// The default book, derived from the paper-configuration power and
    /// area tables.
    #[must_use]
    pub fn paper_defaults() -> CostBook {
        let nodes = [
            NodeVariant::DgxBase,
            NodeVariant::AttAccBuffer,
            NodeVariant::AttAccBankGroup,
            NodeVariant::AttAccBank,
            NodeVariant::CpuOffload,
        ]
        .map(NodeCost::derive);
        CostBook {
            usd_per_kwh: USD_PER_KWH,
            amortization_s: AMORTIZATION_S,
            nodes,
        }
    }

    /// The cost entry for `variant`.
    #[must_use]
    pub fn node(&self, variant: NodeVariant) -> NodeCost {
        self.nodes[variant.index()]
    }

    /// Bills a fleet run: `variants[i]` is the variant of global node
    /// `i`. Node-seconds are amortized CapEx; dynamic energy comes from
    /// the simulator's own accounting; active-but-not-busy time
    /// (including cold-start spin-up) is charged at the node's idle
    /// wattage — never zero.
    ///
    /// # Panics
    /// Panics when `variants` does not cover every provisioned node.
    #[must_use]
    pub fn bill(&self, report: &FleetReport, variants: &[NodeVariant]) -> FleetCost {
        assert_eq!(
            variants.len(),
            report.node_active_s.len(),
            "one variant per provisioned node"
        );
        let mut capex_usd = 0.0;
        let mut idle_j = 0.0;
        for (i, &v) in variants.iter().enumerate() {
            let cost = self.node(v);
            let active_s = report.node_active_s[i];
            capex_usd += active_s * cost.capex_usd / self.amortization_s;
            let busy_s = report.cluster.nodes[i].busy_s;
            idle_j += cost.idle_w * (active_s - busy_s).max(0.0);
        }
        let busy_j = report.cluster.energy_j;
        let energy_usd = (busy_j + idle_j) / 3.6e6 * self.usd_per_kwh;
        let total_usd = capex_usd + energy_usd;
        let tokens: u64 = report.cluster.nodes.iter().map(|n| n.tokens).sum();
        let usd_per_mtok = if tokens > 0 {
            total_usd / tokens as f64 * 1e6
        } else {
            f64::INFINITY
        };
        FleetCost {
            capex_usd,
            busy_j,
            idle_j,
            cold_start_node_s: report.cold_start_node_s,
            energy_usd,
            total_usd,
            usd_per_mtok,
        }
    }
}

impl Default for CostBook {
    fn default() -> CostBook {
        CostBook::paper_defaults()
    }
}

impl NodeCost {
    /// Derives the entry for `variant` from the existing power/area
    /// tables: DGX electricals from [`XpuEnergyModel`], AttAcc stack
    /// power from the IDD7 budget at the variant's datapath depth,
    /// AttAcc board idle from [`attacc_sim::ATTACC_STATIC_W`], PIM CapEx
    /// from the §6.3 area overhead, DDR CapEx per GiB.
    #[must_use]
    pub fn derive(variant: NodeVariant) -> NodeCost {
        let system = variant.system();
        let gpu = &system.gpu;
        let dgx_idle = gpu.energy.static_w;
        let dgx_peak = gpu
            .energy
            .peak_execution_w(gpu.device.peak_flops_fp16, gpu.device.mem_bw);
        match variant {
            NodeVariant::DgxBase => NodeCost {
                capex_usd: DGX_CAPEX_USD,
                idle_w: dgx_idle,
                peak_w: dgx_peak,
            },
            NodeVariant::AttAccBuffer | NodeVariant::AttAccBankGroup | NodeVariant::AttAccBank => {
                let attacc = system.attacc.as_ref().expect("AttAcc variants carry a device");
                let placement = variant.placement().expect("AttAcc variants have a placement");
                let overhead = AreaReport::for_placement(placement, &attacc.hbm).dram_die_overhead;
                let stacks = f64::from(attacc.n_stacks);
                let stack_peak = attacc.hbm.peak_power_w(variant.access_depth());
                NodeCost {
                    capex_usd: DGX_CAPEX_USD
                        + stacks * HBM_STACK_CAPEX_USD * (1.0 + overhead),
                    idle_w: dgx_idle + attacc_sim::ATTACC_STATIC_W,
                    peak_w: dgx_peak + attacc_sim::ATTACC_STATIC_W + stacks * stack_peak,
                }
            }
            NodeVariant::CpuOffload => {
                let cpu = system.cpu.as_ref().expect("CPU offload carries a host pool");
                // Host DDR dynamic ceiling priced with the same pJ
                // constants the GPU chassis uses; its static draw is
                // already inside the chassis figure.
                let host_dynamic = XpuEnergyModel {
                    static_w: 0.0,
                    ..gpu.energy.clone()
                }
                .peak_execution_w(cpu.device.peak_flops_fp16, cpu.device.mem_bw);
                let gib = cpu.capacity_bytes as f64 / (1u64 << 30) as f64;
                NodeCost {
                    capex_usd: DGX_CAPEX_USD + gib * DDR_USD_PER_GIB,
                    idle_w: dgx_idle,
                    peak_w: dgx_peak + host_dynamic,
                }
            }
        }
    }
}

/// Dollar attribution of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FleetCost {
    /// Amortized CapEx over the consumed node-seconds, USD.
    pub capex_usd: f64,
    /// Dynamic (round-execution) energy from the simulator, J.
    pub busy_j: f64,
    /// Idle energy: active-but-not-busy node time (cold starts
    /// included) at each node's idle wattage, J.
    pub idle_j: f64,
    /// Node-seconds inside cold-start windows — billed within
    /// [`idle_j`] at idle wattage, broken out for reporting.
    ///
    /// [`idle_j`]: FleetCost::idle_j
    pub cold_start_node_s: f64,
    /// `(busy_j + idle_j)` at the book's tariff, USD.
    pub energy_usd: f64,
    /// CapEx + energy, USD.
    pub total_usd: f64,
    /// Total cost per million output tokens, USD (infinite when the run
    /// produced none).
    pub usd_per_mtok: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_hbm::{AccessDepth, HbmConfig};

    // Satellite: the book is the single source of truth — these pins
    // fail if it ever drifts from the constants the energy accounting
    // charges.
    #[test]
    fn book_matches_the_inline_power_constants() {
        let book = CostBook::paper_defaults();
        let dgx = XpuEnergyModel::dgx();
        assert_eq!(book.node(NodeVariant::DgxBase).idle_w, dgx.static_w);
        assert_eq!(
            book.node(NodeVariant::AttAccBank).idle_w,
            dgx.static_w + attacc_sim::ATTACC_STATIC_W
        );
        assert_eq!(book.node(NodeVariant::CpuOffload).idle_w, dgx.static_w);

        // Peak = the same execution_j integrand, per second.
        let expect_dgx_peak = dgx.execution_j(2.5e15, 26.6e12, 1.0);
        assert_eq!(book.node(NodeVariant::DgxBase).peak_w, expect_dgx_peak);

        // AttAcc peak adder = 40 stacks at the IDD7 budget.
        let stack = HbmConfig::hbm3_8hi().peak_power_w(AccessDepth::Bank);
        let got = book.node(NodeVariant::AttAccBank).peak_w;
        let expect = expect_dgx_peak + attacc_sim::ATTACC_STATIC_W + 40.0 * stack;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn pim_capex_orders_by_area_overhead() {
        let book = CostBook::paper_defaults();
        let buf = book.node(NodeVariant::AttAccBuffer).capex_usd;
        let bg = book.node(NodeVariant::AttAccBankGroup).capex_usd;
        let bank = book.node(NodeVariant::AttAccBank).capex_usd;
        assert!(buf < bg && bg < bank, "{buf} {bg} {bank}");
        assert!(buf > DGX_CAPEX_USD);
    }

    #[test]
    fn deeper_placements_draw_more_peak_power() {
        let book = CostBook::paper_defaults();
        let buf = book.node(NodeVariant::AttAccBuffer).peak_w;
        let bank = book.node(NodeVariant::AttAccBank).peak_w;
        assert!(
            bank > buf,
            "bank-level PIM powers more units: {bank} vs {buf}"
        );
    }
}
