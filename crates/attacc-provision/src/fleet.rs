//! Fleet composition specs and exact cell simulation.
//!
//! A *cell* is one point of the provisioning design space: a
//! [`FleetSpec`] (how many nodes of each variant) serving a
//! [`TrafficSpec`] (how many users at what rate and shape) under an SLO.
//! [`simulate_cell`] evaluates it exactly through
//! [`attacc_cluster::simulate_fleet_mix`] and bills it through the
//! [`CostBook`] — the ground truth the surrogate approximates and the
//! search re-verifies against.

use crate::cost::{CostBook, FleetCost};
use crate::variant::NodeVariant;
use attacc_cluster::{
    simulate_fleet_mix, FleetConfig, FleetMix, FleetReport, InterconnectModel, PoolConfig, PoolMix,
    RouterPolicy, SloSpec, StageExecutor,
};
use attacc_model::{KvCacheSpec, ModelConfig};
use attacc_serving::ArrivalWorkload;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// How many nodes of each [`NodeVariant`] the fleet buys, indexed by
/// [`NodeVariant::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FleetSpec {
    /// Node count per variant, in [`NodeVariant::ALL`] order.
    pub counts: [usize; 5],
}

impl FleetSpec {
    /// A spec with `n` nodes of a single variant.
    #[must_use]
    pub fn homogeneous(variant: NodeVariant, n: usize) -> FleetSpec {
        let mut counts = [0; 5];
        counts[variant.index()] = n;
        FleetSpec { counts }
    }

    /// Total node count.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The variant of every global node, in deterministic declaration
    /// order (all `dgx-base` first, then the AttAcc variants, then
    /// `dgx-cpu`).
    #[must_use]
    pub fn variants(&self) -> Vec<NodeVariant> {
        let mut out = Vec::with_capacity(self.total_nodes());
        for (i, &n) in self.counts.iter().enumerate() {
            out.extend(std::iter::repeat_n(NodeVariant::ALL[i], n));
        }
        out
    }

    /// Compact label, e.g. `2×attacc-bank+1×dgx-base`.
    #[must_use]
    pub fn label(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("{n}x{}", NodeVariant::ALL[i].name()))
            .collect();
        if parts.is_empty() {
            "empty".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// The offered traffic of one provisioning query.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TrafficSpec {
    /// Concurrent users ≈ requests in the arrival trace.
    pub users: u64,
    /// Poisson arrival rate, requests/s.
    pub rate_per_s: f64,
    /// Prompt length.
    pub l_in: u64,
    /// Output-length range (uniform).
    pub l_out: (u64, u64),
    /// Arrival-process seed.
    pub seed: u64,
}

impl TrafficSpec {
    /// Materializes the deterministic arrival trace.
    #[must_use]
    pub fn workload(&self) -> ArrivalWorkload {
        ArrivalWorkload::poisson(self.users, self.rate_per_s, self.l_in, self.l_out, self.seed)
    }

    /// Mean context length at end of decode — the point the router
    /// weights are probed at.
    #[must_use]
    pub fn probe_context(&self) -> u64 {
        self.l_in + (self.l_out.0 + self.l_out.1) / 2
    }
}

/// Exact evaluation of one cell, with its bill.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CellResult {
    /// The evaluated composition.
    pub spec: FleetSpec,
    /// The full fleet report.
    pub report: FleetReport,
    /// Dollar attribution under the book.
    pub cost: FleetCost,
    /// Whether the run met the SLO: every request completed, TTFT p99.9
    /// within bound, TBT p99 within bound.
    pub feasible: bool,
}

/// Per-node batch cap used by every provisioning cell. One knob, shared
/// by dataset, search and goldens, so cells differ only along the axes
/// the surrogate sees.
pub const CELL_MAX_BATCH: u64 = 64;

/// Exactly simulates `spec` serving `traffic` on `model` under `slo`,
/// and bills it with `book`.
///
/// The fleet is monolithic (no prefill pool), routed by
/// [`RouterPolicy::WeightedLeastLoad`] with each node weighted by its
/// variant's decode-throughput probe, and each node capped by its own
/// variant's KV capacity — the heterogeneous axis end to end.
/// Deterministic: same inputs, byte-identical result at any thread
/// count.
#[must_use]
pub fn simulate_cell(
    model: &ModelConfig,
    spec: &FleetSpec,
    traffic: &TrafficSpec,
    slo: SloSpec,
    book: &CostBook,
) -> CellResult {
    let variants = spec.variants();
    assert!(!variants.is_empty(), "fleet must buy at least one node");
    let execs: Vec<_> = variants.iter().map(|v| v.executor(model)).collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();

    let l_ctx = traffic.probe_context();
    let weights: Vec<f64> = variants
        .iter()
        .map(|v| v.decode_weight(model, CELL_MAX_BATCH, l_ctx))
        .collect();
    let schedulers: Vec<_> = variants
        .iter()
        .map(|v| v.scheduler(model, CELL_MAX_BATCH))
        .collect();
    // Shared fallback config: the least-capable variant's capacity, so
    // pool-level admission never overpromises.
    let shared = schedulers
        .iter()
        .copied()
        .min_by(|a, b| a.kv_capacity_bytes.cmp(&b.kv_capacity_bytes))
        .expect("at least one node");

    let mix = FleetMix {
        prefill: PoolMix::default(),
        decode: PoolMix { weights, schedulers },
    };
    let cfg = FleetConfig {
        prefill: None,
        decode: PoolConfig::fixed(variants.len()),
        scheduler: shared,
        policy: RouterPolicy::WeightedLeastLoad,
        interconnect: InterconnectModel::ethernet_400g()
            .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
        slo,
        autoscaler: None,
    };
    let workload = traffic.workload();
    let report = simulate_fleet_mix(&[], &refs, &mix, &workload, &cfg);
    let cost = book.bill(&report, &variants);
    let feasible = report.cluster.completed == traffic.users
        && report.cluster.abandoned == 0
        && report.cluster.ttft.p999_s <= slo.ttft_s
        && report.cluster.tbt.p99_s <= slo.tbt_s;
    CellResult {
        spec: *spec,
        report,
        cost,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_traffic() -> TrafficSpec {
        TrafficSpec {
            users: 24,
            rate_per_s: 4.0,
            l_in: 128,
            l_out: (16, 32),
            seed: 7,
        }
    }

    #[test]
    fn spec_expansion_is_declaration_ordered() {
        let spec = FleetSpec {
            counts: [1, 0, 0, 2, 1],
        };
        let v = spec.variants();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], NodeVariant::DgxBase);
        assert_eq!(v[1], NodeVariant::AttAccBank);
        assert_eq!(v[2], NodeVariant::AttAccBank);
        assert_eq!(v[3], NodeVariant::CpuOffload);
        assert_eq!(spec.label(), "1xdgx-base+2xattacc-bank+1xdgx-cpu");
    }

    #[test]
    fn mixed_cell_serves_and_bills() {
        let model = ModelConfig::gpt3_175b();
        let spec = FleetSpec {
            counts: [1, 0, 0, 1, 0],
        };
        let book = CostBook::paper_defaults();
        let r = simulate_cell(&model, &spec, &small_traffic(), SloSpec::chatbot(), &book);
        assert_eq!(r.report.cluster.completed, 24);
        assert!(r.cost.total_usd > 0.0);
        assert!(r.cost.usd_per_mtok.is_finite());
        // The weighted router must favor the (faster) AttAcc node.
        let dgx_tokens = r.report.cluster.nodes[0].tokens;
        let attacc_tokens = r.report.cluster.nodes[1].tokens;
        assert!(
            attacc_tokens > dgx_tokens,
            "AttAcc node should absorb more work: {attacc_tokens} vs {dgx_tokens}"
        );
    }

    #[test]
    fn cell_simulation_is_deterministic() {
        let model = ModelConfig::gpt3_175b();
        let spec = FleetSpec {
            counts: [1, 0, 1, 0, 0],
        };
        let book = CostBook::paper_defaults();
        let a = simulate_cell(&model, &spec, &small_traffic(), SloSpec::chatbot(), &book);
        let b = simulate_cell(&model, &spec, &small_traffic(), SloSpec::chatbot(), &book);
        assert_eq!(a, b);
    }
}
