//! The node-variant axis of the provisioning search.

use attacc_hbm::AccessDepth;
use attacc_model::{KvCacheSpec, ModelConfig};
use attacc_pim::GemvPlacement;
use attacc_serving::{SchedulerConfig, StageExecutor};
use attacc_sim::{System, SystemExecutor};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A procurable node type: the unit the fleet-mix search composes.
///
/// Each variant maps onto one of the paper's evaluated systems
/// ([`System`] constructors), so the provisioning layer adds no new
/// performance modeling — only the question of *how many of which* to
/// buy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum NodeVariant {
    /// `DGX_Base`: the homogeneous GPU baseline.
    DgxBase,
    /// `DGX+AttAccs` with buffer-die GEMV units.
    AttAccBuffer,
    /// `DGX+AttAccs` with bank-group-level GEMV units.
    AttAccBankGroup,
    /// `DGX+AttAccs` with bank-level GEMV units — the headline design.
    AttAccBank,
    /// DGX with attention offloaded to host-CPU DDR (§7.6).
    CpuOffload,
}

impl NodeVariant {
    /// Every variant, in canonical (feature-vector) order.
    pub const ALL: [NodeVariant; 5] = [
        NodeVariant::DgxBase,
        NodeVariant::AttAccBuffer,
        NodeVariant::AttAccBankGroup,
        NodeVariant::AttAccBank,
        NodeVariant::CpuOffload,
    ];

    /// Position in [`NodeVariant::ALL`] — the feature-vector index.
    #[must_use]
    pub fn index(self) -> usize {
        NodeVariant::ALL
            .iter()
            .position(|v| *v == self)
            .expect("variant is in ALL")
    }

    /// Short label used in tables and golden files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NodeVariant::DgxBase => "dgx-base",
            NodeVariant::AttAccBuffer => "attacc-buf",
            NodeVariant::AttAccBankGroup => "attacc-bg",
            NodeVariant::AttAccBank => "attacc-bank",
            NodeVariant::CpuOffload => "dgx-cpu",
        }
    }

    /// The GEMV placement, for the AttAcc variants.
    #[must_use]
    pub fn placement(self) -> Option<GemvPlacement> {
        match self {
            NodeVariant::AttAccBuffer => Some(GemvPlacement::Buffer),
            NodeVariant::AttAccBankGroup => Some(GemvPlacement::BankGroup),
            NodeVariant::AttAccBank => Some(GemvPlacement::Bank),
            _ => None,
        }
    }

    /// The AttAcc datapath depth matching [`placement`], for peak-power
    /// derivation; [`AccessDepth::External`] for the non-PIM variants.
    ///
    /// [`placement`]: NodeVariant::placement
    #[must_use]
    pub fn access_depth(self) -> AccessDepth {
        match self {
            NodeVariant::AttAccBuffer => AccessDepth::Buffer,
            NodeVariant::AttAccBankGroup => AccessDepth::BankGroup,
            NodeVariant::AttAccBank => AccessDepth::Bank,
            _ => AccessDepth::External,
        }
    }

    /// The evaluated system this variant procures.
    #[must_use]
    pub fn system(self) -> System {
        match self {
            NodeVariant::DgxBase => System::dgx_base(),
            NodeVariant::AttAccBuffer => System::dgx_attacc_with_placement(GemvPlacement::Buffer),
            NodeVariant::AttAccBankGroup => {
                System::dgx_attacc_with_placement(GemvPlacement::BankGroup)
            }
            NodeVariant::AttAccBank => System::dgx_attacc_with_placement(GemvPlacement::Bank),
            NodeVariant::CpuOffload => System::dgx_cpu(),
        }
    }

    /// The stage executor for this variant serving `model`.
    #[must_use]
    pub fn executor(self, model: &ModelConfig) -> SystemExecutor {
        SystemExecutor::new(self.system(), model)
    }

    /// Per-node scheduler limits: `max_batch` requests against this
    /// variant's KV capacity for `model`. This is what makes a mixed
    /// fleet honest — a `DGX_Base` node holds far less KV than an
    /// AttAcc or CPU-offload node and must fill up first.
    #[must_use]
    pub fn scheduler(self, model: &ModelConfig, max_batch: u64) -> SchedulerConfig {
        SchedulerConfig::with_capacity(
            max_batch,
            self.system().kv_capacity_bytes(model),
            KvCacheSpec::of(model).bytes_per_token,
        )
    }

    /// Relative decode throughput (output tokens/s) of one node of this
    /// variant at a full batch of `batch` requests, context `l_ctx` —
    /// the weight the fleet router and autoscaler use. Deterministic:
    /// delegates to the memoised [`StageExecutor::decode_tokens_per_s`]
    /// probe.
    #[must_use]
    pub fn decode_weight(self, model: &ModelConfig, batch: u64, l_ctx: u64) -> f64 {
        self.executor(model).decode_tokens_per_s(batch, l_ctx)
    }
}

impl std::fmt::Display for NodeVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, v) in NodeVariant::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn attacc_bank_outruns_the_baseline_at_long_context() {
        let model = ModelConfig::gpt3_175b();
        let bank = NodeVariant::AttAccBank.decode_weight(&model, 64, 2048);
        let base = NodeVariant::DgxBase.decode_weight(&model, 64, 2048);
        assert!(
            bank > base,
            "AttAcc bank decode weight {bank} should beat DGX base {base}"
        );
    }

    #[test]
    fn kv_capacity_orders_variants_as_the_paper_says() {
        let model = ModelConfig::gpt3_175b();
        let cap = |v: NodeVariant| v.scheduler(&model, 64).kv_capacity_bytes;
        assert!(cap(NodeVariant::AttAccBank) > cap(NodeVariant::DgxBase));
        assert!(cap(NodeVariant::CpuOffload) > cap(NodeVariant::AttAccBank));
    }
}
