//! Heterogeneous-fleet TCO provisioning for AttAcc platforms.
//!
//! The paper (§7) compares homogeneous systems; capacity planning asks
//! the harder question: what *mix* of `dgx-base`, `dgx-attacc`
//! (buffer/bank-group/bank) and CPU-offload nodes serves a traffic
//! level at the lowest $/token under an SLO? This crate answers it end
//! to end:
//!
//! 1. [`CostBook`] — CapEx and wattage per [`NodeVariant`], *derived*
//!    from the existing power/area tables (`attacc-xpu` energy
//!    constants, the `attacc-hbm` IDD7 budget, the §6.3 area model), so
//!    billing and energy accounting share one source of truth. It turns
//!    a [`attacc_cluster::FleetReport`]'s node-seconds and joules into
//!    dollars, charging cold-start spin-up at idle wattage.
//! 2. [`simulate_cell`] — exact evaluation of one `(fleet mix,
//!    traffic)` cell through [`attacc_cluster::simulate_fleet_mix`]:
//!    per-variant KV capacities, throughput-weighted routing, one bill.
//! 3. [`DatasetBuilder`] + [`Gbt`] — parallel exact sweeps labelled
//!    into a dataset, and a hand-rolled, dependency-free
//!    gradient-boosted-tree surrogate with monotone constraints
//!    (deterministic: serial exact greedy splits, total-ordered
//!    tie-breaks).
//! 4. [`run_search`] — the surrogate prunes the mix grid (≥90% of
//!    cells never simulated), the shortlist is re-simulated *exactly*,
//!    and the outcome reports the surrogate's own error — so the
//!    returned optimum is always ground truth, byte-identical at any
//!    thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dataset;
pub mod fleet;
pub mod search;
pub mod surrogate;
pub mod variant;

pub use cost::{CostBook, FleetCost, NodeCost};
pub use dataset::{
    tail_monotone, Dataset, DatasetBuilder, FeatureContext, FEATURE_NAMES, LOAD_RATIO_FEATURE,
    RATE_FEATURE,
};
pub use fleet::{simulate_cell, CellResult, FleetSpec, TrafficSpec, CELL_MAX_BATCH};
pub use search::{
    enumerate_specs, exhaustive_search, run_search, SearchConfig, SearchOutcome, VerifiedPick,
};
pub use surrogate::{Gbt, GbtParams};
pub use variant::NodeVariant;
