//! Surrogate-pruned cheapest-fleet search with exact re-verification.
//!
//! The search answers "cheapest fleet for N users at SLO X": it
//! enumerates a fleet-mix grid, exactly simulates a coarse training
//! stride of it, fits the surrogate, asks the surrogate to rank the
//! rest, and re-simulates only the surrogate's shortlist exactly. The
//! returned optimum therefore always carries an *exact* bill — the
//! surrogate only decides what not to look at — and the outcome reports
//! the surrogate's own error over the verified shortlist, so a drifting
//! model is visible in the table it produced.

use crate::cost::CostBook;
use crate::dataset::{tail_monotone, DatasetBuilder, FeatureContext};
use crate::fleet::{CellResult, FleetSpec, TrafficSpec};
use crate::surrogate::{Gbt, GbtParams};
use attacc_cluster::SloSpec;
use attacc_model::ModelConfig;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Enumerates every fleet mix with per-variant counts bounded by
/// `max_per_variant` and total size in `[1, max_total]`, in
/// deterministic lexicographic order.
#[must_use]
pub fn enumerate_specs(max_per_variant: [usize; 5], max_total: usize) -> Vec<FleetSpec> {
    let mut out = Vec::new();
    let mut counts = [0usize; 5];
    loop {
        let total: usize = counts.iter().sum();
        if total >= 1 && total <= max_total {
            out.push(FleetSpec { counts });
        }
        // Odometer increment.
        let mut i = 5;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if counts[i] < max_per_variant[i] {
                counts[i] += 1;
                break;
            }
            counts[i] = 0;
        }
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Exactly simulate every `train_stride`-th grid cell for surrogate
    /// training (≥ 2).
    pub train_stride: usize,
    /// Fraction of the grid the surrogate may shortlist for exact
    /// re-verification.
    pub verify_frac: f64,
    /// Active-learning rounds: the verification budget is split across
    /// this many refit-rank-verify passes, so a cell the surrogate
    /// mispriced in round 1 corrects the ranking of round 2.
    pub rounds: usize,
    /// Also train on every *homogeneous* grid cell (single-variant
    /// fleets). These corners anchor each variant's marginal cost and
    /// capacity, which a thin lattice stride cannot see — the
    /// design-of-experiments "axial points".
    pub seed_corners: bool,
    /// Surrogate hyperparameters; the p99.9 model additionally gets a
    /// `+1` monotone constraint on the offered-load feature.
    pub gbt: GbtParams,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            train_stride: 40,
            verify_frac: 0.03,
            rounds: 3,
            seed_corners: true,
            gbt: GbtParams::default(),
        }
    }
}

/// One shortlisted candidate: predicted vs exact.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct VerifiedPick {
    /// Grid index of the candidate.
    pub grid_index: usize,
    /// Surrogate-predicted $/Mtok.
    pub predicted_usd_per_mtok: f64,
    /// Surrogate-predicted TTFT p99.9 (s).
    pub predicted_p999_s: f64,
    /// The exact simulation of the candidate.
    pub exact: CellResult,
}

/// Outcome of one provisioning search.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SearchOutcome {
    /// Grid size before pruning.
    pub grid_size: usize,
    /// Cells exactly simulated for training.
    pub trained: usize,
    /// Cells exactly simulated for verification (excluding re-used
    /// training cells).
    pub verified: usize,
    /// Fraction of the grid never exactly simulated.
    pub pruned_frac: f64,
    /// The cheapest *feasible* exactly-simulated cell, with its grid
    /// index; `None` when nothing simulated met the SLO.
    pub best: Option<(usize, CellResult)>,
    /// Mean |predicted − exact| $/Mtok over the verified shortlist.
    pub surrogate_mae_usd_per_mtok: f64,
    /// Max |predicted − exact| $/Mtok over the verified shortlist.
    pub surrogate_max_err_usd_per_mtok: f64,
    /// The verified shortlist, cheapest-exact first.
    pub picks: Vec<VerifiedPick>,
}

/// Runs the surrogate-pruned search over `specs` for one traffic point.
///
/// Deterministic: training cells are a fixed stride of the grid, the
/// surrogate is serial, ranking ties break by grid index, and all
/// parallel sweeps merge by index — so the outcome is byte-identical at
/// any thread count.
///
/// # Panics
/// Panics when `specs` is empty or `cfg.train_stride < 2`.
#[must_use]
pub fn run_search(
    model: &ModelConfig,
    specs: &[FleetSpec],
    traffic: &TrafficSpec,
    slo: SloSpec,
    book: &CostBook,
    cfg: &SearchConfig,
) -> SearchOutcome {
    assert!(!specs.is_empty(), "search needs a non-empty grid");
    assert!(cfg.train_stride >= 2, "stride 1 would be exhaustive");

    // 1. Exact training set: lattice stride plus (optionally) the
    // homogeneous corners.
    let mut train_idx: Vec<usize> = (0..specs.len()).step_by(cfg.train_stride).collect();
    if cfg.seed_corners {
        train_idx.extend(
            specs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.counts.iter().filter(|&&c| c > 0).count() == 1)
                .map(|(i, _)| i),
        );
        train_idx.sort_unstable();
        train_idx.dedup();
    }
    let mut builder = DatasetBuilder::new(model.clone(), slo, book.clone());
    for &i in &train_idx {
        builder.cell(specs[i], *traffic);
    }
    let train = builder.build();
    let mut exact_by_index: BTreeMap<usize, CellResult> = train_idx
        .iter()
        .zip(train.results.iter())
        .map(|(&i, r)| (i, r.clone()))
        .collect();

    // 2. Active-learning verification rounds. Each round refits the
    // surrogates on *everything* exactly simulated so far — including
    // the previous round's shortlist, so a cell the surrogate mispriced
    // corrects the next round's ranking — then spends a slice of the
    // verification budget on the best-ranked unsimulated cells.
    let k = ((specs.len() as f64 * cfg.verify_frac).ceil() as usize).max(cfg.rounds);
    let per_round = k.div_ceil(cfg.rounds);
    let ctx = FeatureContext::new(model.clone(), book.clone());
    let grid_xs: Vec<Vec<f64>> = specs.iter().map(|s| ctx.features(s, traffic)).collect();
    let tail_params = GbtParams {
        monotone: tail_monotone(),
        ..cfg.gbt.clone()
    };
    let mut picks: Vec<VerifiedPick> = Vec::with_capacity(k);
    let mut verified = 0usize;
    for round in 0..cfg.rounds {
        let budget = per_round.min(k - round * per_round);
        if budget == 0 {
            break;
        }
        // Refit on the current exact set.
        #[allow(clippy::type_complexity)]
        let (xs, (cost_y, tail_y)): (Vec<Vec<f64>>, (Vec<f64>, Vec<f64>)) = exact_by_index
            .iter()
            .map(|(&i, r)| {
                (
                    grid_xs[i].clone(),
                    (r.cost.usd_per_mtok, r.report.cluster.ttft.p999_s),
                )
            })
            .unzip();
        let cost_model = Gbt::fit(&xs, &cost_y, &cfg.gbt);
        let tail_model = Gbt::fit(&xs, &tail_y, &tail_params);

        // Rank every unsimulated cell: predicted-feasible first, then
        // predicted cost, ties by grid index. Tail predictions clamp at
        // zero — negative seconds are extrapolation artifacts.
        let predictions: Vec<(f64, f64)> = grid_xs
            .iter()
            .map(|x| (cost_model.predict(x), tail_model.predict(x).max(0.0)))
            .collect();
        let mut order: Vec<usize> = (0..specs.len())
            .filter(|i| !exact_by_index.contains_key(i))
            .collect();
        order.sort_by(|&a, &b| {
            let feas_a = predictions[a].1 <= slo.ttft_s;
            let feas_b = predictions[b].1 <= slo.ttft_s;
            feas_b
                .cmp(&feas_a)
                .then(predictions[a].0.total_cmp(&predictions[b].0))
                .then(a.cmp(&b))
        });
        let shortlist: Vec<usize> = order.into_iter().take(budget).collect();
        if shortlist.is_empty() {
            break;
        }
        let mut verifier = DatasetBuilder::new(model.clone(), slo, book.clone());
        for &i in &shortlist {
            verifier.cell(specs[i], *traffic);
        }
        let results = verifier.build();
        for (&i, r) in shortlist.iter().zip(results.results.iter()) {
            exact_by_index.insert(i, r.clone());
            picks.push(VerifiedPick {
                grid_index: i,
                predicted_usd_per_mtok: predictions[i].0,
                predicted_p999_s: predictions[i].1,
                exact: r.clone(),
            });
            verified += 1;
        }
    }
    picks.sort_by(|a, b| {
        a.exact
            .cost
            .usd_per_mtok
            .total_cmp(&b.exact.cost.usd_per_mtok)
            .then(a.grid_index.cmp(&b.grid_index))
    });
    let errs: Vec<f64> = picks
        .iter()
        .filter(|p| p.exact.cost.usd_per_mtok.is_finite())
        .map(|p| (p.predicted_usd_per_mtok - p.exact.cost.usd_per_mtok).abs())
        .collect();
    let mae = if errs.is_empty() {
        0.0
    } else {
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    let max_err = errs.iter().fold(0.0f64, |a, &b| a.max(b));

    // 3. Surrogate error over the verified shortlist.
    let best = exact_by_index
        .iter()
        .filter(|(_, r)| r.feasible)
        .min_by(|(ia, a), (ib, b)| {
            a.cost
                .usd_per_mtok
                .total_cmp(&b.cost.usd_per_mtok)
                .then(ia.cmp(ib))
        })
        .map(|(&i, r)| (i, r.clone()));

    let exact_sims = exact_by_index.len();
    SearchOutcome {
        grid_size: specs.len(),
        trained: train_idx.len(),
        verified,
        pruned_frac: 1.0 - exact_sims as f64 / specs.len() as f64,
        best,
        surrogate_mae_usd_per_mtok: mae,
        surrogate_max_err_usd_per_mtok: max_err,
        picks,
    }
}

/// Exhaustively simulates every spec and returns the cheapest feasible
/// one with its grid index (ties break by index) — the ground truth the
/// pruned search is validated against.
#[must_use]
pub fn exhaustive_search(
    model: &ModelConfig,
    specs: &[FleetSpec],
    traffic: &TrafficSpec,
    slo: SloSpec,
    book: &CostBook,
) -> Option<(usize, CellResult)> {
    let mut builder = DatasetBuilder::new(model.clone(), slo, book.clone());
    for s in specs {
        builder.cell(*s, *traffic);
    }
    let data = builder.build();
    data.results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.feasible)
        .min_by(|(ia, a), (ib, b)| {
            a.cost
                .usd_per_mtok
                .total_cmp(&b.cost.usd_per_mtok)
                .then(ia.cmp(ib))
        })
        .map(|(i, r)| (i, r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_enumeration_is_lexicographic_and_bounded() {
        let specs = enumerate_specs([1, 0, 0, 1, 1], 2);
        // Odometer order over (dgx, bank, cpu) ∈ {0,1}³ minus the empty
        // and the >2-total combos.
        assert!(specs.iter().all(|s| (1..=2).contains(&s.total_nodes())));
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].counts, [0, 0, 0, 0, 1]);
        assert_eq!(specs[1].counts, [0, 0, 0, 1, 0]);
        let mut sorted = specs.clone();
        sorted.sort_by_key(|s| s.counts);
        assert_eq!(specs, sorted, "enumeration order is lexicographic");
    }

    #[test]
    fn enumeration_respects_per_variant_caps() {
        let specs = enumerate_specs([2, 1, 1, 2, 1], 3);
        for s in &specs {
            for (i, &c) in s.counts.iter().enumerate() {
                assert!(c <= [2, 1, 1, 2, 1][i]);
            }
        }
    }
}
