//! Dataset generation: exact cell simulations → surrogate training rows.

use crate::cost::CostBook;
use crate::fleet::{simulate_cell, CellResult, FleetSpec, TrafficSpec};
use attacc_cluster::SloSpec;
use attacc_model::ModelConfig;
use attacc_sim::SweepRunner;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Feature names, in row order: the five variant counts, the traffic
/// shape, then the derived aggregate-fleet features — the derived block
/// is what lets a small training set generalize across mixes, because
/// distinct compositions with the same aggregate throughput/capacity
/// land near each other in feature space.
pub const FEATURE_NAMES: [&str; 14] = [
    "n_dgx_base",
    "n_attacc_buf",
    "n_attacc_bg",
    "n_attacc_bank",
    "n_dgx_cpu",
    "rate_per_s",
    "users",
    "l_in",
    "l_out_mean",
    "fleet_tokens_per_s",
    "fleet_kv_bytes",
    "fleet_capex_usd",
    "fleet_idle_w",
    "load_ratio",
];

/// Index of the offered-load feature — monotone-constrained `+1` in the
/// p99.9 surrogate (more load never improves the tail).
pub const RATE_FEATURE: usize = 5;

/// Index of the derived load/capacity ratio — also `+1`-constrained in
/// the tail surrogate.
pub const LOAD_RATIO_FEATURE: usize = 13;

/// Precomputed per-variant unit stats for feature derivation: decode
/// throughput is probed through the memoised executor, capacity and
/// dollars come from the model and the [`CostBook`].
#[derive(Debug, Clone)]
pub struct FeatureContext {
    model: ModelConfig,
    book: CostBook,
}

impl FeatureContext {
    /// A context for `model` billed by `book`.
    #[must_use]
    pub fn new(model: ModelConfig, book: CostBook) -> FeatureContext {
        FeatureContext { model, book }
    }

    /// The feature row of one `(fleet mix, traffic)` cell.
    #[must_use]
    pub fn features(&self, spec: &FleetSpec, traffic: &TrafficSpec) -> Vec<f64> {
        use crate::fleet::CELL_MAX_BATCH;
        use crate::variant::NodeVariant;
        let l_out_mean = (traffic.l_out.0 + traffic.l_out.1) as f64 / 2.0;
        let l_ctx = traffic.probe_context();
        let mut thr = 0.0;
        let mut kv = 0.0;
        let mut capex = 0.0;
        let mut idle = 0.0;
        for (i, &c) in spec.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let v = NodeVariant::ALL[i];
            let n = c as f64;
            thr += n * v.decode_weight(&self.model, CELL_MAX_BATCH, l_ctx);
            kv += n * v.system().kv_capacity_bytes(&self.model) as f64;
            let nc = self.book.node(v);
            capex += n * nc.capex_usd;
            idle += n * nc.idle_w;
        }
        let mut x = Vec::with_capacity(FEATURE_NAMES.len());
        x.extend(spec.counts.iter().map(|&c| c as f64));
        x.push(traffic.rate_per_s);
        x.push(traffic.users as f64);
        x.push(traffic.l_in as f64);
        x.push(l_out_mean);
        x.push(thr);
        x.push(kv);
        x.push(capex);
        x.push(idle);
        x.push(if thr > 0.0 {
            traffic.rate_per_s * l_out_mean / thr
        } else {
            f64::INFINITY
        });
        x
    }
}

/// The monotone-constraint vector for the tail (p99.9) surrogate: `+1`
/// on offered load and on the load/capacity ratio.
#[must_use]
pub fn tail_monotone() -> Vec<i8> {
    let mut m = vec![0i8; FEATURE_NAMES.len()];
    m[RATE_FEATURE] = 1;
    m[LOAD_RATIO_FEATURE] = 1;
    m
}

/// A labelled provisioning dataset: features plus the three surrogate
/// targets, row-aligned with the exact results that produced them.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Dataset {
    /// Feature rows ([`FEATURE_NAMES`] order).
    pub xs: Vec<Vec<f64>>,
    /// Goodput target: SLO-attaining output tokens/s.
    pub goodput: Vec<f64>,
    /// Tail target: TTFT p99.9 (s).
    pub p999: Vec<f64>,
    /// Cost target: USD per million output tokens.
    pub usd_per_mtok: Vec<f64>,
    /// The exact per-cell results, row-aligned.
    pub results: Vec<CellResult>,
}

/// Sweeps `(fleet mix, traffic)` cells through the parallel
/// [`SweepRunner`] and collects the labelled dataset. Results merge by
/// cell index, so the dataset is byte-identical at any thread count.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    model: ModelConfig,
    slo: SloSpec,
    book: CostBook,
    cells: Vec<(FleetSpec, TrafficSpec)>,
}

impl DatasetBuilder {
    /// A builder for `model` under `slo`, billing with `book`.
    #[must_use]
    pub fn new(model: ModelConfig, slo: SloSpec, book: CostBook) -> DatasetBuilder {
        DatasetBuilder {
            model,
            slo,
            book,
            cells: Vec::new(),
        }
    }

    /// Queues one cell.
    pub fn cell(&mut self, spec: FleetSpec, traffic: TrafficSpec) -> &mut DatasetBuilder {
        self.cells.push((spec, traffic));
        self
    }

    /// Queues the cross product of `specs` × `traffics`.
    pub fn grid(&mut self, specs: &[FleetSpec], traffics: &[TrafficSpec]) -> &mut DatasetBuilder {
        for t in traffics {
            for s in specs {
                self.cells.push((*s, *t));
            }
        }
        self
    }

    /// Number of queued cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Simulates every queued cell exactly (in parallel) and assembles
    /// the dataset.
    #[must_use]
    pub fn build(&self) -> Dataset {
        let results = SweepRunner::from_env().map(&self.cells, |(spec, traffic)| {
            simulate_cell(&self.model, spec, traffic, self.slo, &self.book)
        });
        let ctx = FeatureContext::new(self.model.clone(), self.book.clone());
        let mut xs = Vec::with_capacity(results.len());
        let mut goodput = Vec::with_capacity(results.len());
        let mut p999 = Vec::with_capacity(results.len());
        let mut usd = Vec::with_capacity(results.len());
        for ((spec, traffic), r) in self.cells.iter().zip(&results) {
            xs.push(ctx.features(spec, traffic));
            goodput.push(r.report.cluster.goodput.goodput_tokens_per_s);
            p999.push(r.report.cluster.ttft.p999_s);
            usd.push(r.cost.usd_per_mtok);
        }
        Dataset {
            xs,
            goodput,
            p999,
            usd_per_mtok: usd,
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::NodeVariant;

    #[test]
    fn feature_rows_align_with_names() {
        let spec = FleetSpec::homogeneous(NodeVariant::AttAccBank, 3);
        let t = TrafficSpec {
            users: 10,
            rate_per_s: 2.5,
            l_in: 64,
            l_out: (8, 24),
            seed: 1,
        };
        let ctx = FeatureContext::new(ModelConfig::gpt3_175b(), CostBook::paper_defaults());
        let x = ctx.features(&spec, &t);
        assert_eq!(x.len(), FEATURE_NAMES.len());
        assert_eq!(x[NodeVariant::AttAccBank.index()], 3.0);
        assert_eq!(x[RATE_FEATURE], 2.5);
        assert_eq!(x[8], 16.0);
        // Derived block: 3 identical nodes → aggregates scale by 3.
        let one = ctx.features(&FleetSpec::homogeneous(NodeVariant::AttAccBank, 1), &t);
        assert!((x[9] - 3.0 * one[9]).abs() < 1e-9, "throughput sums per node");
        assert!((x[10] - 3.0 * one[10]).abs() < 1e-6, "kv capacity sums per node");
        // Load ratio falls as the fleet grows.
        assert!(x[LOAD_RATIO_FEATURE] < one[LOAD_RATIO_FEATURE]);
    }
}
