//! A hand-rolled gradient-boosted-tree surrogate with monotone
//! constraints. No external dependencies, no randomness, no threads:
//! training is a fixed sequence of exact greedy splits, so the same
//! dataset always yields the same model and the same predictions — at
//! any `ATTACC_THREADS` setting.
//!
//! ## Model
//!
//! Least-squares boosting: `F_m(x) = F_{m-1}(x) + η · t_m(x)` where each
//! `t_m` is a depth-limited regression tree fit to the residuals of
//! `F_{m-1}` and `η` is the shrinkage. Splits minimize the sum of
//! squared errors over exact midpoint thresholds; ties break by
//! `(feature index, threshold)` so the greedy choice is total-ordered.
//!
//! ## Monotone constraints
//!
//! A feature marked `+1` guarantees `x_f ≤ x_f' ⇒ f(x) ≤ f(x')`
//! (all else equal), the XGBoost construction: a split on a `+1`
//! feature whose left child would predict *more* than its right child
//! is rejected, and the admitted split pins `mid = (w_l + w_r) / 2` as
//! the upper bound of the left subtree and lower bound of the right.
//! Leaf values clamp into their inherited `[lo, hi]` interval, so the
//! per-tree response in a constrained feature is stepwise
//! non-decreasing — and a sum of non-decreasing steps is
//! non-decreasing. The monotonicity proptest leans on this structure,
//! not on luck.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct GbtParams {
    /// Boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage η applied to every leaf.
    pub shrinkage: f64,
    /// Minimum samples per leaf; splits creating smaller leaves are
    /// rejected.
    pub min_leaf: usize,
    /// Per-feature monotone constraint: `+1` non-decreasing, `-1`
    /// non-increasing, `0` unconstrained. Empty = all unconstrained.
    pub monotone: Vec<i8>,
}

impl Default for GbtParams {
    fn default() -> GbtParams {
        GbtParams {
            rounds: 120,
            max_depth: 3,
            shrinkage: 0.15,
            min_leaf: 2,
            monotone: Vec::new(),
        }
    }
}

/// One node of a fitted tree: an internal split or a leaf.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
enum TreeNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree (arena-allocated nodes, root at 0).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A fitted gradient-boosted surrogate for one target.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Gbt {
    base: f64,
    shrinkage: f64,
    trees: Vec<Tree>,
    n_features: usize,
}

/// The best admissible split of one node's sample set.
struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
    left_mean: f64,
    right_mean: f64,
}

impl Gbt {
    /// Fits the surrogate to `(xs, ys)`. Deterministic and serial.
    ///
    /// # Panics
    /// Panics on empty data, ragged rows, or a `monotone` vector whose
    /// length differs from the feature count.
    #[must_use]
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &GbtParams) -> Gbt {
        assert!(!xs.is_empty() && xs.len() == ys.len(), "non-empty aligned data");
        let n_features = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == n_features), "rectangular features");
        assert!(
            params.monotone.is_empty() || params.monotone.len() == n_features,
            "monotone vector must cover every feature"
        );
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(params.rounds);
        let idx: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..params.rounds {
            let mut nodes = Vec::new();
            grow(
                &mut nodes,
                xs,
                &residuals,
                idx.clone(),
                0,
                params,
                f64::NEG_INFINITY,
                f64::INFINITY,
            );
            let tree = Tree { nodes };
            for (i, x) in xs.iter().enumerate() {
                residuals[i] -= params.shrinkage * tree.predict(x);
            }
            trees.push(tree);
        }
        Gbt {
            base,
            shrinkage: params.shrinkage,
            trees,
            n_features,
        }
    }

    /// Predicts one point.
    ///
    /// # Panics
    /// Panics when `x` has the wrong arity.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature arity");
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.shrinkage * t.predict(x))
                .sum::<f64>()
    }

    /// Mean absolute error over a labelled set.
    #[must_use]
    pub fn mae(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert!(!xs.is_empty() && xs.len() == ys.len());
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (self.predict(x) - y).abs())
            .sum::<f64>()
            / ys.len() as f64
    }
}

fn mean(vals: impl Iterator<Item = f64>, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        vals.sum::<f64>() / n as f64
    }
}

/// Recursively grows the tree over `samples`, returning the index of the
/// created node. `lo`/`hi` are the leaf-value bounds inherited from
/// monotone splits above.
#[allow(clippy::too_many_arguments)]
fn grow(
    nodes: &mut Vec<TreeNode>,
    xs: &[Vec<f64>],
    residuals: &[f64],
    samples: Vec<usize>,
    depth: usize,
    params: &GbtParams,
    lo: f64,
    hi: f64,
) -> usize {
    let node_mean = mean(samples.iter().map(|&i| residuals[i]), samples.len());
    let leaf_value = node_mean.clamp(lo, hi);
    if depth >= params.max_depth || samples.len() < 2 * params.min_leaf {
        nodes.push(TreeNode::Leaf { value: leaf_value });
        return nodes.len() - 1;
    }
    let Some(split) = best_split(xs, residuals, &samples, params) else {
        nodes.push(TreeNode::Leaf { value: leaf_value });
        return nodes.len() - 1;
    };
    let (left_set, right_set): (Vec<usize>, Vec<usize>) = samples
        .iter()
        .partition(|&&i| xs[i][split.feature] <= split.threshold);
    // Monotone bound propagation: pin the mid-point between the child
    // means so descendants cannot cross it.
    let constraint = params.monotone.get(split.feature).copied().unwrap_or(0);
    let (l_lo, l_hi, r_lo, r_hi) = match constraint {
        0 => (lo, hi, lo, hi),
        _ => {
            let mid = ((split.left_mean + split.right_mean) / 2.0).clamp(lo, hi);
            if constraint > 0 {
                (lo, mid, mid, hi)
            } else {
                (mid, hi, lo, mid)
            }
        }
    };
    let placeholder = nodes.len();
    nodes.push(TreeNode::Leaf { value: leaf_value });
    let left = grow(nodes, xs, residuals, left_set, depth + 1, params, l_lo, l_hi);
    let right = grow(nodes, xs, residuals, right_set, depth + 1, params, r_lo, r_hi);
    nodes[placeholder] = TreeNode::Split {
        feature: split.feature,
        threshold: split.threshold,
        left,
        right,
    };
    placeholder
}

/// Scans every feature's exact midpoint thresholds for the admissible
/// split with the highest SSE reduction. Ties break by `(feature,
/// threshold)`; monotone-violating splits are rejected outright.
fn best_split(
    xs: &[Vec<f64>],
    residuals: &[f64],
    samples: &[usize],
    params: &GbtParams,
) -> Option<SplitChoice> {
    let mut best: Option<SplitChoice> = None;
    #[allow(clippy::needless_range_loop)] // `f` indexes feature columns, not `xs` rows
    for f in 0..xs[samples[0]].len() {
        // Sort by (value, index) so equal feature values order stably.
        let mut order: Vec<usize> = samples.to_vec();
        order.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]).then(a.cmp(&b)));
        let total: f64 = order.iter().map(|&i| residuals[i]).sum();
        let n = order.len();
        let mut left_sum = 0.0;
        let mut left_n = 0usize;
        for w in 0..n - 1 {
            left_sum += residuals[order[w]];
            left_n += 1;
            let (a, b) = (xs[order[w]][f], xs[order[w + 1]][f]);
            if a == b {
                continue; // not a valid cut point
            }
            let right_n = n - left_n;
            if left_n < params.min_leaf || right_n < params.min_leaf {
                continue;
            }
            let right_sum = total - left_sum;
            let left_mean = left_sum / left_n as f64;
            let right_mean = right_sum / right_n as f64;
            let constraint = params.monotone.get(f).copied().unwrap_or(0);
            if (constraint > 0 && left_mean > right_mean)
                || (constraint < 0 && left_mean < right_mean)
            {
                continue;
            }
            let gain = left_sum * left_sum / left_n as f64
                + right_sum * right_sum / right_n as f64
                - total * total / n as f64;
            let threshold = (a + b) / 2.0;
            let better = match &best {
                None => true,
                Some(cur) => match gain.total_cmp(&cur.gain) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => {
                        (f, threshold) < (cur.feature, cur.threshold)
                    }
                },
            };
            if better && gain > 1e-12 {
                best = Some(SplitChoice {
                    feature: f,
                    threshold,
                    gain,
                    left_mean,
                    right_mean,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2d() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3x₀ + x₁² — smooth, monotone in x₀.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let (a, b) = (i as f64 / 2.0, j as f64 / 3.0);
                xs.push(vec![a, b]);
                ys.push(3.0 * a + b * b);
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_a_smooth_surface_tightly() {
        let (xs, ys) = grid_2d();
        let model = Gbt::fit(&xs, &ys, &GbtParams::default());
        let spread = ys.iter().cloned().fold(f64::MIN, f64::max)
            - ys.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            model.mae(&xs, &ys) < 0.02 * spread,
            "training MAE {} should be < 2% of spread {spread}",
            model.mae(&xs, &ys)
        );
    }

    #[test]
    fn training_is_bitwise_reproducible() {
        let (xs, ys) = grid_2d();
        let a = Gbt::fit(&xs, &ys, &GbtParams::default());
        let b = Gbt::fit(&xs, &ys, &GbtParams::default());
        assert_eq!(a, b);
        assert_eq!(a.predict(&[1.7, 2.3]).to_bits(), b.predict(&[1.7, 2.3]).to_bits());
    }

    #[test]
    fn monotone_constraint_holds_off_grid() {
        let (xs, ys) = grid_2d();
        let params = GbtParams {
            monotone: vec![1, 0],
            ..GbtParams::default()
        };
        let model = Gbt::fit(&xs, &ys, &params);
        for j in 0..40 {
            let b = j as f64 / 10.0;
            let mut prev = f64::NEG_INFINITY;
            for i in 0..80 {
                let a = i as f64 / 14.0;
                let y = model.predict(&[a, b]);
                assert!(
                    y >= prev - 1e-12,
                    "prediction must not decrease in x0: f({a}, {b}) = {y} < {prev}"
                );
                prev = y;
            }
        }
    }

    #[test]
    fn decreasing_constraint_mirrors() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| -2.0 * i as f64 + ((i * 7) % 5) as f64 * 0.1).collect();
        let params = GbtParams {
            monotone: vec![-1],
            ..GbtParams::default()
        };
        let model = Gbt::fit(&xs, &ys, &params);
        let mut prev = f64::INFINITY;
        for i in 0..120 {
            let y = model.predict(&[i as f64 / 4.0]);
            assert!(y <= prev + 1e-12, "must not increase: {y} > {prev}");
            prev = y;
        }
    }
}
