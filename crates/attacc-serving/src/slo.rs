//! SLO-constrained batch-size search (§3.2, §7.3).

use crate::scheduler::StageExecutor;

/// Largest batch whose per-iteration (token-generation) latency stays
/// within `slo_s`, evaluated at context length `l_eval` (the paper
/// evaluates at the average sequence length of the batch), capped by
/// `max_batch` (the capacity limit).
///
/// Returns 0 when even a single request violates the SLO.
///
/// Latency is monotone non-decreasing in batch size for every system we
/// model, so a binary search suffices; a debug assertion guards the
/// assumption.
#[must_use]
pub fn max_batch_under_slo<E: StageExecutor>(
    executor: &E,
    slo_s: f64,
    l_eval: u64,
    max_batch: u64,
) -> u64 {
    assert!(slo_s > 0.0, "SLO must be positive");
    if max_batch == 0 {
        return 0;
    }
    let latency = |b: u64| executor.gen_stage(&[(b, l_eval)]).latency_s;
    if latency(1) > slo_s {
        return 0;
    }
    if latency(max_batch) <= slo_s {
        return max_batch;
    }
    let (mut lo, mut hi) = (1u64, max_batch); // latency(lo) ≤ slo < latency(hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if latency(mid) <= slo_s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    debug_assert!(latency(lo) <= slo_s);
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StageCost;

    /// Iteration latency = 2 ms + 0.5 ms per request.
    struct Linear;
    impl StageExecutor for Linear {
        fn sum_stage(&self, _batch: u64, _l_in: u64) -> StageCost {
            StageCost::default()
        }
        fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
            let n: u64 = groups.iter().map(|g| g.0).sum();
            StageCost {
                latency_s: 2e-3 + 0.5e-3 * n as f64,
                energy_j: 0.0,
            }
        }
    }

    #[test]
    fn finds_exact_boundary() {
        // 2 + 0.5·b ≤ 50 → b ≤ 96.
        assert_eq!(max_batch_under_slo(&Linear, 50e-3, 2048, 1000), 96);
    }

    #[test]
    fn capacity_cap_applies() {
        assert_eq!(max_batch_under_slo(&Linear, 50e-3, 2048, 10), 10);
    }

    #[test]
    fn impossible_slo_gives_zero() {
        assert_eq!(max_batch_under_slo(&Linear, 1e-3, 2048, 1000), 0);
        assert_eq!(max_batch_under_slo(&Linear, 50e-3, 2048, 0), 0);
    }

    #[test]
    fn tighter_slo_smaller_batch() {
        let loose = max_batch_under_slo(&Linear, 70e-3, 2048, 1000);
        let tight = max_batch_under_slo(&Linear, 30e-3, 2048, 1000);
        assert!(tight < loose);
        assert_eq!(tight, 56);
    }
}
