//! Batched serving layer: iteration-level scheduling, SLO and capacity
//! batch-size limits, and the §6 pipelining / co-processing combinators.
//!
//! The serving layer is device-agnostic: it drives any [`StageExecutor`]
//! (implemented by `attacc-sim` for each system) through the lifecycle of
//! a request population, using the iteration-level scheduling of ORCA \[66\]
//! — a new request joins the batch whenever one completes, so heads at
//! different progress points mix freely within a Gen iteration.
//!
//! # Example
//!
//! ```
//! use attacc_serving::{simulate, SchedulerConfig, StageCost, StageExecutor, Workload};
//!
//! /// A toy system: every stage costs 1 ms per request in the batch.
//! struct Toy;
//! impl StageExecutor for Toy {
//!     fn sum_stage(&self, batch: u64, _l_in: u64) -> StageCost {
//!         StageCost { latency_s: 1e-3 * batch as f64, energy_j: 0.0 }
//!     }
//!     fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
//!         let n: u64 = groups.iter().map(|g| g.0).sum();
//!         StageCost { latency_s: 1e-3 * n as f64, energy_j: 0.0 }
//!     }
//! }
//!
//! let wl = Workload::fixed(8, 16, 4); // 8 requests, L_in 16, L_out 4
//! let report = simulate(&Toy, &wl.requests(), &SchedulerConfig::unlimited(4));
//! assert_eq!(report.tokens_generated, 8 * 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod capacity;
pub mod metrics;
pub mod pipeline;
pub mod resilience;
pub mod scheduler;
pub mod slo;
pub mod trace;
pub mod workload;

pub use arrivals::{simulate_open_loop, ArrivalWorkload, LatencyStats, OpenLoopReport};
pub use capacity::max_batch_by_capacity;
pub use metrics::ServingReport;
pub use pipeline::{ff_coprocess_speedup, head_level_pipelined_s, serial_s, DecoderPhases};
pub use resilience::RetryPolicy;
pub use scheduler::{
    simulate, simulate_with_policy, AdmissionPolicy, SchedulerConfig, StageCost, StageExecutor,
};
pub use slo::max_batch_under_slo;
pub use trace::{format_trace, parse_trace, FlashCrowd, ParseTraceError, TraceSpec};
pub use workload::Workload;
