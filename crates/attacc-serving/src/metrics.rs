//! Serving-run metrics.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Outcome of a serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ServingReport {
    /// Wall-clock seconds to drain the workload.
    pub total_time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Output tokens produced (Sum stages produce one each, too).
    pub tokens_generated: u64,
    /// Requests fully served.
    pub requests_completed: u64,
    /// Gen iterations executed.
    pub gen_iterations: u64,
    /// Longest single Gen-iteration latency (the SLO-relevant number).
    pub max_iteration_latency_s: f64,
    /// Mean completion time of finished requests, measured from the start
    /// of the run (turnaround in a closed-loop drain).
    pub mean_turnaround_s: f64,
}

impl ServingReport {
    /// Throughput in generated tokens per second.
    #[must_use]
    pub fn tokens_per_s(&self) -> f64 {
        if self.total_time_s > 0.0 {
            self.tokens_generated as f64 / self.total_time_s
        } else {
            0.0
        }
    }

    /// Energy per output token in joules.
    #[must_use]
    pub fn energy_per_token_j(&self) -> f64 {
        if self.tokens_generated > 0 {
            self.energy_j / self.tokens_generated as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_safe_on_empty_report() {
        let r = ServingReport::default();
        assert_eq!(r.tokens_per_s(), 0.0);
        assert_eq!(r.energy_per_token_j(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let r = ServingReport {
            total_time_s: 2.0,
            energy_j: 50.0,
            tokens_generated: 100,
            ..ServingReport::default()
        };
        assert_eq!(r.tokens_per_s(), 50.0);
        assert_eq!(r.energy_per_token_j(), 0.5);
    }
}
