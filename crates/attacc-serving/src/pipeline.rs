//! The §6 optimizations: head-level pipelining and feedforward
//! co-processing, as pure timing combinators.
//!
//! `attacc-sim` computes per-phase times for a decoder (QKV generation and
//! projection on the xPU, attention on AttAcc, feedforward on the xPU or
//! co-processed) and composes them here.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Per-phase times of one decoder on a heterogeneous platform (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DecoderPhases {
    /// QKV-generation FC on the xPU.
    pub qkv_s: f64,
    /// Attention on AttAcc (already attention-level pipelined).
    pub attn_s: f64,
    /// Projection FC on the xPU.
    pub proj_s: f64,
    /// Feedforward block (FF1 + activation + FF2) on the xPU.
    pub ff_s: f64,
    /// Layernorms, residuals, KV transfers — not overlappable.
    pub other_s: f64,
    /// Tensor-parallel collectives.
    pub comm_s: f64,
}

/// Un-pipelined decoder time: every phase serializes (Fig. 11, "naïve").
#[must_use]
pub fn serial_s(p: &DecoderPhases) -> f64 {
    p.qkv_s + p.attn_s + p.proj_s + p.ff_s + p.other_s + p.comm_s
}

/// Head-level pipelining (§6.1): the xPU tiles QKV generation per head
/// group, AttAcc schedules attention per head, and the projection consumes
/// head outputs as they land — so the multi-head block takes
/// `max(xPU work, attention work)` plus a one-tile ramp.
///
/// `chunks` is the number of head-granularity tiles flowing through the
/// pipeline (≥ 1; the paper's example streams per attention head).
///
/// # Panics
/// Panics if `chunks` is zero.
#[must_use]
pub fn head_level_pipelined_s(p: &DecoderPhases, chunks: u64) -> f64 {
    assert!(chunks > 0, "pipelining needs at least one tile");
    let xpu = p.qkv_s + p.proj_s;
    let block = xpu.max(p.attn_s) + xpu.min(p.attn_s) / chunks as f64;
    block + p.ff_s + p.other_s + p.comm_s
}

/// Feedforward co-processing (§6.2): the bandwidth-bound FF GEMMs split
/// column-/row-wise between the xPU and the otherwise-idle AttAccs, which
/// contribute their external bandwidth. Returns the factor (< 1) that
/// multiplies the xPU-only FF time.
///
/// The static weight partition assumes both sides stay bandwidth-bound
/// (true unless the batch is enormous, §6.2); weights are duplicated to
/// allow re-balancing across batch sizes, which costs capacity, not time.
///
/// # Panics
/// Panics if either bandwidth is non-positive.
#[must_use]
pub fn ff_coprocess_speedup(xpu_bw: f64, attacc_external_bw: f64) -> f64 {
    assert!(xpu_bw > 0.0, "xPU bandwidth must be positive");
    assert!(attacc_external_bw >= 0.0, "AttAcc bandwidth must be non-negative");
    xpu_bw / (xpu_bw + attacc_external_bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> DecoderPhases {
        DecoderPhases {
            qkv_s: 3.0,
            attn_s: 8.0,
            proj_s: 1.0,
            ff_s: 8.0,
            other_s: 0.5,
            comm_s: 0.5,
        }
    }

    #[test]
    fn serial_is_plain_sum() {
        assert_eq!(serial_s(&phases()), 21.0);
    }

    #[test]
    fn pipelining_approaches_max_of_streams() {
        let p = phases();
        let t = head_level_pipelined_s(&p, 96);
        // Block ≈ max(4, 8) + 4/96 ≈ 8.04; total ≈ 17.04.
        assert!((t - 17.0417).abs() < 1e-3, "t = {t}");
        assert!(t < serial_s(&p));
    }

    #[test]
    fn single_chunk_pipelining_equals_serial_block() {
        let p = phases();
        let t = head_level_pipelined_s(&p, 1);
        assert!((t - serial_s(&p)).abs() < 1e-12);
    }

    #[test]
    fn pipelining_monotone_in_chunks() {
        let p = phases();
        let mut prev = f64::INFINITY;
        for c in [1, 2, 8, 32, 128] {
            let t = head_level_pipelined_s(&p, c);
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn ff_speedup_matches_bandwidth_shares() {
        // DGX 26.6 TB/s + AttAcc external 26.6 TB/s → FF halves.
        let f = ff_coprocess_speedup(26.6e12, 26.6e12);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(ff_coprocess_speedup(1.0, 0.0), 1.0);
    }

    #[test]
    fn combined_optimizations_compose() {
        let mut p = phases();
        p.ff_s *= ff_coprocess_speedup(1.0, 1.0);
        let t = head_level_pipelined_s(&p, 96);
        assert!(t < serial_s(&phases()) - 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_chunks_rejected() {
        let _ = head_level_pipelined_s(&phases(), 0);
    }
}
