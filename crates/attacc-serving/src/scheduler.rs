//! Iteration-level scheduling simulation (ORCA-style, §3).

use crate::metrics::ServingReport;
use attacc_model::{Request, RequestState, SequenceStatus};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cost of executing one stage on some system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StageCost {
    /// Wall-clock seconds.
    pub latency_s: f64,
    /// Joules.
    pub energy_j: f64,
}

/// A system capable of executing Sum and Gen stages. Implemented by
/// `attacc-sim` for each evaluated platform.
pub trait StageExecutor {
    /// Cost of prefilling `batch` requests with prompt length `l_in`.
    fn sum_stage(&self, batch: u64, l_in: u64) -> StageCost;

    /// Cost of one Gen iteration over a batch described as
    /// `(request_count, context_length)` groups.
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost;

    /// Steady-state decode throughput (output tokens/s) of a full batch of
    /// `batch` requests all at context length `l_ctx`: one Gen iteration
    /// emits `batch` tokens. The default derives it from [`gen_stage`],
    /// so every executor gets a consistent probe for free; routers and
    /// provisioning use it as the relative-throughput weight of a node.
    ///
    /// [`gen_stage`]: StageExecutor::gen_stage
    fn decode_tokens_per_s(&self, batch: u64, l_ctx: u64) -> f64 {
        let cost = self.gen_stage(&[(batch, l_ctx)]);
        if cost.latency_s > 0.0 {
            batch as f64 / cost.latency_s
        } else {
            f64::INFINITY
        }
    }
}

/// Admission and capacity policy for the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SchedulerConfig {
    /// Hard cap on concurrent requests (from SLO search or capacity).
    pub max_batch: u64,
    /// KV bytes available; `u64::MAX` for the unlimited-capacity studies.
    pub kv_capacity_bytes: u64,
    /// KV bytes per token per request (from
    /// [`attacc_model::KvCacheSpec::bytes_per_token`]).
    pub kv_bytes_per_token: u64,
}

impl SchedulerConfig {
    /// Unlimited capacity, batch capped at `max_batch` (the Fig. 4 study).
    #[must_use]
    pub fn unlimited(max_batch: u64) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            kv_capacity_bytes: u64::MAX,
            kv_bytes_per_token: 0,
        }
    }

    /// Capacity-limited configuration.
    #[must_use]
    pub fn with_capacity(max_batch: u64, kv_capacity_bytes: u64, kv_bytes_per_token: u64) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            kv_capacity_bytes,
            kv_bytes_per_token,
        }
    }
}

/// Which queued request is admitted when a batch slot frees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum AdmissionPolicy {
    /// First come, first served (arrival order) — the default.
    #[default]
    Fcfs,
    /// Shortest job first: admit the queued request with the smallest
    /// `l_out`. Reduces mean turnaround for mixed-length populations at
    /// the cost of starving long requests under sustained load.
    ShortestJobFirst,
}

/// Simulates serving `requests` on `executor` under `cfg` using
/// iteration-level scheduling: whenever a request finishes, the next
/// queued request is admitted (its Sum stage runs batched with any other
/// admissions of that iteration), so the Gen batch stays as full as the
/// SLO/capacity limits allow.
///
/// KV admission control reserves each request's *final* footprint
/// (`l_in + l_out`), guaranteeing no mid-flight eviction.
///
/// # Panics
/// Panics if `cfg.max_batch` is zero.
#[must_use]
pub fn simulate<E: StageExecutor>(
    executor: &E,
    requests: &[Request],
    cfg: &SchedulerConfig,
) -> ServingReport {
    simulate_with_policy(executor, requests, cfg, AdmissionPolicy::Fcfs)
}

/// [`simulate`] with an explicit [`AdmissionPolicy`].
///
/// # Panics
/// Panics if `cfg.max_batch` is zero.
#[must_use]
pub fn simulate_with_policy<E: StageExecutor>(
    executor: &E,
    requests: &[Request],
    cfg: &SchedulerConfig,
    policy: AdmissionPolicy,
) -> ServingReport {
    assert!(cfg.max_batch > 0, "max_batch must be positive");
    let mut queue: VecDeque<Request> = requests.iter().copied().collect();
    let mut active: Vec<RequestState> = Vec::new();
    let mut reserved_tokens: u64 = 0;

    let mut now_s = 0.0f64;
    let mut energy_j = 0.0f64;
    let mut tokens: u64 = 0;
    let mut iterations: u64 = 0;
    let mut max_iter_latency_s = 0.0f64;
    let mut completed: u64 = 0;

    let fits = |reserved: u64, cfg: &SchedulerConfig, req: &Request| -> bool {
        if cfg.kv_bytes_per_token == 0 {
            return true;
        }
        let need = (reserved + req.final_len()) as u128 * cfg.kv_bytes_per_token as u128;
        need <= cfg.kv_capacity_bytes as u128
    };

    let pick = |queue: &VecDeque<Request>| -> Option<usize> {
        match policy {
            AdmissionPolicy::Fcfs => (!queue.is_empty()).then_some(0),
            AdmissionPolicy::ShortestJobFirst => queue
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.l_out, r.id))
                .map(|(i, _)| i),
        }
    };
    let mut turnaround_sum = 0.0f64;

    while !queue.is_empty() || !active.is_empty() {
        // Admit as many queued requests as batch and capacity allow.
        let mut admitted: Vec<(u64, u64)> = Vec::new(); // (count, l_in) groups
        while (active.len() as u64) < cfg.max_batch {
            let Some(idx) = pick(&queue) else { break };
            if !fits(reserved_tokens, cfg, &queue[idx]) {
                break;
            }
            let req = queue.remove(idx).expect("index from pick is valid");
            reserved_tokens += req.final_len();
            active.push(RequestState::admitted(req));
            match admitted.iter_mut().find(|(_, l)| *l == req.l_in) {
                Some((n, _)) => *n += 1,
                None => admitted.push((1, req.l_in)),
            }
        }

        // Batched prefill of this iteration's admissions. The Sum stage
        // produces each new request's first token.
        for &(n, l_in) in &admitted {
            let cost = executor.sum_stage(n, l_in);
            now_s += cost.latency_s;
            energy_j += cost.energy_j;
        }
        let mut finished_this_iter = false;
        for s in active.iter_mut().filter(|s| s.status == SequenceStatus::NeedsSum) {
            tokens += 1;
            if s.complete_stage() == SequenceStatus::Finished {
                finished_this_iter = true;
            }
        }

        // One Gen iteration over everything still generating.
        let mut groups: Vec<(u64, u64)> = Vec::new();
        for s in active.iter().filter(|s| s.status == SequenceStatus::Generating) {
            let l = s.context_len() + 1; // context including the new token
            match groups.iter_mut().find(|(_, gl)| *gl == l) {
                Some((n, _)) => *n += 1,
                None => groups.push((1, l)),
            }
        }
        if !groups.is_empty() {
            let cost = executor.gen_stage(&groups);
            now_s += cost.latency_s;
            energy_j += cost.energy_j;
            iterations += 1;
            max_iter_latency_s = max_iter_latency_s.max(cost.latency_s);
            for s in active.iter_mut().filter(|s| s.status == SequenceStatus::Generating) {
                tokens += 1;
                if s.complete_stage() == SequenceStatus::Finished {
                    finished_this_iter = true;
                }
            }
        }

        // Retire finished requests, freeing their KV reservations.
        if finished_this_iter || !groups.is_empty() || !admitted.is_empty() {
            active.retain(|s| {
                if s.status == SequenceStatus::Finished {
                    reserved_tokens -= s.request.final_len();
                    completed += 1;
                    turnaround_sum += now_s;
                    false
                } else {
                    true
                }
            });
        }

        if groups.is_empty() && admitted.is_empty() && !queue.is_empty() && active.is_empty() {
            // Nothing fits at all: the configuration cannot serve the
            // workload (e.g. one request larger than capacity).
            break;
        }
    }

    ServingReport {
        total_time_s: now_s,
        energy_j,
        tokens_generated: tokens,
        requests_completed: completed,
        gen_iterations: iterations,
        max_iteration_latency_s: max_iter_latency_s,
        mean_turnaround_s: if completed > 0 {
            turnaround_sum / completed as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    /// Gen cost = 1 ms + 1 µs per active request; Sum cost = 10 ms.
    struct Affine;
    impl StageExecutor for Affine {
        fn sum_stage(&self, _batch: u64, _l_in: u64) -> StageCost {
            StageCost {
                latency_s: 10e-3,
                energy_j: 1.0,
            }
        }
        fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
            let n: u64 = groups.iter().map(|g| g.0).sum();
            StageCost {
                latency_s: 1e-3 + 1e-6 * n as f64,
                energy_j: 0.1 * n as f64,
            }
        }
    }

    #[test]
    fn all_tokens_are_generated() {
        let wl = Workload::fixed(20, 32, 8);
        let r = simulate(&Affine, &wl.requests(), &SchedulerConfig::unlimited(4));
        assert_eq!(r.tokens_generated, 20 * 8);
        assert_eq!(r.requests_completed, 20);
        assert!(r.total_time_s > 0.0);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn larger_batch_fewer_iterations() {
        let wl = Workload::fixed(64, 32, 16);
        let small = simulate(&Affine, &wl.requests(), &SchedulerConfig::unlimited(4));
        let big = simulate(&Affine, &wl.requests(), &SchedulerConfig::unlimited(32));
        assert!(big.gen_iterations < small.gen_iterations);
        assert!(big.total_time_s < small.total_time_s);
        assert_eq!(big.tokens_generated, small.tokens_generated);
    }

    #[test]
    fn iteration_level_scheduling_refills_batch() {
        // Mixed output lengths: short requests finish early and their
        // slots are refilled, so the iteration count is far below
        // batch-synchronous scheduling's.
        let wl = Workload::uniform_random(40, 16, (1, 64), 5);
        let r = simulate(&Affine, &wl.requests(), &SchedulerConfig::unlimited(8));
        assert_eq!(r.tokens_generated, wl.total_output_tokens());
        // Perfect packing bound: ceil(total_tokens / batch) iterations
        // (±ramp-down); batch-synchronous would need ~(40/8)·64 = 320.
        let total = wl.total_output_tokens();
        assert!(
            r.gen_iterations < total / 8 + 70,
            "iterations = {}",
            r.gen_iterations
        );
    }

    #[test]
    fn capacity_limits_concurrency() {
        // Capacity for only ~2 requests' final footprints.
        let cfg = SchedulerConfig::with_capacity(64, 2 * 40 * 100, 100);
        let wl = Workload::fixed(10, 32, 8);
        let r = simulate(&Affine, &wl.requests(), &cfg);
        assert_eq!(r.tokens_generated, 80, "all work still completes");
        // With ≤2 concurrent requests, at least 8·(10/2) iterations.
        assert!(r.gen_iterations >= 35, "iterations = {}", r.gen_iterations);
    }

    #[test]
    fn impossible_request_terminates() {
        let cfg = SchedulerConfig::with_capacity(4, 10, 100); // nothing fits
        let wl = Workload::fixed(3, 4, 4);
        let r = simulate(&Affine, &wl.requests(), &cfg);
        assert_eq!(r.tokens_generated, 0);
        assert_eq!(r.requests_completed, 0);
    }

    #[test]
    fn sjf_lowers_mean_turnaround_on_mixed_lengths() {
        // One long request then many short ones: FCFS makes everyone
        // queue behind the giant; SJF finishes the short ones first.
        let mut reqs = vec![attacc_model::Request::new(0, 16, 512)];
        for id in 1..20 {
            reqs.push(attacc_model::Request::new(id, 16, 4));
        }
        let cfg = SchedulerConfig::unlimited(2);
        let fcfs = simulate_with_policy(&Affine, &reqs, &cfg, AdmissionPolicy::Fcfs);
        let sjf =
            simulate_with_policy(&Affine, &reqs, &cfg, AdmissionPolicy::ShortestJobFirst);
        assert_eq!(fcfs.tokens_generated, sjf.tokens_generated);
        assert!(
            sjf.mean_turnaround_s < fcfs.mean_turnaround_s,
            "SJF {} vs FCFS {}",
            sjf.mean_turnaround_s,
            fcfs.mean_turnaround_s
        );
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let wl = Workload::fixed(1, 1, 1);
        let _ = simulate(&Affine, &wl.requests(), &SchedulerConfig::unlimited(0));
    }
}
