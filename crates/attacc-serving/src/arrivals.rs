//! Open-loop serving: requests arrive over time (Poisson process) instead
//! of being queued up front. Produces the latency statistics an operator
//! actually monitors — time-to-first-token (TTFT), time-between-tokens
//! (TBT) and queueing delay — for a given arrival rate and platform.

use crate::scheduler::{SchedulerConfig, StageExecutor};
use attacc_model::{Request, RequestState, SequenceStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A timed request population.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ArrivalWorkload {
    /// `(arrival_time_s, request)` pairs in arrival order.
    pub arrivals: Vec<(f64, Request)>,
}

impl ArrivalWorkload {
    /// `n` requests arriving as a Poisson process with `rate_per_s`
    /// arrivals per second; output lengths uniform in `l_out_range`.
    /// Deterministic under `seed`.
    ///
    /// # Panics
    /// Panics if `n` is zero, the rate is non-positive, or the range is
    /// empty.
    #[must_use]
    pub fn poisson(
        n: u64,
        rate_per_s: f64,
        l_in: u64,
        l_out_range: (u64, u64),
        seed: u64,
    ) -> ArrivalWorkload {
        assert!(n > 0, "workload must contain requests");
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        assert!(
            l_out_range.0 >= 1 && l_out_range.0 <= l_out_range.1,
            "invalid output-length range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0.0f64;
        let arrivals = (0..n)
            .map(|id| {
                // Exponential inter-arrival times via inverse transform.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / rate_per_s;
                let l_out = rng.gen_range(l_out_range.0..=l_out_range.1);
                (now, Request::new(id, l_in, l_out))
            })
            .collect();
        ArrivalWorkload { arrivals }
    }

    /// Mean offered load in output tokens per second.
    #[must_use]
    pub fn offered_tokens_per_s(&self) -> f64 {
        let Some(&(last, _)) = self.arrivals.last() else {
            return 0.0;
        };
        let tokens: u64 = self.arrivals.iter().map(|(_, r)| r.l_out).sum();
        if last > 0.0 {
            tokens as f64 / last
        } else {
            f64::INFINITY
        }
    }
}

/// Order statistics of a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LatencyStats {
    /// Arithmetic mean (s).
    pub mean_s: f64,
    /// Median (s).
    pub p50_s: f64,
    /// 95th percentile (s).
    pub p95_s: f64,
    /// 99th percentile (s).
    pub p99_s: f64,
    /// 99.9th percentile (s) — the tail the cluster report watches.
    pub p999_s: f64,
    /// Maximum (s).
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes stats from a sample (empty samples give all-zero stats).
    ///
    /// Percentiles use the nearest-rank definition: the p-th percentile of
    /// n sorted samples is sample `ceil(n·p)` (1-based), so p50 of 100
    /// samples is the 50th, not the 51st.
    #[must_use]
    pub fn from_samples(mut samples: Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = samples.len();
        let pct = |p: f64| {
            let rank = (n as f64 * p).ceil() as usize;
            samples[rank.saturating_sub(1).min(n - 1)]
        };
        LatencyStats {
            mean_s: samples.iter().sum::<f64>() / n as f64,
            p50_s: pct(0.50),
            p95_s: pct(0.95),
            p99_s: pct(0.99),
            p999_s: pct(0.999),
            max_s: samples[n - 1],
        }
    }
}

/// Outcome of an open-loop serving run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct OpenLoopReport {
    /// Requests fully served.
    pub completed: u64,
    /// Wall-clock span from first arrival to last completion (s).
    pub makespan_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Achieved throughput in output tokens per second.
    pub tokens_per_s: f64,
    /// Time from arrival to first output token.
    pub ttft: LatencyStats,
    /// Gen-iteration latencies (the time between a request's tokens).
    pub tbt: LatencyStats,
    /// Time spent queued before admission.
    pub queue_wait: LatencyStats,
}

/// Simulates open-loop serving of `workload` on `executor` under `cfg`
/// with iteration-level scheduling. When the active batch drains and no
/// request has arrived yet, time jumps to the next arrival.
///
/// # Panics
/// Panics if `cfg.max_batch` is zero.
#[must_use]
pub fn simulate_open_loop<E: StageExecutor>(
    executor: &E,
    workload: &ArrivalWorkload,
    cfg: &SchedulerConfig,
) -> OpenLoopReport {
    assert!(cfg.max_batch > 0, "max_batch must be positive");
    let mut pending: VecDeque<(f64, Request)> = workload.arrivals.iter().copied().collect();
    let mut queued: VecDeque<(f64, Request)> = VecDeque::new();
    let mut active: Vec<(f64, RequestState)> = Vec::new(); // (arrival, state)
    let mut reserved_tokens: u64 = 0;

    let mut now = 0.0f64;
    let mut energy = 0.0f64;
    let mut tokens: u64 = 0;
    let mut completed: u64 = 0;
    let mut ttft = Vec::new();
    let mut tbt = Vec::new();
    let mut queue_wait = Vec::new();

    let fits = |reserved: u64, cfg: &SchedulerConfig, req: &Request| -> bool {
        if cfg.kv_bytes_per_token == 0 {
            return true;
        }
        let need = (reserved + req.final_len()) as u128 * cfg.kv_bytes_per_token as u128;
        need <= cfg.kv_capacity_bytes as u128
    };

    while !pending.is_empty() || !queued.is_empty() || !active.is_empty() {
        // Move arrivals whose time has come into the admission queue.
        while pending.front().is_some_and(|&(t, _)| t <= now) {
            queued.push_back(pending.pop_front().expect("checked"));
        }
        // Idle system: fast-forward to the next arrival.
        if active.is_empty() && queued.is_empty() {
            if let Some(&(t, _)) = pending.front() {
                now = t;
                continue;
            }
            break;
        }

        // Admit.
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        while (active.len() as u64) < cfg.max_batch {
            let Some(&(arrival, req)) = queued.front() else { break };
            if !fits(reserved_tokens, cfg, &req) {
                break;
            }
            queued.pop_front();
            reserved_tokens += req.final_len();
            queue_wait.push(now - arrival);
            active.push((arrival, RequestState::admitted(req)));
            match admitted.iter_mut().find(|(_, l)| *l == req.l_in) {
                Some((c, _)) => *c += 1,
                None => admitted.push((1, req.l_in)),
            }
        }

        // Prefill the admissions.
        for &(c, l_in) in &admitted {
            let cost = executor.sum_stage(c, l_in);
            now += cost.latency_s;
            energy += cost.energy_j;
        }
        for (arrival, s) in active.iter_mut().filter(|(_, s)| s.status == SequenceStatus::NeedsSum)
        {
            tokens += 1;
            ttft.push(now - *arrival);
            let _ = s.complete_stage();
        }

        // One Gen iteration.
        let mut groups: Vec<(u64, u64)> = Vec::new();
        for (_, s) in active.iter().filter(|(_, s)| s.status == SequenceStatus::Generating) {
            let l = s.context_len() + 1;
            match groups.iter_mut().find(|(_, gl)| *gl == l) {
                Some((c, _)) => *c += 1,
                None => groups.push((1, l)),
            }
        }
        if !groups.is_empty() {
            let cost = executor.gen_stage(&groups);
            now += cost.latency_s;
            energy += cost.energy_j;
            tbt.push(cost.latency_s);
            for (_, s) in active.iter_mut().filter(|(_, s)| s.status == SequenceStatus::Generating)
            {
                tokens += 1;
                let _ = s.complete_stage();
            }
        }

        // Retire.
        active.retain(|(_, s)| {
            if s.status == SequenceStatus::Finished {
                reserved_tokens -= s.request.final_len();
                completed += 1;
                false
            } else {
                true
            }
        });

        if groups.is_empty() && admitted.is_empty() && active.is_empty() && queued.front().is_some()
        {
            // A queued request can never fit: abandon to avoid livelock.
            break;
        }
    }

    OpenLoopReport {
        completed,
        makespan_s: now,
        energy_j: energy,
        tokens_per_s: if now > 0.0 { tokens as f64 / now } else { 0.0 },
        ttft: LatencyStats::from_samples(ttft),
        tbt: LatencyStats::from_samples(tbt),
        queue_wait: LatencyStats::from_samples(queue_wait),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::StageCost;

    struct Affine;
    impl StageExecutor for Affine {
        fn sum_stage(&self, _b: u64, _l: u64) -> StageCost {
            StageCost {
                latency_s: 5e-3,
                energy_j: 1.0,
            }
        }
        fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
            let n: u64 = groups.iter().map(|g| g.0).sum();
            StageCost {
                latency_s: 1e-3 + 1e-5 * n as f64,
                energy_j: 0.01 * n as f64,
            }
        }
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_deterministic() {
        let a = ArrivalWorkload::poisson(100, 5.0, 64, (4, 16), 9);
        let b = ArrivalWorkload::poisson(100, 5.0, 64, (4, 16), 9);
        assert_eq!(a, b);
        assert!(a.arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        // Mean inter-arrival ≈ 1/rate.
        let last = a.arrivals.last().unwrap().0;
        assert!((last / 100.0 - 0.2).abs() < 0.08, "mean gap = {}", last / 100.0);
    }

    #[test]
    fn all_requests_complete_under_light_load() {
        let wl = ArrivalWorkload::poisson(50, 2.0, 32, (2, 8), 3);
        let r = simulate_open_loop(&Affine, &wl, &SchedulerConfig::unlimited(8));
        assert_eq!(r.completed, 50);
        assert!(r.makespan_s >= wl.arrivals.last().unwrap().0);
        assert!(r.ttft.mean_s > 0.0);
        assert!(r.tbt.p50_s > 0.0);
        assert!(r.energy_j > 0.0);
    }

    #[test]
    fn heavier_load_increases_queueing() {
        let light = ArrivalWorkload::poisson(60, 1.0, 32, (8, 8), 7);
        let heavy = ArrivalWorkload::poisson(60, 500.0, 32, (8, 8), 7);
        let cfg = SchedulerConfig::unlimited(4);
        let rl = simulate_open_loop(&Affine, &light, &cfg);
        let rh = simulate_open_loop(&Affine, &heavy, &cfg);
        assert!(rh.queue_wait.p95_s > rl.queue_wait.p95_s);
        assert!(rh.tokens_per_s > rl.tokens_per_s, "saturation raises throughput");
    }

    #[test]
    fn latency_stats_percentiles_ordered() {
        let s = LatencyStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.p999_s);
        assert!(s.p999_s <= s.max_s);
        assert_eq!(s.max_s, 100.0);
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }

    #[test]
    fn latency_stats_use_nearest_rank() {
        // 100 samples 1..=100: nearest-rank p-th percentile is sample
        // ceil(100·p), i.e. the value `100·p` itself — not one past it.
        let s = LatencyStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.p999_s, 100.0);
        // Singleton: every percentile is the lone sample.
        let one = LatencyStats::from_samples(vec![7.0]);
        assert_eq!((one.p50_s, one.p99_s, one.p999_s, one.max_s), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn idle_gaps_fast_forward() {
        // Two requests far apart: the system must not busy-spin between
        // them.
        let wl = ArrivalWorkload {
            arrivals: vec![
                (0.0, Request::new(0, 8, 2)),
                (100.0, Request::new(1, 8, 2)),
            ],
        };
        let r = simulate_open_loop(&Affine, &wl, &SchedulerConfig::unlimited(4));
        assert_eq!(r.completed, 2);
        assert!(r.makespan_s >= 100.0 && r.makespan_s < 101.0);
    }
}
