//! Memory-capacity batch-size limits (§3.2).

/// Largest number of concurrent requests whose KV caches fit in
/// `kv_capacity_bytes` when every request may grow to `max_context`
/// tokens at `kv_bytes_per_token`.
///
/// Returns `u64::MAX` when the per-token cost is zero (unlimited studies).
///
/// # Example
/// ```
/// use attacc_serving::max_batch_by_capacity;
/// use attacc_model::{KvCacheSpec, ModelConfig, GIB};
///
/// let m = ModelConfig::gpt3_175b();
/// let spec = KvCacheSpec::of(&m);
/// // §3.2: DGX's 640 GB minus 326 GB of weights leaves room for ~17
/// // requests at (2048, 2048).
/// let free = 640 * GIB - m.weight_bytes();
/// let b = max_batch_by_capacity(free, spec.bytes_per_token, 4096);
/// assert!((17..=18).contains(&b));
/// ```
#[must_use]
pub fn max_batch_by_capacity(
    kv_capacity_bytes: u64,
    kv_bytes_per_token: u64,
    max_context: u64,
) -> u64 {
    if kv_bytes_per_token == 0 || max_context == 0 {
        return u64::MAX;
    }
    // A per-request cost beyond u64::MAX exceeds any capacity: zero
    // requests fit (the unchecked product would wrap and grossly
    // overstate the batch).
    kv_bytes_per_token
        .checked_mul(max_context)
        .map_or(0, |per_request| kv_capacity_bytes / per_request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_unlimited() {
        assert_eq!(max_batch_by_capacity(100, 0, 10), u64::MAX);
        assert_eq!(max_batch_by_capacity(100, 10, 0), u64::MAX);
    }

    #[test]
    fn monotone_in_capacity() {
        assert!(max_batch_by_capacity(1000, 10, 5) <= max_batch_by_capacity(2000, 10, 5));
    }

    #[test]
    fn exact_division() {
        assert_eq!(max_batch_by_capacity(1000, 10, 10), 10);
        assert_eq!(max_batch_by_capacity(999, 10, 10), 9);
    }

    #[test]
    fn overflowing_per_request_cost_means_nothing_fits() {
        // kv_bytes_per_token × max_context wraps in u64; the wrapped
        // product used to be tiny, reporting a huge bogus batch.
        assert_eq!(max_batch_by_capacity(u64::MAX, u64::MAX, 2), 0);
        assert_eq!(max_batch_by_capacity(1 << 40, 1 << 40, 1 << 40), 0);
        // The largest non-overflowing cost still divides normally.
        assert_eq!(max_batch_by_capacity(u64::MAX, u64::MAX, 1), 1);
    }
}
