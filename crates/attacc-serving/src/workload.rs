//! Request-population generators.

use attacc_model::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A population of inference requests to serve.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Workload {
    requests: Vec<Request>,
}

impl Workload {
    /// `n` identical requests with the given prompt and output lengths —
    /// the paper's evaluation shape (e.g. 10,000 requests at
    /// `L_in = L_out = 2048`).
    ///
    /// # Panics
    /// Panics if any argument is zero.
    #[must_use]
    pub fn fixed(n: u64, l_in: u64, l_out: u64) -> Workload {
        assert!(n > 0, "workload must contain requests");
        Workload {
            requests: (0..n).map(|id| Request::new(id, l_in, l_out)).collect(),
        }
    }

    /// `n` requests with output lengths drawn uniformly from
    /// `l_out_range`, deterministic under `seed`. Models mixed-length
    /// serving where iteration-level scheduling shines.
    ///
    /// # Panics
    /// Panics if the range is empty or `n` is zero.
    #[must_use]
    pub fn uniform_random(n: u64, l_in: u64, l_out_range: (u64, u64), seed: u64) -> Workload {
        assert!(n > 0, "workload must contain requests");
        assert!(
            l_out_range.0 >= 1 && l_out_range.0 <= l_out_range.1,
            "invalid output-length range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        Workload {
            requests: (0..n)
                .map(|id| Request::new(id, l_in, rng.gen_range(l_out_range.0..=l_out_range.1)))
                .collect(),
        }
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> Vec<Request> {
        self.requests.clone()
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when empty (never true for constructed workloads).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total output tokens the population will generate.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.l_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_workload_shape() {
        let w = Workload::fixed(10, 128, 32);
        assert_eq!(w.len(), 10);
        assert_eq!(w.total_output_tokens(), 320);
        assert!(w.requests().iter().all(|r| r.l_in == 128 && r.l_out == 32));
        assert!(!w.is_empty());
    }

    #[test]
    fn random_workload_is_deterministic() {
        let a = Workload::uniform_random(50, 64, (1, 100), 7);
        let b = Workload::uniform_random(50, 64, (1, 100), 7);
        assert_eq!(a, b);
        let c = Workload::uniform_random(50, 64, (1, 100), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_workload_respects_range() {
        let w = Workload::uniform_random(200, 64, (5, 9), 3);
        assert!(w.requests().iter().all(|r| (5..=9).contains(&r.l_out)));
    }

    #[test]
    #[should_panic(expected = "must contain requests")]
    fn empty_workload_rejected() {
        let _ = Workload::fixed(0, 1, 1);
    }
}
