//! Request-level resilience knobs: timeouts, retries, and hedging.
//!
//! This module is pure configuration + arithmetic — it owns no clock and
//! spawns nothing. The chaos layer (`attacc-chaos`) reads a
//! [`RetryPolicy`] and arms deterministic timer events from it; a real
//! serving front door would read the same policy and arm wall-clock
//! timers. Keeping the policy here (rather than in the chaos crate) means
//! the single-node serving stack and the cluster fault layer share one
//! vocabulary for "how long do we wait, and what do we do then".

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Per-request timeout / retry / hedging policy.
///
/// Semantics (implemented by the dispatch layer, e.g. `attacc-chaos`):
///
/// - A dispatched request that has not produced its first token within
///   `timeout_s + backoff_s(attempt)` of dispatch is re-dispatched, up to
///   `max_retries` times. The backoff term grows exponentially with the
///   attempt number and is capped, so a request stuck behind a crashed
///   node retries quickly at first and then stops hammering the fleet.
/// - If `hedge_after_s` is set, a *duplicate* dispatch is issued that many
///   seconds after the first (attempt 1) dispatch unless the first token
///   has already arrived; whichever copy finishes first wins and the
///   loser's work is wasted (never cancelled — the model is pessimistic
///   about cancellation plumbing).
/// - `jitter_frac` spreads retry timers by a deterministic, seeded
///   fraction of the backoff so synchronized failures don't re-dispatch in
///   lock-step. Zero disables jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RetryPolicy {
    /// Seconds from dispatch to declaring an attempt lost (before
    /// backoff). Non-finite or non-positive disables timeouts entirely.
    pub timeout_s: f64,
    /// Maximum re-dispatches per request (0 = give up after the first
    /// attempt times out).
    pub max_retries: u32,
    /// Base of the exponential backoff added to the timeout on retry `k`:
    /// `backoff_base_s * 2^(k-1)`, capped at `backoff_cap_s`.
    pub backoff_base_s: f64,
    /// Upper bound on the backoff term.
    pub backoff_cap_s: f64,
    /// Fraction of the backoff applied as seeded jitter (`0.0..=1.0`).
    pub jitter_frac: f64,
    /// Seconds after the first dispatch at which a hedged duplicate is
    /// issued, if the first token has not yet arrived. `None` disables
    /// hedging.
    pub hedge_after_s: Option<f64>,
}

impl RetryPolicy {
    /// No timeouts, no retries, no hedging — the do-nothing policy under
    /// which a dispatch layer must behave exactly as if no policy existed.
    #[must_use]
    pub fn off() -> RetryPolicy {
        RetryPolicy {
            timeout_s: f64::INFINITY,
            max_retries: 0,
            backoff_base_s: 0.0,
            backoff_cap_s: 0.0,
            jitter_frac: 0.0,
            hedge_after_s: None,
        }
    }

    /// A production-shaped interactive policy: 10 s first-token timeout,
    /// 3 retries backing off 1 s → 2 s → 4 s (capped at 30 s), 10 %
    /// jitter, no hedging.
    #[must_use]
    pub fn interactive() -> RetryPolicy {
        RetryPolicy {
            timeout_s: 10.0,
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_cap_s: 30.0,
            jitter_frac: 0.1,
            hedge_after_s: None,
        }
    }

    /// [`RetryPolicy::interactive`] plus a hedged duplicate dispatch after
    /// `hedge_after_s` seconds — the tail-cutting configuration.
    #[must_use]
    pub fn hedged(hedge_after_s: f64) -> RetryPolicy {
        RetryPolicy { hedge_after_s: Some(hedge_after_s), ..RetryPolicy::interactive() }
    }

    /// Whether timeouts are armed at all.
    #[must_use]
    pub fn timeouts_enabled(&self) -> bool {
        self.timeout_s.is_finite() && self.timeout_s > 0.0
    }

    /// The exponential backoff term (before jitter) added to the timeout
    /// when arming the timer for dispatch attempt `attempt` (1-based; the
    /// first dispatch is attempt 1 and carries no backoff).
    #[must_use]
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 || self.backoff_base_s <= 0.0 {
            return 0.0;
        }
        // Clamp the exponent: past 2^60 doublings the cap has long since
        // taken over, and powi stays finite.
        let doublings = i32::try_from(attempt.saturating_sub(2).min(60)).expect("clamped");
        (self.backoff_base_s * 2.0f64.powi(doublings)).min(self.backoff_cap_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_arms_nothing() {
        let p = RetryPolicy::off();
        assert!(!p.timeouts_enabled());
        assert_eq!(p.max_retries, 0);
        assert!(p.hedge_after_s.is_none());
        assert_eq!(p.backoff_s(1), 0.0);
        assert_eq!(p.backoff_s(5), 0.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::interactive();
        assert_eq!(p.backoff_s(1), 0.0, "first dispatch has no backoff");
        assert_eq!(p.backoff_s(2), 1.0);
        assert_eq!(p.backoff_s(3), 2.0);
        assert_eq!(p.backoff_s(4), 4.0);
        assert_eq!(p.backoff_s(8), 30.0, "capped");
        assert_eq!(p.backoff_s(u32::MAX), 30.0, "no overflow at absurd attempts");
    }

    #[test]
    fn hedged_preset_layers_on_interactive() {
        let p = RetryPolicy::hedged(0.5);
        assert_eq!(p.hedge_after_s, Some(0.5));
        assert_eq!(p.timeout_s, RetryPolicy::interactive().timeout_s);
    }
}
