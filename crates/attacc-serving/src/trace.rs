//! Request-trace serialization and synthetic burst patterns.
//!
//! Production serving studies replay recorded traces. The format here is a
//! minimal line-oriented text form, one request per line:
//!
//! ```text
//! # arrival_s,id,l_in,l_out
//! 0,0,512,64
//! 0.18421521,1,512,128
//! ```
//!
//! Arrival times are printed with Rust's shortest round-trip `f64`
//! formatting, so `parse_trace(format_trace(w)) == w` holds *exactly* for
//! any workload — replaying a formatted trace is bit-identical to running
//! the original.

use crate::arrivals::ArrivalWorkload;
use attacc_model::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Error from [`parse_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Renders a workload in the trace format (comments included). Times use
/// shortest round-trip formatting, so the codec is lossless.
#[must_use]
pub fn format_trace(workload: &ArrivalWorkload) -> String {
    let mut out = String::from("# arrival_s,id,l_in,l_out\n");
    for (t, r) in &workload.arrivals {
        out.push_str(&format!("{},{},{},{}\n", t, r.id, r.l_in, r.l_out));
    }
    out
}

/// Parses the trace format. Blank lines and `#` comments are skipped;
/// arrivals must be non-decreasing.
///
/// # Errors
/// Returns [`ParseTraceError`] on malformed fields, non-positive lengths
/// or out-of-order arrivals.
pub fn parse_trace(text: &str) -> Result<ArrivalWorkload, ParseTraceError> {
    let mut arrivals = Vec::new();
    let mut last = 0.0f64;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseTraceError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let mut parts = line.split(',');
        let t: f64 = parts
            .next()
            .ok_or_else(|| err("missing arrival"))?
            .trim()
            .parse()
            .map_err(|_| err("bad arrival time"))?;
        let id: u64 = parts
            .next()
            .ok_or_else(|| err("missing id"))?
            .trim()
            .parse()
            .map_err(|_| err("bad id"))?;
        let l_in: u64 = parts
            .next()
            .ok_or_else(|| err("missing l_in"))?
            .trim()
            .parse()
            .map_err(|_| err("bad l_in"))?;
        let l_out: u64 = parts
            .next()
            .ok_or_else(|| err("missing l_out"))?
            .trim()
            .parse()
            .map_err(|_| err("bad l_out"))?;
        if parts.next().is_some() {
            return Err(err("too many fields"));
        }
        if !t.is_finite() || t < 0.0 {
            return Err(err("arrival time must be finite and non-negative"));
        }
        if l_in == 0 || l_out == 0 {
            return Err(err("lengths must be positive"));
        }
        if t < last {
            return Err(err("arrivals out of order"));
        }
        last = t;
        arrivals.push((t, Request::new(id, l_in, l_out)));
    }
    Ok(ArrivalWorkload { arrivals })
}

impl ArrivalWorkload {
    /// A bursty arrival pattern: a Poisson base rate with periodic bursts
    /// at `burst_factor ×` the rate for the first `duty` fraction of each
    /// `period_s` window — the diurnal/bursty shape open-loop latency
    /// studies care about.
    ///
    /// # Panics
    /// Panics if arguments are non-positive or `duty` is outside (0, 1].
    #[must_use]
    #[allow(clippy::too_many_arguments)] // a workload shape is naturally wide
    pub fn bursty(
        n: u64,
        base_rate_per_s: f64,
        burst_factor: f64,
        period_s: f64,
        duty: f64,
        l_in: u64,
        l_out_range: (u64, u64),
        seed: u64,
    ) -> ArrivalWorkload {
        assert!(n > 0, "workload must contain requests");
        assert!(base_rate_per_s > 0.0 && burst_factor >= 1.0 && period_s > 0.0);
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0.0f64;
        let arrivals = (0..n)
            .map(|id| {
                let phase = (now % period_s) / period_s;
                let rate = if phase < duty {
                    base_rate_per_s * burst_factor
                } else {
                    base_rate_per_s
                };
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / rate;
                let l_out = rng.gen_range(l_out_range.0..=l_out_range.1);
                (now, Request::new(id, l_in, l_out))
            })
            .collect();
        ArrivalWorkload { arrivals }
    }

    /// A diurnal arrival pattern: the Poisson rate is modulated by a
    /// sinusoid, `rate(t) = mean_rate · (1 + amplitude·sin(2πt/period))`,
    /// evaluated at the start of each inter-arrival draw — the smooth
    /// day/night load swing a fleet is provisioned against, as opposed to
    /// [`ArrivalWorkload::bursty`]'s square-wave spikes.
    ///
    /// # Panics
    /// Panics if `n` is zero, the rate or period is non-positive,
    /// `amplitude` is outside [0, 1), or the length range is empty.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // a workload shape is naturally wide
    pub fn diurnal(
        n: u64,
        mean_rate_per_s: f64,
        amplitude: f64,
        period_s: f64,
        l_in: u64,
        l_out_range: (u64, u64),
        seed: u64,
    ) -> ArrivalWorkload {
        assert!(n > 0, "workload must contain requests");
        assert!(mean_rate_per_s > 0.0 && period_s > 0.0);
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1) so the rate stays positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0.0f64;
        let arrivals = (0..n)
            .map(|id| {
                let phase = 2.0 * std::f64::consts::PI * now / period_s;
                let rate = mean_rate_per_s * (1.0 + amplitude * phase.sin());
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / rate;
                let l_out = rng.gen_range(l_out_range.0..=l_out_range.1);
                (now, Request::new(id, l_in, l_out))
            })
            .collect();
        ArrivalWorkload { arrivals }
    }
}

/// One flash crowd riding on a trace: the arrival rate ramps linearly
/// from 1× to `peak ×` over `ramp_s`, holds for `hold_s`, then decays
/// linearly back — the news-event / product-launch spike an autoscaler
/// must absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd starts building (s).
    pub start_s: f64,
    /// Rate multiplier at the top (≥ 1).
    pub peak: f64,
    /// Seconds from 1× to `peak ×`.
    pub ramp_s: f64,
    /// Seconds the peak holds.
    pub hold_s: f64,
    /// Seconds from `peak ×` back to 1×.
    pub decay_s: f64,
}

impl FlashCrowd {
    /// The rate multiplier this crowd contributes at time `t` (1.0
    /// outside its window). Multipliers of overlapping crowds compose by
    /// multiplication.
    #[must_use]
    pub fn factor_at(&self, t: f64) -> f64 {
        let dt = t - self.start_s;
        if dt < 0.0 {
            1.0
        } else if dt < self.ramp_s {
            1.0 + (self.peak - 1.0) * dt / self.ramp_s
        } else if dt < self.ramp_s + self.hold_s {
            self.peak
        } else if dt < self.ramp_s + self.hold_s + self.decay_s {
            self.peak - (self.peak - 1.0) * (dt - self.ramp_s - self.hold_s) / self.decay_s
        } else {
            1.0
        }
    }

    fn validate(&self) {
        assert!(self.start_s.is_finite() && self.start_s >= 0.0, "crowd start must be >= 0");
        assert!(self.peak.is_finite() && self.peak >= 1.0, "crowd peak must be >= 1");
        assert!(
            self.ramp_s >= 0.0 && self.hold_s >= 0.0 && self.decay_s >= 0.0,
            "crowd phases must be non-negative"
        );
    }
}

/// A composable scaled-trace specification: a diurnal sinusoid times any
/// number of [`FlashCrowd`] spikes, sized by exact session count — the
/// fleet-scale workload shape (up to ~10⁵ concurrent sessions) the
/// autoscaling frontier replays.
///
/// The instantaneous rate is
/// `mean_rate · (1 + amplitude·sin(2πt/period)) · Π crowdᵢ(t)`, and
/// arrivals are drawn from the corresponding non-homogeneous Poisson
/// process by thinning (Lewis & Shedler): candidate arrivals at the rate
/// ceiling, each accepted with probability `rate(t)/ceiling`. Thinning
/// draws both numbers from one seeded `StdRng`, so a spec generates a
/// byte-identical trace every time, with exactly `sessions` arrivals in
/// non-decreasing time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Exact number of sessions (requests) to generate.
    pub sessions: u64,
    /// Baseline Poisson rate (requests/s).
    pub mean_rate_per_s: f64,
    /// Diurnal swing in [0, 1): 0 = flat.
    pub diurnal_amplitude: f64,
    /// Diurnal period (s).
    pub diurnal_period_s: f64,
    /// Flash crowds riding on the diurnal curve (may overlap; factors
    /// multiply).
    pub crowds: Vec<FlashCrowd>,
    /// Prompt length of every session.
    pub l_in: u64,
    /// Inclusive output-length range, sampled uniformly per session.
    pub l_out_range: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// The instantaneous arrival rate at time `t`.
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t / self.diurnal_period_s;
        let mut rate = self.mean_rate_per_s * (1.0 + self.diurnal_amplitude * phase.sin());
        for c in &self.crowds {
            rate *= c.factor_at(t);
        }
        rate
    }

    /// An upper bound on [`TraceSpec::rate_at`] over all `t` (the
    /// thinning ceiling): peak diurnal rate times the product of every
    /// crowd's peak. Conservative when crowds do not overlap — thinning
    /// stays exact either way, only the candidate count grows.
    #[must_use]
    pub fn rate_ceiling(&self) -> f64 {
        let mut ceil = self.mean_rate_per_s * (1.0 + self.diurnal_amplitude);
        for c in &self.crowds {
            ceil *= c.peak;
        }
        ceil
    }

    /// Generates the trace: exactly `sessions` arrivals, non-decreasing
    /// in time, ids `0..sessions` in arrival order.
    ///
    /// # Panics
    /// Panics on an empty spec (`sessions == 0`), non-positive rate or
    /// period, amplitude outside [0, 1), an empty length range, or an
    /// invalid crowd.
    #[must_use]
    pub fn generate(&self) -> ArrivalWorkload {
        assert!(self.sessions > 0, "trace must contain sessions");
        assert!(
            self.mean_rate_per_s > 0.0 && self.diurnal_period_s > 0.0,
            "rate and period must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "amplitude must be in [0, 1) so the rate stays positive"
        );
        assert!(self.l_in > 0 && self.l_out_range.0 > 0, "lengths must be positive");
        assert!(self.l_out_range.0 <= self.l_out_range.1, "empty l_out range");
        for c in &self.crowds {
            c.validate();
        }
        let ceiling = self.rate_ceiling();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut now = 0.0f64;
        let mut arrivals = Vec::with_capacity(self.sessions as usize);
        for id in 0..self.sessions {
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / ceiling;
                let accept: f64 = rng.gen_range(0.0..1.0);
                if accept * ceiling <= self.rate_at(now) {
                    break;
                }
            }
            let l_out = rng.gen_range(self.l_out_range.0..=self.l_out_range.1);
            arrivals.push((now, Request::new(id, self.l_in, l_out)));
        }
        ArrivalWorkload { arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_roundtrip_is_exact() {
        let wl = ArrivalWorkload::poisson(25, 3.0, 64, (4, 32), 11);
        let back = parse_trace(&format_trace(&wl)).unwrap();
        assert_eq!(back, wl, "shortest round-trip formatting is lossless");
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let wl = parse_trace("# header\n\n0.5,1,8,4\n  \n1.0,2,8,4\n").unwrap();
        assert_eq!(wl.arrivals.len(), 2);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let err = parse_trace("0.1,0,8,4\nnot,a,line,x\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err = parse_trace("0.5,0,8,4\n0.1,1,8,4\n").unwrap_err();
        assert!(err.reason.contains("out of order"));
        assert!(parse_trace("0.1,0,0,4\n").is_err());
        assert!(parse_trace("0.1,0,4\n").is_err());
        assert!(parse_trace("0.1,0,4,4,9\n").is_err());
    }

    #[test]
    fn bursty_pattern_clusters_arrivals() {
        let wl = ArrivalWorkload::bursty(400, 2.0, 10.0, 10.0, 0.3, 64, (8, 8), 5);
        // Count arrivals in the burst windows vs outside.
        let mut in_burst = 0usize;
        let mut out_burst = 0usize;
        for &(t, _) in &wl.arrivals {
            if (t % 10.0) / 10.0 < 0.3 {
                in_burst += 1;
            } else {
                out_burst += 1;
            }
        }
        // Burst windows are 30% of time at 10× rate: they should hold the
        // clear majority of arrivals.
        assert!(
            in_burst > 2 * out_burst,
            "in {in_burst} vs out {out_burst}"
        );
    }

    #[test]
    fn bursty_is_deterministic_and_ordered() {
        let a = ArrivalWorkload::bursty(50, 1.0, 5.0, 4.0, 0.5, 32, (1, 8), 7);
        let b = ArrivalWorkload::bursty(50, 1.0, 5.0, 4.0, 0.5, 32, (1, 8), 7);
        assert_eq!(a, b);
        assert!(a.arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn diurnal_modulates_density_with_phase() {
        // Amplitude 0.9 at period 20 s: the rising half-period should see
        // clearly more arrivals than the falling one.
        let wl = ArrivalWorkload::diurnal(600, 4.0, 0.9, 20.0, 64, (8, 8), 13);
        assert!(wl.arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        let (mut peak, mut trough) = (0usize, 0usize);
        for &(t, _) in &wl.arrivals {
            if (t % 20.0) < 10.0 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(peak > trough + trough / 2, "peak {peak} vs trough {trough}");
        let again = ArrivalWorkload::diurnal(600, 4.0, 0.9, 20.0, 64, (8, 8), 13);
        assert_eq!(wl, again);
    }

    #[test]
    fn parser_rejects_non_finite_times() {
        assert!(parse_trace("inf,0,8,4\n").is_err());
        assert!(parse_trace("NaN,0,8,4\n").is_err());
        assert!(parse_trace("-1.0,0,8,4\n").is_err());
    }

    fn crowd() -> FlashCrowd {
        FlashCrowd { start_s: 10.0, peak: 5.0, ramp_s: 2.0, hold_s: 4.0, decay_s: 2.0 }
    }

    #[test]
    fn flash_crowd_factor_is_piecewise_linear() {
        let c = crowd();
        assert_eq!(c.factor_at(0.0), 1.0);
        assert_eq!(c.factor_at(11.0), 3.0, "halfway up the ramp");
        assert_eq!(c.factor_at(13.0), 5.0, "holding");
        assert_eq!(c.factor_at(17.0), 3.0, "halfway down the decay");
        assert_eq!(c.factor_at(30.0), 1.0);
        // Zero-length ramp: a step function, no division blow-up.
        let step = FlashCrowd { ramp_s: 0.0, ..c };
        assert_eq!(step.factor_at(10.0), 5.0);
    }

    fn spec(sessions: u64) -> TraceSpec {
        TraceSpec {
            sessions,
            mean_rate_per_s: 8.0,
            diurnal_amplitude: 0.5,
            diurnal_period_s: 40.0,
            crowds: vec![crowd()],
            l_in: 64,
            l_out_range: (4, 16),
            seed: 42,
        }
    }

    #[test]
    fn scaled_trace_hits_count_order_and_determinism() {
        let w = spec(500).generate();
        assert_eq!(w.arrivals.len(), 500);
        assert!(w.arrivals.windows(2).all(|a| a[0].0 <= a[1].0));
        assert_eq!(w, spec(500).generate());
        assert_eq!(parse_trace(&format_trace(&w)).unwrap(), w);
    }

    #[test]
    fn flash_crowd_concentrates_arrivals() {
        let w = spec(2000).generate();
        // The crowd window [10, 18] is ~5× the surrounding rate; compare
        // its arrival count with the preceding 8 s.
        let in_crowd = w.arrivals.iter().filter(|(t, _)| (10.0..18.0).contains(t)).count();
        let before = w.arrivals.iter().filter(|(t, _)| (2.0..10.0).contains(t)).count();
        assert!(in_crowd > 2 * before, "crowd {in_crowd} vs before {before}");
    }

    #[test]
    fn rate_ceiling_bounds_rate_everywhere() {
        let s = spec(1);
        let ceil = s.rate_ceiling();
        for i in 0..400 {
            let t = i as f64 * 0.1;
            assert!(s.rate_at(t) <= ceil + 1e-12, "rate at {t} exceeds ceiling");
        }
    }
}
