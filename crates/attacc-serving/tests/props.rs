//! Property-based tests for the serving layer.

use attacc_serving::{
    ff_coprocess_speedup, format_trace, head_level_pipelined_s, max_batch_under_slo, parse_trace,
    serial_s, simulate, simulate_open_loop, ArrivalWorkload, DecoderPhases, FlashCrowd,
    SchedulerConfig,
    StageCost, StageExecutor, TraceSpec, Workload,
};
use proptest::prelude::*;

/// Affine toy system with tunable slope.
struct Affine {
    base_s: f64,
    per_req_s: f64,
}

impl StageExecutor for Affine {
    fn sum_stage(&self, batch: u64, _l_in: u64) -> StageCost {
        StageCost {
            latency_s: self.base_s * 3.0 + self.per_req_s * batch as f64,
            energy_j: batch as f64,
        }
    }
    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let n: u64 = groups.iter().map(|g| g.0).sum();
        StageCost {
            latency_s: self.base_s + self.per_req_s * n as f64,
            energy_j: 0.5 * n as f64,
        }
    }
}

proptest! {
    /// Token conservation: every request's l_out tokens are produced, once,
    /// regardless of batch limit or workload mix.
    #[test]
    fn scheduler_conserves_tokens(
        n in 1u64..40,
        l_out_max in 1u64..32,
        max_batch in 1u64..16,
        seed in 0u64..1000,
    ) {
        let exec = Affine { base_s: 1e-3, per_req_s: 1e-5 };
        let wl = Workload::uniform_random(n, 8, (1, l_out_max), seed);
        let r = simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(max_batch));
        prop_assert_eq!(r.tokens_generated, wl.total_output_tokens());
        prop_assert_eq!(r.requests_completed, n);
    }

    /// Open-loop and closed-loop scheduling produce the same token count.
    #[test]
    fn open_loop_conserves_tokens(
        n in 1u64..30,
        rate in 1.0f64..100.0,
        seed in 0u64..500,
    ) {
        let exec = Affine { base_s: 1e-3, per_req_s: 1e-5 };
        let wl = ArrivalWorkload::poisson(n, rate, 8, (1, 16), seed);
        let want: u64 = wl.arrivals.iter().map(|(_, r)| r.l_out).sum();
        let r = simulate_open_loop(&exec, &wl, &SchedulerConfig::unlimited(8));
        prop_assert_eq!(r.completed, n);
        prop_assert!((r.tokens_per_s * r.makespan_s - want as f64).abs() < 1.0);
    }

    /// Bigger batch caps never slow the closed-loop drain time.
    #[test]
    fn larger_batch_never_slower(
        n in 4u64..40,
        seed in 0u64..200,
    ) {
        let exec = Affine { base_s: 1e-3, per_req_s: 0.0 };
        let wl = Workload::uniform_random(n, 8, (1, 16), seed);
        let t4 = simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(4)).total_time_s;
        let t16 = simulate(&exec, &wl.requests(), &SchedulerConfig::unlimited(16)).total_time_s;
        prop_assert!(t16 <= t4 * 1.0001, "{t16} > {t4}");
    }

    /// The SLO search result is always feasible and maximal for affine
    /// latency models.
    #[test]
    fn slo_search_feasible_and_maximal(
        base_ms in 0.1f64..10.0,
        slope_us in 1.0f64..500.0,
        slo_ms in 0.5f64..100.0,
    ) {
        let exec = Affine { base_s: base_ms * 1e-3, per_req_s: slope_us * 1e-6 };
        let slo = slo_ms * 1e-3;
        let b = max_batch_under_slo(&exec, slo, 100, 10_000);
        if b > 0 {
            prop_assert!(exec.gen_stage(&[(b, 100)]).latency_s <= slo);
        }
        if b < 10_000 {
            prop_assert!(exec.gen_stage(&[(b + 1, 100)]).latency_s > slo);
        }
    }

    /// Head-level pipelining is bounded by serial time below and by the
    /// slower stream above.
    #[test]
    fn pipelining_bounds(
        qkv in 0.0f64..10.0,
        attn in 0.0f64..10.0,
        proj in 0.0f64..10.0,
        ff in 0.0f64..10.0,
        chunks in 1u64..256,
    ) {
        let p = DecoderPhases { qkv_s: qkv, attn_s: attn, proj_s: proj, ff_s: ff, other_s: 0.1, comm_s: 0.1 };
        let t = head_level_pipelined_s(&p, chunks);
        prop_assert!(t <= serial_s(&p) + 1e-12);
        let lower = (qkv + proj).max(attn) + ff + 0.2;
        prop_assert!(t >= lower - 1e-12);
    }

    /// FF co-processing speedup is in (0, 1] and monotone in the helper
    /// bandwidth.
    #[test]
    fn ff_speedup_sane(xpu in 1.0f64..100.0, attacc in 0.0f64..100.0) {
        let f = ff_coprocess_speedup(xpu, attacc);
        prop_assert!(f > 0.0 && f <= 1.0);
        prop_assert!(ff_coprocess_speedup(xpu, attacc + 1.0) < f);
    }

    /// Trace codec round-trip is *exact* for Poisson workloads: the
    /// shortest round-trip float formatting loses nothing.
    #[test]
    fn trace_roundtrip_exact_poisson(
        n in 1u64..60,
        rate in 0.1f64..200.0,
        l_in in 1u64..4096,
        l_out_max in 1u64..256,
        seed in 0u64..10_000,
    ) {
        let wl = ArrivalWorkload::poisson(n, rate, l_in, (1, l_out_max), seed);
        prop_assert_eq!(parse_trace(&format_trace(&wl)).unwrap(), wl);
    }

    /// Same exact round-trip for bursty workloads.
    #[test]
    fn trace_roundtrip_exact_bursty(
        n in 1u64..60,
        base in 0.1f64..50.0,
        factor in 1.0f64..20.0,
        period in 0.5f64..30.0,
        duty in 0.05f64..1.0,
        seed in 0u64..10_000,
    ) {
        let wl = ArrivalWorkload::bursty(n, base, factor, period, duty, 64, (1, 64), seed);
        prop_assert_eq!(parse_trace(&format_trace(&wl)).unwrap(), wl);
    }

    /// Corrupting any single field of a well-formed line yields a
    /// ParseTraceError naming that line, never a wrong parse.
    #[test]
    fn trace_parser_rejects_corrupt_fields(
        seed in 0u64..1000,
        field in 0usize..4,
    ) {
        let wl = ArrivalWorkload::poisson(3, 5.0, 32, (1, 8), seed);
        let text = format_trace(&wl);
        // Corrupt the chosen field of the second data line (line 3).
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut parts: Vec<String> = lines[2].split(',').map(str::to_string).collect();
        parts[field] = "bogus".to_string();
        lines[2] = parts.join(",");
        let err = parse_trace(&lines.join("\n")).unwrap_err();
        prop_assert_eq!(err.line, 3);
        prop_assert!(!err.reason.is_empty());
    }
}

#[test]
fn trace_error_paths_are_reported_with_reasons() {
    for (text, want) in [
        ("0.1,0,8", "missing l_out"),
        ("0.1,0,8,4,9", "too many fields"),
        ("0.1,0,0,4", "lengths must be positive"),
        ("0.1,0,8,0", "lengths must be positive"),
        ("0.5,0,8,4\n0.1,1,8,4", "out of order"),
        ("inf,0,8,4", "finite"),
        ("-0.5,0,8,4", "non-negative"),
        ("x,0,8,4", "bad arrival time"),
        ("0.1,x,8,4", "bad id"),
    ] {
        let err = parse_trace(text).unwrap_err();
        assert!(
            err.reason.contains(want),
            "input {text:?}: reason {:?} should mention {want:?}",
            err.reason
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Composed diurnal + flash-crowd traces hit the requested session
    /// count exactly, arrive in non-decreasing order with ids assigned
    /// in arrival order, stay inside the declared length bounds, and are
    /// deterministic under their seed.
    #[test]
    fn composed_traces_are_exact_ordered_and_deterministic(
        sessions in 1u64..400,
        mean_rate in 0.5f64..200.0,
        amplitude in 0.0f64..0.95,
        period in 1.0f64..120.0,
        n_crowds in 0usize..3,
        crowd_peak in 1.0f64..6.0,
        crowd_start in 0.0f64..60.0,
        l_in in 1u64..512,
        l_out_lo in 1u64..32,
        l_out_extra in 0u64..64,
        seed in 0u64..1_000_000,
    ) {
        let spec = TraceSpec {
            sessions,
            mean_rate_per_s: mean_rate,
            diurnal_amplitude: amplitude,
            diurnal_period_s: period,
            crowds: (0..n_crowds)
                .map(|i| FlashCrowd {
                    start_s: crowd_start + 10.0 * i as f64,
                    peak: crowd_peak,
                    ramp_s: 2.0,
                    hold_s: 5.0,
                    decay_s: 3.0,
                })
                .collect(),
            l_in,
            l_out_range: (l_out_lo, l_out_lo + l_out_extra),
            seed,
        };
        let w = spec.generate();
        prop_assert_eq!(w.arrivals.len() as u64, sessions);
        for (i, (t, r)) in w.arrivals.iter().enumerate() {
            prop_assert!(t.is_finite() && *t >= 0.0);
            prop_assert_eq!(r.id, i as u64);
            prop_assert_eq!(r.l_in, l_in);
            prop_assert!(r.l_out >= l_out_lo && r.l_out <= l_out_lo + l_out_extra);
            if i > 0 {
                prop_assert!(w.arrivals[i - 1].0 <= *t, "arrivals must be non-decreasing");
            }
        }
        let again = spec.generate();
        prop_assert!(w.arrivals == again.arrivals, "trace must be deterministic under its seed");
    }

    /// `format_trace` → `parse_trace` is the identity on generated
    /// traces: Rust's float formatting is shortest-round-trip, so the
    /// re-parsed arrival times are bit-identical, not just close.
    #[test]
    fn generated_traces_round_trip_through_format_and_parse(
        sessions in 1u64..200,
        mean_rate in 0.5f64..100.0,
        amplitude in 0.0f64..0.9,
        seed in 0u64..1_000_000,
    ) {
        let w = TraceSpec {
            sessions,
            mean_rate_per_s: mean_rate,
            diurnal_amplitude: amplitude,
            diurnal_period_s: 30.0,
            crowds: vec![FlashCrowd {
                start_s: 5.0,
                peak: 3.0,
                ramp_s: 1.0,
                hold_s: 2.0,
                decay_s: 1.0,
            }],
            l_in: 64,
            l_out_range: (4, 32),
            seed,
        }
        .generate();
        let parsed = parse_trace(&format_trace(&w)).expect("generated traces must parse");
        prop_assert!(parsed.arrivals == w.arrivals, "round-trip must be the identity");
    }
}
