//! Criterion micro-benches of the simulator's core kernels: the DRAM
//! command engine, the functional PIM dataflow, the softmax unit, the
//! stage executors and the discrete-event scheduler.

use attacc_hbm::engine::{simulate_stream, stream_time_estimate_ps};
use attacc_hbm::{HbmConfig, StreamSpec};
use attacc_model::ModelConfig;
use attacc_pim::accumulator::Accumulator;
use attacc_pim::mapping::hierarchical_gemv;
use attacc_pim::numeric::Matrix;
use attacc_pim::{GemvUnit, LevelSpec, MappingPolicy, Partitioning, SoftmaxUnit};
use attacc_serving::{simulate, SchedulerConfig, StageExecutor, Workload};
use attacc_sim::{System, SystemExecutor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hbm_engine(c: &mut Criterion) {
    let cfg = HbmConfig::hbm3_8hi();
    let spec = StreamSpec::uniform(&cfg.geometry, 4 << 20, cfg.power.max_active_banks);
    c.bench_function("hbm_stream_event_sim_4MiB", |b| {
        b.iter(|| black_box(simulate_stream(&cfg, &spec)))
    });
    c.bench_function("hbm_stream_closed_form_4MiB", |b| {
        b.iter(|| black_box(stream_time_estimate_ps(&cfg, &spec)))
    });
}

fn bench_pim_functional(c: &mut Criterion) {
    let policy = MappingPolicy {
        levels: vec![
            LevelSpec { fanout: 8, partitioning: Partitioning::ColWise },
            LevelSpec { fanout: 4, partitioning: Partitioning::ColWise },
            LevelSpec { fanout: 4, partitioning: Partitioning::RowWise },
        ],
        unit_mode: attacc_pim::GemvMode::AdderTree,
    };
    let k = 128usize;
    let n = 512usize;
    let x: Vec<f32> = (0..k).map(|i| (i % 13) as f32 * 0.1).collect();
    let m = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 17) as f32 * 0.05).collect());
    c.bench_function("pim_hierarchical_gemv_128x512", |b| {
        b.iter(|| {
            black_box(hierarchical_gemv(
                &GemvUnit::new(),
                &Accumulator::fp16(),
                &policy,
                &x,
                &m,
            ))
        })
    });

    let softmax = SoftmaxUnit::new();
    let scores: Vec<f32> = (0..4096).map(|i| (i % 101) as f32 * 0.07 - 3.0).collect();
    c.bench_function("softmax_unit_4096", |b| {
        b.iter(|| black_box(softmax.compute(&scores)))
    });
}

fn bench_executors(c: &mut Criterion) {
    let model = ModelConfig::gpt3_175b();
    let base = SystemExecutor::new(System::dgx_base(), &model);
    let pim = SystemExecutor::new(System::dgx_attacc_full(), &model);
    let groups = [(64u64, 3072u64)];
    c.bench_function("gen_stage_dgx_base", |b| {
        b.iter(|| black_box(base.gen_stage(black_box(&groups))))
    });
    c.bench_function("gen_stage_dgx_attacc", |b| {
        b.iter(|| black_box(pim.gen_stage(black_box(&groups))))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let model = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_attacc_full(), &model);
    let wl = Workload::uniform_random(64, 128, (16, 64), 11);
    let cfg = SchedulerConfig::unlimited(16);
    c.bench_function("scheduler_64_requests", |b| {
        b.iter(|| black_box(simulate(&exec, &wl.requests(), &cfg)))
    });

    let open = attacc_serving::ArrivalWorkload::poisson(64, 8.0, 128, (16, 64), 5);
    c.bench_function("open_loop_scheduler_64_requests", |b| {
        b.iter(|| black_box(attacc_serving::simulate_open_loop(&exec, &open, &cfg)))
    });
}

fn bench_functional_controller(c: &mut Criterion) {
    use attacc_hbm::StackGeometry;
    use attacc_pim::{AttAccController, AttInst, Precision};
    let geom = StackGeometry {
        pseudo_channels: 4,
        bank_groups_per_rank: 2,
        ranks: 2,
        banks_per_group: 2,
        ..StackGeometry::hbm3_8hi()
    };
    let d = 32usize;
    let l = 64usize;
    c.bench_function("functional_attention_d32_l64", |b| {
        b.iter(|| {
            let mut ctl = AttAccController::new(&geom, 4, Precision::Fp16);
            ctl.execute(AttInst::SetModel { n_head: 1, d_head: d, max_l: 4096 }).unwrap();
            ctl.execute(AttInst::UpdateRequest { request: 0, remove: false }).unwrap();
            for tok in 0..l {
                let k: Vec<f32> = (0..d).map(|i| ((tok * 7 + i) % 13) as f32 * 0.1).collect();
                let v: Vec<f32> = (0..d).map(|i| ((tok * 3 + i) % 11) as f32 * 0.1).collect();
                ctl.execute(AttInst::AppendKv { request: 0, head: 0, k, v }).unwrap();
            }
            let q: Vec<f32> = (0..d).map(|i| (i % 5) as f32 * 0.2).collect();
            ctl.execute(AttInst::LoadQ { request: 0, head: 0, q }).unwrap();
            ctl.execute(AttInst::RunAttention { request: 0, head: 0 }).unwrap();
            black_box(ctl.execute(AttInst::ReadOutput { request: 0, head: 0 }).unwrap())
        })
    });
}

fn bench_address_map(c: &mut Criterion) {
    use attacc_hbm::{AddressMap, Interleave, StackGeometry};
    let m = AddressMap::new(StackGeometry::hbm3_8hi(), Interleave::RowInterleaved);
    c.bench_function("address_decode_encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for beat in (0..1_000_000u64).step_by(997) {
                acc ^= m.encode(black_box(m.decode(beat)));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_hbm_engine,
    bench_pim_functional,
    bench_executors,
    bench_scheduler,
    bench_functional_controller,
    bench_address_map
);
criterion_main!(benches);
