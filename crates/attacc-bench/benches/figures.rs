//! Criterion benches: one per table/figure of the paper's evaluation.
//!
//! Each bench times the complete driver that regenerates the figure
//! (scaled-down request counts where the full population would only
//! repeat identical analytic iterations), so `cargo bench` both exercises
//! and times every experiment in the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1", |b| b.iter(|| black_box(attacc_bench::table1())));
    g.bench_function("fig02_gen_fraction_heatmap", |b| {
        b.iter(|| black_box(attacc_bench::fig02()))
    });
    g.bench_function("fig03_roofline", |b| b.iter(|| black_box(attacc_bench::fig03())));
    g.bench_function("fig04_batching_study", |b| {
        b.iter(|| black_box(attacc_bench::fig04()))
    });
    g.bench_function("fig07_placement_study", |b| {
        b.iter(|| black_box(attacc_bench::fig07()))
    });
    g.bench_function("fig13_end_to_end", |b| {
        b.iter(|| black_box(attacc_bench::fig13(1_000)))
    });
    g.bench_function("fig14_slo_study", |b| b.iter(|| black_box(attacc_bench::fig14())));
    g.bench_function("fig15_energy_study", |b| {
        b.iter(|| black_box(attacc_bench::fig15(1_000)))
    });
    g.bench_function("fig16_bitwidth_study", |b| {
        b.iter(|| black_box(attacc_bench::fig16(1_000)))
    });
    g.bench_function("fig17_alternatives", |b| {
        b.iter(|| black_box(attacc_bench::fig17(1_000)))
    });
    g.bench_function("area_7_7", |b| b.iter(|| black_box(attacc_bench::area_table())));
    g.bench_function("ablation_gqa", |b| {
        b.iter(|| black_box(attacc_bench::ablation_gqa()))
    });
    g.bench_function("ablation_bitwise", |b| {
        b.iter(|| black_box(attacc_bench::ablation_bitwise()))
    });
    g.bench_function("ablation_batch_pipe", |b| {
        b.iter(|| black_box(attacc_bench::ablation_batch_pipe()))
    });
    g.bench_function("ablation_bridge", |b| {
        b.iter(|| black_box(attacc_bench::ablation_bridge()))
    });
    g.bench_function("ablation_scaling", |b| {
        b.iter(|| black_box(attacc_bench::ablation_scaling()))
    });
    g.bench_function("ablation_training", |b| {
        b.iter(|| black_box(attacc_bench::ablation_training()))
    });
    g.bench_function("speedup_grid", |b| {
        b.iter(|| {
            let model = attacc_model::ModelConfig::gpt3_175b();
            black_box(attacc_sim::sweep::speedup_grid(&model, &[512, 2048], 200))
        })
    });
    g.bench_function("validation_opt66b", |b| {
        b.iter(|| black_box(attacc_bench::validation_table()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
