//! Shared CLI plumbing for the figure binaries.
//!
//! Every `bin/` driver funnels through [`run`]: flags are parsed
//! (`--serial` forces single-threaded sweeps, `--quiet` suppresses the
//! stats footer), the driver runs as a named phase on the sweep engine,
//! tables go to stdout, and a run report — thread count, per-phase wall
//! time, timing-cache hit rate — goes to stderr.

use attacc_sim::engine::{self, TimingCache};
use attacc_sim::Table;

/// Applies engine-relevant CLI flags: `--serial` pins the sweep engine to
/// one thread (equivalent to `ATTACC_THREADS=1`). Returns `true` when
/// `--quiet` was passed.
pub fn init_from_args() -> bool {
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--serial" => engine::set_threads(1),
            "--quiet" => quiet = true,
            _ => {}
        }
    }
    quiet
}

/// Prints the engine run report (threads, per-phase wall time, cache
/// stats) to stderr.
pub fn print_stats() {
    let stats = TimingCache::global().stats();
    eprintln!(
        "[attacc] threads={} cache: {} hits / {} misses (hit rate {:.1}%), {} entries",
        engine::configured_threads(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        TimingCache::global().len(),
    );
    for (phase, seconds) in engine::phase_report() {
        eprintln!("[attacc]   phase {phase:<24} {seconds:>9.3}s");
    }
}

/// Runs a driver producing several tables: parse flags, time it as phase
/// `name`, print the tables, then the stats footer (unless `--quiet`).
pub fn run(name: &str, driver: impl FnOnce() -> Vec<Table>) {
    let quiet = init_from_args();
    let tables = engine::time_phase(name, driver);
    for t in &tables {
        println!("{t}");
    }
    if !quiet {
        print_stats();
    }
}

/// [`run`] for a driver producing a single table.
pub fn run_one(name: &str, driver: impl FnOnce() -> Table) {
    run(name, || vec![driver()]);
}
