//! Shared CLI plumbing for the figure binaries.
//!
//! Every `bin/` driver funnels through [`run`]: flags are parsed
//! (`--serial` forces single-threaded sweeps, `--quiet` suppresses the
//! stats footer, `--budget <BENCH_*.json>` enforces a wall-time
//! budget), the driver runs as a named phase on the sweep engine,
//! tables go to stdout, and a run report — thread count, per-phase wall
//! time, timing-cache hit rate — goes to stderr.
//!
//! # Budget mode
//!
//! `--budget BENCH_cluster.json` compares this run's per-phase wall
//! times against the `phase_wall_s` entries recorded in the blessed
//! baseline file and exits non-zero when any phase runs more than
//! [`BUDGET_HEADROOM`] over its baseline (or a baselined phase did not
//! run at all). CI runs each `*_sim` bench this way so a performance
//! regression fails the build instead of rotting silently.

use attacc_sim::engine::{self, TimingCache};
use attacc_sim::Table;

/// Multiplier over the blessed baseline a phase may reach before the
/// budget check fails: 25% headroom absorbs machine-to-machine and
/// run-to-run noise while still catching real regressions.
pub const BUDGET_HEADROOM: f64 = 1.25;

/// Flags shared by every bench driver.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quiet`: suppress the stderr stats footer.
    pub quiet: bool,
    /// `--budget <path>`: blessed `BENCH_*.json` to enforce wall-time
    /// budgets against.
    pub budget: Option<String>,
}

/// Parses the shared flags and applies the engine-relevant ones:
/// `--serial` pins the sweep engine to one thread (equivalent to
/// `ATTACC_THREADS=1`).
#[must_use]
pub fn parse_args() -> BenchArgs {
    let mut args = BenchArgs::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--serial" => engine::set_threads(1),
            "--quiet" => args.quiet = true,
            "--budget" => {
                args.budget = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("[attacc] --budget requires a BENCH_*.json path");
                    std::process::exit(2);
                }));
            }
            _ => {}
        }
    }
    args
}

/// Applies engine-relevant CLI flags (see [`parse_args`]). Returns
/// `true` when `--quiet` was passed.
pub fn init_from_args() -> bool {
    parse_args().quiet
}

/// Prints the engine run report (threads, per-phase wall time, cache
/// stats) to stderr.
pub fn print_stats() {
    let stats = TimingCache::global().stats();
    eprintln!(
        "[attacc] threads={} cache: {} hits / {} misses (hit rate {:.1}%), {} entries",
        engine::configured_threads(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        TimingCache::global().len(),
    );
    for (phase, seconds) in engine::phase_report() {
        eprintln!("[attacc]   phase {phase:<24} {seconds:>9.3}s");
    }
}

/// Extracts the `"phase_wall_s"` object of a blessed `BENCH_*.json`
/// as `(phase, seconds)` pairs, hand-rolled so the bench crate needs
/// no JSON dependency. Returns an error when the key or its object is
/// missing or a value fails to parse — a malformed baseline must fail
/// the budget check, not pass it.
pub fn parse_phase_wall_s(json: &str) -> Result<Vec<(String, f64)>, String> {
    let start = json
        .find("\"phase_wall_s\"")
        .ok_or_else(|| "no \"phase_wall_s\" key".to_string())?;
    let rest = &json[start + "\"phase_wall_s\"".len()..];
    let obj_start = rest.find('{').ok_or_else(|| "no object after \"phase_wall_s\"".to_string())?;
    let obj_end = rest[obj_start..]
        .find('}')
        .ok_or_else(|| "unterminated \"phase_wall_s\" object".to_string())?;
    let body = &rest[obj_start + 1..obj_start + obj_end];

    let mut out = Vec::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed phase_wall_s entry {entry:?}"))?;
        let key = key.trim().trim_matches('"');
        let seconds: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("non-numeric wall time for phase {key:?}: {value:?}"))?;
        out.push((key.to_string(), seconds));
    }
    if out.is_empty() {
        return Err("empty \"phase_wall_s\" object".to_string());
    }
    Ok(out)
}

/// Checks measured phase wall times against a blessed baseline: every
/// baselined phase must have run and finished within `headroom` times
/// its baseline. Returns one human-readable message per violation
/// (empty = within budget).
#[must_use]
pub fn budget_violations(
    measured: &[(String, f64)],
    baseline: &[(String, f64)],
    headroom: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (phase, base_s) in baseline {
        let limit = base_s * headroom;
        match measured.iter().find(|(p, _)| p == phase) {
            None => violations.push(format!("phase {phase} in budget baseline but never ran")),
            Some((_, got_s)) if *got_s > limit => violations.push(format!(
                "phase {phase} took {got_s:.3}s, over budget (baseline {base_s:.3}s, limit {limit:.3}s)"
            )),
            Some(_) => {}
        }
    }
    violations
}

/// Enforces the `--budget` baseline at `path` against this process's
/// phase report, printing a verdict per phase. Exits non-zero on any
/// violation or unreadable/malformed baseline.
fn enforce_budget(path: &str) {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("[attacc] budget: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let baseline = parse_phase_wall_s(&json).unwrap_or_else(|e| {
        eprintln!("[attacc] budget: {path}: {e}");
        std::process::exit(2);
    });
    let measured = engine::phase_report();
    for (phase, base_s) in &baseline {
        if let Some((_, got_s)) = measured.iter().find(|(p, _)| p == phase) {
            eprintln!(
                "[attacc] budget {phase}: {got_s:.3}s vs baseline {base_s:.3}s (limit {:.3}s)",
                base_s * BUDGET_HEADROOM,
            );
        }
    }
    let violations = budget_violations(&measured, &baseline, BUDGET_HEADROOM);
    if violations.is_empty() {
        eprintln!("[attacc] budget: OK ({path})");
    } else {
        for v in &violations {
            eprintln!("[attacc] budget: FAIL: {v}");
        }
        std::process::exit(1);
    }
}

/// Runs a driver producing several tables: parse flags, time it as phase
/// `name`, print the tables, then the stats footer (unless `--quiet`),
/// then enforce the wall-time budget (when `--budget` was passed).
pub fn run(name: &str, driver: impl FnOnce() -> Vec<Table>) {
    let args = parse_args();
    let tables = engine::time_phase(name, driver);
    for t in &tables {
        println!("{t}");
    }
    if !args.quiet {
        print_stats();
    }
    if let Some(path) = &args.budget {
        enforce_budget(path);
    }
}

/// [`run`] for a driver producing a single table.
pub fn run_one(name: &str, driver: impl FnOnce() -> Table) {
    run(name, || vec![driver()]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_phase_wall_s_from_a_blessed_bench_file() {
        let json = r#"{
          "bench": "cluster_sim",
          "harness_footer": {
            "threads": 1,
            "phase_wall_s": {
              "cluster_sim": 0.160,
              "chaos_sim": 0.343
            }
          }
        }"#;
        assert_eq!(
            parse_phase_wall_s(json).unwrap(),
            vec![("cluster_sim".to_string(), 0.160), ("chaos_sim".to_string(), 0.343)],
        );
    }

    #[test]
    fn rejects_missing_key_and_bad_values() {
        assert!(parse_phase_wall_s("{}").is_err());
        assert!(parse_phase_wall_s(r#"{"phase_wall_s": {}}"#).is_err());
        assert!(parse_phase_wall_s(r#"{"phase_wall_s": {"x": "fast"}}"#).is_err());
    }

    #[test]
    fn flags_regressions_over_headroom_only() {
        let baseline = vec![("a".to_string(), 0.100), ("b".to_string(), 0.100)];
        let measured = vec![("a".to_string(), 0.124), ("b".to_string(), 0.126)];
        let violations = budget_violations(&measured, &baseline, 1.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("phase b"), "{violations:?}");
    }

    #[test]
    fn flags_baselined_phase_that_never_ran() {
        let baseline = vec![("a".to_string(), 0.100)];
        let violations = budget_violations(&[], &baseline, 1.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("never ran"), "{violations:?}");
    }
}
