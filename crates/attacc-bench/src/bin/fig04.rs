//! Prints the Figure 4 batching study.
fn main() {
    attacc_bench::harness::run("fig04", attacc_bench::fig04);
}
