//! Prints the Figure 4 batching study.
fn main() {
    for t in attacc_bench::fig04() {
        println!("{t}");
    }
}
