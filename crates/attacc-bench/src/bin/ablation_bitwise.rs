//! Prints the Section 8 bulk-bitwise ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_bitwise", attacc_bench::ablation_bitwise);
}
