//! Prints the Section 8 bulk-bitwise ablation.
fn main() {
    print!("{}", attacc_bench::ablation_bitwise());
}
