//! Prints the Section 6.1 batch-level pipelining ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_batch_pipe", attacc_bench::ablation_batch_pipe);
}
