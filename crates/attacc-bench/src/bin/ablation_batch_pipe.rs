//! Prints the Section 6.1 batch-level pipelining ablation.
fn main() {
    print!("{}", attacc_bench::ablation_batch_pipe());
}
