//! Prints the autoscaling frontier: static vs. autoscaled vs.
//! disaggregated fleets replaying the same 10⁵-session diurnal +
//! flash-crowd trace. Pass `--serial` to pin the sweep engine to one
//! thread (or set `ATTACC_THREADS`), `--quiet` to suppress the stderr
//! stats footer, `--budget BENCH_autoscale.json` to enforce the wall-time
//! baseline.
fn main() {
    attacc_bench::harness::run("autoscale_sim", || {
        vec![attacc_bench::autoscale_frontier(attacc_bench::AUTOSCALE_SESSIONS)]
    });
}
