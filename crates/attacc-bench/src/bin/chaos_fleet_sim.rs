//! Prints the fleet-chaos experiments: the MTBF × resilience/degradation
//! frontier on the disaggregated autoscaled fleet, and the N vs. N+1
//! redundancy comparison billed through the cost book. Pass `--serial`
//! to pin the sweep engine to one thread (or set `ATTACC_THREADS`),
//! `--quiet` to suppress the stderr stats footer, `--budget
//! BENCH_chaosfleet.json` to enforce the wall-time baseline.
fn main() {
    attacc_bench::harness::run("chaos_fleet_sim", || {
        vec![
            attacc_bench::chaos_fleet_frontier(attacc_bench::CHAOS_FLEET_REQUESTS),
            attacc_bench::chaos_fleet_redundancy(attacc_bench::CHAOS_FLEET_REQUESTS),
        ]
    });
}
