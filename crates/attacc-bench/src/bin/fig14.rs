//! Prints the Figure 14 SLO study.
fn main() {
    attacc_bench::harness::run_one("fig14", attacc_bench::fig14);
}
