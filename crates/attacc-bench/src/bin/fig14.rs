//! Prints the Figure 14 SLO study.
fn main() {
    print!("{}", attacc_bench::fig14());
}
