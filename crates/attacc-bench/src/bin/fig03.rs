//! Prints the Figure 3 roofline points.
fn main() {
    print!("{}", attacc_bench::fig03());
}
