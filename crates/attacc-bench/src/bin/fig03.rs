//! Prints the Figure 3 roofline points.
fn main() {
    attacc_bench::harness::run_one("fig03", attacc_bench::fig03);
}
