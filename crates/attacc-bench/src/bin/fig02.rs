//! Prints the Figure 2 heat map.
fn main() {
    print!("{}", attacc_bench::fig02());
}
