//! Prints the Figure 2 heat map.
fn main() {
    attacc_bench::harness::run_one("fig02", attacc_bench::fig02);
}
