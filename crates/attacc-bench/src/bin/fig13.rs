//! Prints the Figure 13 end-to-end comparison.
fn main() {
    attacc_bench::harness::run_one("fig13", || attacc_bench::fig13(attacc_bench::N_REQUESTS));
}
