//! Prints the Figure 13 end-to-end comparison.
fn main() {
    print!("{}", attacc_bench::fig13(attacc_bench::N_REQUESTS));
}
