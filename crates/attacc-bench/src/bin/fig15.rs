//! Prints the Figure 15 energy study.
fn main() {
    attacc_bench::harness::run_one("fig15", || attacc_bench::fig15(attacc_bench::N_REQUESTS));
}
