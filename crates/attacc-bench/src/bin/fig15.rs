//! Prints the Figure 15 energy study.
fn main() {
    print!("{}", attacc_bench::fig15(attacc_bench::N_REQUESTS));
}
