//! Prints every table and figure of the evaluation (the source of
//! EXPERIMENTS.md's measured columns). Pass `--json` for a machine-
//! readable dump, `--serial` to pin the sweep engine to one thread,
//! `--quiet` to suppress the stderr stats footer.
fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let quiet = attacc_bench::harness::init_from_args();
    let tables = attacc_bench::all_tables(attacc_bench::N_REQUESTS);
    if json {
        let docs: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", docs.join(",\n"));
    } else {
        for t in tables {
            println!("{t}");
        }
    }
    if !quiet {
        attacc_bench::harness::print_stats();
    }
}
