//! Prints every table and figure of the evaluation (the source of
//! EXPERIMENTS.md's measured columns). Pass `--json` for a machine-
//! readable dump.
fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let tables = attacc_bench::all_tables(attacc_bench::N_REQUESTS);
    if json {
        let docs: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", docs.join(",\n"));
    } else {
        for t in tables {
            println!("{t}");
        }
    }
}
