//! Prints the Section 7.7 area-overhead table.
fn main() {
    print!("{}", attacc_bench::area_table());
}
