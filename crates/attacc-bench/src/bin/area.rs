//! Prints the Section 7.7 area-overhead table.
fn main() {
    attacc_bench::harness::run_one("area", attacc_bench::area_table);
}
