//! Prints the (L_in, L_out) speedup heat map of DGX+AttAccs over DGX_Base.
use attacc_sim::sweep::{grid_table, speedup_grid};

fn main() {
    attacc_bench::harness::run_one("speedup_grid", || {
        let model = attacc_model::ModelConfig::gpt3_175b();
        let lens = [128u64, 512, 1024, 2048];
        let cells = speedup_grid(&model, &lens, 1_000);
        grid_table(
            "Speedup of DGX+AttAccs over DGX_Base across (Lin, Lout), GPT-3 175B",
            &lens,
            &cells,
        )
    });
}
