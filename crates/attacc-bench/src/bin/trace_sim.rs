//! Prints the trace-driven execution experiments: the paper decode
//! workloads lowered to ISA traces and replayed on the command engine,
//! the new trace-only attention workloads (sliding window, paged KV),
//! and the per-opcode time/energy attribution. Pass `--serial` to pin
//! the sweep engine to one thread (or set `ATTACC_THREADS`), `--quiet`
//! to suppress the stderr stats footer.
fn main() {
    attacc_bench::harness::run("trace_sim", || {
        vec![
            attacc_bench::trace_paper_table(),
            attacc_bench::trace_workloads_table(),
            attacc_bench::trace_opcode_table(),
        ]
    });
}
