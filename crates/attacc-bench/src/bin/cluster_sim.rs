//! Prints the multi-node cluster frontier (node count × router policy ×
//! arrival rate) and the load-shape sensitivity table. Pass `--serial` to
//! pin the sweep engine to one thread (or set `ATTACC_THREADS`),
//! `--quiet` to suppress the stderr stats footer.
fn main() {
    attacc_bench::harness::run("cluster_sim", || {
        vec![
            attacc_bench::cluster_frontier(attacc_bench::CLUSTER_REQUESTS),
            attacc_bench::cluster_load_shapes(attacc_bench::CLUSTER_REQUESTS),
        ]
    });
}
