//! Prints resource inventories for every evaluation model.
use attacc_model::{ModelConfig, ModelSummary};

fn main() {
    let mut models = ModelConfig::evaluation_models();
    models.push(ModelConfig::llama2_70b());
    models.push(ModelConfig::opt_66b());
    for m in models {
        println!("{}", ModelSummary::of(&m));
    }
}
