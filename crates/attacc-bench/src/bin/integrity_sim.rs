//! Prints the data-integrity experiments: the SDC/DUE/goodput frontier
//! (BER × protection rung: raw cells, SEC-DED, SEC-DED + ABFT + guards)
//! and the on-die ECC command-engine overhead table. Pass `--serial` to
//! pin the sweep engine to one thread (or set `ATTACC_THREADS`),
//! `--quiet` to suppress the stderr stats footer.
fn main() {
    attacc_bench::harness::run("integrity_sim", || {
        vec![
            attacc_bench::integrity_frontier(attacc_bench::INTEGRITY_REQUESTS),
            attacc_bench::ecc_overhead_table(),
        ]
    });
}
