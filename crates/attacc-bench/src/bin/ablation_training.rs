//! Prints the Section 8 training-implication ablation.
fn main() {
    print!("{}", attacc_bench::ablation_training());
}
