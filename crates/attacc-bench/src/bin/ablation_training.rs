//! Prints the Section 8 training-implication ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_training", attacc_bench::ablation_training);
}
