//! Prints the AttAcc provisioning frontier for GPT-3 under a 50 ms SLO.
use attacc_sim::provision::provision_sweep;
use attacc_sim::Table;

fn main() {
    attacc_bench::harness::run_one("provision", || {
        let model = attacc_model::ModelConfig::gpt3_175b();
        let mut t = Table::new(
            "Provisioning frontier: AttAcc stacks vs throughput (GPT-3 175B, 50 ms SLO, Lin/Lout = 2048)",
            &["stacks", "batch", "tokens/s", "Pareto"],
        );
        for p in provision_sweep(&model, 2048, 2048, 0.050, &[8, 16, 24, 32, 40, 56, 80]) {
            t.push_row(vec![
                p.stacks.to_string(),
                p.batch.to_string(),
                Table::num(p.tokens_per_s),
                if p.efficient { "*".into() } else { String::new() },
            ]);
        }
        t
    });
}
