//! Answers "cheapest fleet for N users at SLO X": the surrogate-pruned
//! heterogeneous-mix TCO search, plus the cost book it bills with and
//! the original stacks frontier.
//!
//! `--users N` overrides the session count (default
//! [`attacc_bench::PROVISION_USERS`]).

fn main() {
    let users = std::env::args()
        .skip_while(|a| a != "--users")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(attacc_bench::PROVISION_USERS);
    attacc_bench::harness::run("provision", || {
        vec![
            attacc_bench::provision_cost_book_table(),
            attacc_bench::provision_stacks_table(),
            attacc_bench::provision_frontier(users),
        ]
    });
}
