//! Wall-time instrumentation for the simulation hot path.
//!
//! Times the per-call cost of each component the cluster/chaos event
//! loops lean on — Gen-stage timing resolution (analytic fast path vs
//! the exact command-level engine), the fused PIM attention model, and
//! the time-wheel event queue — so a wall-clock regression can be
//! localized to a component without an external profiler. Numbers are
//! machine-dependent and printed for inspection only; the enforced
//! regression gate is the harness `--budget` mode.

use attacc_cluster::{EventKind, EventQueue};
use attacc_model::ModelConfig;
use attacc_pim::{AttAccDevice, GemvPlacement};
use attacc_serving::{SchedulerConfig, StageExecutor};
use attacc_sim::engine;
use attacc_sim::{System, SystemExecutor, TimingCache};
use std::hint::black_box;
use std::time::Instant;

fn time<R>(label: &str, iters: u64, mut f: impl FnMut(u64) -> R) {
    let start = Instant::now();
    for i in 0..iters {
        black_box(f(i));
    }
    let total = start.elapsed().as_secs_f64();
    let per_call_ns = total / iters as f64 * 1e9;
    println!("{label:<46} {per_call_ns:>9.1} ns/call   ({iters} calls, {total:.3}s)");
}

fn main() {
    let model = ModelConfig::gpt3_175b();
    let exec = SystemExecutor::new(System::dgx_attacc_full(), &model);
    let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);

    // Steady-state decode: rows constant, contexts advancing one token a
    // round — every call resolves through one GenParts probe plus the
    // analytic combine, exactly like the cluster/chaos inner loops.
    engine::set_fastpath(Some(true));
    TimingCache::global().clear();
    exec.gen_stage(&[(8, 512)]);
    time("gen_stage fast path (steady-state decode)", 100_000, |i| {
        exec.gen_stage(&[(8, 512 + (i % 512))])
    });

    // The same shapes through the exact command-level engine: each
    // advancing context is a fresh full-group cache key, so this is the
    // cost the fast path removes.
    engine::set_fastpath(Some(false));
    TimingCache::global().clear();
    time("gen_stage exact engine (advancing contexts)", 2_000, |i| {
        exec.gen_stage(&[(8, 512 + (i % 512))])
    });
    engine::set_fastpath(None);

    // The fused PIM attention model alone (runs inside every fast-path
    // combine).
    time("attention_decoder_time (one group)", 100_000, |i| {
        dev.attention_decoder_time(&model, &[(8, 512 + (i % 512))], true)
    });

    // Sum-stage probe on a warm cache (prefill admissions).
    TimingCache::global().clear();
    time("sum_stage warm probe", 100_000, |i| exec.sum_stage(1 + (i % 4), 512));

    // A full scheduling round in steady-state decode: 16 active
    // sequences, no admissions, contexts advancing one token per call —
    // the NodeReady handler's dominant work item.
    engine::set_fastpath(None);
    TimingCache::global().clear();
    let mut node = attacc_cluster::NodeEngine::new(&exec, SchedulerConfig::unlimited(16));
    for i in 0..16u64 {
        node.deliver(0.0, attacc_model::Request::new(i, 256 + i, 1 << 40));
    }
    let mut t = node.run_round(0.0).end_s;
    time("node run_round (16-way steady decode)", 100_000, |_| {
        let out = node.run_round(t);
        t = out.end_s;
        t
    });

    // Event-queue churn: a standing population with one pop + one push
    // per step, time strictly advancing — the cluster loop's access
    // pattern on the time wheel.
    let mut q = EventQueue::new();
    for i in 0..1024u64 {
        q.push(1e-3 * i as f64, EventKind::NodeReady { node: 0 });
    }
    time("event queue pop+push (standing population)", 1_000_000, |i| {
        let ev = q.pop().expect("queue never drains");
        q.push(ev.time_s + 1e-3 * ((i % 7) as f64 + 1.0), EventKind::NodeReady { node: 0 });
        ev.time_s
    });
}
