//! Prints Table 1.
fn main() {
    attacc_bench::harness::run_one("table1", attacc_bench::table1);
}
