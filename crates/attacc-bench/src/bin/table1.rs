//! Prints Table 1.
fn main() {
    print!("{}", attacc_bench::table1());
}
