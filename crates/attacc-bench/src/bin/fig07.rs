//! Prints the Figure 7 design-space study.
fn main() {
    print!("{}", attacc_bench::fig07());
}
