//! Prints the Figure 7 design-space study.
fn main() {
    attacc_bench::harness::run_one("fig07", attacc_bench::fig07);
}
