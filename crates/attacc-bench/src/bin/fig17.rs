//! Prints the Figure 17 alternatives comparison.
fn main() {
    attacc_bench::harness::run_one("fig17", || attacc_bench::fig17(attacc_bench::N_REQUESTS));
}
