//! Prints the Figure 17 alternatives comparison.
fn main() {
    print!("{}", attacc_bench::fig17(attacc_bench::N_REQUESTS));
}
