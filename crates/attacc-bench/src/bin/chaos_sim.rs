//! Prints the chaos experiments: the goodput-under-failure frontier
//! (per-node crash MTBF × resilience policy) and the router × resilience
//! matrix at a fixed failure rate. Pass `--serial` to pin the sweep
//! engine to one thread (or set `ATTACC_THREADS`), `--quiet` to suppress
//! the stderr stats footer.
fn main() {
    attacc_bench::harness::run("chaos_sim", || {
        vec![
            attacc_bench::chaos_goodput_frontier(attacc_bench::CHAOS_REQUESTS),
            attacc_bench::chaos_routing_matrix(attacc_bench::CHAOS_REQUESTS),
        ]
    });
}
