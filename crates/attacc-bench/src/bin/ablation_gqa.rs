//! Prints the Section 8 GQA/MQA ablation.
fn main() {
    print!("{}", attacc_bench::ablation_gqa());
}
