//! Prints the Section 8 GQA/MQA ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_gqa", attacc_bench::ablation_gqa);
}
