//! Prints the Figure 16 bit-width sensitivity study.
fn main() {
    attacc_bench::harness::run_one("fig16", || attacc_bench::fig16(attacc_bench::N_REQUESTS));
}
