//! Prints the Figure 16 bit-width sensitivity study.
fn main() {
    print!("{}", attacc_bench::fig16(attacc_bench::N_REQUESTS));
}
