//! Prints the Section 7.1 simulator-validation point.
fn main() {
    attacc_bench::harness::run_one("validation", attacc_bench::validation_table);
}
