//! Prints the Section 7.1 simulator-validation point.
fn main() {
    print!("{}", attacc_bench::validation_table());
}
