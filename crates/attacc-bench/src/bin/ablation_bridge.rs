//! Prints the interconnect-sensitivity ablation.
fn main() {
    print!("{}", attacc_bench::ablation_bridge());
}
