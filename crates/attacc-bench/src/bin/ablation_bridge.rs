//! Prints the interconnect-sensitivity ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_bridge", attacc_bench::ablation_bridge);
}
