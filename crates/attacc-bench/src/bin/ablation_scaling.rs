//! Prints the model-scale ablation.
fn main() {
    attacc_bench::harness::run_one("ablation_scaling", attacc_bench::ablation_scaling);
}
