//! Prints the model-scale ablation.
fn main() {
    print!("{}", attacc_bench::ablation_scaling());
}
