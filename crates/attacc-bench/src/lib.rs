//! Benchmark harness regenerating every table and figure of the AttAcc
//! paper's evaluation.
//!
//! Each `figNN()` function runs the corresponding experiment at the
//! paper's parameters and renders the rows as a [`Table`]. The `bin/`
//! binaries print single figures (`cargo run --release -p attacc-bench
//! --bin fig13`); `bin/all` prints the full evaluation and is the source
//! of `EXPERIMENTS.md`. The Criterion benches (`cargo bench`) time both
//! the figure drivers and the core simulator kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use attacc_chaos::{
    simulate_chaos, simulate_fleet_chaos, simulate_integrity, ChaosConfig, ChaosReport,
    CorruptionSpec, DegradePolicy, FaultSchedule, FaultSpec, FleetChaosConfig, HealthConfig,
    IntegrityReport, Protection, RecoveryMode, ResiliencePolicy,
};
use attacc_cluster::{
    simulate_cluster, simulate_fleet, AutoscalerConfig, ClusterConfig, FleetConfig, FleetMix,
    FleetReport, InterconnectModel, PoolConfig, RouterPolicy, ScaleSignal, SloSpec,
};
use attacc_model::{DataType, KvCacheSpec, ModelConfig, GIB};
use attacc_pim::bitwise::{bank_pim_speedup, BankPimModel, BulkBitwiseModel};
use attacc_pim::{AreaReport, GemvPlacement};
use attacc_sim::experiment::{
    alternatives_study, batching_study, bitwidth_study, end_to_end, gen_stage_fraction,
    gqa_ablation, placement_study, roofline_rows, slo_study,
};
use attacc_serving::{
    ArrivalWorkload, FlashCrowd, RetryPolicy, SchedulerConfig, StageExecutor, TraceSpec,
};
use attacc_provision::{
    enumerate_specs, run_search, CostBook, FleetSpec, NodeVariant, SearchConfig, SearchOutcome,
    TrafficSpec,
};
use attacc_sim::validate::validate_opt66b;
use attacc_sim::{SweepRunner, System, SystemExecutor, Table};
use attacc_trace::{
    compile, execute_timing, DecodeSchedule, KvPolicy, TimingConfig, TracePayload, TraceReport,
};

pub mod harness;

/// The paper's three (L_in, L_out) evaluation points for Fig. 13/15/16.
pub const EVAL_SEQS: [(u64, u64); 3] = [(512, 512), (1024, 1024), (2048, 2048)];

/// Requests served per end-to-end configuration (§7.2).
pub const N_REQUESTS: u64 = 10_000;

fn n(v: f64) -> String {
    Table::num(v)
}

/// Table 1: model size and maximum input-sequence trends.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: model size and max input sequence (FP16 weights)",
        &["model", "params", "size (GB)", "max seq len"],
    );
    for m in [ModelConfig::gpt1(), ModelConfig::gpt2_xl(), ModelConfig::gpt3_175b()] {
        t.push_row(vec![
            m.name.clone(),
            format!("{:.2e}", m.n_params() as f64),
            n(m.weight_bytes() as f64 / GIB as f64),
            m.max_seq_len.to_string(),
        ]);
    }
    t.push_row(vec!["GPT-4".into(), "-".into(), "-".into(), "32768".into()]);
    t
}

/// Fig. 2: percentage of Gen-stage time over (L_in, L_out), GPT-3 175B,
/// batch 1 on the DGX baseline.
#[must_use]
pub fn fig02() -> Table {
    let lens = [2u64, 8, 32, 128, 512, 2048];
    let model = ModelConfig::gpt3_175b();
    let sys = System::dgx_base();
    let mut headers: Vec<String> = vec!["Lout \\ Lin".into()];
    headers.extend(lens.iter().map(ToString::to_string));
    let mut t = Table::new(
        "Figure 2: % of Gen-stage time in total execution (GPT-3 175B, batch 1)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    // Heat-map cells are independent: run the grid on the sweep engine
    // (row-major over L_out descending, matching the serial loops).
    let cells: Vec<(u64, u64)> = lens
        .iter()
        .rev()
        .flat_map(|&lout| lens.iter().map(move |&lin| (lin, lout)))
        .collect();
    let fracs = SweepRunner::from_env()
        .map(&cells, |&(lin, lout)| gen_stage_fraction(&sys, &model, lin, lout));
    for (i, &lout) in lens.iter().rev().enumerate() {
        let mut row = vec![lout.to_string()];
        for j in 0..lens.len() {
            row.push(format!("{:.1}", 100.0 * fracs[i * lens.len() + j]));
        }
        t.push_row(row);
    }
    t
}

/// Fig. 3: roofline of the baseline for GPT-3's Sum and Gen layers.
#[must_use]
pub fn fig03() -> Table {
    let model = ModelConfig::gpt3_175b();
    let rows = roofline_rows(&System::dgx_base(), &model, 2048, &[1, 8, 64, 256]);
    let mut t = Table::new(
        "Figure 3: roofline placement (DGX, GPT-3 175B, Lin = 2048)",
        &["layer", "op/B", "attainable TFLOP/s", "bound"],
    );
    for r in rows {
        t.push_row(vec![
            r.label,
            n(r.op_per_byte),
            n(r.attainable_tflops),
            if r.memory_bound { "memory".into() } else { "compute".into() },
        ]);
    }
    t
}

/// Fig. 4: throughput/capacity, energy and breakdown versus batch size
/// (DGX with unlimited capacity, L_in = 2048).
#[must_use]
pub fn fig04() -> Vec<Table> {
    let model = ModelConfig::gpt3_175b();
    let sys = System::dgx_base();
    let batches = [1u64, 2, 4, 8, 16, 32, 64, 128, 256];
    [128u64, 512, 2048]
        .iter()
        .map(|&lout| {
            let mut t = Table::new(
                format!("Figure 4: batching on DGX (GPT-3 175B, Lin=2048, Lout={lout})"),
                &[
                    "batch",
                    "tokens/s",
                    "capacity (GB)",
                    ">DGX?",
                    "J/token",
                    "iter (ms)",
                    "FC%",
                    "attn%",
                    "etc%",
                    "GPU util%",
                ],
            );
            for row in batching_study(&sys, &model, 2048, lout, &batches) {
                t.push_row(vec![
                    row.batch.to_string(),
                    n(row.tokens_per_s),
                    n(row.required_capacity_gib),
                    if row.exceeds_dgx_capacity { "*".into() } else { "".into() },
                    n(row.energy_per_token_j),
                    n(row.iteration_latency_s * 1e3),
                    n(row.fc_frac * 100.0),
                    n(row.attn_frac * 100.0),
                    n(row.other_frac * 100.0),
                    n(row.utilization * 100.0),
                ]);
            }
            t
        })
        .collect()
}

/// Companion to Fig. 4: the same batching study on the PIM platform,
/// showing the attention share staying flat where the baseline's explodes.
#[must_use]
pub fn fig04_pim() -> Table {
    let model = ModelConfig::gpt3_175b();
    let sys = System::dgx_attacc_full();
    let batches = [1u64, 4, 16, 64, 256];
    let mut t = Table::new(
        "Figure 4 companion: batching on DGX+AttAccs (GPT-3 175B, Lin=2048, Lout=2048)",
        &["batch", "tokens/s", "J/token", "iter (ms)", "attn%"],
    );
    for row in batching_study(&sys, &model, 2048, 2048, &batches) {
        t.push_row(vec![
            row.batch.to_string(),
            n(row.tokens_per_s),
            n(row.energy_per_token_j),
            n(row.iteration_latency_s * 1e3),
            n(row.attn_frac * 100.0),
        ]);
    }
    t
}

/// Fig. 7: the GEMV-placement design space.
#[must_use]
pub fn fig07() -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Figure 7: AttAcc design points (GPT-3 175B, Lin/Lout = 2048)",
        &[
            "placement",
            "peak power (W)",
            "rel tput",
            "rel energy",
            "area ovh %",
            "rel EDAP",
        ],
    );
    for r in placement_study(&model, 50, 4096) {
        t.push_row(vec![
            r.placement,
            n(r.peak_power_w),
            n(r.rel_throughput),
            n(r.rel_energy),
            n(r.area_overhead * 100.0),
            n(r.rel_edap),
        ]);
    }
    t
}

/// Fig. 13: normalized end-to-end time for 10,000 requests across models,
/// sequence lengths and systems.
#[must_use]
pub fn fig13(n_requests: u64) -> Table {
    let models = ModelConfig::evaluation_models();
    let mut t = Table::new(
        format!("Figure 13: normalized execution time, {n_requests} requests"),
        &["model", "Lin", "Lout", "system", "batch", "time (s)", "normalized"],
    );
    for r in end_to_end(&models, &EVAL_SEQS, n_requests) {
        t.push_row(vec![
            r.model,
            r.l_in.to_string(),
            r.l_out.to_string(),
            r.system,
            r.batch.to_string(),
            n(r.time_s),
            n(r.normalized),
        ]);
    }
    t
}

/// Fig. 14: throughput under SLOs (GPT-3 175B).
#[must_use]
pub fn fig14() -> Table {
    let model = ModelConfig::gpt3_175b();
    let slos = [None, Some(0.070), Some(0.050), Some(0.030)];
    let mut t = Table::new(
        "Figure 14: throughput under SLO (GPT-3 175B, Lin/Lout = 2048)",
        &["SLO", "system", "max batch", "tokens/s", "normalized"],
    );
    let rows = slo_study(&model, 2048, 2048, &slos);
    let base: Vec<f64> = slos
        .iter()
        .map(|&slo| {
            rows.iter()
                .find(|r| r.slo_s == slo && r.system == "DGX_Base")
                .map_or(0.0, |r| r.tokens_per_s)
        })
        .collect();
    for r in &rows {
        let slo_idx = slos.iter().position(|&s| s == r.slo_s).unwrap_or(0);
        let denom = base[slo_idx];
        t.push_row(vec![
            r.slo_s.map_or("none".into(), |s| format!("{:.0}ms", s * 1e3)),
            r.system.clone(),
            r.max_batch.to_string(),
            n(r.tokens_per_s),
            if denom > 0.0 { n(r.tokens_per_s / denom) } else { "inf".into() },
        ]);
    }
    t
}

/// Fig. 15: energy per output token (absolute and normalized).
#[must_use]
pub fn fig15(n_requests: u64) -> Table {
    let models = ModelConfig::evaluation_models();
    let mut t = Table::new(
        "Figure 15: energy per output token",
        &["model", "Lin", "Lout", "system", "J/token", "normalized", "saved %"],
    );
    for r in end_to_end(&models, &EVAL_SEQS, n_requests) {
        // Recover the per-(model,seq) base row: normalized time row order
        // guarantees DGX_Base first.
        t.push_row(vec![
            r.model,
            r.l_in.to_string(),
            r.l_out.to_string(),
            r.system,
            n(r.energy_per_token_j),
            String::new(),
            String::new(),
        ]);
    }
    // Fill normalized columns per group of five systems.
    let mut i = 0;
    while i < t.rows.len() {
        let base: f64 = t.rows[i][4].parse().unwrap_or(1.0);
        for j in i..(i + 5).min(t.rows.len()) {
            let v: f64 = t.rows[j][4].parse().unwrap_or(0.0);
            t.rows[j][5] = n(v / base);
            t.rows[j][6] = n(100.0 * (1.0 - v / base));
        }
        i += 5;
    }
    t
}

/// Fig. 16: FP16 vs INT8 sensitivity (GPT-3 175B).
#[must_use]
pub fn fig16(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Figure 16: bit-width sensitivity (GPT-3 175B)",
        &["dtype", "Lin", "Lout", "speedup vs DGX_Base", "speedup vs DGX_Large"],
    );
    for r in bitwidth_study(&model, &EVAL_SEQS, n_requests) {
        t.push_row(vec![
            r.dtype,
            r.l_in.to_string(),
            r.l_out.to_string(),
            n(r.speedup_vs_base),
            n(r.speedup_vs_large),
        ]);
    }
    t
}

/// Fig. 17: comparison with other DGX options (GPT-3 175B).
#[must_use]
pub fn fig17(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Figure 17: other DGX options (GPT-3 175B)",
        &["system", "Lin", "Lout", "batch", "normalized throughput"],
    );
    for r in alternatives_study(&model, &EVAL_SEQS, n_requests) {
        t.push_row(vec![
            r.system,
            r.l_in.to_string(),
            r.l_out.to_string(),
            r.batch.to_string(),
            n(r.normalized_throughput),
        ]);
    }
    t
}

/// §7.7: area overhead of the shipped (bank-level) design.
#[must_use]
pub fn area_table() -> Table {
    let hbm = attacc_hbm::HbmConfig::hbm3_8hi();
    let mut t = Table::new(
        "Section 7.7: area overhead per design point",
        &["placement", "DRAM die (mm^2)", "die overhead %", "buffer die (mm^2)"],
    );
    for p in GemvPlacement::ALL {
        let r = AreaReport::for_placement(p, &hbm);
        t.push_row(vec![
            p.to_string(),
            n(r.per_dram_die_mm2),
            n(r.dram_die_overhead * 100.0),
            n(r.per_buffer_die_mm2),
        ]);
    }
    t
}

/// §8 ablation: GQA/MQA sensitivity of the attention speedup, with and
/// without the systolic GEMV-unit extension.
#[must_use]
pub fn ablation_gqa() -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Section 8 ablation: GQA/MQA (GPT-3 175B, batch 32, L = 2048)",
        &["KV sharing", "KV heads", "default speedup", "systolic speedup"],
    );
    for r in gqa_ablation(&model, 32, 2048, &[1, 2, 4, 8, 16, 32, 96]) {
        let kv_heads = 96 / r.group_size;
        t.push_row(vec![
            format!("group={}", r.group_size),
            kv_heads.to_string(),
            n(r.attention_speedup),
            n(r.systolic_speedup),
        ]);
    }
    t
}

/// §6.1 ablation: batch-level pipelining versus the adopted head-level
/// pipelining (the Fig. 11(c) argument).
#[must_use]
pub fn ablation_batch_pipe() -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Section 6.1 ablation: batch-level pipelining (GPT-3 175B, Lin/Lout = 2048)",
        &["strategy", "batch per stream", "tokens/s"],
    );
    for r in attacc_sim::experiment::batch_pipelining_ablation(&model, 2048, 2048) {
        t.push_row(vec![
            r.strategy,
            r.batch_per_stream.to_string(),
            n(r.tokens_per_s),
        ]);
    }
    t
}

/// §8 ablation: bulk bitwise versus bank-level PIM for INT8 multiplies.
#[must_use]
pub fn ablation_bitwise() -> Table {
    let bulk = BulkBitwiseModel::default();
    let pim = BankPimModel::default();
    let mut t = Table::new(
        "Section 8 ablation: bulk-bitwise vs bank-level PIM (INT8, per bank, 20 us window)",
        &["approach", "multiplications", "relative"],
    );
    let b = bulk.int8_muls_per_bank(20.0);
    let p = pim.int8_muls_per_bank(20.0);
    t.push_row(vec!["bulk bitwise (Ambit-style)".into(), n(b), n(1.0)]);
    t.push_row(vec!["bank-level PIM (AttAcc)".into(), n(p), n(bank_pim_speedup(&bulk, &pim))]);
    t
}

/// §8 ablation: the implication of AttAcc on training.
#[must_use]
pub fn ablation_training() -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Section 8 ablation: training phases (GPT-3 175B, batch 8, seq 2048)",
        &["phase", "attention op/B", "bound", "AttAcc speedup"],
    );
    for r in attacc_sim::experiment::training_ablation(&model, 8, 2048) {
        t.push_row(vec![
            r.phase,
            n(r.attention_op_b),
            if r.memory_bound { "memory".into() } else { "compute".into() },
            n(r.attacc_speedup),
        ]);
    }
    t
}

/// Design-choice ablation: sensitivity to the xPU↔AttAcc bridge.
#[must_use]
pub fn ablation_bridge() -> Table {
    use attacc_xpu::Interconnect;
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Ablation: xPU-AttAcc interconnect sensitivity (GPT-3 175B, batch 32, L = 2048)",
        &["bridge", "GB/s", "iteration (ms)", "slowdown"],
    );
    for r in attacc_sim::experiment::bridge_sensitivity(
        &model,
        32,
        2048,
        &[
            Interconnect::pcie_gen5(),
            Interconnect::accelerator_bridge(),
            Interconnect::nvlink(),
        ],
    ) {
        t.push_row(vec![r.bridge, n(r.bw_gb_s), n(r.iteration_ms), n(r.slowdown)]);
    }
    t
}

/// Design-choice ablation: speedup versus model scale (§7.2's
/// interpretation of where the win comes from).
#[must_use]
pub fn ablation_scaling() -> Table {
    let models = [
        ModelConfig::gpt3_6_7b(),
        ModelConfig::gpt3_13b(),
        ModelConfig::llama_65b(),
        ModelConfig::gpt3_175b(),
        ModelConfig::mt_nlg_530b(),
    ];
    let mut t = Table::new(
        "Ablation: speedup vs model scale (Lin/Lout = 2048, 1000 requests)",
        &["model", "params", "batch Base", "batch PIM", "speedup"],
    );
    for r in attacc_sim::experiment::model_scaling_study(&models, 2048, 2048, 1_000) {
        t.push_row(vec![
            r.model,
            format!("{:.2e}", r.params as f64),
            r.batch_base.to_string(),
            r.batch_pim.to_string(),
            n(r.speedup),
        ]);
    }
    t
}

/// §7.1 validation point: OPT-66B on a real-bandwidth DGX A100.
#[must_use]
pub fn validation_table() -> Table {
    let r = validate_opt66b();
    let mut t = Table::new(
        "Section 7.1 validation: OPT-66B batch-1 token latency on DGX A100",
        &["quantity", "seconds"],
    );
    t.push_row(vec!["modeled".into(), format!("{:.4}", r.modeled_s)]);
    t.push_row(vec!["published measurement".into(), format!("{:.4}", r.measured_s)]);
    t.push_row(vec!["ratio".into(), format!("{:.2}", r.ratio)]);
    t
}

/// Supporting stat: the KV capacity picture of §3.2.
#[must_use]
pub fn capacity_table() -> Table {
    let m = ModelConfig::gpt3_175b();
    let spec = KvCacheSpec::of(&m);
    let mut t = Table::new(
        "Section 3.2: KV-cache capacity pressure (GPT-3 175B, FP16)",
        &["quantity", "value"],
    );
    t.push_row(vec![
        "KV per request at L=4096".into(),
        attacc_model::fmt_gib(spec.bytes_at(4096)),
    ]);
    t.push_row(vec![
        "KV for batch 64".into(),
        attacc_model::fmt_gib(spec.batch_bytes(64, 4096)),
    ]);
    t.push_row(vec![
        "weights".into(),
        attacc_model::fmt_gib(m.weight_bytes()),
    ]);
    let free = 640 * GIB - m.weight_bytes();
    t.push_row(vec![
        "max batch on DGX (640 GB)".into(),
        spec.max_batch(free, 4096).to_string(),
    ]);
    t
}

/// Every table of the evaluation, in paper order. Each driver is timed
/// as its own phase in [`attacc_sim::engine::phase_report`].
#[must_use]
pub fn all_tables(n_requests: u64) -> Vec<Table> {
    use attacc_sim::engine::time_phase;
    let mut out = vec![
        time_phase("table1", table1),
        time_phase("capacity", capacity_table),
        time_phase("fig02", fig02),
        time_phase("fig03", fig03),
    ];
    out.extend(time_phase("fig04", fig04));
    out.push(time_phase("fig04_pim", fig04_pim));
    out.push(time_phase("fig07", fig07));
    out.push(time_phase("fig13", || fig13(n_requests)));
    out.push(time_phase("fig14", fig14));
    out.push(time_phase("fig15", || fig15(n_requests)));
    out.push(time_phase("fig16", || fig16(n_requests)));
    out.push(time_phase("fig17", || fig17(n_requests)));
    out.push(time_phase("area", area_table));
    out.push(time_phase("ablation_gqa", ablation_gqa));
    out.push(time_phase("ablation_batch_pipe", ablation_batch_pipe));
    out.push(time_phase("ablation_bitwise", ablation_bitwise));
    out.push(time_phase("ablation_training", ablation_training));
    out.push(time_phase("ablation_bridge", ablation_bridge));
    out.push(time_phase("ablation_scaling", ablation_scaling));
    out.push(time_phase("validation", validation_table));
    out
}

/// Requests per cluster-simulation cell (kept below [`N_REQUESTS`]: each
/// cell replays a full discrete-event run, not a steady-state formula).
pub const CLUSTER_REQUESTS: u64 = 256;

/// The per-node serving configuration of the cluster experiments: a
/// `DGX+AttAccs` node serving GPT-3 175B, batch capped at 64, KV capacity
/// set to the HBM left after weights.
fn cluster_node_config(model: &ModelConfig) -> SchedulerConfig {
    let spec = KvCacheSpec::of(model);
    let free = 640 * GIB - model.weight_bytes();
    SchedulerConfig::with_capacity(64, free, spec.bytes_per_token)
}

fn cluster_cell(
    model: &ModelConfig,
    n_nodes: usize,
    policy: RouterPolicy,
    workload: &ArrivalWorkload,
) -> attacc_cluster::ClusterReport {
    let execs: Vec<SystemExecutor> =
        (0..n_nodes).map(|_| SystemExecutor::new(System::dgx_attacc_full(), model)).collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
    let cfg = ClusterConfig {
        scheduler: cluster_node_config(model),
        policy,
        interconnect: InterconnectModel::ethernet_400g()
            .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
        slo: SloSpec::chatbot(),
    };
    simulate_cluster(&refs, workload, &cfg)
}

/// Cluster throughput–latency frontier: node count × router policy ×
/// arrival rate, GPT-3 175B on `DGX+AttAccs` nodes behind a 400 GbE
/// front door. Cells are independent and run on the sweep engine.
#[must_use]
pub fn cluster_frontier(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let policies = [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvBytes,
        RouterPolicy::SessionAffinity { spill_backlog: 4 },
    ];
    let nodes = [1usize, 2, 4];
    let rates = [4.0f64, 16.0, 64.0];
    let mut cells: Vec<(usize, RouterPolicy, f64)> = Vec::new();
    for &n_nodes in &nodes {
        for &policy in &policies {
            for &rate in &rates {
                cells.push((n_nodes, policy, rate));
            }
        }
    }
    let reports = SweepRunner::from_env().map(&cells, |&(n_nodes, policy, rate)| {
        let w = ArrivalWorkload::poisson(n_requests, rate, 512, (64, 128), 42);
        cluster_cell(&model, n_nodes, policy, &w)
    });
    let mut t = Table::new(
        format!("Cluster frontier: GPT-3 175B on DGX+AttAccs nodes, {n_requests} requests"),
        &[
            "nodes",
            "policy",
            "rate/s",
            "tokens/s",
            "goodput tok/s",
            "TTFT p50 (ms)",
            "TTFT p99 (ms)",
            "TTFT p99.9 (ms)",
            "TBT p99 (ms)",
            "util %",
        ],
    );
    for (&(n_nodes, policy, rate), r) in cells.iter().zip(&reports) {
        t.push_row(vec![
            n_nodes.to_string(),
            policy.name().into(),
            n(rate),
            n(r.tokens_per_s),
            n(r.goodput.goodput_tokens_per_s),
            n(r.ttft.p50_s * 1e3),
            n(r.ttft.p99_s * 1e3),
            n(r.ttft.p999_s * 1e3),
            n(r.tbt.p99_s * 1e3),
            n(r.mean_utilization() * 100.0),
        ]);
    }
    t
}

/// Load-shape sensitivity: the same 2-node join-shortest-queue cluster
/// under Poisson, bursty and diurnal arrivals of equal mean rate.
#[must_use]
pub fn cluster_load_shapes(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let shapes: Vec<(&str, ArrivalWorkload)> = vec![
        ("poisson", ArrivalWorkload::poisson(n_requests, 16.0, 512, (64, 128), 42)),
        ("bursty", ArrivalWorkload::bursty(n_requests, 16.0, 4.0, 4.0, 0.25, 512, (64, 128), 42)),
        ("diurnal", ArrivalWorkload::diurnal(n_requests, 16.0, 0.8, 8.0, 512, (64, 128), 42)),
    ];
    let reports = SweepRunner::from_env().map(&shapes, |(_, w)| {
        cluster_cell(&model, 2, RouterPolicy::JoinShortestQueue, w)
    });
    let mut t = Table::new(
        format!("Cluster load shapes: 2 nodes, join-shortest-queue, {n_requests} requests"),
        &["shape", "completed", "tokens/s", "TTFT p99 (ms)", "TBT p99 (ms)", "goodput tok/s"],
    );
    for ((name, _), r) in shapes.iter().zip(&reports) {
        t.push_row(vec![
            (*name).into(),
            r.completed.to_string(),
            n(r.tokens_per_s),
            n(r.ttft.p99_s * 1e3),
            n(r.tbt.p99_s * 1e3),
            n(r.goodput.goodput_tokens_per_s),
        ]);
    }
    t
}

/// Sessions in the full-scale `autoscale_sim` run: the 10⁵-session
/// acceptance point of the autoscaling frontier.
pub const AUTOSCALE_SESSIONS: u64 = 100_000;

/// Virtual length of the autoscale trace "day" (s). The mean arrival
/// rate is `sessions / AUTOSCALE_DAY_S`, so every session count replays
/// the same diurnal + flash-crowd shape — only denser.
pub const AUTOSCALE_DAY_S: f64 = 250.0;

/// The diurnal + flash-crowd trace the autoscaling frontier replays:
/// a 120 s-period ±60 % diurnal swing carrying a 3× flash crowd near the
/// first trough-to-peak climb and a 2× echo late in the day.
#[must_use]
pub fn autoscale_trace(sessions: u64) -> ArrivalWorkload {
    TraceSpec {
        sessions,
        mean_rate_per_s: sessions as f64 / AUTOSCALE_DAY_S,
        diurnal_amplitude: 0.6,
        diurnal_period_s: 120.0,
        crowds: vec![
            FlashCrowd { start_s: 60.0, peak: 3.0, ramp_s: 5.0, hold_s: 15.0, decay_s: 10.0 },
            FlashCrowd { start_s: 170.0, peak: 2.0, ramp_s: 10.0, hold_s: 20.0, decay_s: 15.0 },
        ],
        l_in: 512,
        l_out_range: (64, 128),
        seed: 42,
    }
    .generate()
}

/// One named fleet configuration of the autoscaling frontier.
struct FleetCell {
    name: &'static str,
    prefill: Option<PoolConfig>,
    decode: PoolConfig,
    autoscaler: Option<AutoscalerConfig>,
}

/// The autoscaler the frontier cells share: the scaler moves at most one
/// node per pool per tick, so a 0.5 s tick lets a pool climb ~2 nodes/s
/// against the trace's 5 s flash-crowd ramp. Only the signal varies.
fn autoscale_policy(signal: ScaleSignal) -> AutoscalerConfig {
    AutoscalerConfig { interval_s: 0.5, cold_start_s: 2.0, cooldown_s: 1.5, signal }
}

/// The fleet configurations the frontier compares, sized from the trace's
/// mean token demand: `sat` nodes hold the diurnal mean, static fleets
/// provision for the diurnal peak (1.6×), elastic fleets may burst to 2×.
fn autoscale_cells(sessions: u64) -> Vec<FleetCell> {
    // One DGX+AttAccs node sustains ~740 output tokens/s at these
    // lengths (see the cluster frontier); mean l_out is 96.
    let demand_tok_s = sessions as f64 / AUTOSCALE_DAY_S * 96.0;
    let sat = ((demand_tok_s / 740.0).ceil() as usize).max(1);
    let peak = ((sat as f64 * 1.6).ceil() as usize).max(2);
    let burst = (2 * sat).max(3);
    let lo = (sat / 4).max(1);
    // Elastic pools start at the diurnal mean: the scaler's job is to
    // track the swing and the crowds, not to bootstrap a cold fleet.
    let mid = sat;
    // Disaggregated split: a request costs a node ~100 ms of Sum but
    // only ~25 ms of batch-amortized Gen at L_in 512 / mean L_out 96,
    // so the prefill pool carries ~4/5 of the fleet's work.
    let p_static = (peak * 4 / 5).max(1);
    let d_static = (peak * 3 / 10).max(1);
    let p_burst = (2 * p_static).max(2);
    let d_burst = (2 * d_static).max(2);
    // Backlog counts running heads too, so a healthy saturated node
    // reads ~64 (the batch cap): scale out at 96 (≥ 32 truly queued),
    // in below 24. A node drains ~7.7 req/s at mean l_out 96; KV
    // occupancy at full batch is ~0.55 of the post-weights HBM.
    let queue = ScaleSignal::QueueDepth { out_per_node: 96.0, in_per_node: 24.0 };
    let kv = ScaleSignal::KvOccupancy { out_frac: 0.35, in_frac: 0.10 };
    let ewma = ScaleSignal::PredictedLoad {
        alpha: 0.3,
        out_rate_per_node: 9.0,
        in_rate_per_node: 5.5,
    };
    vec![
        FleetCell {
            name: "static-mono",
            prefill: None,
            decode: PoolConfig::fixed(peak),
            autoscaler: None,
        },
        FleetCell {
            name: "auto-mono-queue",
            prefill: None,
            decode: PoolConfig::elastic(lo, mid, burst),
            autoscaler: Some(autoscale_policy(queue)),
        },
        FleetCell {
            name: "auto-mono-kv",
            prefill: None,
            decode: PoolConfig::elastic(lo, mid, burst),
            autoscaler: Some(autoscale_policy(kv)),
        },
        FleetCell {
            name: "auto-mono-ewma",
            prefill: None,
            decode: PoolConfig::elastic(lo, mid, burst),
            autoscaler: Some(autoscale_policy(ewma)),
        },
        FleetCell {
            name: "static-disagg",
            prefill: Some(PoolConfig::fixed(p_static)),
            decode: PoolConfig::fixed(d_static),
            autoscaler: None,
        },
        // The elastic disaggregated fleet floors each pool at its static
        // sizing and only rents burst headroom: a shared queue threshold
        // cannot also govern scale-in across pools whose healthy
        // backlogs differ 60× (decode counts its running batch, prefill
        // drains each Sum in ~100 ms).
        FleetCell {
            name: "auto-disagg-queue",
            prefill: Some(PoolConfig::elastic(p_static, p_static, p_burst)),
            decode: PoolConfig::elastic(d_static, d_static, d_burst),
            autoscaler: Some(autoscale_policy(queue)),
        },
    ]
}

fn fleet_cell(model: &ModelConfig, cell: &FleetCell, workload: &ArrivalWorkload) -> FleetReport {
    let p_max = cell.prefill.map_or(0, |p| p.max_nodes);
    let execs: Vec<SystemExecutor> = (0..p_max + cell.decode.max_nodes)
        .map(|_| SystemExecutor::new(System::dgx_attacc_full(), model))
        .collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
    let cfg = FleetConfig {
        prefill: cell.prefill,
        decode: cell.decode,
        scheduler: cluster_node_config(model),
        policy: RouterPolicy::JoinShortestQueue,
        interconnect: InterconnectModel::ethernet_400g()
            .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
        slo: SloSpec::chatbot(),
        autoscaler: cell.autoscaler,
    };
    simulate_fleet(&refs[..p_max], &refs[p_max..], workload, &cfg)
}

/// Autoscaling frontier: static vs. autoscaled vs. disaggregated fleets
/// replaying the same diurnal + flash-crowd trace, GPT-3 175B on
/// `DGX+AttAccs` nodes. The cost axis is node-seconds: what a static
/// fleet pays to hold the tail, an elastic fleet tries to refund.
#[must_use]
pub fn autoscale_frontier(sessions: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let workload = autoscale_trace(sessions);
    let cells = autoscale_cells(sessions);
    let reports =
        SweepRunner::from_env().map(&cells, |cell| fleet_cell(&model, cell, &workload));
    let mut t = Table::new(
        format!("Autoscaling frontier: GPT-3 175B, diurnal + flash-crowd trace, {sessions} sessions"),
        &[
            "fleet",
            "nodes P/D",
            "completed",
            "tokens/s",
            "goodput tok/s",
            "in-SLO %",
            "TTFT p99.9 (ms)",
            "node-s",
            "peak P",
            "peak D",
            "scale events",
            "KV ships",
        ],
    );
    for (cell, r) in cells.iter().zip(&reports) {
        let pools = match cell.prefill {
            Some(p) => format!("{}-{}/{}-{}", p.min_nodes, p.max_nodes, cell.decode.min_nodes, cell.decode.max_nodes),
            None => format!("-/{}-{}", cell.decode.min_nodes, cell.decode.max_nodes),
        };
        t.push_row(vec![
            cell.name.into(),
            pools,
            r.cluster.completed.to_string(),
            n(r.cluster.tokens_per_s),
            n(r.cluster.goodput.goodput_tokens_per_s),
            n(r.cluster.goodput.requests_in_slo as f64 / sessions as f64 * 100.0),
            n(r.cluster.ttft.p999_s * 1e3),
            n(r.node_seconds),
            r.prefill_peak_nodes.to_string(),
            r.decode_peak_nodes.to_string(),
            r.scale_events.len().to_string(),
            r.kv_ships.to_string(),
        ]);
    }
    t
}

/// Requests per chaos-simulation cell (below [`CLUSTER_REQUESTS`]: every
/// cell replays a full discrete-event run *plus* fault recovery work).
pub const CHAOS_REQUESTS: u64 = 192;

/// Arrival rate of the chaos experiments (req/s across the cluster).
const CHAOS_RATE: f64 = 10.0;

/// Repair time used by the chaos sweeps (s). Deliberately longer than
/// the retry timeout and the TTFT SLO: a request that blindly waits out a
/// repair always misses its SLO, so rescue has to come from the policy.
const CHAOS_MTTR_S: f64 = 3.0;

/// Retry knobs scaled to the chatbot SLO (2 s TTFT): time out at half the
/// SLO so a re-dispatch to a healthy node can still land in budget. The
/// stock `RetryPolicy::interactive` (10 s timeout) is tuned for
/// completion, not for a 2 s TTFT bound.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        timeout_s: 1.2,
        max_retries: 1,
        backoff_base_s: 0.25,
        backoff_cap_s: 1.0,
        jitter_frac: 0.1,
        hedge_after_s: None,
    }
}

/// The resilience ladder the chaos sweeps climb: blind, health-aware
/// routing, + SLO-scaled retries, + hedging and KV-migration recovery
/// (`[off, health, retry+health, full]`).
#[must_use]
pub fn chaos_policies() -> [ResiliencePolicy; 4] {
    let retrying = ResiliencePolicy {
        retry: chaos_retry(),
        health: HealthConfig::aware(),
        recovery: RecoveryMode::Reprefill,
    };
    let full = ResiliencePolicy {
        retry: RetryPolicy { hedge_after_s: Some(1.2), ..chaos_retry() },
        health: HealthConfig::aware(),
        recovery: RecoveryMode::KvMigrate,
    };
    [ResiliencePolicy::off(), ResiliencePolicy::health_aware(), retrying, full]
}

/// Fault-schedule seeds averaged per sweep cell. One schedule draw is
/// timing luck (a single crash just before drain barely hurts; the same
/// crash mid-ramp parks half the fleet), so every cell reports the mean
/// over this small ensemble — the trend, not the draw.
const CHAOS_FAULT_SEEDS: [u64; 4] = [1, 2, 3, 5];

/// Ensemble-mean outcomes of one chaos sweep cell (means over
/// [`CHAOS_FAULT_SEEDS`]; count fields are fractional for that reason).
#[derive(Debug, Clone, Copy)]
pub struct ChaosCellStats {
    /// Mean goodput under failure (tokens/s of SLO-met unique requests).
    pub goodput_tokens_per_s: f64,
    /// Mean unique requests whose earliest first token met the TTFT SLO.
    pub requests_in_slo: f64,
    /// Mean fleet availability in `[0, 1]`.
    pub availability: f64,
    /// Mean retry re-dispatches per run.
    pub retries: f64,
    /// Mean hedged duplicates per run.
    pub hedges: f64,
    /// Mean output tokens destroyed by crashes per run.
    pub lost_tokens: f64,
    /// Mean makespan (s).
    pub makespan_s: f64,
}

/// One chaos sweep cell: the [`cluster_cell`] configuration wrapped in a
/// resilience policy, averaged over the [`CHAOS_FAULT_SEEDS`] ensemble of
/// crash schedules drawn at the given per-node MTBF (a horizon generously
/// covering the run; late faults past the drain are no-ops). Fully
/// deterministic: fixed seeds, fixed accumulation order.
#[must_use]
pub fn chaos_cell(
    model: &ModelConfig,
    n_nodes: usize,
    policy: RouterPolicy,
    resilience: ResiliencePolicy,
    mtbf_s: f64,
    n_requests: u64,
) -> ChaosCellStats {
    let execs: Vec<SystemExecutor> =
        (0..n_nodes).map(|_| SystemExecutor::new(System::dgx_attacc_full(), model)).collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
    let workload = ArrivalWorkload::poisson(n_requests, CHAOS_RATE, 512, (64, 128), 42);
    let horizon_s = 0.75 * n_requests as f64 / CHAOS_RATE;
    let spec = FaultSpec::crashes_only(mtbf_s, CHAOS_MTTR_S);
    let mut acc = ChaosCellStats {
        goodput_tokens_per_s: 0.0,
        requests_in_slo: 0.0,
        availability: 0.0,
        retries: 0.0,
        hedges: 0.0,
        lost_tokens: 0.0,
        makespan_s: 0.0,
    };
    for &fault_seed in &CHAOS_FAULT_SEEDS {
        let cluster = ClusterConfig {
            scheduler: cluster_node_config(model),
            policy,
            interconnect: InterconnectModel::ethernet_400g()
                .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
            slo: SloSpec::chatbot(),
        };
        let faults = FaultSchedule::generate(n_nodes, horizon_s, &spec, fault_seed);
        let cfg = ChaosConfig { cluster, policy: resilience, seed: 7 };
        let r: ChaosReport = simulate_chaos(&refs, &workload, &cfg, &faults);
        acc.goodput_tokens_per_s += r.goodput_under_failure_tokens_per_s;
        acc.requests_in_slo += r.requests_in_slo as f64;
        acc.availability += r.availability;
        acc.retries += r.retries as f64;
        acc.hedges += r.hedges as f64;
        acc.lost_tokens += r.lost_tokens as f64;
        acc.makespan_s += r.cluster.makespan_s;
    }
    let k = CHAOS_FAULT_SEEDS.len() as f64;
    ChaosCellStats {
        goodput_tokens_per_s: acc.goodput_tokens_per_s / k,
        requests_in_slo: acc.requests_in_slo / k,
        availability: acc.availability / k,
        retries: acc.retries / k,
        hedges: acc.hedges / k,
        lost_tokens: acc.lost_tokens / k,
        makespan_s: acc.makespan_s / k,
    }
}

fn chaos_row(n_requests: u64, s: &ChaosCellStats) -> Vec<String> {
    vec![
        n(s.goodput_tokens_per_s),
        format!("{} / {n_requests}", n(s.requests_in_slo)),
        n(s.availability * 100.0),
        format!("{} / {}", n(s.retries), n(s.hedges)),
        n(s.lost_tokens),
        n(s.makespan_s),
    ]
}

/// Goodput-under-failure frontier: per-node crash MTBF × resilience
/// policy on a 4-node join-shortest-queue cluster. With resilience off
/// goodput degrades monotonically as MTBF shrinks; retry + hedging wins
/// most of it back. Cells are independent and run on the sweep engine.
#[must_use]
pub fn chaos_goodput_frontier(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let mtbfs = [f64::INFINITY, 60.0, 20.0, 6.0];
    let policies = chaos_policies();
    let mut cells: Vec<(f64, ResiliencePolicy)> = Vec::new();
    for &mtbf in &mtbfs {
        for &policy in &policies {
            cells.push((mtbf, policy));
        }
    }
    let reports = SweepRunner::from_env().map(&cells, |&(mtbf, policy)| {
        chaos_cell(&model, 4, RouterPolicy::JoinShortestQueue, policy, mtbf, n_requests)
    });
    let mut t = Table::new(
        format!(
            "Chaos goodput frontier: 4 DGX+AttAccs nodes, JSQ, {n_requests} requests, MTTR {CHAOS_MTTR_S} s, mean of {} fault seeds",
            CHAOS_FAULT_SEEDS.len()
        ),
        &[
            "MTBF/node (s)",
            "resilience",
            "goodput tok/s",
            "in SLO",
            "avail %",
            "retries/hedges",
            "lost tok",
            "makespan (s)",
        ],
    );
    for (&(mtbf, policy), r) in cells.iter().zip(&reports) {
        let mut row = vec![
            if mtbf.is_finite() { n(mtbf) } else { "∞".to_string() },
            policy.name(),
        ];
        row.extend(chaos_row(n_requests, r));
        t.push_row(row);
    }
    t
}

/// Router × resilience matrix at a fixed failure rate: which routing
/// policy degrades most gracefully when nodes crash, blind vs. with the
/// full resilience stack.
#[must_use]
pub fn chaos_routing_matrix(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let routers = [
        RouterPolicy::RoundRobin,
        RouterPolicy::JoinShortestQueue,
        RouterPolicy::LeastKvBytes,
        RouterPolicy::SessionAffinity { spill_backlog: 4 },
    ];
    let ladder = chaos_policies();
    let policies = [ladder[0], ladder[3]];
    let mut cells: Vec<(RouterPolicy, ResiliencePolicy)> = Vec::new();
    for &router in &routers {
        for &policy in &policies {
            cells.push((router, policy));
        }
    }
    let reports = SweepRunner::from_env().map(&cells, |&(router, policy)| {
        chaos_cell(&model, 4, router, policy, 20.0, n_requests)
    });
    let mut t = Table::new(
        format!(
            "Chaos routing matrix: 4 nodes, MTBF 20 s, MTTR {CHAOS_MTTR_S} s, {n_requests} requests, mean of {} fault seeds",
            CHAOS_FAULT_SEEDS.len()
        ),
        &[
            "router",
            "resilience",
            "goodput tok/s",
            "in SLO",
            "avail %",
            "retries/hedges",
            "lost tok",
            "makespan (s)",
        ],
    );
    for (&(router, policy), r) in cells.iter().zip(&reports) {
        let mut row = vec![router.name().to_string(), policy.name()];
        row.extend(chaos_row(n_requests, r));
        t.push_row(row);
    }
    t
}

/// Requests per fleet-chaos cell. Matches [`CHAOS_REQUESTS`]: at this
/// depth the four-seed ensemble averages out crash-timing luck, so the
/// frontier's availability *and* goodput columns degrade monotonically
/// as MTBF shrinks — the acceptance claim `chaos_fleet_resilience.rs`
/// pins.
pub const CHAOS_FLEET_REQUESTS: u64 = 192;

/// The per-node crash MTBF axis of the fleet-chaos sweeps (s).
pub const CHAOS_FLEET_MTBFS: [f64; 4] = [f64::INFINITY, 60.0, 20.0, 6.0];

/// The resilience ladder of the fleet-chaos frontier: cold re-prefill
/// recovery only, warm KV re-shipping from the prefill source, and
/// re-shipping plus graceful degradation (admission shedding, brownout,
/// redispatch storm guard).
#[must_use]
pub fn chaos_fleet_configs() -> [(&'static str, RecoveryMode, DegradePolicy); 3] {
    [
        ("reprefill", RecoveryMode::Reprefill, DegradePolicy::off()),
        ("kv-reship", RecoveryMode::KvMigrate, DegradePolicy::off()),
        ("reship+degrade", RecoveryMode::KvMigrate, DegradePolicy::full(12.0)),
    ]
}

/// The fleet every frontier cell runs: two fixed prefill nodes feeding
/// an elastic 2–4-node decode pool behind a queue-depth autoscaler, so
/// crashes interact with replacement provisioning (and its cold starts)
/// exactly the way the docs describe.
fn chaos_fleet_config(model: &ModelConfig) -> FleetConfig {
    FleetConfig {
        prefill: Some(PoolConfig::fixed(2)),
        decode: PoolConfig::elastic(2, 2, 4),
        scheduler: cluster_node_config(model),
        policy: RouterPolicy::JoinShortestQueue,
        interconnect: InterconnectModel::ethernet_400g()
            .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
        slo: SloSpec::chatbot(),
        autoscaler: Some(AutoscalerConfig {
            interval_s: 0.25,
            cold_start_s: 1.0,
            cooldown_s: 0.75,
            signal: ScaleSignal::QueueDepth { out_per_node: 48.0, in_per_node: 8.0 },
        }),
    }
}

/// Ensemble-mean outcomes of one fleet-chaos sweep cell (means over
/// [`CHAOS_FAULT_SEEDS`]; count fields are fractional for that reason).
#[derive(Debug, Clone, Copy)]
pub struct ChaosFleetCellStats {
    /// Mean goodput under failure (tokens/s of SLO-met unique requests).
    pub goodput_tokens_per_s: f64,
    /// Mean unique requests whose earliest first token met the TTFT SLO.
    pub requests_in_slo: f64,
    /// Mean fleet availability in `[0, 1]`.
    pub availability: f64,
    /// Mean crash events per run.
    pub crashes: f64,
    /// Mean arrivals rejected by admission control per run.
    pub shed_requests: f64,
    /// Mean requests answered in brownout (shortened) form per run.
    pub browned_out: f64,
    /// Mean warm KV re-ships of crash-displaced work per run.
    pub recovery_reships: f64,
    /// Mean prefill tokens recomputed after crashes per run.
    pub recomputed_tokens: f64,
    /// Mean billed node-seconds per run.
    pub node_seconds: f64,
    /// Mean total cost per million output tokens under the
    /// [`CostBook`], USD.
    pub usd_per_mtok: f64,
    /// Mean makespan (s).
    pub makespan_s: f64,
}

/// One fleet-chaos sweep cell: the [`chaos_fleet_config`] fleet under a
/// crash schedule at the given per-node MTBF, averaged over the
/// [`CHAOS_FAULT_SEEDS`] ensemble and billed through the paper-default
/// [`CostBook`] as `attacc-bank` nodes. Fully deterministic: fixed
/// seeds, fixed accumulation order.
#[must_use]
pub fn chaos_fleet_cell(
    model: &ModelConfig,
    recovery: RecoveryMode,
    degrade: DegradePolicy,
    mtbf_s: f64,
    n_requests: u64,
) -> ChaosFleetCellStats {
    let fleet = chaos_fleet_config(model);
    let p_max = fleet.prefill.map_or(0, |p| p.max_nodes);
    let n = p_max + fleet.decode.max_nodes;
    let execs: Vec<SystemExecutor> =
        (0..n).map(|_| SystemExecutor::new(System::dgx_attacc_full(), model)).collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
    let workload = ArrivalWorkload::poisson(n_requests, CHAOS_RATE, 512, (64, 128), 42);
    let horizon_s = 0.75 * n_requests as f64 / CHAOS_RATE;
    let spec = FaultSpec::crashes_only(mtbf_s, CHAOS_MTTR_S);
    let cfg = FleetChaosConfig { fleet, recovery, degrade };
    let mix = FleetMix::uniform();
    let book = CostBook::paper_defaults();
    let variants = vec![NodeVariant::AttAccBank; n];
    let mut acc = ChaosFleetCellStats {
        goodput_tokens_per_s: 0.0,
        requests_in_slo: 0.0,
        availability: 0.0,
        crashes: 0.0,
        shed_requests: 0.0,
        browned_out: 0.0,
        recovery_reships: 0.0,
        recomputed_tokens: 0.0,
        node_seconds: 0.0,
        usd_per_mtok: 0.0,
        makespan_s: 0.0,
    };
    for &fault_seed in &CHAOS_FAULT_SEEDS {
        let faults = FaultSchedule::generate(n, horizon_s, &spec, fault_seed);
        let r = simulate_fleet_chaos(&refs[..p_max], &refs[p_max..], &mix, &workload, &cfg, &faults);
        let cost = book.bill(&r.fleet, &variants);
        acc.goodput_tokens_per_s += r.goodput_under_failure_tokens_per_s;
        acc.requests_in_slo += r.requests_in_slo as f64;
        acc.availability += r.availability;
        acc.crashes += r.crashes as f64;
        acc.shed_requests += r.shed_requests as f64;
        acc.browned_out += r.browned_out_requests as f64;
        acc.recovery_reships += r.recovery_reships as f64;
        acc.recomputed_tokens += r.recomputed_tokens as f64;
        acc.node_seconds += r.fleet.node_seconds;
        acc.usd_per_mtok += cost.usd_per_mtok;
        acc.makespan_s += r.fleet.cluster.makespan_s;
    }
    let k = CHAOS_FAULT_SEEDS.len() as f64;
    ChaosFleetCellStats {
        goodput_tokens_per_s: acc.goodput_tokens_per_s / k,
        requests_in_slo: acc.requests_in_slo / k,
        availability: acc.availability / k,
        crashes: acc.crashes / k,
        shed_requests: acc.shed_requests / k,
        browned_out: acc.browned_out / k,
        recovery_reships: acc.recovery_reships / k,
        recomputed_tokens: acc.recomputed_tokens / k,
        node_seconds: acc.node_seconds / k,
        usd_per_mtok: acc.usd_per_mtok / k,
        makespan_s: acc.makespan_s / k,
    }
}

/// Fleet-chaos frontier: per-node crash MTBF × resilience/degradation
/// configuration on the disaggregated autoscaled fleet. Availability and
/// goodput under failure degrade monotonically as MTBF shrinks; warm KV
/// re-shipping and graceful degradation buy the difference back in $ per
/// Mtok. Cells are independent and run on the sweep engine.
#[must_use]
pub fn chaos_fleet_frontier(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let configs = chaos_fleet_configs();
    let mut cells: Vec<(f64, &'static str, RecoveryMode, DegradePolicy)> = Vec::new();
    for &mtbf in &CHAOS_FLEET_MTBFS {
        for &(name, recovery, degrade) in &configs {
            cells.push((mtbf, name, recovery, degrade));
        }
    }
    let reports = SweepRunner::from_env().map(&cells, |&(mtbf, _, recovery, degrade)| {
        chaos_fleet_cell(&model, recovery, degrade, mtbf, n_requests)
    });
    let mut t = Table::new(
        format!(
            "Fleet-chaos frontier: 2P+2–4D DGX+AttAccs, autoscaled, {n_requests} requests, MTTR {CHAOS_MTTR_S} s, mean of {} fault seeds",
            CHAOS_FAULT_SEEDS.len()
        ),
        &[
            "MTBF/node (s)",
            "config",
            "goodput tok/s",
            "in SLO",
            "avail %",
            "crashes",
            "shed/brown",
            "reships",
            "recomputed tok",
            "node-s",
            "$/Mtok",
        ],
    );
    for (&(mtbf, name, _, _), r) in cells.iter().zip(&reports) {
        t.push_row(vec![
            if mtbf.is_finite() { n(mtbf) } else { "∞".to_string() },
            name.to_string(),
            n(r.goodput_tokens_per_s),
            format!("{} / {n_requests}", n(r.requests_in_slo)),
            n(r.availability * 100.0),
            n(r.crashes),
            format!("{} / {}", n(r.shed_requests), n(r.browned_out)),
            n(r.recovery_reships),
            n(r.recomputed_tokens),
            n(r.node_seconds),
            n(r.usd_per_mtok),
        ]);
    }
    t
}

/// N vs. N+1 redundancy under failure: a fixed monolithic fleet sized
/// exactly for the load against the same fleet plus one spare node, at a
/// healthy and a failing MTBF, both billed through the [`CostBook`]. The
/// spare costs real $/Mtok when nothing fails and buys availability and
/// goodput back when nodes crash.
#[must_use]
pub fn chaos_fleet_redundancy(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let sizes = [(3usize, "N=3"), (4usize, "N+1=4")];
    let mtbfs = [f64::INFINITY, 20.0];
    let mut cells: Vec<(usize, &'static str, f64)> = Vec::new();
    for &(nodes, label) in &sizes {
        for &mtbf in &mtbfs {
            cells.push((nodes, label, mtbf));
        }
    }
    let reports = SweepRunner::from_env().map(&cells, |&(nodes, _, mtbf)| {
        let execs: Vec<SystemExecutor> =
            (0..nodes).map(|_| SystemExecutor::new(System::dgx_attacc_full(), &model)).collect();
        let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
        let fleet = FleetConfig {
            prefill: None,
            decode: PoolConfig::fixed(nodes),
            scheduler: cluster_node_config(&model),
            policy: RouterPolicy::JoinShortestQueue,
            interconnect: InterconnectModel::ethernet_400g()
                .with_kv_bytes_per_token(KvCacheSpec::of(&model).bytes_per_token),
            slo: SloSpec::chatbot(),
            autoscaler: None,
        };
        let cfg = FleetChaosConfig {
            fleet,
            recovery: RecoveryMode::KvMigrate,
            degrade: DegradePolicy::off(),
        };
        let workload = ArrivalWorkload::poisson(n_requests, CHAOS_RATE, 512, (64, 128), 42);
        let horizon_s = 0.75 * n_requests as f64 / CHAOS_RATE;
        let spec = FaultSpec::crashes_only(mtbf, CHAOS_MTTR_S);
        let mix = FleetMix::uniform();
        let book = CostBook::paper_defaults();
        let variants = vec![NodeVariant::AttAccBank; nodes];
        let mut sum = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for &fault_seed in &CHAOS_FAULT_SEEDS {
            let faults = FaultSchedule::generate(nodes, horizon_s, &spec, fault_seed);
            let r = simulate_fleet_chaos(&[], &refs, &mix, &workload, &cfg, &faults);
            let cost = book.bill(&r.fleet, &variants);
            sum.0 += r.goodput_under_failure_tokens_per_s;
            sum.1 += r.availability;
            sum.2 += cost.usd_per_mtok;
            sum.3 += cost.total_usd;
        }
        let k = CHAOS_FAULT_SEEDS.len() as f64;
        (sum.0 / k, sum.1 / k, sum.2 / k, sum.3 / k)
    });
    let mut t = Table::new(
        format!(
            "Fleet-chaos N+1 redundancy: fixed DGX+AttAccs fleets, KV-reship recovery, {n_requests} requests, MTTR {CHAOS_MTTR_S} s, mean of {} fault seeds",
            CHAOS_FAULT_SEEDS.len()
        ),
        &["fleet", "MTBF/node (s)", "goodput tok/s", "avail %", "$/Mtok", "total $"],
    );
    for (&(_, label, mtbf), &(goodput, avail, per_mtok, total)) in cells.iter().zip(&reports) {
        t.push_row(vec![
            label.to_string(),
            if mtbf.is_finite() { n(mtbf) } else { "∞".to_string() },
            n(goodput),
            n(avail * 100.0),
            n(per_mtok),
            n(total),
        ]);
    }
    t
}

/// Requests per integrity-simulation cell (below [`CHAOS_REQUESTS`]:
/// each cell replays a full chaos run *and* samples a fate for every
/// generated token).
pub const INTEGRITY_REQUESTS: u64 = 128;

/// The BER axis the integrity sweeps walk (per stored bit per read).
/// Zero anchors the bit-exactness contract; the rest bracket the regime
/// where SEC-DED saturates and DUEs become visible at token scale.
pub const INTEGRITY_BERS: [f64; 4] = [0.0, 1e-9, 1e-8, 1e-7];

/// 128-bit data words each generated token streams through the
/// attention path: the full KV cache of a 2,048-token context at this
/// model's bytes-per-token.
#[must_use]
pub fn integrity_words_per_token(model: &ModelConfig) -> u64 {
    KvCacheSpec::of(model).bytes_per_token * 2048 / 16
}

/// One integrity sweep cell: a 2-node chaos run (mild crash pressure,
/// retrying policy) under the given BER and protection rung. Fully
/// deterministic — fixed seeds everywhere.
#[must_use]
pub fn integrity_cell(
    model: &ModelConfig,
    ber: f64,
    protection: Protection,
    n_requests: u64,
) -> IntegrityReport {
    let n_nodes = 2usize;
    let execs: Vec<SystemExecutor> =
        (0..n_nodes).map(|_| SystemExecutor::new(System::dgx_attacc_full(), model)).collect();
    let refs: Vec<&dyn StageExecutor> = execs.iter().map(|e| e as &dyn StageExecutor).collect();
    let workload = ArrivalWorkload::poisson(n_requests, CHAOS_RATE, 512, (64, 128), 42);
    let horizon_s = 0.75 * n_requests as f64 / CHAOS_RATE;
    let cluster = ClusterConfig {
        scheduler: cluster_node_config(model),
        policy: RouterPolicy::JoinShortestQueue,
        interconnect: InterconnectModel::ethernet_400g()
            .with_kv_bytes_per_token(KvCacheSpec::of(model).bytes_per_token),
        slo: SloSpec::chatbot(),
    };
    let faults =
        FaultSchedule::generate(n_nodes, horizon_s, &FaultSpec::crashes_only(60.0, CHAOS_MTTR_S), 1);
    let cfg = ChaosConfig { cluster, policy: chaos_policies()[2], seed: 7 };
    let spec = CorruptionSpec {
        ber,
        words_per_token: integrity_words_per_token(model),
        protection,
        seed: 13,
    };
    simulate_integrity(&refs, &workload, &cfg, &faults, &spec)
}

/// SDC/DUE/goodput frontier: BER × protection rung on a 2-node cluster.
/// The analytic per-token SDC rate is strictly decreasing down the
/// ladder at every non-zero BER — raw cells deliver every flipped word
/// silently, SEC-DED leaves only odd ≥ 3-flip miscorrections, and
/// ABFT + guards catch those in the dataflow. Sampled counts show the
/// token-scale consequences; cells run on the sweep engine.
#[must_use]
pub fn integrity_frontier(n_requests: u64) -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut cells: Vec<(f64, Protection)> = Vec::new();
    for &ber in &INTEGRITY_BERS {
        for protection in Protection::ladder() {
            cells.push((ber, protection));
        }
    }
    let reports = SweepRunner::from_env()
        .map(&cells, |&(ber, protection)| integrity_cell(&model, ber, protection, n_requests));
    let mut t = Table::new(
        format!(
            "Integrity frontier: 2 DGX+AttAccs nodes, JSQ, retry policy, {n_requests} requests, {} words/token",
            integrity_words_per_token(&model)
        ),
        &[
            "BER",
            "protection",
            "corrected tok",
            "DUE tok (recomp/drop)",
            "SDC tok",
            "SDC rate/tok",
            "DUE rate/tok",
            "corrupt req",
            "goodput tok/s",
        ],
    );
    for (&(ber, _), r) in cells.iter().zip(&reports) {
        t.push_row(vec![
            if ber == 0.0 { "0".into() } else { format!("{ber:.0e}") },
            r.protection.clone(),
            r.corrected_tokens.to_string(),
            format!("{} ({}/{})", r.detected_tokens, r.recomputed_tokens, r.dropped_tokens),
            r.sdc_tokens.to_string(),
            format!("{:.3e}", r.analytic_sdc_rate),
            format!("{:.3e}", r.analytic_due_rate),
            r.corrupted_requests.to_string(),
            n(r.goodput_under_corruption_tokens_per_s),
        ]);
    }
    t
}

/// What SEC-DED costs at the command engine: plain vs protected streams
/// of the same payload through one HBM3 stack. Time inflates by the
/// code rate (136/128), energy additionally pays the in-stack ECC
/// logic; the IO/PIM segments are untouched.
#[must_use]
pub fn ecc_overhead_table() -> Table {
    use attacc_hbm::engine::simulate_stream;
    use attacc_hbm::integrity::EccConfig;
    use attacc_hbm::{HbmConfig, StreamSpec};
    let hbm = HbmConfig::hbm3_8hi();
    let code = EccConfig::hbm3();
    let mut protected_cfg = hbm.clone();
    protected_cfg.energy = code.energy_model(&hbm.energy);
    let mut t = Table::new(
        format!(
            "On-die ECC overhead: HBM3 8-Hi, ({},{}) SEC-DED, code rate {:.4}",
            code.word_bits(),
            code.data_bits,
            code.code_rate()
        ),
        &["payload (MiB)", "plain (ns)", "ECC (ns)", "time ×", "plain (nJ)", "ECC (nJ)", "energy ×"],
    );
    for mib in [1u64, 8, 64] {
        let payload = mib << 20;
        let plain = simulate_stream(
            &hbm,
            &StreamSpec::uniform(&hbm.geometry, payload, hbm.power.max_active_banks),
        );
        let prot = simulate_stream(
            &protected_cfg,
            &code.protected_stream(&hbm.geometry, payload, hbm.power.max_active_banks),
        );
        t.push_row(vec![
            mib.to_string(),
            n(plain.elapsed_ps as f64 / 1e3),
            n(prot.elapsed_ps as f64 / 1e3),
            format!("{:.4}", prot.elapsed_ps as f64 / plain.elapsed_ps as f64),
            n(plain.energy.total_pj() / 1e3),
            n(prot.energy.total_pj() / 1e3),
            format!("{:.4}", prot.energy.total_pj() / plain.energy.total_pj()),
        ]);
    }
    t
}

/// Decode steps per trace-driven workload (one barrier-delimited
/// generated token per step).
pub const TRACE_STEPS: u64 = 16;

/// Compiles one GPT-3 175B decode workload to an instruction trace and
/// replays it on the command engine. Returns (instructions, trace text
/// bytes, attribution report).
#[must_use]
pub fn trace_run(batch: usize, prompt_l: u64, policy: KvPolicy) -> (usize, u64, TraceReport) {
    let model = ModelConfig::gpt3_175b();
    let sched = DecodeSchedule::uniform(batch, prompt_l, TRACE_STEPS, policy, TracePayload::Timing);
    let trace = compile(&model, &sched);
    let text_bytes = trace.to_text().len() as u64;
    let report = execute_timing(&TimingConfig::paper(), &trace)
        .expect("compiled traces are well-formed by construction");
    (trace.len(), text_bytes, report)
}

/// Trace-driven paper workloads: the §7 decode schedules lowered to ISA
/// traces and replayed on the HBM command engine, full KV residency.
#[must_use]
pub fn trace_paper_table() -> Table {
    let mut cells: Vec<(usize, u64)> = Vec::new();
    for &prompt_l in &[512u64, 2048] {
        for &batch in &[1usize, 8, 64] {
            cells.push((batch, prompt_l));
        }
    }
    let runs = SweepRunner::from_env()
        .map(&cells, |&(batch, prompt_l)| trace_run(batch, prompt_l, KvPolicy::Full));
    let mut t = Table::new(
        format!("Trace-driven paper workloads: GPT-3 175B, {TRACE_STEPS} decode steps, full KV"),
        &[
            "batch",
            "Lin",
            "insts",
            "trace KiB",
            "heads",
            "attn (ms)",
            "ingest (ms)",
            "energy (J)",
            "MAC cmds",
        ],
    );
    for (&(batch, prompt_l), (insts, bytes, r)) in cells.iter().zip(&runs) {
        t.push_row(vec![
            batch.to_string(),
            prompt_l.to_string(),
            insts.to_string(),
            n(*bytes as f64 / 1024.0),
            r.heads_run.to_string(),
            n(r.attention_s * 1e3),
            n(r.host_s * 1e3),
            n(r.energy_j),
            r.mac_commands.to_string(),
        ]);
    }
    t
}

/// New attention workloads expressed purely as traces — no simulator
/// changes: sliding-window attention and paged (blocked) KV with an
/// attention sink, against the full-residency baseline.
#[must_use]
pub fn trace_workloads_table() -> Table {
    let cells: [(&str, KvPolicy); 3] = [
        ("full", KvPolicy::Full),
        ("window-256", KvPolicy::SlidingWindow { window: 256 }),
        ("paged-256x2+sink", KvPolicy::Paged { tokens_per_page: 256, recent_pages: 2 }),
    ];
    let runs =
        SweepRunner::from_env().map(&cells, |&(_, policy)| trace_run(8, 2048, policy));
    let base_attn = runs[0].2.attention_s;
    let mut t = Table::new(
        format!("Trace workloads: GPT-3 175B, batch 8, Lin=2048, {TRACE_STEPS} decode steps"),
        &[
            "workload",
            "insts",
            "heads",
            "attn (ms)",
            "vs full",
            "energy (J)",
            "ingest (MiB)",
            "barriers",
        ],
    );
    for ((name, _), (insts, _, r)) in cells.iter().zip(&runs) {
        t.push_row(vec![
            (*name).into(),
            insts.to_string(),
            r.heads_run.to_string(),
            n(r.attention_s * 1e3),
            n(r.attention_s / base_attn),
            n(r.energy_j),
            n(r.host_bytes as f64 / (1u64 << 20) as f64),
            r.barriers.to_string(),
        ]);
    }
    t
}

/// Per-instruction attribution of the paged workload: where a trace
/// replay spends its time and energy, by opcode.
#[must_use]
pub fn trace_opcode_table() -> Table {
    let (_, _, r) = trace_run(8, 2048, KvPolicy::Paged { tokens_per_page: 256, recent_pages: 2 });
    let mut t = Table::new(
        "Trace attribution by opcode: paged-256x2+sink, batch 8, Lin=2048",
        &["opcode", "count", "time (ms)", "energy (J)"],
    );
    for (opcode, c) in &r.per_opcode {
        t.push_row(vec![
            (*opcode).into(),
            c.count.to_string(),
            n(c.time_s * 1e3),
            n(c.energy_j),
        ]);
    }
    t
}

/// INT8 helper used by docs to show the quantized model family exists.
#[must_use]
pub fn int8_gpt3() -> ModelConfig {
    ModelConfig::gpt3_175b().with_dtype(DataType::Int8)
}

// ---------------------------------------------------------------------
// Provisioning: heterogeneous-fleet TCO search (attacc-provision)
// ---------------------------------------------------------------------

/// The golden provisioning grid: every mix of up to 4 `dgx-base`, 3 of
/// each AttAcc placement, and 3 CPU-offload nodes, at most 6 nodes
/// total. Shared by the `provision` bin, the golden table and the
/// search-equivalence tests so they all talk about the same design
/// space.
#[must_use]
pub fn provision_specs() -> Vec<FleetSpec> {
    enumerate_specs([4, 3, 3, 4, 3], 6)
}

/// The golden provisioning traffic point: `users` chatbot sessions at a
/// fixed arrival rate and shape, seed 42.
#[must_use]
pub fn provision_traffic(users: u64) -> TrafficSpec {
    TrafficSpec {
        users,
        rate_per_s: 6.0,
        l_in: 512,
        l_out: (64, 128),
        seed: 42,
    }
}

/// The golden search configuration: train on every 40th cell plus the
/// homogeneous corners, verify the surrogate's top 3% across three
/// refit rounds — ≥90% of the grid is never exactly simulated.
#[must_use]
pub fn provision_search_config() -> SearchConfig {
    SearchConfig::default()
}

/// Runs the surrogate-pruned cheapest-fleet search on the golden grid.
#[must_use]
pub fn provision_outcome(users: u64) -> SearchOutcome {
    let model = ModelConfig::gpt3_175b();
    run_search(
        &model,
        &provision_specs(),
        &provision_traffic(users),
        SloSpec::chatbot(),
        &CostBook::paper_defaults(),
        &provision_search_config(),
    )
}

/// Cheapest-fleet table: the surrogate-pruned search over the golden
/// grid, its verified shortlist, and the surrogate's own error. The
/// "cheapest fleet for N users at SLO X" answer is the `best` row.
#[must_use]
pub fn provision_frontier(users: u64) -> Table {
    let outcome = provision_outcome(users);
    let mut t = Table::new(
        format!(
            "Cheapest fleet: GPT-3 175B, {users} sessions at 6 req/s, chatbot SLO \
             (grid {}, exact sims {}, pruned {:.1}%, surrogate MAE {:.2} $/Mtok)",
            outcome.grid_size,
            outcome.trained + outcome.verified,
            outcome.pruned_frac * 100.0,
            outcome.surrogate_mae_usd_per_mtok,
        ),
        &[
            "rank",
            "fleet",
            "pred $/Mtok",
            "exact $/Mtok",
            "TTFT p99.9 (ms)",
            "feasible",
        ],
    );
    for (rank, p) in outcome.picks.iter().take(8).enumerate() {
        t.push_row(vec![
            (rank + 1).to_string(),
            p.exact.spec.label(),
            n(p.predicted_usd_per_mtok),
            n(p.exact.cost.usd_per_mtok),
            n(p.exact.report.cluster.ttft.p999_s * 1e3),
            if p.exact.feasible { "yes".into() } else { "no".into() },
        ]);
    }
    let best_label = outcome
        .best
        .as_ref()
        .map_or("none feasible".to_string(), |(_, r)| {
            format!("{} at {} $/Mtok", r.spec.label(), n(r.cost.usd_per_mtok))
        });
    t.push_row(vec![
        "best".into(),
        best_label,
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Per-variant cost-book table: the dollars-and-watts ground the search
/// stands on, derived from the power/area tables.
#[must_use]
pub fn provision_cost_book_table() -> Table {
    let book = CostBook::paper_defaults();
    let mut t = Table::new(
        "CostBook: per-variant CapEx and wattage (derived from the power/area tables)",
        &["variant", "CapEx ($)", "idle (W)", "peak (W)"],
    );
    for v in NodeVariant::ALL {
        let c = book.node(v);
        t.push_row(vec![
            v.name().into(),
            n(c.capex_usd),
            n(c.idle_w),
            n(c.peak_w),
        ]);
    }
    t
}

/// The original stacks-vs-throughput provisioning frontier (kept from
/// the pre-TCO `provision` bin).
#[must_use]
pub fn provision_stacks_table() -> Table {
    let model = ModelConfig::gpt3_175b();
    let mut t = Table::new(
        "Provisioning frontier: AttAcc stacks vs throughput (GPT-3 175B, 50 ms SLO, Lin/Lout = 2048)",
        &["stacks", "batch", "tokens/s", "Pareto"],
    );
    for p in attacc_sim::provision::provision_sweep(&model, 2048, 2048, 0.050, &[8, 16, 24, 32, 40, 56, 80]) {
        t.push_row(vec![
            p.stacks.to_string(),
            p.batch.to_string(),
            n(p.tokens_per_s),
            if p.efficient { "*".into() } else { String::new() },
        ]);
    }
    t
}

/// Sessions per provisioning cell in the golden grid (small enough for
/// CI to exhaustively re-verify, large enough to exercise queueing).
pub const PROVISION_USERS: u64 = 48;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_renders() {
        for t in all_tables(200) {
            let s = t.to_string();
            assert!(s.len() > 40, "table {} looks empty", t.title);
            assert!(!t.rows.is_empty(), "table {} has no rows", t.title);
        }
    }

    #[test]
    fn fig13_base_rows_are_normalized_to_one() {
        let t = fig13(100);
        for row in t.rows.iter().filter(|r| r[3] == "DGX_Base") {
            assert_eq!(row[6], "1.00");
        }
    }

    #[test]
    fn fig15_savings_positive_for_pim() {
        let t = fig15(100);
        for row in t
            .rows
            .iter()
            .filter(|r| r[3] == "DGX+AttAccs +HL pipe +FF co-proc")
        {
            let saved: f64 = row[6].parse().unwrap();
            assert!(saved > 0.0, "row {row:?}");
        }
    }

    #[test]
    fn int8_model_is_half_size() {
        assert_eq!(
            int8_gpt3().weight_bytes() * 2,
            ModelConfig::gpt3_175b().weight_bytes()
        );
    }
}
