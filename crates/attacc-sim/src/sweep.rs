//! Parameter-sweep utilities and the speedup heat map.

use crate::experiment::{analytic_serve, max_feasible_batch};
use crate::report::Table;
use crate::{SweepRunner, System, SystemExecutor};
use attacc_model::ModelConfig;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One cell of the (L_in, L_out) speedup sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SpeedupCell {
    /// Prompt length.
    pub l_in: u64,
    /// Output length.
    pub l_out: u64,
    /// Full `DGX+AttAccs` speedup over `DGX_Base`.
    pub speedup: f64,
}

/// Sweeps the full `DGX+AttAccs` speedup over `DGX_Base` across a grid of
/// sequence shapes — the companion of Fig. 2's heat map showing *where*
/// the PIM platform pays off. Grid cells are independent and run on the
/// [`SweepRunner`]; output order matches the serial nested loops exactly.
#[must_use]
pub fn speedup_grid(model: &ModelConfig, lens: &[u64], n_requests: u64) -> Vec<SpeedupCell> {
    let base_sys = System::dgx_base();
    let pim_sys = System::dgx_attacc_full();
    let cells: Vec<(u64, u64)> = lens
        .iter()
        .flat_map(|&l_in| lens.iter().map(move |&l_out| (l_in, l_out)))
        .collect();
    SweepRunner::from_env().map(&cells, |&(l_in, l_out)| {
        let time = |sys: &System| {
            let b = max_feasible_batch(sys, model, l_in, l_out, None).max(1);
            analytic_serve(&SystemExecutor::new(sys.clone(), model), l_in, l_out, n_requests, b).0
        };
        SpeedupCell {
            l_in,
            l_out,
            speedup: time(&base_sys) / time(&pim_sys),
        }
    })
}

/// Renders a grid of cells as a heat-map-style table (rows = L_out
/// descending, columns = L_in ascending, like Fig. 2).
#[must_use]
pub fn grid_table(title: &str, lens: &[u64], cells: &[SpeedupCell]) -> Table {
    let mut headers: Vec<String> = vec!["Lout \\ Lin".into()];
    headers.extend(lens.iter().map(ToString::to_string));
    let mut t = Table::new(title, &headers.iter().map(String::as_str).collect::<Vec<_>>());
    for &l_out in lens.iter().rev() {
        let mut row = vec![l_out.to_string()];
        for &l_in in lens {
            let cell = cells
                .iter()
                .find(|c| c.l_in == l_in && c.l_out == l_out)
                .map_or(0.0, |c| c.speedup);
            row.push(format!("{cell:.2}"));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_speedup_grows_toward_long_sequences() {
        let m = ModelConfig::gpt3_175b();
        let lens = [256u64, 1024, 2048];
        let cells = speedup_grid(&m, &lens, 200);
        assert_eq!(cells.len(), 9);
        let at = |li, lo| {
            cells
                .iter()
                .find(|c| c.l_in == li && c.l_out == lo)
                .unwrap()
                .speedup
        };
        assert!(at(2048, 2048) > at(256, 256));
        for c in &cells {
            assert!(c.speedup >= 1.0, "({}, {}): {}", c.l_in, c.l_out, c.speedup);
        }
    }

    #[test]
    fn grid_table_has_full_shape() {
        let m = ModelConfig::gpt3_175b();
        let lens = [256u64, 1024];
        let cells = speedup_grid(&m, &lens, 100);
        let t = grid_table("grid", &lens, &cells);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].len(), 3);
        assert!(t.to_string().contains("1024"));
    }
}
