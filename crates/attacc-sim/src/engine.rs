//! The sweep engine: parallel experiment execution plus a memoized
//! timing cache.
//!
//! Every figure driver in this workspace evaluates a grid of independent
//! design-space cells — (model, system, batch, sequence shape) tuples —
//! and each cell bottoms out in the same two pure timing queries
//! ([`crate::SystemExecutor::gen_stage_detail`] and the Sum-stage cost).
//! This module supplies the two pieces of shared machinery:
//!
//! * [`SweepRunner`] shards a slice of independent cells across scoped
//!   worker threads and merges results **by index**, so the output is
//!   bit-identical to a serial run regardless of thread count or
//!   scheduling order.
//! * [`TimingCache`] memoizes timing-query results keyed by the exact
//!   (system, model, query) triple, so overlapping sweeps (e.g. the same
//!   `DGX_Base` baseline re-timed by every figure) are computed once.
//!
//! Thread count resolves as: [`set_threads`] override (the `--serial`
//! flag) → `ATTACC_THREADS` → `std::thread::available_parallelism()`.
//! The cache can be disabled with `ATTACC_CACHE=0`.

use crate::exec::{AttAccGenParts, StageBreakdown};
use attacc_model::ModelConfig;
use attacc_serving::StageCost;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;
use std::time::Instant;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces every subsequently created [`SweepRunner::from_env`] to use
/// `threads` workers (`1` = serial). Used by the `--serial` escape hatch
/// and the determinism tests.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// Process-wide fast-path override: 0 = environment default, 1 = forced
/// off, 2 = forced on.
static FASTPATH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the analytic Gen-stage fast path on or off (`None` restores the
/// `ATTACC_FASTPATH` environment default). The equivalence tests flip this
/// to prove fast-path and exact-engine reports are byte-identical.
pub fn set_fastpath(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FASTPATH_OVERRIDE.store(v, Ordering::SeqCst);
}

/// Whether the analytic Gen-stage fast path is enabled right now:
/// [`set_fastpath`] override → `ATTACC_FASTPATH` (`0` disables) → on.
#[must_use]
pub fn fastpath_enabled() -> bool {
    match FASTPATH_OVERRIDE.load(Ordering::SeqCst) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| {
                !std::env::var("ATTACC_FASTPATH").is_ok_and(|v| v.trim() == "0")
            })
        }
    }
}

/// The thread count [`SweepRunner::from_env`] resolves to right now.
#[must_use]
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("ATTACC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Executes independent design-space cells on a pool of scoped workers.
///
/// Results are merged by input index, so `map` output is byte-identical
/// to the serial `items.iter().map(f).collect()` for any thread count.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner with the environment-resolved thread count.
    #[must_use]
    pub fn from_env() -> SweepRunner {
        SweepRunner { threads: configured_threads() }
    }

    /// A single-threaded runner.
    #[must_use]
    pub fn serial() -> SweepRunner {
        SweepRunner { threads: 1 }
    }

    /// A runner with exactly `threads` workers (at least one).
    #[must_use]
    pub fn with_threads(threads: usize) -> SweepRunner {
        SweepRunner { threads: threads.max(1) }
    }

    /// The worker count this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, possibly in parallel, preserving input
    /// order in the output.
    pub fn map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len());
        let per_worker: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= items.len() {
                                break;
                            }
                            out.push((idx, f(&items[idx])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (idx, r) in per_worker.into_iter().flatten() {
            debug_assert!(slots[idx].is_none(), "index {idx} computed twice");
            slots[idx] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// [`SweepRunner::map`] over an owned item list.
    pub fn map_vec<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        self.map(&items, f)
    }
}

// ---------------------------------------------------------------------
// Per-phase wall-time accounting
// ---------------------------------------------------------------------

fn phase_registry() -> &'static Mutex<Vec<(String, f64)>> {
    static PHASES: OnceLock<Mutex<Vec<(String, f64)>>> = OnceLock::new();
    PHASES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Runs `f`, accumulating its wall-clock time under `name` in the
/// process-wide phase report (repeated names accumulate).
pub fn time_phase<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    let elapsed = start.elapsed().as_secs_f64();
    let mut phases = phase_registry().lock().expect("phase registry lock");
    if let Some(entry) = phases.iter_mut().find(|(n, _)| n == name) {
        entry.1 += elapsed;
    } else {
        phases.push((name.to_string(), elapsed));
    }
    result
}

/// Accumulated `(phase, seconds)` pairs in first-recorded order.
#[must_use]
pub fn phase_report() -> Vec<(String, f64)> {
    phase_registry().lock().expect("phase registry lock").clone()
}

/// Clears the phase report (tests and long-lived drivers).
pub fn reset_phase_report() {
    phase_registry().lock().expect("phase registry lock").clear();
}

// ---------------------------------------------------------------------
// Timing cache
// ---------------------------------------------------------------------

/// A memoizable timing query against one (system, model) pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TimingQuery {
    /// One Gen iteration over `(count, context)` groups.
    Gen(Vec<(u64, u64)>),
    /// One Sum (prefill) stage.
    Sum {
        /// Requests summarized together.
        batch: u64,
        /// Prompt length.
        l_in: u64,
    },
    /// The rows-only op-graph aggregates of one `DGX+AttAccs` Gen
    /// iteration (see [`AttAccGenParts`]); the attention term is computed
    /// per `(count, context)` group at combine time, so the whole decode
    /// iteration resolves through this single small-key probe.
    GenParts {
        /// Total decode rows (Σ group counts).
        rows: u64,
    },
}

/// A memoized timing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingValue {
    /// Result of a [`TimingQuery::Gen`] query.
    Gen(StageBreakdown),
    /// Result of a [`TimingQuery::Sum`] query.
    Sum(StageCost),
    /// Result of a [`TimingQuery::GenParts`] query.
    Parts(AttAccGenParts),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    system: u32,
    model: u32,
    query: TimingQuery,
}

/// Cache hit/miss counters at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all queries (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const CACHE_SHARDS: usize = 16;

/// A sharded memoization table for the pure per-stage timing queries.
///
/// Keys are `(interned system, interned model, query)` triples — see
/// [`intern_system`] / [`intern_model`] — so equal configurations share
/// entries across executors while distinct ones can never collide.
/// Values are the exact `StageBreakdown` / `StageCost` the uncached path
/// returns, making warm results bit-identical to cold ones.
pub struct TimingCache {
    shards: Vec<Mutex<HashMap<CacheKey, TimingValue>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
    /// Distinguishes cache instances in the thread-local [`GenParts`]
    /// memo so a stale entry from another cache can never be returned.
    ///
    /// [`GenParts`]: TimingQuery::GenParts
    id: u64,
    /// Bumped by [`TimingCache::clear`]; the thread-local memo records
    /// the generation it was filled at and misses when it changes.
    generation: AtomicU64,
}

/// One thread-local [`TimingQuery::GenParts`] memo entry:
/// `(cache id, cache generation, system, model, rows, parts)`.
type GenPartsMemoEntry = (u64, u64, u32, u32, u64, AttAccGenParts);

thread_local! {
    /// Last [`TimingQuery::GenParts`] probe per thread. Steady-state
    /// decode probes the same key for every node round in an iteration,
    /// so this answers most queries without touching a shard lock.
    /// Purely an alias for the shard entry — hits count toward the
    /// shared stats and values are the stored ones, so results (and the
    /// report tables derived from them) are bit-identical with or without
    /// the memo.
    static GEN_PARTS_MEMO: std::cell::Cell<Option<GenPartsMemoEntry>> =
        const { std::cell::Cell::new(None) };
}

impl std::fmt::Debug for TimingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingCache")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl TimingCache {
    /// An empty cache. `enabled = false` makes every query compute.
    #[must_use]
    pub fn new(enabled: bool) -> TimingCache {
        static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);
        TimingCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled,
            id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            generation: AtomicU64::new(0),
        }
    }

    /// The process-wide cache every [`crate::SystemExecutor`] consults.
    /// Enabled unless the process started with `ATTACC_CACHE=0`.
    #[must_use]
    pub fn global() -> &'static TimingCache {
        static GLOBAL: OnceLock<TimingCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let disabled = std::env::var("ATTACC_CACHE").is_ok_and(|v| v.trim() == "0");
            TimingCache::new(!disabled)
        })
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, TimingValue>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn lookup(&self, key: &CacheKey) -> Option<TimingValue> {
        let found = self.shard_of(key).lock().expect("cache shard lock").get(key).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn store(&self, key: CacheKey, value: TimingValue) {
        self.shard_of(&key).lock().expect("cache shard lock").insert(key, value);
    }

    /// The memoized Gen-stage breakdown, computing on miss. The compute
    /// closure runs outside any shard lock; concurrent misses of the same
    /// key may compute redundantly but always store the same pure value.
    pub fn gen_breakdown(
        &self,
        system: u32,
        model: u32,
        groups: &[(u64, u64)],
        compute: impl FnOnce() -> StageBreakdown,
    ) -> StageBreakdown {
        if !self.enabled {
            return compute();
        }
        let key = CacheKey { system, model, query: TimingQuery::Gen(groups.to_vec()) };
        if let Some(TimingValue::Gen(b)) = self.lookup(&key) {
            return b;
        }
        let value = compute();
        self.store(key, TimingValue::Gen(value));
        value
    }

    /// The memoized rows-keyed Gen-iteration aggregates, computing on
    /// miss. Unlike [`TimingCache::gen_breakdown`] the key is a single
    /// `u64`, so no per-probe allocation and one entry covers every
    /// context mix with the same row total.
    pub fn gen_parts(
        &self,
        system: u32,
        model: u32,
        rows: u64,
        compute: impl FnOnce() -> AttAccGenParts,
    ) -> AttAccGenParts {
        if !self.enabled {
            return compute();
        }
        let generation = self.generation.load(Ordering::Relaxed);
        if let Some((id, gen, sys, mdl, r, p)) = GEN_PARTS_MEMO.get() {
            if id == self.id && gen == generation && sys == system && mdl == model && r == rows {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return p;
            }
        }
        let key = CacheKey { system, model, query: TimingQuery::GenParts { rows } };
        let value = if let Some(TimingValue::Parts(p)) = self.lookup(&key) {
            p
        } else {
            let value = compute();
            self.store(key, TimingValue::Parts(value));
            value
        };
        GEN_PARTS_MEMO.set(Some((self.id, generation, system, model, rows, value)));
        value
    }

    /// Whether this cache memoizes at all (`ATTACC_CACHE=0` disables the
    /// global one).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The memoized Sum-stage cost, computing on miss.
    pub fn sum_cost(
        &self,
        system: u32,
        model: u32,
        batch: u64,
        l_in: u64,
        compute: impl FnOnce() -> StageCost,
    ) -> StageCost {
        if !self.enabled {
            return compute();
        }
        let key = CacheKey { system, model, query: TimingQuery::Sum { batch, l_in } };
        if let Some(TimingValue::Sum(c)) = self.lookup(&key) {
            return c;
        }
        let value = compute();
        self.store(key, TimingValue::Sum(value));
        value
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard lock").len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry (counters are kept; see
    /// [`TimingCache::reset_stats`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock").clear();
        }
        // Invalidate every thread's GenParts memo: each records the
        // generation it was filled at and rechecks it on use.
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Hit/miss counters since construction or the last reset.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Interners
// ---------------------------------------------------------------------

/// Interns a system's exact `Debug` representation to a compact id.
/// Equality is textual, so two ids are equal iff every field (including
/// every float, printed exactly) matches — a conservative key that can
/// never alias distinct configurations.
#[must_use]
pub fn intern_system(debug_repr: &str) -> u32 {
    static IDS: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();
    let mut ids = IDS.get_or_init(|| Mutex::new(HashMap::new())).lock().expect("interner lock");
    let next = u32::try_from(ids.len()).expect("fewer than 2^32 distinct systems");
    *ids.entry(debug_repr.to_string()).or_insert(next)
}

/// Interns a model configuration to a compact id (exact field equality).
#[must_use]
pub fn intern_model(model: &ModelConfig) -> u32 {
    static IDS: OnceLock<Mutex<HashMap<ModelConfig, u32>>> = OnceLock::new();
    let mut ids = IDS.get_or_init(|| Mutex::new(HashMap::new())).lock().expect("interner lock");
    let next = u32::try_from(ids.len()).expect("fewer than 2^32 distinct models");
    *ids.entry(model.clone()).or_insert(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_engine_types_are_send_sync() {
        assert_send_sync::<TimingCache>();
        assert_send_sync::<SweepRunner>();
        assert_send_sync::<crate::SystemExecutor>();
        assert_send_sync::<crate::System>();
        assert_send_sync::<StageBreakdown>();
        assert_send_sync::<StageCost>();
    }

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial = SweepRunner::serial().map(&items, |&x| x * x + 1);
        for threads in [2, 3, 8, 64] {
            let par = SweepRunner::with_threads(threads).map(&items, |&x| x * x + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let r = SweepRunner::with_threads(4);
        assert_eq!(r.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(r.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn cache_hit_returns_stored_value_and_counts() {
        let cache = TimingCache::new(true);
        let groups = [(4u64, 128u64)];
        let mut computes = 0u32;
        let mut run = |v: f64| {
            cache.gen_breakdown(1, 2, &groups, || {
                computes += 1;
                StageBreakdown { total_s: v, ..StageBreakdown::default() }
            })
        };
        let first = run(1.5);
        // The second closure would return 99.0, but the hit must return
        // the memoized 1.5 and never run the closure.
        let second = run(99.0);
        assert_eq!(computes, 1);
        assert_eq!(first.total_s, 1.5);
        assert_eq!(second, first);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = TimingCache::new(true);
        let a = cache.sum_cost(0, 0, 8, 128, || StageCost { latency_s: 1.0, energy_j: 0.0 });
        let b = cache.sum_cost(0, 0, 8, 256, || StageCost { latency_s: 2.0, energy_j: 0.0 });
        let c = cache.sum_cost(1, 0, 8, 128, || StageCost { latency_s: 3.0, energy_j: 0.0 });
        assert_eq!((a.latency_s, b.latency_s, c.latency_s), (1.0, 2.0, 3.0));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = TimingCache::new(false);
        let mut computes = 0u32;
        for _ in 0..3 {
            cache.gen_breakdown(0, 0, &[(1, 1)], || {
                computes += 1;
                StageBreakdown::default()
            });
        }
        assert_eq!(computes, 3);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn clear_empties_but_keeps_functioning() {
        let cache = TimingCache::new(true);
        cache.sum_cost(0, 0, 1, 1, StageCost::default);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        let v = cache.sum_cost(0, 0, 1, 1, || StageCost { latency_s: 4.0, energy_j: 0.0 });
        assert_eq!(v.latency_s, 4.0);
    }

    #[test]
    fn interners_are_stable_and_injective() {
        let a = intern_system("sys-a");
        let b = intern_system("sys-b");
        assert_ne!(a, b);
        assert_eq!(intern_system("sys-a"), a);
        let m1 = ModelConfig::gpt3_175b();
        let mut m2 = m1.clone();
        m2.n_decoder += 1;
        assert_ne!(intern_model(&m1), intern_model(&m2));
        assert_eq!(intern_model(&m1), intern_model(&m1.clone()));
    }

    #[test]
    fn phase_timer_accumulates_by_name() {
        reset_phase_report();
        let x = time_phase("unit-phase", || 41) + 1;
        time_phase("unit-phase", || ());
        assert_eq!(x, 42);
        let report = phase_report();
        let entry = report.iter().find(|(n, _)| n == "unit-phase").expect("recorded");
        assert!(entry.1 >= 0.0);
        assert_eq!(report.iter().filter(|(n, _)| n == "unit-phase").count(), 1);
    }
}
