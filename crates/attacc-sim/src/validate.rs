//! Simulator validation (§7.1).
//!
//! The paper validates its simulator against a real NVIDIA DGX A100
//! running OPT-66B (an open model that behaves like the closed GPT-3).
//! Lacking the testbed, we validate our roofline the same way the paper's
//! readers can: against published OPT-66B serving numbers on 8×A100
//! (FasterTransformer-class stacks report ~20–25 ms per output token at
//! small batch). A pure roofline bound (weights / bandwidth) gives
//! ~8–11 ms; with our efficiency factors the model lands within ~2× of the
//! measured systems, which is the fidelity class the paper's trend
//! arguments need (they compare systems against each other, not against
//! wall clocks).

use crate::{System, SystemExecutor};
use attacc_model::ModelConfig;
use attacc_serving::StageExecutor;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Published anchor: OPT-66B per-token latency on a real 8×A100 box at
/// small batch (seconds).
pub const OPT66B_MEASURED_TOKEN_LATENCY_S: f64 = 0.022;

/// A real DGX A100 (HBM2e): 16 TB/s instead of the paper's HBM3 26.6 TB/s.
#[must_use]
pub fn real_dgx_a100() -> System {
    let mut s = System::dgx_base();
    s.gpu.device.mem_bw = 16.0e12;
    s.gpu.device.name = "DGX A100 (HBM2e)".into();
    s
}

/// Result of the validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ValidationReport {
    /// Modeled per-token latency (s).
    pub modeled_s: f64,
    /// Published measurement (s).
    pub measured_s: f64,
    /// modeled / measured.
    pub ratio: f64,
}

/// Runs the OPT-66B batch-1 validation point.
#[must_use]
pub fn validate_opt66b() -> ValidationReport {
    let m = ModelConfig::opt_66b();
    let exec = SystemExecutor::new(real_dgx_a100(), &m);
    let modeled = exec.gen_stage(&[(1, 1024)]).latency_s;
    ValidationReport {
        modeled_s: modeled,
        measured_s: OPT66B_MEASURED_TOKEN_LATENCY_S,
        ratio: modeled / OPT66B_MEASURED_TOKEN_LATENCY_S,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt66b_latency_within_2x_of_measurement() {
        let r = validate_opt66b();
        assert!(
            r.ratio > 0.4 && r.ratio < 1.2,
            "modeled {} vs measured {} (ratio {})",
            r.modeled_s,
            r.measured_s,
            r.ratio
        );
    }

    #[test]
    fn roofline_bound_is_respected() {
        // No model may be faster than weights / peak bandwidth.
        let r = validate_opt66b();
        let m = ModelConfig::opt_66b();
        let bound = m.weight_bytes() as f64 / 16.0e12;
        assert!(r.modeled_s >= bound, "{} < {}", r.modeled_s, bound);
    }
}
