//! Provisioning frontiers: stacks vs SLO vs throughput.
//!
//! The deployment question behind the paper: given a workload shape and a
//! token SLO, how many AttAcc stacks buy how much throughput? This module
//! sweeps configurations and extracts the Pareto-efficient set
//! (throughput cannot improve without adding silicon).

use crate::experiment::steady_state_groups;
use crate::{SweepRunner, System, SystemExecutor};
use attacc_model::{KvCacheSpec, ModelConfig};
use attacc_serving::{max_batch_by_capacity, max_batch_under_slo, StageExecutor};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One provisioning point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ProvisionPoint {
    /// AttAcc stacks on the device.
    pub stacks: u32,
    /// Admissible batch under capacity and SLO.
    pub batch: u64,
    /// Steady-state tokens per second.
    pub tokens_per_s: f64,
    /// Whether the point is Pareto-efficient in (stacks ↓, throughput ↑).
    pub efficient: bool,
}

/// Sweeps stack counts for `(l_in, l_out)` requests under `slo_s` and
/// marks the Pareto-efficient points.
///
/// # Panics
/// Panics if `stack_counts` is empty or the SLO is non-positive.
#[must_use]
pub fn provision_sweep(
    model: &ModelConfig,
    l_in: u64,
    l_out: u64,
    slo_s: f64,
    stack_counts: &[u32],
) -> Vec<ProvisionPoint> {
    assert!(!stack_counts.is_empty(), "need at least one configuration");
    assert!(slo_s > 0.0, "SLO must be positive");
    let spec = KvCacheSpec::of(model);
    let mut points: Vec<ProvisionPoint> =
        SweepRunner::from_env().map(stack_counts, |&stacks| {
            let mut system = System::dgx_attacc_full();
            system
                .attacc
                .as_mut()
                .expect("PIM platform has a device")
                .n_stacks = stacks;
            let by_capacity = max_batch_by_capacity(
                system.kv_capacity_bytes(model),
                spec.bytes_per_token,
                l_in + l_out,
            )
            .min(crate::experiment::MAX_BATCH);
            let exec = SystemExecutor::new(system, model);
            let batch = max_batch_under_slo(&exec, slo_s, l_in + l_out / 2, by_capacity);
            let tokens_per_s = if batch == 0 {
                0.0
            } else {
                let groups = steady_state_groups(batch, l_in, l_out);
                batch as f64 / exec.gen_stage(&groups).latency_s
            };
            ProvisionPoint {
                stacks,
                batch,
                tokens_per_s,
                efficient: false,
            }
        });
    // Pareto: efficient iff no point with ≤ stacks achieves ≥ throughput
    // (strictly better on one axis).
    for i in 0..points.len() {
        let p = points[i];
        let dominated = points.iter().any(|q| {
            (q.stacks < p.stacks && q.tokens_per_s >= p.tokens_per_s)
                || (q.stacks <= p.stacks && q.tokens_per_s > p.tokens_per_s)
        });
        points[i].efficient = !dominated;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_stacks_until_saturation() {
        let m = ModelConfig::gpt3_175b();
        let pts = provision_sweep(&m, 2048, 2048, 0.050, &[8, 16, 24, 40, 80]);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[1].tokens_per_s >= w[0].tokens_per_s * 0.99);
            assert!(w[1].batch >= w[0].batch);
        }
    }

    #[test]
    fn monotone_sweep_is_fully_efficient() {
        let m = ModelConfig::gpt3_175b();
        let pts = provision_sweep(&m, 2048, 2048, 0.050, &[8, 24, 40]);
        // Strictly increasing throughput → every point efficient.
        assert!(pts.iter().all(|p| p.efficient), "{pts:?}");
    }

    #[test]
    fn dominated_duplicates_are_flagged() {
        let m = ModelConfig::gpt3_175b();
        let pts = provision_sweep(&m, 2048, 2048, 0.050, &[40, 40, 8]);
        // One of the duplicate 40-stack points dominates nothing extra but
        // ties; ties with equal stacks and equal throughput are kept
        // efficient only if not strictly dominated.
        let eff: Vec<_> = pts.iter().filter(|p| p.efficient).collect();
        assert!(!eff.is_empty());
        assert!(eff.iter().all(|p| p.tokens_per_s > 0.0));
    }

    #[test]
    #[should_panic(expected = "SLO must be positive")]
    fn zero_slo_rejected() {
        let m = ModelConfig::gpt3_175b();
        let _ = provision_sweep(&m, 128, 128, 0.0, &[8]);
    }
}
