//! End-to-end heterogeneous-system simulation for the AttAcc paper.
//!
//! This is the top of the stack: it composes the GPU roofline
//! (`attacc-xpu`), the PIM device (`attacc-pim` over `attacc-hbm`) and the
//! serving layer (`attacc-serving`) into the five platforms the paper
//! evaluates — `DGX_Base`, `DGX_Large`, `DGX+AttAccs` (with head-level
//! pipelining and feedforward co-processing), `DGX_CPU` and `2×DGX` — and
//! provides one driver per table/figure of the evaluation (§7).
//!
//! # Example
//!
//! ```
//! use attacc_sim::{System, SystemExecutor};
//! use attacc_model::ModelConfig;
//! use attacc_serving::StageExecutor;
//!
//! let model = ModelConfig::gpt3_175b();
//! let base = SystemExecutor::new(System::dgx_base(), &model);
//! let pim = SystemExecutor::new(System::dgx_attacc_full(), &model);
//! // One Gen iteration, batch 32 at L = 2048: the PIM platform wins.
//! let t_base = base.gen_stage(&[(32, 2048)]).latency_s;
//! let t_pim = pim.gen_stage(&[(32, 2048)]).latency_s;
//! assert!(t_pim < t_base);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod engine;
pub mod exec;
pub mod experiment;
pub mod provision;
pub mod report;
pub mod sweep;
pub mod system;
pub mod validate;

pub use engine::{SweepRunner, TimingCache};
pub use exec::{SystemExecutor, ATTACC_STATIC_W};
pub use report::Table;
pub use system::{System, SystemKind};
