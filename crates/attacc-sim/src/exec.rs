//! Stage execution on each platform (§5.2's execution flow).

use crate::engine::{self, TimingCache};
use crate::{System, SystemKind};
use attacc_model::{FcLayer, ModelConfig, Op, OpClass, Phase, StageWorkload};
use attacc_serving::{
    ff_coprocess_speedup, head_level_pipelined_s, serial_s, DecoderPhases, StageCost,
    StageExecutor,
};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Idle power of the AttAcc board (controllers, PHYs), watts. Public so
/// the provisioning cost model bills the same constant the energy
/// accounting charges.
pub const ATTACC_STATIC_W: f64 = 100.0;

/// Per-class breakdown of one Gen stage (Fig. 4(c) rows).
///
/// Component times are pre-overlap sums; `total_s` is the end-to-end time
/// after pipelining, so components may sum to more than the total on
/// optimized platforms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StageBreakdown {
    /// FC-layer time (QKV, projection, feedforward, LM head).
    pub fc_s: f64,
    /// Attention time.
    pub attn_s: f64,
    /// Normalization/activation/residual/transfer time.
    pub other_s: f64,
    /// Collective-communication time.
    pub comm_s: f64,
    /// End-to-end stage latency.
    pub total_s: f64,
    /// Stage energy in joules.
    pub energy_j: f64,
    /// xPU compute utilization over the stage.
    pub utilization: f64,
}

/// Rows-only aggregates of one `DGX+AttAccs` Gen iteration's op graph.
///
/// Every decoder and head op except `Op::Attention` and `Op::KvAppend`
/// depends only on the total decode row count (the op builder derives
/// their shapes from `rows` plus model constants), so these sums are
/// memoizable keyed by `rows` alone — see `TimingQuery::GenParts`. The
/// per-`(count, context)` attention term is folded back in by the shared
/// combine step, and the decomposition is checked bitwise against the
/// exact op-graph walk the first time each (system, model, rows) cell is
/// seen.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AttAccGenParts {
    qkv_s: f64,
    proj_s: f64,
    ff_mem_s: f64,
    ff_comp_s: f64,
    ff_launch_s: f64,
    other_s: f64,
    gpu_flops: f64,
    gpu_bytes: f64,
    rows: u64,
    head_s: f64,
    head_flops: f64,
    head_bytes: f64,
}

/// Executes Sum/Gen stages of `model` on `system`.
///
/// Timing queries are memoized in [`TimingCache::global`]; the cache key
/// ids are interned lazily on first query and shared by clones.
#[derive(Debug, Clone)]
pub struct SystemExecutor {
    system: System,
    model: ModelConfig,
    cache_ids: OnceLock<(u32, u32)>,
}

impl SystemExecutor {
    /// Creates an executor.
    #[must_use]
    pub fn new(system: System, model: &ModelConfig) -> SystemExecutor {
        SystemExecutor {
            system,
            model: model.clone(),
            cache_ids: OnceLock::new(),
        }
    }

    /// The interned `(system, model)` cache-key pair for this executor.
    fn cache_ids(&self) -> (u32, u32) {
        *self.cache_ids.get_or_init(|| {
            (
                engine::intern_system(&format!("{:?}", self.system)),
                engine::intern_model(&self.model),
            )
        })
    }

    /// The platform being executed on.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Bridge traffic of one Gen-stage decoder: Q/K/V vectors to AttAcc
    /// (or CPU) and the attention outputs back.
    fn decoder_bridge_bytes(&self, rows: u64) -> u64 {
        let d = self.model.d_emb;
        let kv = u64::from(self.model.kv_heads()) * self.model.d_head;
        rows * (2 * d + 2 * kv) * self.model.dtype.bytes()
    }

    /// Full detail of one Gen iteration over `(count, context)` groups,
    /// memoized in the global [`TimingCache`].
    #[must_use]
    pub fn gen_stage_detail(&self, groups: &[(u64, u64)]) -> StageBreakdown {
        if groups.iter().any(|&(n, _)| n == 0) {
            let filtered: Vec<(u64, u64)> =
                groups.iter().copied().filter(|&(n, _)| n > 0).collect();
            return self.gen_stage_detail_normalized(&filtered);
        }
        self.gen_stage_detail_normalized(groups)
    }

    /// [`SystemExecutor::gen_stage_detail`] after zero-count groups have
    /// been dropped.
    fn gen_stage_detail_normalized(&self, groups: &[(u64, u64)]) -> StageBreakdown {
        if groups.is_empty() {
            return StageBreakdown::default();
        }
        let (system, model) = self.cache_ids();
        let cache = TimingCache::global();
        if let SystemKind::DgxAttAcc { head_level_pipelining, ff_coprocessing } = self.system.kind {
            if cache.is_enabled() && engine::fastpath_enabled() {
                let rows: u64 = groups.iter().map(|&(n, _)| n).sum();
                let mut fresh = false;
                let parts = cache.gen_parts(system, model, rows, || {
                    fresh = true;
                    self.attacc_gen_parts(&StageWorkload::gen_with_contexts(&self.model, groups))
                });
                let fast =
                    self.attacc_combine(&parts, groups, head_level_pipelining, ff_coprocessing);
                if fresh {
                    // First sighting of this (system, model, rows) cell:
                    // prove the rows-keyed decomposition against the exact
                    // op-graph walk before trusting it on cache hits.
                    let exact = self.gen_stage_detail_uncached(groups);
                    assert_eq!(
                        fast, exact,
                        "analytic Gen fast path diverged from the exact engine at rows={rows}"
                    );
                }
                return fast;
            }
        }
        cache.gen_breakdown(system, model, groups, || self.gen_stage_detail_uncached(groups))
    }

    /// [`SystemExecutor::gen_stage_detail`] bypassing the cache. Groups
    /// must be non-empty with non-zero counts (the cached wrapper
    /// normalizes them).
    #[must_use]
    pub fn gen_stage_detail_uncached(&self, groups: &[(u64, u64)]) -> StageBreakdown {
        let wl = StageWorkload::gen_with_contexts(&self.model, groups);
        match self.system.kind {
            SystemKind::DgxBase | SystemKind::DgxLarge | SystemKind::TwoDgx => {
                let t = self.system.gpu.stage_time(&wl);
                StageBreakdown {
                    fc_s: t.fc_s,
                    attn_s: t.attn_s,
                    other_s: t.other_s,
                    comm_s: t.comm_s,
                    total_s: t.total_s,
                    energy_j: t.energy_j,
                    utilization: t.utilization,
                }
            }
            SystemKind::DgxCpu => self.gen_stage_cpu(&wl, groups),
            SystemKind::DgxAttAcc {
                head_level_pipelining,
                ff_coprocessing,
            } => self.gen_stage_attacc(&wl, groups, head_level_pipelining, ff_coprocessing),
        }
    }

    /// `DGX_CPU`: FC layers on the GPUs, attention against host DDR.
    fn gen_stage_cpu(&self, wl: &StageWorkload, _groups: &[(u64, u64)]) -> StageBreakdown {
        let cpu = self.system.cpu.as_ref().expect("DgxCpu has a CPU subsystem");
        let gpu = &self.system.gpu;
        let mut fc = 0.0;
        let mut attn = 0.0;
        let mut other = 0.0;
        let mut gpu_flops = 0.0;
        let mut gpu_bytes = 0.0;
        let mut cpu_bytes = 0.0;
        let mut rows = 0u64;
        for (op, n) in wl.iter_unique_ops() {
            let reps = n as f64;
            match op.class() {
                OpClass::Attention => {
                    attn += cpu.attention_time_s(op) * reps;
                    cpu_bytes += op.traffic().total() as f64 * reps;
                }
                OpClass::FullyConnected => {
                    fc += gpu.device.op_time_s(op) * reps;
                    gpu_flops += op.flops() as f64 * reps;
                    gpu_bytes += op.traffic().total() as f64 * reps;
                }
                OpClass::Other | OpClass::Communication => {
                    other += gpu.device.op_time_s(op) * reps;
                    gpu_flops += op.flops() as f64 * reps;
                    gpu_bytes += op.traffic().total() as f64 * reps;
                }
            }
            if let Op::LayerNorm { rows: r, .. } = op {
                rows = *r;
            }
        }
        // Q/K/V and outputs cross the PCIe bridge every decoder.
        let bridge_bytes = self.decoder_bridge_bytes(rows) * u64::from(self.model.n_decoder);
        let xfer = self.system.bridge.transfer_s(self.decoder_bridge_bytes(rows))
            * f64::from(self.model.n_decoder);
        let comm = gpu.decoder_comm_s(rows, self.model.d_emb, self.model.dtype.bytes())
            * f64::from(self.model.n_decoder);
        let total = fc + attn + other + comm + xfer;
        let energy_j = gpu.energy.execution_j(gpu_flops, gpu_bytes, total)
            + gpu.energy.execution_j(0.0, cpu_bytes, 0.0)
            + gpu.energy.link_j(bridge_bytes as f64);
        StageBreakdown {
            fc_s: fc,
            attn_s: attn,
            other_s: other + xfer,
            comm_s: comm,
            total_s: total,
            energy_j,
            utilization: gpu_flops / (total * gpu.device.peak_flops_fp16),
        }
    }

    /// `DGX+AttAccs`: FC on the GPUs, attention on the PIM stacks, with
    /// the §6 optimizations as configured.
    fn gen_stage_attacc(
        &self,
        wl: &StageWorkload,
        groups: &[(u64, u64)],
        hl_pipe: bool,
        ff_coproc: bool,
    ) -> StageBreakdown {
        let parts = self.attacc_gen_parts(wl);
        self.attacc_combine(&parts, groups, hl_pipe, ff_coproc)
    }

    /// The rows-only op-graph sums of one `DGX+AttAccs` Gen iteration:
    /// everything except the attention term, which `attacc_combine` folds
    /// in per `(count, context)` group.
    fn attacc_gen_parts(&self, wl: &StageWorkload) -> AttAccGenParts {
        let dev = &self.system.gpu.device;
        let mut p = AttAccGenParts::default();
        for op in &wl.decoder_ops {
            match op {
                Op::Attention { .. } | Op::KvAppend { .. } => continue,
                Op::Gemm { layer, .. } => {
                    let t = dev.op_time_s(op);
                    match layer {
                        FcLayer::QkvGen => p.qkv_s += t,
                        FcLayer::Projection => p.proj_s += t,
                        _ if layer.is_feedforward() => {
                            p.ff_mem_s += dev.memory_time_s(op);
                            p.ff_comp_s += dev.compute_time_s(op);
                            p.ff_launch_s += dev.launch_s;
                        }
                        _ => p.other_s += t,
                    }
                    p.gpu_flops += op.flops() as f64;
                    p.gpu_bytes += op.traffic().total() as f64;
                }
                Op::Activation { .. } => {
                    // The GELU between FF1 and FF2 belongs to the
                    // (possibly co-processed) feedforward phase.
                    p.ff_mem_s += dev.memory_time_s(op);
                    p.ff_comp_s += dev.compute_time_s(op);
                    p.ff_launch_s += dev.launch_s;
                    p.gpu_flops += op.flops() as f64;
                    p.gpu_bytes += op.traffic().total() as f64;
                }
                _ => {
                    p.other_s += dev.op_time_s(op);
                    p.gpu_flops += op.flops() as f64;
                    p.gpu_bytes += op.traffic().total() as f64;
                    if let Op::LayerNorm { rows: r, .. } = op {
                        p.rows = *r;
                    }
                }
            }
        }
        // LM head and final layernorm on the GPU (once per stage).
        for op in &wl.head_ops {
            p.head_s += dev.op_time_s(op);
            p.head_flops += op.flops() as f64;
            p.head_bytes += op.traffic().total() as f64;
        }
        p
    }

    /// Folds the per-group attention term into the rows-only aggregates.
    /// Shared verbatim by the exact and fast paths, so both produce
    /// bit-identical breakdowns by construction.
    fn attacc_combine(
        &self,
        p: &AttAccGenParts,
        groups: &[(u64, u64)],
        hl_pipe: bool,
        ff_coproc: bool,
    ) -> StageBreakdown {
        let attacc = self.system.attacc.as_ref().expect("DgxAttAcc has a PIM device");
        let gpu = &self.system.gpu;
        let dev = &gpu.device;

        // Attention on AttAcc (attention-level pipelining always on).
        let attn = attacc.attention_decoder_time(&self.model, groups, true);

        // Per-decoder bridge transfers (Q/K/V in, outputs back).
        let bridge_bytes = self.decoder_bridge_bytes(p.rows);
        let xfer_s = self.system.bridge.transfer_s(bridge_bytes);

        // Feedforward phase, possibly co-processed (§6.2).
        let ff_s = if ff_coproc {
            let factor = ff_coprocess_speedup(
                dev.mem_bw * dev.mem_eff,
                attacc.external_bandwidth() * dev.mem_eff,
            );
            p.ff_comp_s.max(p.ff_mem_s * factor) + p.ff_launch_s
        } else {
            p.ff_comp_s.max(p.ff_mem_s) + p.ff_launch_s
        };

        let phases = DecoderPhases {
            qkv_s: p.qkv_s,
            attn_s: attn.total_s,
            proj_s: p.proj_s,
            ff_s,
            other_s: p.other_s + xfer_s,
            comm_s: gpu.decoder_comm_s(p.rows, self.model.d_emb, self.model.dtype.bytes()),
        };
        let decoder_s = if hl_pipe {
            head_level_pipelined_s(&phases, u64::from(self.model.n_head))
        } else {
            serial_s(&phases)
        };

        let n_dec = f64::from(self.model.n_decoder);
        let total = decoder_s * n_dec + p.head_s;
        let stage_flops = p.gpu_flops * n_dec + p.head_flops;
        let stage_bytes = p.gpu_bytes * n_dec + p.head_bytes;

        let gpu_energy = gpu.energy.execution_j(stage_flops, stage_bytes, total);
        let attacc_energy = attn.energy_j * n_dec + ATTACC_STATIC_W * total;
        let link_energy = gpu.energy.link_j(bridge_bytes as f64 * n_dec);

        StageBreakdown {
            fc_s: (p.qkv_s + p.proj_s + ff_s) * n_dec + p.head_s,
            attn_s: attn.total_s * n_dec,
            other_s: (p.other_s + xfer_s) * n_dec,
            comm_s: phases.comm_s * n_dec,
            total_s: total,
            energy_j: gpu_energy + attacc_energy + link_energy,
            utilization: stage_flops / (total * dev.peak_flops_fp16),
        }
    }
}

impl SystemExecutor {
    /// The Sum-stage cost bypassing the cache (see
    /// [`StageExecutor::sum_stage`]).
    #[must_use]
    pub fn sum_stage_uncached(&self, batch: u64, l_in: u64) -> StageCost {
        let wl = StageWorkload::uniform(&self.model, Phase::sum(l_in), batch);
        let t = self.system.gpu.stage_time(&wl);
        match self.system.kind {
            SystemKind::DgxAttAcc { .. } | SystemKind::DgxCpu => {
                // The freshly built KV matrices stream to the attention
                // pool as they are produced; the copy overlaps prefill
                // compute.
                let per_token = 2
                    * u64::from(self.model.kv_heads())
                    * self.model.d_head
                    * self.model.kv_dtype.bytes()
                    * u64::from(self.model.n_decoder);
                let kv_bytes = batch * l_in * per_token;
                let xfer = self.system.bridge.transfer_s(kv_bytes);
                StageCost {
                    latency_s: t.total_s.max(xfer),
                    energy_j: t.energy_j + self.system.gpu.energy.link_j(kv_bytes as f64),
                }
            }
            _ => StageCost {
                latency_s: t.total_s,
                energy_j: t.energy_j,
            },
        }
    }
}

impl StageExecutor for SystemExecutor {
    fn sum_stage(&self, batch: u64, l_in: u64) -> StageCost {
        if batch == 0 {
            return StageCost::default();
        }
        let (system, model) = self.cache_ids();
        TimingCache::global()
            .sum_cost(system, model, batch, l_in, || self.sum_stage_uncached(batch, l_in))
    }

    fn gen_stage(&self, groups: &[(u64, u64)]) -> StageCost {
        let d = self.gen_stage_detail(groups);
        StageCost {
            latency_s: d.total_s,
            energy_j: d.energy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> ModelConfig {
        ModelConfig::gpt3_175b()
    }

    #[test]
    fn attacc_beats_base_on_gen_iteration() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        let pim = SystemExecutor::new(System::dgx_attacc_full(), &m);
        let g = [(32u64, 2048u64)];
        let tb = base.gen_stage(&g).latency_s;
        let tp = pim.gen_stage(&g).latency_s;
        assert!(tp < tb, "{tp} vs {tb}");
    }

    #[test]
    fn optimizations_stack() {
        let m = gpt3();
        let g = [(48u64, 3072u64)];
        let naive = SystemExecutor::new(System::dgx_attacc_naive(), &m).gen_stage(&g).latency_s;
        let hl = SystemExecutor::new(System::dgx_attacc_hl_pipe(), &m).gen_stage(&g).latency_s;
        let full = SystemExecutor::new(System::dgx_attacc_full(), &m).gen_stage(&g).latency_s;
        assert!(hl < naive, "HL pipe helps: {hl} vs {naive}");
        assert!(full < hl, "FF co-proc helps further: {full} vs {hl}");
        // §7.2: each optimization is worth up to ~1.15× / ~1.10×; with our
        // models the combined gain stays within a plausible 1.05–1.6×.
        let gain = naive / full;
        assert!(gain > 1.05 && gain < 1.6, "gain = {gain}");
    }

    #[test]
    fn attacc_attention_speedup_grows_with_length() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        let pim = SystemExecutor::new(System::dgx_attacc_full(), &m);
        let speedup = |l: u64| {
            base.gen_stage(&[(16, l)]).latency_s / pim.gen_stage(&[(16, l)]).latency_s
        };
        assert!(speedup(4096) > speedup(512));
    }

    #[test]
    fn cpu_offload_is_slower_than_base() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        let cpu = SystemExecutor::new(System::dgx_cpu(), &m);
        let g = [(16u64, 2048u64)];
        assert!(cpu.gen_stage(&g).latency_s > base.gen_stage(&g).latency_s);
    }

    #[test]
    fn two_dgx_beats_base_but_not_attacc_at_long_context() {
        let m = gpt3();
        let g = [(32u64, 3072u64)];
        let base = SystemExecutor::new(System::dgx_base(), &m).gen_stage(&g).latency_s;
        let two = SystemExecutor::new(System::two_dgx(), &m).gen_stage(&g).latency_s;
        let pim = SystemExecutor::new(System::dgx_attacc_full(), &m).gen_stage(&g).latency_s;
        assert!(two < base);
        assert!(pim < two, "pim {pim} vs 2xDGX {two}");
    }

    #[test]
    fn sum_stage_is_compute_heavy() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        let sum = base.sum_stage(8, 2048).latency_s;
        let gen = base.gen_stage(&[(8, 2048)]).latency_s;
        assert!(sum > 10.0 * gen, "sum {sum} vs gen {gen}");
    }

    #[test]
    fn empty_gen_stage_is_free() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        assert_eq!(base.gen_stage(&[]).latency_s, 0.0);
        assert_eq!(base.sum_stage(0, 128).latency_s, 0.0);
    }

    #[test]
    fn breakdown_components_cover_total_on_serial_systems() {
        let m = gpt3();
        let base = SystemExecutor::new(System::dgx_base(), &m);
        let d = base.gen_stage_detail(&[(16, 2048)]);
        let sum = d.fc_s + d.attn_s + d.other_s + d.comm_s;
        assert!((sum - d.total_s).abs() / d.total_s < 1e-9);
    }

    #[test]
    fn attacc_energy_below_base_energy() {
        let m = gpt3();
        let g = [(32u64, 3072u64)];
        let eb = SystemExecutor::new(System::dgx_base(), &m).gen_stage(&g).energy_j;
        let ep = SystemExecutor::new(System::dgx_attacc_full(), &m).gen_stage(&g).energy_j;
        assert!(ep < eb, "{ep} vs {eb}");
    }
}
