//! The evaluated platforms (§7.1).

use attacc_model::ModelConfig;
use attacc_pim::{AttAccDevice, GemvPlacement};
use attacc_xpu::{CpuSystem, GpuSystem, Interconnect};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which platform a [`System`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum SystemKind {
    /// DGX A100 (HBM3) with 640 GB — the paper's baseline.
    DgxBase,
    /// The baseline with 1,280 GB (taller stacks).
    DgxLarge,
    /// DGX (640 GB, weights) + AttAccs (640 GB, KV), §4–§6.
    DgxAttAcc {
        /// Head-level pipelining enabled (§6.1).
        head_level_pipelining: bool,
        /// Feedforward co-processing enabled (§6.2).
        ff_coprocessing: bool,
    },
    /// DGX with attention offloaded to host-CPU memory (§7.6).
    DgxCpu,
    /// Two DGX boxes (§7.6).
    TwoDgx,
}

/// A complete evaluated platform.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct System {
    /// Platform variant.
    pub kind: SystemKind,
    /// The GPU subsystem (always present; FC layers run here).
    pub gpu: GpuSystem,
    /// The PIM device, for `DgxAttAcc`.
    pub attacc: Option<AttAccDevice>,
    /// The CPU subsystem, for `DgxCpu`.
    pub cpu: Option<CpuSystem>,
    /// The xPU↔AttAcc (or xPU↔CPU) bridge.
    pub bridge: Interconnect,
}

impl System {
    /// `DGX_Base`: 640 GB, 26.6 TB/s, 2.5 PFLOPS.
    #[must_use]
    pub fn dgx_base() -> System {
        System {
            kind: SystemKind::DgxBase,
            gpu: GpuSystem::dgx_base(),
            attacc: None,
            cpu: None,
            bridge: Interconnect::accelerator_bridge(),
        }
    }

    /// `DGX_Large`: the baseline with 1,280 GB.
    #[must_use]
    pub fn dgx_large() -> System {
        System {
            kind: SystemKind::DgxLarge,
            gpu: GpuSystem::dgx_large(),
            attacc: None,
            cpu: None,
            bridge: Interconnect::accelerator_bridge(),
        }
    }

    /// `DGX+AttAccs` without the §6 optimizations.
    #[must_use]
    pub fn dgx_attacc_naive() -> System {
        System {
            kind: SystemKind::DgxAttAcc {
                head_level_pipelining: false,
                ff_coprocessing: false,
            },
            gpu: GpuSystem::dgx_base(),
            attacc: Some(AttAccDevice::paper_40_stacks(GemvPlacement::Bank)),
            cpu: None,
            bridge: Interconnect::accelerator_bridge(),
        }
    }

    /// `DGX+AttAccs` with head-level pipelining only.
    #[must_use]
    pub fn dgx_attacc_hl_pipe() -> System {
        let mut s = System::dgx_attacc_naive();
        s.kind = SystemKind::DgxAttAcc {
            head_level_pipelining: true,
            ff_coprocessing: false,
        };
        s
    }

    /// `DGX+AttAccs` with both optimizations — the headline configuration.
    #[must_use]
    pub fn dgx_attacc_full() -> System {
        let mut s = System::dgx_attacc_naive();
        s.kind = SystemKind::DgxAttAcc {
            head_level_pipelining: true,
            ff_coprocessing: true,
        };
        s
    }

    /// `DGX+AttAccs` with a chosen GEMV placement (the Fig. 7 design-space
    /// study).
    #[must_use]
    pub fn dgx_attacc_with_placement(placement: GemvPlacement) -> System {
        let mut s = System::dgx_attacc_full();
        s.attacc = Some(AttAccDevice::paper_40_stacks(placement));
        s
    }

    /// `DGX_CPU` (§7.6).
    #[must_use]
    pub fn dgx_cpu() -> System {
        System {
            kind: SystemKind::DgxCpu,
            gpu: GpuSystem::dgx_base(),
            attacc: None,
            cpu: Some(CpuSystem::dgx_host()),
            bridge: Interconnect::pcie_gen5(),
        }
    }

    /// `2×DGX` (§7.6).
    #[must_use]
    pub fn two_dgx() -> System {
        System {
            kind: SystemKind::TwoDgx,
            gpu: GpuSystem::two_dgx(),
            attacc: None,
            cpu: None,
            bridge: Interconnect::accelerator_bridge(),
        }
    }

    /// The four headline systems of Fig. 13 in paper order.
    #[must_use]
    pub fn fig13_systems() -> Vec<System> {
        vec![
            System::dgx_base(),
            System::dgx_large(),
            System::dgx_attacc_naive(),
            System::dgx_attacc_hl_pipe(),
            System::dgx_attacc_full(),
        ]
    }

    /// Display name matching the paper's labels.
    #[must_use]
    pub fn name(&self) -> String {
        match self.kind {
            SystemKind::DgxBase => "DGX_Base".into(),
            SystemKind::DgxLarge => "DGX_Large".into(),
            SystemKind::DgxAttAcc {
                head_level_pipelining,
                ff_coprocessing,
            } => match (head_level_pipelining, ff_coprocessing) {
                (false, false) => "DGX+AttAccs".into(),
                (true, false) => "DGX+AttAccs +HL pipe".into(),
                (true, true) => "DGX+AttAccs +HL pipe +FF co-proc".into(),
                (false, true) => "DGX+AttAccs +FF co-proc".into(),
            },
            SystemKind::DgxCpu => "DGX_CPU".into(),
            SystemKind::TwoDgx => "2xDGX".into(),
        }
    }

    /// Total memory capacity of the platform in bytes (GPU + AttAcc/CPU
    /// pools).
    #[must_use]
    pub fn total_capacity_bytes(&self) -> u64 {
        let mut c = self.gpu.capacity_bytes;
        if let Some(a) = &self.attacc {
            c += a.capacity_bytes();
        }
        if let Some(cpu) = &self.cpu {
            c += cpu.capacity_bytes;
        }
        c
    }

    /// Capacity available for KV caches after the model's weights are
    /// resident (§7.2: e.g. 510 GB on `DGX_Base` vs 1,150 GB on
    /// `DGX+AttAccs` for LLAMA 65B).
    ///
    /// For `DgxCpu`, attention state lives in the large host pool, so KV
    /// capacity is the CPU pool.
    #[must_use]
    pub fn kv_capacity_bytes(&self, model: &ModelConfig) -> u64 {
        if let Some(cpu) = &self.cpu {
            return cpu.capacity_bytes;
        }
        self.total_capacity_bytes().saturating_sub(model.weight_bytes())
    }

    /// `true` when the model's weights fit at all.
    #[must_use]
    pub fn fits_model(&self, model: &ModelConfig) -> bool {
        model.weight_bytes() <= self.gpu.capacity_bytes
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_model::GIB;

    #[test]
    fn capacities_match_paper() {
        assert_eq!(System::dgx_base().total_capacity_bytes(), 640 * GIB);
        assert_eq!(System::dgx_large().total_capacity_bytes(), 1280 * GIB);
        assert_eq!(System::dgx_attacc_full().total_capacity_bytes(), 1280 * GIB);
        assert_eq!(System::two_dgx().total_capacity_bytes(), 1280 * GIB);
    }

    #[test]
    fn kv_capacity_examples_from_paper() {
        // §7.2: LLAMA 65B leaves 510 GB on DGX_Base, 1,150 GB on
        // DGX+AttAccs; MT-NLG 530B leaves 146 GB and 786 GB.
        let llama = ModelConfig::llama_65b();
        let mt = ModelConfig::mt_nlg_530b();
        let gb = |b: u64| b as f64 / GIB as f64;
        assert!((gb(System::dgx_base().kv_capacity_bytes(&llama)) - 510.0).abs() < 15.0);
        assert!((gb(System::dgx_attacc_full().kv_capacity_bytes(&llama)) - 1150.0).abs() < 15.0);
        assert!((gb(System::dgx_base().kv_capacity_bytes(&mt)) - 146.0).abs() < 15.0);
        assert!((gb(System::dgx_attacc_full().kv_capacity_bytes(&mt)) - 786.0).abs() < 15.0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(System::dgx_base().name(), "DGX_Base");
        assert_eq!(
            System::dgx_attacc_full().name(),
            "DGX+AttAccs +HL pipe +FF co-proc"
        );
        assert_eq!(System::two_dgx().to_string(), "2xDGX");
    }

    #[test]
    fn mt_nlg_fp16_does_not_fit_base() {
        // §7.1: MT-NLG 530B must be quantized to INT8 to fit DGX_Base.
        use attacc_model::DataType;
        let fp16 = ModelConfig::mt_nlg_530b().with_dtype(DataType::Fp16);
        assert!(!System::dgx_base().fits_model(&fp16));
        assert!(System::dgx_base().fits_model(&ModelConfig::mt_nlg_530b()));
    }

    #[test]
    fn fig13_list_is_ordered() {
        let sys = System::fig13_systems();
        assert_eq!(sys.len(), 5);
        assert_eq!(sys[0].name(), "DGX_Base");
        assert_eq!(sys[4].name(), "DGX+AttAccs +HL pipe +FF co-proc");
    }

    #[test]
    fn dgx_cpu_kv_capacity_is_host_pool() {
        let m = ModelConfig::gpt3_175b();
        let c = System::dgx_cpu();
        assert_eq!(c.kv_capacity_bytes(&m), 4096 * GIB);
    }
}
