//! One driver per table/figure of the paper's evaluation (§7).
//!
//! Every driver returns typed rows; the `attacc-bench` binaries format
//! them into the tables recorded in `EXPERIMENTS.md`. Large sweeps use a
//! steady-state analytic model of iteration-level scheduling (validated
//! against the discrete-event scheduler by integration tests): with a full
//! batch and uniformly mixed request progress, the Gen batch's context
//! lengths are spread over `[l_in, l_in + l_out]`.

use crate::{SweepRunner, System, SystemExecutor};
use attacc_model::{
    AttentionVariant, DataType, KvCacheSpec, ModelConfig, Op, Phase, RooflinePoint, StageWorkload,
    GIB,
};
use attacc_pim::{AreaReport, GemvPlacement};
use attacc_serving::{max_batch_under_slo, StageExecutor};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Hard cap on explored batch sizes (the paper never exceeds 256).
pub const MAX_BATCH: u64 = 512;

/// Quantization of the steady-state context distribution.
const STEADY_GROUPS: u64 = 8;

/// Context-length groups of a steady-state Gen iteration: `batch` requests
/// spread uniformly over `[l_in + 1, l_in + l_out]`.
#[must_use]
pub fn steady_state_groups(batch: u64, l_in: u64, l_out: u64) -> Vec<(u64, u64)> {
    if batch == 0 {
        return Vec::new();
    }
    let q = STEADY_GROUPS.min(batch).min(l_out).max(1);
    let mut groups = Vec::with_capacity(q as usize);
    let base = batch / q;
    let mut extra = batch % q;
    for i in 0..q {
        let n = base + u64::from(extra > 0);
        extra = extra.saturating_sub(1);
        // Midpoint of the i-th progress quantile.
        let l = l_in + 1 + l_out * (2 * i + 1) / (2 * q);
        groups.push((n, l.min(l_in + l_out)));
    }
    groups
}

/// The largest batch `system` can serve for `(l_in, l_out)` requests under
/// the capacity limit and, if given, the per-token SLO (§3.2, §7.3).
#[must_use]
pub fn max_feasible_batch(
    system: &System,
    model: &ModelConfig,
    l_in: u64,
    l_out: u64,
    slo_s: Option<f64>,
) -> u64 {
    let spec = KvCacheSpec::of(model);
    let by_capacity = attacc_serving::max_batch_by_capacity(
        system.kv_capacity_bytes(model),
        spec.bytes_per_token,
        l_in + l_out,
    )
    .min(MAX_BATCH);
    match slo_s {
        None => by_capacity,
        Some(slo) => {
            let exec = SystemExecutor::new(system.clone(), model);
            // The SLO binds at the batch's average context length (§7.1).
            let l_avg = l_in + l_out / 2;
            max_batch_under_slo(&exec, slo, l_avg, by_capacity)
        }
    }
}

/// Steady-state serving estimate: time and energy to serve `n_requests`
/// fixed-shape requests at the given batch size.
#[must_use]
pub fn analytic_serve(
    exec: &SystemExecutor,
    l_in: u64,
    l_out: u64,
    n_requests: u64,
    batch: u64,
) -> (f64, f64) {
    if batch == 0 || n_requests == 0 {
        return (f64::INFINITY, f64::INFINITY);
    }
    let batch = batch.min(n_requests);
    let groups = steady_state_groups(batch, l_in, l_out);
    let iter = exec.gen_stage(&groups);
    // Every request needs l_out - 1 Gen stages (the Sum stage emits the
    // first token); iterations are shared batch-wide.
    let gen_iters = (n_requests * (l_out - 1)) as f64 / batch as f64;
    let sum = exec.sum_stage(batch, l_in);
    // Iteration-level scheduling admits continuously; prefill cost is
    // fractional in the number of batch-sized waves.
    let sum_waves = n_requests as f64 / batch as f64;
    let time = gen_iters * iter.latency_s + sum_waves * sum.latency_s;
    let energy = gen_iters * iter.energy_j + sum_waves * sum.energy_j;
    (time, energy)
}

// ---------------------------------------------------------------- Fig. 2

/// Fraction of end-to-end time spent in Gen stages for a batch-1 request
/// (the Fig. 2 heat map cell at `(l_in, l_out)`).
#[must_use]
pub fn gen_stage_fraction(system: &System, model: &ModelConfig, l_in: u64, l_out: u64) -> f64 {
    let exec = SystemExecutor::new(system.clone(), model);
    let sum_s = exec.sum_stage(1, l_in).latency_s;
    let mut gen_s = 0.0;
    // l_out - 1 Gen stages at growing context; sample the growth curve.
    let stages = l_out.saturating_sub(1);
    if stages > 0 {
        let samples = stages.min(16);
        for i in 0..samples {
            let l = l_in + 1 + stages * (2 * i + 1) / (2 * samples);
            gen_s += exec.gen_stage(&[(1, l)]).latency_s * stages as f64 / samples as f64;
        }
    }
    gen_s / (gen_s + sum_s)
}

// ---------------------------------------------------------------- Fig. 3

/// One labeled point of the Fig. 3 roofline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RooflineRow {
    /// Series label (e.g. `"Gen FC b=64"`).
    pub label: String,
    /// Arithmetic intensity.
    pub op_per_byte: f64,
    /// Attainable TFLOP/s on the baseline.
    pub attainable_tflops: f64,
    /// Left of the ridge point?
    pub memory_bound: bool,
}

/// Places the Sum/Gen FC and attention layers of `model` on the baseline
/// roofline for each batch size (Fig. 3; `l_in` = 2,048 in the paper).
#[must_use]
pub fn roofline_rows(system: &System, model: &ModelConfig, l_in: u64, batches: &[u64]) -> Vec<RooflineRow> {
    let peak = system.gpu.device.peak_flops_fp16;
    let bw = system.gpu.device.mem_bw;
    let mut rows = Vec::new();
    let mut place = |label: String, op: &Op| {
        if let Some(p) = RooflinePoint::place(op, peak, bw) {
            rows.push(RooflineRow {
                label,
                op_per_byte: p.op_per_byte,
                attainable_tflops: p.attainable_flops / 1e12,
                memory_bound: p.memory_bound,
            });
        }
    };
    // Sum stage, batch 1 (batching the Sum stage changes little).
    let sum = StageWorkload::uniform(model, Phase::sum(l_in), 1);
    for op in &sum.decoder_ops {
        match op {
            Op::Gemm { layer: attacc_model::FcLayer::Ff1, .. } => {
                place("Sum FC".into(), op);
            }
            Op::Attention { .. } => place("Sum attention".into(), op),
            _ => {}
        }
    }
    // Gen stage per batch size.
    for &b in batches {
        let gen = StageWorkload::uniform(model, Phase::gen(l_in + 1), b);
        for op in &gen.decoder_ops {
            match op {
                Op::Gemm { layer: attacc_model::FcLayer::Ff1, .. } => {
                    place(format!("Gen FC b={b}"), op);
                }
                Op::Attention { .. } => place(format!("Gen attention b={b}"), op),
                _ => {}
            }
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig. 4

/// One batch-size row of the Fig. 4 batching study.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BatchingRow {
    /// Batch size.
    pub batch: u64,
    /// Generated tokens per second (steady state).
    pub tokens_per_s: f64,
    /// Memory needed for weights plus every request's final KV (GiB).
    pub required_capacity_gib: f64,
    /// `true` when the batch exceeds `DGX_Base`'s 640 GB (the dotted bars).
    pub exceeds_dgx_capacity: bool,
    /// Energy per generated token (J).
    pub energy_per_token_j: f64,
    /// Per-iteration latency (s) — the SLO-relevant number.
    pub iteration_latency_s: f64,
    /// FC share of the iteration.
    pub fc_frac: f64,
    /// Attention share of the iteration.
    pub attn_frac: f64,
    /// Remaining share (etc + comm).
    pub other_frac: f64,
    /// GPU compute utilization.
    pub utilization: f64,
}

/// The Fig. 4 study: throughput, capacity, energy and breakdown versus
/// batch size on the baseline with unlimited memory.
#[must_use]
pub fn batching_study(
    system: &System,
    model: &ModelConfig,
    l_in: u64,
    l_out: u64,
    batches: &[u64],
) -> Vec<BatchingRow> {
    let exec = SystemExecutor::new(system.clone(), model);
    let spec = KvCacheSpec::of(model);
    SweepRunner::from_env().map(batches, |&b| {
            let groups = steady_state_groups(b, l_in, l_out);
            let d = exec.gen_stage_detail(&groups);
            let denom = d.fc_s + d.attn_s + d.other_s + d.comm_s;
            let required =
                model.weight_bytes() + spec.batch_bytes(b, l_in + l_out);
            BatchingRow {
                batch: b,
                tokens_per_s: b as f64 / d.total_s,
                required_capacity_gib: required as f64 / GIB as f64,
                exceeds_dgx_capacity: required > 640 * GIB,
                energy_per_token_j: d.energy_j / b as f64,
                iteration_latency_s: d.total_s,
                fc_frac: d.fc_s / denom,
                attn_frac: d.attn_s / denom,
                other_frac: (d.other_s + d.comm_s) / denom,
                utilization: d.utilization,
            }
        })
}

// ---------------------------------------------------------------- Fig. 7

/// One design point of the Fig. 7 placement study.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PlacementRow {
    /// Design point name.
    pub placement: String,
    /// Peak stack power (W).
    pub peak_power_w: f64,
    /// Attention throughput relative to `AttAcc_buffer`.
    pub rel_throughput: f64,
    /// Attention energy relative to `AttAcc_buffer`.
    pub rel_energy: f64,
    /// DRAM-die area overhead (fraction of die).
    pub area_overhead: f64,
    /// Energy-delay-area product relative to `AttAcc_buffer`.
    pub rel_edap: f64,
}

/// The Fig. 7 design-space comparison of AttAcc_{buffer, BG, bank} on the
/// attention layer of `model` at batch `batch`, context `l`.
#[must_use]
pub fn placement_study(model: &ModelConfig, batch: u64, l: u64) -> Vec<PlacementRow> {
    let raw = SweepRunner::from_env().map(&GemvPlacement::ALL, |&placement| {
        let dev = attacc_pim::AttAccDevice::paper_40_stacks(placement);
        let t = dev.attention_decoder_time(model, &[(batch, l)], true);
        let hbm = &dev.hbm;
        let power = hbm.power.peak_stack_power_w(
            &hbm.geometry,
            &hbm.timing,
            &hbm.energy,
            placement.depth(),
        );
        let area = AreaReport::for_placement(placement, hbm);
        (placement, t.total_s, t.energy_j, power, area)
    });
    let (base_t, base_e) = (raw[0].1, raw[0].2);
    let base_area = raw[0]
        .4
        .stack_silicon_mm2(&attacc_pim::AttAccDevice::paper_40_stacks(raw[0].0).hbm);
    let base_edap = base_t * base_e * base_area;
    raw.iter()
        .map(|(p, t, e, power, area)| {
            let stack_mm2 =
                area.stack_silicon_mm2(&attacc_pim::AttAccDevice::paper_40_stacks(*p).hbm);
            PlacementRow {
                placement: p.to_string(),
                peak_power_w: *power,
                rel_throughput: base_t / t,
                rel_energy: e / base_e,
                area_overhead: area.dram_die_overhead,
                rel_edap: (t * e * stack_mm2) / base_edap,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 13

/// One bar of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EndToEndRow {
    /// Model name.
    pub model: String,
    /// Prompt length.
    pub l_in: u64,
    /// Output length.
    pub l_out: u64,
    /// System label.
    pub system: String,
    /// Batch size used.
    pub batch: u64,
    /// Absolute time to serve the request population (s).
    pub time_s: f64,
    /// Time normalized to `DGX_Base` for the same (model, seq).
    pub normalized: f64,
    /// Energy per token (J), reused by Fig. 15.
    pub energy_per_token_j: f64,
}

/// The Fig. 13 end-to-end comparison: serve `n_requests` fixed-shape
/// requests on every system. Also feeds Fig. 15 (energy).
///
/// `(model, seq)` cells are independent and run on the [`SweepRunner`];
/// the five-system loop inside a cell stays serial because each bar is
/// normalized to the cell's `DGX_Base` time.
#[must_use]
pub fn end_to_end(
    models: &[ModelConfig],
    seqs: &[(u64, u64)],
    n_requests: u64,
) -> Vec<EndToEndRow> {
    let cells: Vec<(&ModelConfig, u64, u64)> = models
        .iter()
        .flat_map(|m| seqs.iter().map(move |&(l_in, l_out)| (m, l_in, l_out)))
        .collect();
    let per_cell = SweepRunner::from_env().map(&cells, |&(model, l_in, l_out)| {
        let mut rows = Vec::new();
        let mut base_time = None;
        for system in System::fig13_systems() {
            let batch = max_feasible_batch(&system, model, l_in, l_out, None).max(1);
            let exec = SystemExecutor::new(system.clone(), model);
            let (time, energy) = analytic_serve(&exec, l_in, l_out, n_requests, batch);
            let base = *base_time.get_or_insert(time);
            rows.push(EndToEndRow {
                model: model.name.clone(),
                l_in,
                l_out,
                system: system.name(),
                batch,
                time_s: time,
                normalized: time / base,
                energy_per_token_j: energy / (n_requests * l_out) as f64,
            });
        }
        rows
    });
    per_cell.into_iter().flatten().collect()
}

// --------------------------------------------------------------- Fig. 14

/// One bar of Fig. 14.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SloRow {
    /// System label.
    pub system: String,
    /// SLO in seconds (`None` = unconstrained).
    pub slo_s: Option<f64>,
    /// Max batch admitted by SLO and capacity.
    pub max_batch: u64,
    /// Steady-state tokens per second.
    pub tokens_per_s: f64,
}

/// The Fig. 14 SLO study for GPT-3-class serving.
#[must_use]
pub fn slo_study(model: &ModelConfig, l_in: u64, l_out: u64, slos: &[Option<f64>]) -> Vec<SloRow> {
    let systems = [System::dgx_base(), System::dgx_large(), System::dgx_attacc_full()];
    let cells: Vec<(Option<f64>, &System)> = slos
        .iter()
        .flat_map(|&slo| systems.iter().map(move |s| (slo, s)))
        .collect();
    SweepRunner::from_env().map(&cells, |&(slo, system)| {
        let batch = max_feasible_batch(system, model, l_in, l_out, slo);
        let exec = SystemExecutor::new(system.clone(), model);
        let tokens_per_s = if batch == 0 {
            0.0
        } else {
            let groups = steady_state_groups(batch, l_in, l_out);
            batch as f64 / exec.gen_stage(&groups).latency_s
        };
        SloRow {
            system: system.name(),
            slo_s: slo,
            max_batch: batch,
            tokens_per_s,
        }
    })
}

// --------------------------------------------------------------- Fig. 16

/// One group of Fig. 16.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BitwidthRow {
    /// Data type evaluated.
    pub dtype: String,
    /// Sequence shape.
    pub l_in: u64,
    /// Output length.
    pub l_out: u64,
    /// `DGX+AttAccs` speedup over `DGX_Base`.
    pub speedup_vs_base: f64,
    /// `DGX+AttAccs` speedup over `DGX_Large`.
    pub speedup_vs_large: f64,
}

/// The Fig. 16 bit-width sensitivity study (FP16 vs INT8).
#[must_use]
pub fn bitwidth_study(model: &ModelConfig, seqs: &[(u64, u64)], n_requests: u64) -> Vec<BitwidthRow> {
    let cells: Vec<(DataType, u64, u64)> = [DataType::Fp16, DataType::Int8]
        .iter()
        .flat_map(|&dtype| seqs.iter().map(move |&(l_in, l_out)| (dtype, l_in, l_out)))
        .collect();
    SweepRunner::from_env().map(&cells, |&(dtype, l_in, l_out)| {
        let m = model.with_dtype(dtype);
        let time_on = |system: System| {
            let batch = max_feasible_batch(&system, &m, l_in, l_out, None).max(1);
            let exec = SystemExecutor::new(system, &m);
            analytic_serve(&exec, l_in, l_out, n_requests, batch).0
        };
        let base = time_on(System::dgx_base());
        let large = time_on(System::dgx_large());
        let pim = time_on(System::dgx_attacc_full());
        BitwidthRow {
            dtype: dtype.to_string(),
            l_in,
            l_out,
            speedup_vs_base: base / pim,
            speedup_vs_large: large / pim,
        }
    })
}

// --------------------------------------------------------------- Fig. 17

/// One bar of Fig. 17.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AlternativeRow {
    /// System label.
    pub system: String,
    /// Sequence shape.
    pub l_in: u64,
    /// Output length.
    pub l_out: u64,
    /// Batch size used.
    pub batch: u64,
    /// Throughput normalized to `DGX_Base`.
    pub normalized_throughput: f64,
}

/// The Fig. 17 comparison with other DGX options.
#[must_use]
pub fn alternatives_study(model: &ModelConfig, seqs: &[(u64, u64)], n_requests: u64) -> Vec<AlternativeRow> {
    let systems = [
        System::dgx_base(),
        System::dgx_cpu(),
        System::two_dgx(),
        System::dgx_attacc_full(),
    ];
    // Sequence cells run in parallel; the system loop inside each cell is
    // serial because bars are normalized to the cell's DGX_Base.
    let per_seq = SweepRunner::from_env().map(seqs, |&(l_in, l_out)| {
        let mut rows = Vec::new();
        let mut base_tput = None;
        for system in &systems {
            let batch = max_feasible_batch(system, model, l_in, l_out, None).max(1);
            let exec = SystemExecutor::new(system.clone(), model);
            let (time, _) = analytic_serve(&exec, l_in, l_out, n_requests, batch);
            let tput = (n_requests * l_out) as f64 / time;
            let base = *base_tput.get_or_insert(tput);
            rows.push(AlternativeRow {
                system: system.name(),
                l_in,
                l_out,
                batch,
                normalized_throughput: tput / base,
            });
        }
        rows
    });
    per_seq.into_iter().flatten().collect()
}

// ------------------------------------------------------------ §8 GQA/MQA

/// One row of the GQA/MQA ablation (§8).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct GqaRow {
    /// Heads sharing one KV pair.
    pub group_size: u32,
    /// `DGX+AttAccs` speedup over `DGX_Base` on the attention layer alone.
    pub attention_speedup: f64,
    /// The same speedup with the §8 systolic GEMV-unit extension (KV
    /// shared across the group's query heads inside AttAcc too).
    pub systolic_speedup: f64,
}

/// §8: AttAcc's attention advantage shrinks as the GQA group grows,
/// because the GPU reuses shared KV through its caches while the default
/// AttAcc streams KV once per query head. The systolic extension restores
/// the advantage at extra area cost.
#[must_use]
pub fn gqa_ablation(model: &ModelConfig, batch: u64, l: u64, group_sizes: &[u32]) -> Vec<GqaRow> {
    let gpu = System::dgx_base().gpu;
    let attacc = attacc_pim::AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    let systolic = attacc_pim::AttAccDevice::paper_40_stacks(GemvPlacement::Bank).with_systolic();
    SweepRunner::from_env().map(group_sizes, |&g| {
            let variant = if g == 1 {
                AttentionVariant::Mha
            } else if g == model.n_head {
                AttentionVariant::Mqa
            } else {
                AttentionVariant::Gqa { group_size: g }
            };
            let m = model.with_attention(variant);
            let wl = StageWorkload::uniform(&m, Phase::gen(l), batch);
            let attn_op = wl.attention_op().expect("stage has attention");
            // GPU: KV read once per KV head (cache reuse).
            let gpu_s = gpu.device.op_time_s(attn_op) * f64::from(m.n_decoder);
            // AttAcc: KV streamed once per query head (plain) or once per
            // KV head (systolic).
            let pim_s = attacc.attention_decoder_time(&m, &[(batch, l)], true).total_s
                * f64::from(m.n_decoder);
            let sys_s = systolic.attention_decoder_time(&m, &[(batch, l)], true).total_s
                * f64::from(m.n_decoder);
            GqaRow {
                group_size: g,
                attention_speedup: gpu_s / pim_s,
                systolic_speedup: gpu_s / sys_s,
            }
        })
}

// ------------------------------------------------ §6.1 batch-level pipe

/// One row of the batch-level pipelining ablation (§6.1, Fig. 11(c)).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BatchPipeRow {
    /// Strategy label.
    pub strategy: String,
    /// Batch size per concurrently resident batch.
    pub batch_per_stream: u64,
    /// Steady-state tokens per second.
    pub tokens_per_s: f64,
}

/// §6.1's rejected alternative: overlap the FC layers of batch A with the
/// attention of batch B. Both batches' KV must be resident, halving each
/// batch — which degrades the FC throughput more than the overlap gains.
#[must_use]
pub fn batch_pipelining_ablation(model: &ModelConfig, l_in: u64, l_out: u64) -> Vec<BatchPipeRow> {
    let system = System::dgx_attacc_full();
    let exec = SystemExecutor::new(system.clone(), model);
    // Rounded down to even so the two half batches split it exactly.
    let full = (max_feasible_batch(&system, model, l_in, l_out, None).max(2) / 2) * 2;

    // Head-level pipelining (the adopted design): one batch of `full`.
    let groups = steady_state_groups(full, l_in, l_out);
    let adopted = full as f64 / exec.gen_stage(&groups).latency_s;

    // Batch-level pipelining: two batches of `full/2`; per period both a
    // full FC pass and a full attention pass of a half batch complete, and
    // they overlap: period = max(non-attention time, attention time).
    let half = full / 2;
    let d = exec.gen_stage_detail(&steady_state_groups(half, l_in, l_out));
    let non_attn = d.fc_s + d.other_s + d.comm_s;
    let period = non_attn.max(d.attn_s);
    let batch_level = if period > 0.0 { half as f64 / period } else { 0.0 };

    vec![
        BatchPipeRow {
            strategy: "head-level pipelining (adopted)".into(),
            batch_per_stream: full,
            tokens_per_s: adopted,
        },
        BatchPipeRow {
            strategy: "batch-level pipelining (rejected)".into(),
            batch_per_stream: half,
            tokens_per_s: batch_level,
        },
    ]
}

// ------------------------------------------------- bridge sensitivity

/// One row of the interconnect-sensitivity sweep.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BridgeRow {
    /// Bridge label.
    pub bridge: String,
    /// Bridge bandwidth (GB/s).
    pub bw_gb_s: f64,
    /// Gen-iteration latency on the PIM platform (ms).
    pub iteration_ms: f64,
    /// Slowdown relative to the fastest bridge in the sweep.
    pub slowdown: f64,
}

/// Sensitivity of `DGX+AttAccs` to the xPU↔AttAcc interconnect (§4 notes
/// PCIe, NVLink or CXL all qualify; this quantifies when the choice
/// matters). The per-decoder Q/K/V and output transfers are small
/// relative to the in-stack KV streams (§3.3's 1/128 ratio), so even
/// PCIe-class links cost only a bounded slowdown.
#[must_use]
pub fn bridge_sensitivity(
    model: &ModelConfig,
    batch: u64,
    l: u64,
    bridges: &[attacc_xpu::Interconnect],
) -> Vec<BridgeRow> {
    let mut rows: Vec<BridgeRow> =
        SweepRunner::from_env().map(bridges, |bridge| {
            let mut system = System::dgx_attacc_full();
            system.bridge = bridge.clone();
            let exec = SystemExecutor::new(system, model);
            let t = exec.gen_stage(&[(batch, l)]).latency_s;
            BridgeRow {
                bridge: bridge.name.clone(),
                bw_gb_s: bridge.bw_bytes_per_s / 1e9,
                iteration_ms: t * 1e3,
                slowdown: 0.0,
            }
        });
    let best = rows
        .iter()
        .map(|r| r.iteration_ms)
        .fold(f64::INFINITY, f64::min);
    for r in &mut rows {
        r.slowdown = r.iteration_ms / best;
    }
    rows
}

// ----------------------------------------------------- model scaling

/// One row of the model-scaling study (§7.2's interpretation).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScalingRow {
    /// Model name.
    pub model: String,
    /// Parameter count.
    pub params: u64,
    /// Feasible batch on `DGX_Base` / `DGX+AttAccs`.
    pub batch_base: u64,
    /// Feasible batch on the PIM platform.
    pub batch_pim: u64,
    /// End-to-end speedup of the full PIM platform over `DGX_Base`.
    pub speedup: f64,
}

/// Sweeps model sizes at a fixed sequence shape: small models gain mostly
/// from attention acceleration (batches are already large), big models
/// mostly from capacity relief (§7.2).
#[must_use]
pub fn model_scaling_study(
    models: &[ModelConfig],
    l_in: u64,
    l_out: u64,
    n_requests: u64,
) -> Vec<ScalingRow> {
    SweepRunner::from_env().map(models, |m| {
            let base_sys = System::dgx_base();
            let pim_sys = System::dgx_attacc_full();
            let b_base = max_feasible_batch(&base_sys, m, l_in, l_out, None).max(1);
            let b_pim = max_feasible_batch(&pim_sys, m, l_in, l_out, None).max(1);
            let t_base = analytic_serve(
                &SystemExecutor::new(base_sys, m),
                l_in,
                l_out,
                n_requests,
                b_base,
            )
            .0;
            let t_pim = analytic_serve(
                &SystemExecutor::new(pim_sys, m),
                l_in,
                l_out,
                n_requests,
                b_pim,
            )
            .0;
            ScalingRow {
                model: m.name.clone(),
                params: m.n_params(),
                batch_base: b_base,
                batch_pim: b_pim,
                speedup: t_base / t_pim,
            }
        })
}

// ------------------------------------------------------ §8 training

/// One row of the training-implication ablation (§8).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TrainingRow {
    /// Phase label.
    pub phase: String,
    /// Arithmetic intensity of the phase's attention (FLOPs/byte).
    pub attention_op_b: f64,
    /// Whether the attention is memory-bound on the DGX.
    pub memory_bound: bool,
    /// AttAcc speedup (or slowdown, < 1) for the phase's attention.
    pub attacc_speedup: f64,
}

/// §8: pre-training processes all tokens concurrently with masking —
/// compute-intensive, unsuitable for AttAcc — while RLHF-style
/// fine-tuning contains memory-intensive generation stages that AttAcc
/// accelerates like inference.
#[must_use]
pub fn training_ablation(model: &ModelConfig, batch: u64, seq: u64) -> Vec<TrainingRow> {
    let gpu = System::dgx_base().gpu;
    let attacc = attacc_pim::AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
    let mut rows = Vec::new();

    // Pre-training forward pass: a Sum-shaped attention (q_rows = L).
    let pre = StageWorkload::uniform(model, Phase::sum(seq), batch);
    let pre_attn = pre.attention_op().expect("attention present");
    let gpu_pre = gpu.device.op_time_s(pre_attn);
    // On AttAcc the same op is compute-bound on the meagre GEMV arrays.
    let attacc_pre = (pre_attn.traffic().kv_bytes as f64 / attacc.internal_bandwidth())
        .max(pre_attn.flops() as f64 / attacc.peak_flops());
    rows.push(TrainingRow {
        phase: "pre-training forward".into(),
        attention_op_b: pre_attn.op_per_byte().unwrap_or(0.0),
        memory_bound: gpu.device.is_memory_bound(pre_attn),
        attacc_speedup: gpu_pre / attacc_pre,
    });

    // RLHF rollout: ordinary generation, memory-intensive.
    let gen = StageWorkload::uniform(model, Phase::gen(seq), batch);
    let gen_attn = gen.attention_op().expect("attention present");
    let gpu_gen = gpu.device.op_time_s(gen_attn);
    let attacc_gen = attacc.attention_decoder_time(model, &[(batch, seq)], true).total_s;
    rows.push(TrainingRow {
        phase: "RLHF rollout (generation)".into(),
        attention_op_b: gen_attn.op_per_byte().unwrap_or(0.0),
        memory_bound: gpu.device.is_memory_bound(gen_attn),
        attacc_speedup: gpu_gen / attacc_gen,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> ModelConfig {
        ModelConfig::gpt3_175b()
    }

    #[test]
    fn steady_state_groups_cover_batch_and_range() {
        let g = steady_state_groups(37, 100, 80);
        assert_eq!(g.iter().map(|x| x.0).sum::<u64>(), 37);
        assert!(g.iter().all(|&(_, l)| l > 100 && l <= 180));
        assert!(steady_state_groups(0, 10, 10).is_empty());
    }

    #[test]
    fn fig2_corner_cells() {
        // Fig. 2: (L_in=2, L_out=2) → 50.0%; (2048, 2) → 4.4%;
        // (32, 32) → 96.4%.
        let sys = System::dgx_base();
        let m = gpt3();
        let f = |li, lo| gen_stage_fraction(&sys, &m, li, lo) * 100.0;
        let c22 = f(2, 2);
        assert!((c22 - 50.0).abs() < 3.0, "(2,2) = {c22}%");
        let c2048 = f(2048, 2);
        assert!((c2048 - 4.4).abs() < 2.5, "(2048,2) = {c2048}%");
        let c32 = f(32, 32);
        assert!(c32 > 93.0, "(32,32) = {c32}%");
        let big = f(2048, 2048);
        assert!(big > 98.0, "(2048,2048) = {big}%");
    }

    #[test]
    fn fig3_attention_stays_left_of_ridge() {
        let rows = roofline_rows(&System::dgx_base(), &gpt3(), 2048, &[1, 64, 256]);
        for r in rows.iter().filter(|r| r.label.contains("Gen attention")) {
            assert!(r.memory_bound, "{}", r.label);
            assert!(r.op_per_byte < 2.0);
        }
        let fc1 = rows.iter().find(|r| r.label == "Gen FC b=1").unwrap();
        let fc256 = rows.iter().find(|r| r.label == "Gen FC b=256").unwrap();
        assert!(fc256.op_per_byte > 100.0 * fc1.op_per_byte);
    }

    #[test]
    fn fig4_throughput_grows_sublinearly() {
        let m = gpt3();
        let rows = batching_study(&System::dgx_base(), &m, 2048, 512, &[1, 16, 64, 256]);
        // Throughput rises with batch…
        for w in rows.windows(2) {
            assert!(w[1].tokens_per_s > w[0].tokens_per_s);
        }
        // …energy per token falls…
        assert!(rows[3].energy_per_token_j < rows[0].energy_per_token_j / 3.0);
        // …and the attention share rises.
        assert!(rows[3].attn_frac > rows[0].attn_frac);
        // Batch 256 at (2048, 512) exceeds DGX capacity (dotted bar).
        assert!(rows[3].exceeds_dgx_capacity);
        assert!(!rows[0].exceeds_dgx_capacity);
    }

    #[test]
    fn fig7_bank_wins_edap() {
        let rows = placement_study(&gpt3(), 50, 4096);
        assert_eq!(rows.len(), 3);
        let bank = rows.iter().find(|r| r.placement == "AttAcc_bank").unwrap();
        let bg = rows.iter().find(|r| r.placement == "AttAcc_BG").unwrap();
        let buffer = rows.iter().find(|r| r.placement == "AttAcc_buffer").unwrap();
        assert!(bank.rel_throughput > bg.rel_throughput);
        assert!(bg.rel_throughput > buffer.rel_throughput);
        assert!(bank.rel_edap < bg.rel_edap && bg.rel_edap < buffer.rel_edap);
        assert!((bank.area_overhead - 0.1084).abs() < 0.005);
    }

    #[test]
    fn fig14_tighter_slo_widens_gap() {
        let m = gpt3();
        let rows = slo_study(&m, 2048, 2048, &[None, Some(0.050), Some(0.030)]);
        let tput = |slo: Option<f64>, sys: &str| {
            rows.iter()
                .find(|r| r.slo_s == slo && r.system == sys)
                .unwrap()
                .tokens_per_s
        };
        let gap_none = tput(None, "DGX+AttAccs +HL pipe +FF co-proc") / tput(None, "DGX_Large").max(1e-9);
        let gap_30 = tput(Some(0.030), "DGX+AttAccs +HL pipe +FF co-proc")
            / tput(Some(0.030), "DGX_Large").max(1e-9);
        assert!(gap_30 > gap_none, "gap at 30 ms {gap_30} vs unconstrained {gap_none}");
        // The batch annotations shrink with the SLO.
        let b = |slo: Option<f64>, sys: &str| {
            rows.iter().find(|r| r.slo_s == slo && r.system == sys).unwrap().max_batch
        };
        assert!(b(Some(0.030), "DGX_Large") < b(None, "DGX_Large"));
    }

    #[test]
    fn gqa_ablation_shrinks_with_group() {
        let rows = gqa_ablation(&gpt3(), 32, 2048, &[1, 8, 96]);
        assert!(rows[0].attention_speedup > rows[1].attention_speedup);
        assert!(rows[1].attention_speedup > rows[2].attention_speedup);
        // MHA attention speedup is in the vicinity of the bandwidth ratio.
        assert!(rows[0].attention_speedup > 4.0);
        // §8: the systolic extension keeps the gain competitive at every
        // group size.
        for r in &rows {
            assert!(
                r.systolic_speedup > 4.0,
                "group {}: systolic {}",
                r.group_size,
                r.systolic_speedup
            );
            assert!(r.systolic_speedup >= r.attention_speedup * 0.99);
        }
    }

    #[test]
    fn training_ablation_matches_section8() {
        let rows = training_ablation(&gpt3(), 8, 2048);
        let pre = &rows[0];
        let rlhf = &rows[1];
        // Pre-training attention is compute-dense and AttAcc loses there.
        assert!(!pre.memory_bound);
        assert!(pre.attacc_speedup < 1.0, "pre-training speedup {}", pre.attacc_speedup);
        // RLHF generation is memory-bound and AttAcc wins as in inference.
        assert!(rlhf.memory_bound);
        assert!(rlhf.attacc_speedup > 4.0, "rollout speedup {}", rlhf.attacc_speedup);
    }

    #[test]
    fn bridge_choice_matters_but_boundedly() {
        use attacc_xpu::Interconnect;
        let rows = bridge_sensitivity(
            &gpt3(),
            32,
            2048,
            &[
                Interconnect::pcie_gen5(),
                Interconnect::accelerator_bridge(),
                Interconnect::nvlink(),
            ],
        );
        // Faster bridges are never slower.
        let pcie = rows.iter().find(|r| r.bridge.contains("PCIe")).unwrap();
        let nvlink = rows.iter().find(|r| r.bridge == "NVLink").unwrap();
        assert!(pcie.iteration_ms >= nvlink.iteration_ms);
        // §3.3's small external/internal ratio keeps even PCIe's penalty
        // bounded (well under the 9× attention win).
        assert!(pcie.slowdown < 2.0, "PCIe slowdown = {}", pcie.slowdown);
        assert!(nvlink.slowdown < 1.01);
    }

    #[test]
    fn scaling_study_shows_capacity_story() {
        let models = [
            ModelConfig::gpt3_6_7b(),
            ModelConfig::gpt3_13b(),
            ModelConfig::gpt3_175b(),
            ModelConfig::mt_nlg_530b(),
        ];
        let rows = model_scaling_study(&models, 2048, 2048, 500);
        // Every size wins; the batch-relief ratio grows with model size.
        for r in &rows {
            assert!(r.speedup > 1.0, "{}: {}", r.model, r.speedup);
            assert!(r.batch_pim >= r.batch_base);
        }
        let relief = |r: &ScalingRow| r.batch_pim as f64 / r.batch_base as f64;
        assert!(relief(&rows[3]) > relief(&rows[0]));
    }

    #[test]
    fn batch_level_pipelining_loses() {
        // §6.1: "such batch-level pipelining is more harmful than
        // beneficial in our experimental setting."
        let rows = batch_pipelining_ablation(&gpt3(), 2048, 2048);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].tokens_per_s > rows[1].tokens_per_s,
            "adopted {} vs rejected {}",
            rows[0].tokens_per_s,
            rows[1].tokens_per_s
        );
        assert_eq!(rows[1].batch_per_stream * 2, rows[0].batch_per_stream);
    }
}
