//! Plain-text table rendering for the figure/table regenerators.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table with a title, used by the per-figure
/// binaries to print the paper's rows.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Table {
    /// Table title (e.g. `"Figure 13: normalized execution time"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; shorter rows render padded with empty cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Formats a float with magnitude-appropriate precision.
    #[must_use]
    pub fn num(v: f64) -> String {
        if v == 0.0 {
            "0".to_string()
        } else if v.abs() >= 100.0 {
            format!("{v:.0}")
        } else if v.abs() >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    }

    /// Serializes the table to a JSON object (title, headers, rows).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn arr(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|s| esc(s)).collect();
            format!("[{}]", cells.join(", "))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| format!("    {}", arr(r))).collect();
        format!(
            "{{\n  \"title\": {},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]\n}}",
            esc(&self.title),
            arr(&self.headers),
            rows.join(",\n")
        )
    }

    /// Parses a table back from the JSON emitted by [`Table::to_json`].
    ///
    /// A deliberately small parser: it accepts exactly the object shape
    /// `to_json` produces (string title, flat string arrays), which is all
    /// the round-trip tests and tooling need.
    ///
    /// # Errors
    /// Returns a message describing the first malformed construct.
    pub fn from_json(text: &str) -> Result<Table, String> {
        let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
        p.expect_byte(b'{')?;
        let mut title = None;
        let mut headers = None;
        let mut rows = None;
        loop {
            let key = p.parse_string()?;
            p.expect_byte(b':')?;
            match key.as_str() {
                "title" => title = Some(p.parse_string()?),
                "headers" => headers = Some(p.parse_string_array()?),
                "rows" => rows = Some(p.parse_row_array()?),
                other => return Err(format!("unexpected key {other:?}")),
            }
            p.skip_ws();
            match p.next_byte()? {
                b',' => {}
                b'}' => break,
                c => return Err(format!("expected ',' or '}}', got {:?}", char::from(c))),
            }
        }
        Ok(Table {
            title: title.ok_or("missing \"title\"")?,
            headers: headers.ok_or("missing \"headers\"")?,
            rows: rows.ok_or("missing \"rows\"")?,
        })
    }

    /// Serializes the table to CSV (headers then rows; fields containing
    /// commas or quotes are quoted), for plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

/// Cursor over the byte text for [`Table::from_json`].
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        self.skip_ws();
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), String> {
        let got = self.next_byte()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {:?}, got {:?}", char::from(want), char::from(got)))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("bad escape {:?}", char::from(other))),
                    }
                }
                // Multi-byte UTF-8 continues verbatim: re-slice from here.
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && !matches!(self.bytes[end], b'"' | b'\\')
                    {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_string_array(&mut self) -> Result<Vec<String>, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_string()?);
            match self.next_byte()? {
                b',' => {}
                b']' => return Ok(out),
                c => return Err(format!("expected ',' or ']', got {:?}", char::from(c))),
            }
        }
    }

    fn parse_row_array(&mut self) -> Result<Vec<Vec<String>>, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_string_array()?);
            match self.next_byte()? {
                b',' => {}
                b']' => return Ok(out),
                c => return Err(format!("expected ',' or ']', got {:?}", char::from(c))),
            }
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = w.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["long-name".into(), "2.50".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(Table::num(0.0), "0");
        assert_eq!(Table::num(1234.0), "1234");
        assert_eq!(Table::num(7.77159), "7.77");
        assert_eq!(Table::num(0.01234), "0.0123");
    }

    #[test]
    fn csv_escapes_fields() {
        let mut t = Table::new("c", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("j \"quoted\"\n", &["a", "b,\\c"]);
        t.push_row(vec!["1".into(), "2\tx".into()]);
        t.push_row(vec![String::new()]);
        let back = Table::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("r", &["a", "b", "c"]);
        t.push_row(vec!["x".into()]);
        let _ = t.to_string();
    }
}
