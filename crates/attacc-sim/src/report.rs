//! Plain-text table rendering for the figure/table regenerators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table with a title, used by the per-figure
/// binaries to print the paper's rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Figure 13: normalized execution time"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; shorter rows render padded with empty cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Formats a float with magnitude-appropriate precision.
    #[must_use]
    pub fn num(v: f64) -> String {
        if v == 0.0 {
            "0".to_string()
        } else if v.abs() >= 100.0 {
            format!("{v:.0}")
        } else if v.abs() >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    }

    /// Serializes the table to a JSON object (title, headers, rows).
    ///
    /// # Panics
    /// Never panics: the table contains only strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables of strings always serialize")
    }

    /// Serializes the table to CSV (headers then rows; fields containing
    /// commas or quotes are quoted), for plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| field(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = w.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.00".into()]);
        t.push_row(vec!["long-name".into(), "2.50".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(Table::num(0.0), "0");
        assert_eq!(Table::num(1234.0), "1234");
        assert_eq!(Table::num(7.77159), "7.77");
        assert_eq!(Table::num(0.01234), "0.0123");
    }

    #[test]
    fn csv_escapes_fields() {
        let mut t = Table::new("c", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("j", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let back: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new("r", &["a", "b", "c"]);
        t.push_row(vec!["x".into()]);
        let _ = t.to_string();
    }
}
