//! Component-level energy decomposition of a Gen iteration.
//!
//! The executors report a single joule figure per stage; this module
//! decomposes it from first principles — weight reads, KV streams,
//! activation movement, arithmetic, static power, bridge links — so the
//! Fig. 15 energy story can be *explained*, not just totalled. A
//! consistency test pins the decomposition against the executor's figure.

use crate::{SystemExecutor, SystemKind};
use attacc_model::{OpClass, StageWorkload};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Joules of one Gen iteration, by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyBreakdown {
    /// Reading FC weights from DRAM.
    pub weights_j: f64,
    /// Streaming request-private KV matrices (on the GPU's DRAM or
    /// through the PIM units, whichever the platform uses).
    pub kv_j: f64,
    /// Activation movement (inputs/outputs of every layer).
    pub activations_j: f64,
    /// Arithmetic (xPU FLOPs plus PIM MAC/softmax).
    pub compute_j: f64,
    /// Static (idle) power over the iteration.
    pub static_j: f64,
    /// xPU↔AttAcc (or CPU) bridge transfers.
    pub link_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.weights_j
            + self.kv_j
            + self.activations_j
            + self.compute_j
            + self.static_j
            + self.link_j
    }

    /// The largest component's name (for reports).
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        let parts = [
            (self.weights_j, "weights"),
            (self.kv_j, "kv"),
            (self.activations_j, "activations"),
            (self.compute_j, "compute"),
            (self.static_j, "static"),
            (self.link_j, "link"),
        ];
        parts
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite energies"))
            .expect("non-empty")
            .1
    }
}

/// Decomposes the energy of one Gen iteration over `(count, context)`
/// groups on `exec`'s platform.
#[must_use]
pub fn energy_breakdown(exec: &SystemExecutor, groups: &[(u64, u64)]) -> EnergyBreakdown {
    let groups: Vec<(u64, u64)> = groups.iter().copied().filter(|&(n, _)| n > 0).collect();
    if groups.is_empty() {
        return EnergyBreakdown::default();
    }
    let model = exec.model();
    let system = exec.system();
    let wl = StageWorkload::gen_with_contexts(model, &groups);
    let gpu = &system.gpu;
    let detail = exec.gen_stage_detail(&groups);
    let elapsed = detail.total_s;

    let mut out = EnergyBreakdown {
        static_j: gpu.energy.static_w * elapsed,
        ..EnergyBreakdown::default()
    };

    let dram_j = |bytes: f64| gpu.energy.dram_pj_per_bit * 1e-12 * bytes * 8.0;
    let is_pim = matches!(system.kind, SystemKind::DgxAttAcc { .. });

    for (op, n) in wl.iter_unique_ops() {
        let reps = n as f64;
        let t = op.traffic();
        let flops = op.flops() as f64 * reps;
        match op.class() {
            OpClass::Attention => {
                // PIM platforms charge attention through the device model
                // below; GPU and CPU offload both stream KV through DRAM
                // at the same per-bit cost.
                if !is_pim {
                    out.kv_j += dram_j(t.kv_bytes as f64 * reps);
                    out.activations_j += dram_j(t.act_bytes as f64 * reps);
                    out.compute_j += gpu.energy.pj_per_flop * 1e-12 * flops;
                }
            }
            _ => {
                out.weights_j += dram_j(t.weight_bytes as f64 * reps);
                out.activations_j += dram_j(t.act_bytes as f64 * reps);
                out.kv_j += dram_j(t.kv_bytes as f64 * reps);
                out.compute_j += gpu.energy.pj_per_flop * 1e-12 * flops;
            }
        }
    }

    if let Some(attacc) = &system.attacc {
        let attn = attacc.attention_decoder_time(model, &groups, true);
        out.kv_j += attn.energy_j * f64::from(model.n_decoder);
        out.static_j += 100.0 * elapsed; // AttAcc board idle power
        // Bridge transfers: Q/K/V in, outputs back, per decoder.
        let rows: u64 = groups.iter().map(|g| g.0).sum();
        let kv_width = u64::from(model.kv_heads()) * model.d_head;
        let bridge_bytes = rows
            * (2 * model.d_emb + 2 * kv_width)
            * model.dtype.bytes()
            * u64::from(model.n_decoder);
        out.link_j += gpu.energy.link_j(bridge_bytes as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;
    use attacc_model::ModelConfig;
    use attacc_serving::StageExecutor;

    fn breakdown(system: System, groups: &[(u64, u64)]) -> (EnergyBreakdown, f64) {
        let m = ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(system, &m);
        let b = energy_breakdown(&exec, groups);
        let reported = exec.gen_stage(groups).energy_j;
        (b, reported)
    }

    #[test]
    fn decomposition_matches_executor_on_base() {
        let (b, reported) = breakdown(System::dgx_base(), &[(32, 3072)]);
        let err = (b.total_j() - reported).abs() / reported;
        assert!(err < 0.10, "parts {} vs reported {reported}", b.total_j());
    }

    #[test]
    fn decomposition_matches_executor_on_pim() {
        let (b, reported) = breakdown(System::dgx_attacc_full(), &[(32, 3072)]);
        let err = (b.total_j() - reported).abs() / reported;
        assert!(err < 0.15, "parts {} vs reported {reported}", b.total_j());
    }

    #[test]
    fn kv_dominates_dynamic_energy_at_long_context() {
        // Fig. 15's mechanism: at long contexts and real batch sizes the
        // KV stream is the top *dynamic* consumer on the baseline (static
        // idle power scales with the very latency the KV stream causes).
        let (b, _) = breakdown(System::dgx_base(), &[(64, 3072)]);
        assert!(b.kv_j > b.weights_j, "kv {} vs weights {}", b.kv_j, b.weights_j);
        assert!(b.kv_j > b.activations_j && b.kv_j > b.compute_j && b.kv_j > b.link_j);
    }

    #[test]
    fn pim_shrinks_the_kv_component() {
        let (base, _) = breakdown(System::dgx_base(), &[(32, 3072)]);
        let (pim, _) = breakdown(System::dgx_attacc_full(), &[(32, 3072)]);
        assert!(
            pim.kv_j < 0.35 * base.kv_j,
            "pim kv {} vs base kv {}",
            pim.kv_j,
            base.kv_j
        );
        // Weight-read energy is identical: same FC work on the same GPU.
        assert!((pim.weights_j - base.weights_j).abs() / base.weights_j < 0.01);
    }

    #[test]
    fn empty_groups_are_zero() {
        let m = ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(System::dgx_base(), &m);
        assert_eq!(energy_breakdown(&exec, &[]).total_j(), 0.0);
    }
}
