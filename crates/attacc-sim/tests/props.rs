//! Property-based tests for the system-level simulator.

use attacc_model::ModelConfig;
use attacc_serving::StageExecutor;
use attacc_sim::breakdown::energy_breakdown;
use attacc_sim::experiment::steady_state_groups;
use attacc_sim::sweep::speedup_grid;
use attacc_sim::{System, SystemExecutor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The energy decomposition reproduces the executor's total on every
    /// platform and batch shape.
    #[test]
    fn breakdown_sums_to_reported_energy(b in 1u64..96, l in 256u64..4000) {
        let m = ModelConfig::gpt3_175b();
        for system in [System::dgx_base(), System::dgx_large(), System::dgx_attacc_full()] {
            let exec = SystemExecutor::new(system.clone(), &m);
            let groups = [(b, l)];
            let parts = energy_breakdown(&exec, &groups).total_j();
            let reported = exec.gen_stage(&groups).energy_j;
            let err = (parts - reported).abs() / reported;
            prop_assert!(err < 0.15, "{}: parts {parts} vs {reported}", system.name());
        }
    }

    /// Steady-state groups always cover the batch exactly and stay within
    /// the context range.
    #[test]
    fn steady_groups_partition_batch(b in 1u64..512, l_in in 1u64..4096, l_out in 1u64..4096) {
        let g = steady_state_groups(b, l_in, l_out);
        prop_assert_eq!(g.iter().map(|x| x.0).sum::<u64>(), b);
        for &(n, l) in &g {
            prop_assert!(n > 0);
            prop_assert!(l > l_in && l <= l_in + l_out, "l = {l}");
        }
    }

    /// The speedup grid is ≥ 1 everywhere and non-decreasing along the
    /// output-length axis at fixed prompt length.
    #[test]
    fn speedup_monotone_in_output_length(seed in 0u8..4) {
        let m = ModelConfig::gpt3_175b();
        let lens = match seed {
            0 => [256u64, 1024],
            1 => [512, 2048],
            2 => [128, 512],
            _ => [1024, 2048],
        };
        let cells = speedup_grid(&m, &lens, 100);
        let at = |li, lo| cells.iter().find(|c| c.l_in == li && c.l_out == lo).unwrap().speedup;
        for &li in &lens {
            prop_assert!(at(li, lens[1]) >= at(li, lens[0]) * 0.98);
        }
        for c in &cells {
            prop_assert!(c.speedup >= 0.98, "cell {c:?}");
        }
    }

    /// Gen-stage cost decomposes over disjoint batches: the union is never
    /// cheaper than the bigger part and never dearer than the sum.
    #[test]
    fn gen_stage_subadditive(a in 1u64..64, b in 1u64..64, l in 256u64..3000) {
        let m = ModelConfig::gpt3_175b();
        let exec = SystemExecutor::new(System::dgx_attacc_full(), &m);
        let ta = exec.gen_stage(&[(a, l)]).latency_s;
        let tb = exec.gen_stage(&[(b, l)]).latency_s;
        let tu = exec.gen_stage(&[(a + b, l)]).latency_s;
        prop_assert!(tu >= ta.max(tb) * 0.999);
        prop_assert!(tu <= (ta + tb) * 1.001);
    }
}
