//! The trace file format: one [`AttInst`] per line, round-trippable.
//!
//! A trace is plain text. Blank lines and lines starting with `#` are
//! comments; every other line is the canonical [`std::fmt::Display`]
//! form of one instruction — `opcode key=value ...` with the keys in a
//! fixed order and float vectors comma-separated in Rust's shortest
//! round-trip notation (`{}` on `f32` prints the shortest decimal that
//! parses back to the same bits). The parser is strict: unknown
//! opcodes, missing or re-ordered keys, trailing garbage, and
//! non-finite floats (`NaN`/`inf` never appear in a well-formed trace)
//! are all errors naming the offending line. Strictness is what makes
//! `parse(format(t)) == t` and `format(parse(s)) == s` both hold
//! byte-for-byte — the property the round-trip suite pins.

use attacc_pim::AttInst;
use std::fmt;
use std::str::FromStr;

/// A compiled instruction trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    /// Instructions in execution order.
    pub insts: Vec<AttInst>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the trace holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Renders the trace in the canonical text format (no comments, one
    /// instruction per line, trailing newline).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for inst in &self.insts {
            out.push_str(&inst.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a trace from text.
    ///
    /// # Errors
    /// Returns a [`TraceParseError`] naming the first malformed line.
    pub fn parse(text: &str) -> Result<Trace, TraceParseError> {
        let mut insts = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let inst = parse_inst(line).map_err(|message| TraceParseError {
                line: i + 1,
                message,
            })?;
            insts.push(inst);
        }
        Ok(Trace { insts })
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl FromStr for Trace {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Trace, TraceParseError> {
        Trace::parse(s)
    }
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Pulls the fields of one line, checking key names arrive in the
/// canonical order.
struct Fields<'a> {
    opcode: &'a str,
    rest: std::str::SplitWhitespace<'a>,
}

impl<'a> Fields<'a> {
    fn of(line: &'a str) -> Result<Fields<'a>, String> {
        let mut rest = line.split_whitespace();
        let opcode = rest.next().ok_or_else(|| "empty instruction".to_string())?;
        Ok(Fields { opcode, rest })
    }

    /// The raw value of the next field, which must be named `key`.
    fn value(&mut self, key: &str) -> Result<&'a str, String> {
        let tok = self
            .rest
            .next()
            .ok_or_else(|| format!("missing field {key}"))?;
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))?;
        if k != key {
            return Err(format!("expected field {key}, got {k}"));
        }
        Ok(v)
    }

    fn u64(&mut self, key: &str) -> Result<u64, String> {
        let v = self.value(key)?;
        v.parse().map_err(|_| format!("bad {key} value {v:?}"))
    }

    fn u32(&mut self, key: &str) -> Result<u32, String> {
        let v = self.value(key)?;
        v.parse().map_err(|_| format!("bad {key} value {v:?}"))
    }

    fn usize(&mut self, key: &str) -> Result<usize, String> {
        let v = self.value(key)?;
        v.parse().map_err(|_| format!("bad {key} value {v:?}"))
    }

    /// A comma-separated finite-f32 vector (empty value = empty vector).
    fn vec_f32(&mut self, key: &str) -> Result<Vec<f32>, String> {
        let v = self.value(key)?;
        if v.is_empty() {
            return Ok(Vec::new());
        }
        v.split(',')
            .map(|s| {
                let x: f32 = s.parse().map_err(|_| format!("bad float {s:?} in {key}"))?;
                if !x.is_finite() {
                    return Err(format!("non-finite value {s:?} in {key}"));
                }
                Ok(x)
            })
            .collect()
    }

    /// Asserts the line is exhausted.
    fn end(mut self) -> Result<(), String> {
        match self.rest.next() {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected trailing field {extra:?}")),
        }
    }
}

/// Parses one canonical trace line into an instruction.
///
/// # Errors
/// Returns a message describing the first malformed field.
pub fn parse_inst(line: &str) -> Result<AttInst, String> {
    let mut f = Fields::of(line)?;
    let inst = match f.opcode {
        "set_model" => AttInst::SetModel {
            n_head: f.u32("n_head")?,
            d_head: f.usize("d_head")?,
            max_l: f.u64("max_l")?,
        },
        "admit" => AttInst::UpdateRequest { request: f.u64("req")?, remove: false },
        "retire" => AttInst::UpdateRequest { request: f.u64("req")?, remove: true },
        "append" => AttInst::AppendKv {
            request: f.u64("req")?,
            head: f.u32("head")?,
            k: f.vec_f32("k")?,
            v: f.vec_f32("v")?,
        },
        "declare_kv" => AttInst::DeclareKv {
            request: f.u64("req")?,
            head: f.u32("head")?,
            tokens: f.u64("tokens")?,
        },
        "load_q" => AttInst::LoadQ {
            request: f.u64("req")?,
            head: f.u32("head")?,
            q: f.vec_f32("q")?,
        },
        "run" => AttInst::RunAttention { request: f.u64("req")?, head: f.u32("head")? },
        "run_batch" => AttInst::RunAttentionBatch {
            request: f.u64("req")?,
            head0: f.u32("head0")?,
            n_heads: f.u32("n_heads")?,
        },
        "read" => AttInst::ReadOutput { request: f.u64("req")?, head: f.u32("head")? },
        "evict_kv" => AttInst::EvictKv {
            request: f.u64("req")?,
            head: f.u32("head")?,
            keep_last: f.u64("keep_last")?,
        },
        "config_pages" => AttInst::ConfigPages { tokens_per_page: f.u64("tokens_per_page")? },
        "map_page" => AttInst::MapPage {
            request: f.u64("req")?,
            head: f.u32("head")?,
            page: f.u64("page")?,
        },
        "unmap_page" => AttInst::UnmapPage {
            request: f.u64("req")?,
            head: f.u32("head")?,
            page: f.u64("page")?,
        },
        "barrier" => AttInst::Barrier { tag: f.u32("tag")? },
        other => return Err(format!("unknown opcode {other:?}")),
    };
    f.end()?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<AttInst> {
        vec![
            AttInst::SetModel { n_head: 96, d_head: 128, max_l: 2048 },
            AttInst::UpdateRequest { request: 0, remove: false },
            AttInst::AppendKv {
                request: 0,
                head: 3,
                k: vec![0.5, -1.25, 3.0e-8],
                v: vec![0.0, -0.0, 1.0],
            },
            AttInst::DeclareKv { request: 0, head: 3, tokens: 512 },
            AttInst::LoadQ { request: 0, head: 3, q: vec![1.5, f32::MIN_POSITIVE] },
            AttInst::RunAttention { request: 0, head: 3 },
            AttInst::RunAttentionBatch { request: 0, head0: 0, n_heads: 96 },
            AttInst::ReadOutput { request: 0, head: 3 },
            AttInst::EvictKv { request: 0, head: 3, keep_last: 256 },
            AttInst::ConfigPages { tokens_per_page: 64 },
            AttInst::MapPage { request: 0, head: 3, page: 7 },
            AttInst::UnmapPage { request: 0, head: 3, page: 7 },
            AttInst::Barrier { tag: 1 },
            AttInst::UpdateRequest { request: 0, remove: true },
        ]
    }

    #[test]
    fn every_opcode_round_trips() {
        let trace = Trace { insts: all_instructions() };
        let text = trace.to_text();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_text(), text, "format∘parse must be the identity");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\nbarrier tag=0\n  # indented comment\nrun req=1 head=2\n";
        let t: Trace = text.parse().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.insts[1], AttInst::RunAttention { request: 1, head: 2 });
    }

    #[test]
    fn shortest_float_notation_preserves_bits() {
        let vals = [0.1f32, -0.0, 1.0 / 3.0, f32::MAX, f32::MIN_POSITIVE, 2.5e-38];
        let inst = AttInst::LoadQ { request: 0, head: 0, q: vals.to_vec() };
        let back = parse_inst(&inst.to_string()).unwrap();
        let AttInst::LoadQ { q, .. } = back else { panic!("wrong opcode") };
        for (a, b) in vals.iter().zip(&q) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let bad = [
            "warp req=0",                         // unknown opcode
            "run req=0",                          // missing field
            "run head=0 req=0",                   // wrong field order
            "run req=0 head=0 extra=1",           // trailing field
            "run req=-1 head=0",                  // bad integer
            "load_q req=0 head=0 q=1.0,NaN",      // non-finite float
            "load_q req=0 head=0 q=inf",          // non-finite float
            "load_q req=0 head=0 q=1.0,,2.0",     // empty element
            "barrier 7",                          // missing key=
        ];
        for line in bad {
            assert!(parse_inst(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn parse_error_points_at_the_line() {
        let err = Trace::parse("barrier tag=0\nbogus op\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_vectors_round_trip() {
        let inst = AttInst::LoadQ { request: 1, head: 0, q: vec![] };
        assert_eq!(parse_inst(&inst.to_string()).unwrap(), inst);
    }
}
