//! Lowering `attacc-model` graphs plus a decode schedule to traces.
//!
//! The compiler reads the attention op of a [`StageWorkload`] (head
//! count, head dimension, KV dtype) and unrolls a [`DecodeSchedule`]
//! into the instruction stream the device would see: admit → prefill KV
//! → per-step {append, KV-policy maintenance, attention launch} →
//! retire, with a [`AttInst::Barrier`] closing every decode step (the
//! xPU runs the FC layers between barriers).
//!
//! Two payload modes share the same control skeleton:
//!
//! * [`TracePayload::Functional`] carries real vectors — K/V/Q values
//!   drawn from a seeded `splitmix64` stream ([`kv_pair`],
//!   [`q_vector`]) — plus `load_q`/`read` per head, so the trace can
//!   replay through the functional controller and be checked
//!   bit-for-bit against the direct attention path.
//! * [`TracePayload::Timing`] registers KV in bulk (`declare_kv`) and
//!   launches whole head groups (`run_batch`), producing compact traces
//!   at paper scale for the timing executor.
//!
//! KV policies lower to data, not code: [`KvPolicy::SlidingWindow`]
//! becomes `evict_kv` maintenance, [`KvPolicy::Paged`] becomes
//! `config_pages` plus `map_page`/`unmap_page` deltas keeping page 0
//! (the attention sink) and the most recent pages resident. The two are
//! never combined: eviction renumbers resident tokens, which would
//! invalidate page indices.

use crate::Trace;
use attacc_hbm::integrity::splitmix64;
use attacc_model::{ModelConfig, Op, Phase, StageWorkload};
use attacc_pim::AttInst;
use std::collections::BTreeSet;

/// How a request's KV cache is managed across decode steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KvPolicy {
    /// Every token stays resident (the paper's workloads).
    Full,
    /// Sliding-window attention: only the most recent `window` tokens
    /// stay resident; older KV is evicted each step.
    SlidingWindow {
        /// Tokens retained per head.
        window: u64,
    },
    /// Paged (blocked) KV: tokens live in fixed pages of
    /// `tokens_per_page`; attention streams page 0 (the attention sink)
    /// plus the `recent_pages` most recent pages.
    Paged {
        /// Tokens per KV page.
        tokens_per_page: u64,
        /// Most-recent pages kept mapped (in addition to the sink).
        recent_pages: u64,
    },
}

/// One request's decode plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestPlan {
    /// Prompt length (KV resident before the first decode step).
    pub prompt_l: u64,
    /// Decode steps to run (one token generated per step).
    pub decode_steps: u64,
}

/// What the lowered trace carries per instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TracePayload {
    /// Real seeded vectors + per-head `load_q`/`run`/`read`, for
    /// functional replay.
    Functional {
        /// Seed of the `splitmix64` data stream.
        seed: u64,
    },
    /// Bulk `declare_kv` + `run_batch`, for timing replay at scale.
    Timing,
}

/// A batched decode schedule: the workload half of the compiler input
/// (the model graph is the other half).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DecodeSchedule {
    /// One plan per request; request ids are the indices.
    pub requests: Vec<RequestPlan>,
    /// KV-cache policy shared by all requests.
    pub policy: KvPolicy,
    /// Payload mode.
    pub payload: TracePayload,
}

impl DecodeSchedule {
    /// A uniform schedule: `batch` identical requests.
    #[must_use]
    pub fn uniform(
        batch: usize,
        prompt_l: u64,
        decode_steps: u64,
        policy: KvPolicy,
        payload: TracePayload,
    ) -> DecodeSchedule {
        DecodeSchedule {
            requests: vec![RequestPlan { prompt_l, decode_steps }; batch],
            policy,
            payload,
        }
    }
}

fn mix(parts: &[u64]) -> u64 {
    parts.iter().fold(0x243f_6a88_85a3_08d3, |acc, &p| {
        splitmix64(acc ^ p.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    })
}

/// One deterministic f32 in `[-1, 1)` (24 mantissa-safe bits).
fn unit_f32(x: u64) -> f32 {
    ((splitmix64(x) >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0
}

/// The seeded K and V vectors of one token of one head (functional
/// payloads). Exposed so equivalence tests can rebuild the exact
/// operands a compiled trace carries.
#[must_use]
pub fn kv_pair(seed: u64, request: u64, head: u32, token: u64, d: usize) -> (Vec<f32>, Vec<f32>) {
    let base = mix(&[seed, request, u64::from(head), token]);
    let k = (0..d).map(|i| unit_f32(base ^ (i as u64))).collect();
    let v = (0..d).map(|i| unit_f32(base ^ 0x8000_0000 ^ (i as u64))).collect();
    (k, v)
}

/// The seeded Q vector of one head at one decode step (functional
/// payloads).
#[must_use]
pub fn q_vector(seed: u64, request: u64, head: u32, step: u64, d: usize) -> Vec<f32> {
    let base = mix(&[seed, request, u64::from(head), step, 0x5151]);
    (0..d).map(|i| unit_f32(base ^ (i as u64))).collect()
}

/// Pages resident under [`KvPolicy::Paged`] at KV length `len`: page 0
/// (the attention sink) plus the `recent` most recent pages. Empty at
/// `len == 0`.
#[must_use]
pub fn paged_resident(len: u64, tokens_per_page: u64, recent: u64) -> BTreeSet<u64> {
    let mut pages = BTreeSet::new();
    if len == 0 {
        return pages;
    }
    let last = (len - 1) / tokens_per_page.max(1);
    pages.insert(0);
    for back in 0..recent.max(1) {
        if back > last {
            break;
        }
        pages.insert(last - back);
    }
    pages
}

/// Compiles a model graph plus a decode schedule into a trace.
///
/// The head geometry (`n_head`, `d_head`) is read from the attention op
/// of the model's Gen-stage [`StageWorkload`]; the schedule supplies
/// the per-request token plan.
///
/// # Panics
/// Panics if the schedule has no requests, a paged policy has
/// `tokens_per_page == 0`, or a sliding window is zero.
#[must_use]
pub fn compile(model: &ModelConfig, schedule: &DecodeSchedule) -> Trace {
    assert!(!schedule.requests.is_empty(), "schedule needs at least one request");
    match schedule.policy {
        KvPolicy::SlidingWindow { window } => assert!(window > 0, "window must be positive"),
        KvPolicy::Paged { tokens_per_page, recent_pages } => {
            assert!(tokens_per_page > 0, "tokens_per_page must be positive");
            assert!(recent_pages > 0, "recent_pages must be positive");
        }
        KvPolicy::Full => {}
    }

    let max_l = schedule
        .requests
        .iter()
        .map(|r| r.prompt_l + r.decode_steps)
        .max()
        .expect("non-empty");
    let wl = StageWorkload::uniform(
        model,
        Phase::gen(max_l.max(1)),
        schedule.requests.len() as u64,
    );
    let Some(&Op::Attention { n_head, d_head, .. }) = wl.attention_op() else {
        unreachable!("every decoder stage has an attention op");
    };
    let d_head = d_head as usize;

    let mut insts = vec![AttInst::SetModel {
        n_head,
        d_head,
        max_l: max_l.max(1),
    }];
    if let KvPolicy::Paged { tokens_per_page, .. } = schedule.policy {
        insts.push(AttInst::ConfigPages { tokens_per_page });
    }
    for r in 0..schedule.requests.len() as u64 {
        insts.push(AttInst::UpdateRequest { request: r, remove: false });
    }

    // Per-request resident length and mapped pages (all heads move in
    // lockstep, so one copy suffices).
    let mut lens = vec![0u64; schedule.requests.len()];
    let mut mapped: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); schedule.requests.len()];

    let append = |insts: &mut Vec<AttInst>, request: u64, head: u32, token: u64| match schedule
        .payload
    {
        TracePayload::Functional { seed } => {
            let (k, v) = kv_pair(seed, request, head, token, d_head);
            insts.push(AttInst::AppendKv { request, head, k, v });
        }
        TracePayload::Timing => {
            insts.push(AttInst::DeclareKv { request, head, tokens: 1 });
        }
    };

    // KV-policy maintenance after `request`'s length reached `len`.
    let maintain = |insts: &mut Vec<AttInst>,
                    request: u64,
                    len: &mut u64,
                    pages: &mut BTreeSet<u64>| {
        match schedule.policy {
            KvPolicy::Full => {}
            KvPolicy::SlidingWindow { window } => {
                if *len > window {
                    for head in 0..n_head {
                        insts.push(AttInst::EvictKv { request, head, keep_last: window });
                    }
                    *len = window;
                }
            }
            KvPolicy::Paged { tokens_per_page, recent_pages } => {
                let want = paged_resident(*len, tokens_per_page, recent_pages);
                for &page in want.difference(pages) {
                    for head in 0..n_head {
                        insts.push(AttInst::MapPage { request, head, page });
                    }
                }
                for &page in pages.difference(&want) {
                    for head in 0..n_head {
                        insts.push(AttInst::UnmapPage { request, head, page });
                    }
                }
                *pages = want;
            }
        }
    };

    // Prefill: each request ships its prompt KV, then applies the policy.
    for (ri, plan) in schedule.requests.iter().enumerate() {
        let request = ri as u64;
        if plan.prompt_l > 0 {
            match schedule.payload {
                TracePayload::Functional { .. } => {
                    for head in 0..n_head {
                        for token in 0..plan.prompt_l {
                            append(&mut insts, request, head, token);
                        }
                    }
                }
                TracePayload::Timing => {
                    for head in 0..n_head {
                        insts.push(AttInst::DeclareKv {
                            request,
                            head,
                            tokens: plan.prompt_l,
                        });
                    }
                }
            }
            lens[ri] = plan.prompt_l;
        }
        maintain(&mut insts, request, &mut lens[ri], &mut mapped[ri]);
    }
    insts.push(AttInst::Barrier { tag: 0 });

    // Decode: one barrier-delimited step at a time; requests drop out
    // when their plan completes.
    let max_steps = schedule.requests.iter().map(|r| r.decode_steps).max().unwrap_or(0);
    for step in 0..max_steps {
        for (ri, plan) in schedule.requests.iter().enumerate() {
            if step >= plan.decode_steps {
                continue;
            }
            let request = ri as u64;
            let token = plan.prompt_l + step;
            for head in 0..n_head {
                append(&mut insts, request, head, token);
            }
            lens[ri] += 1;
            maintain(&mut insts, request, &mut lens[ri], &mut mapped[ri]);
            match schedule.payload {
                TracePayload::Functional { seed } => {
                    for head in 0..n_head {
                        insts.push(AttInst::LoadQ {
                            request,
                            head,
                            q: q_vector(seed, request, head, step, d_head),
                        });
                    }
                    insts.push(AttInst::RunAttentionBatch { request, head0: 0, n_heads: n_head });
                    for head in 0..n_head {
                        insts.push(AttInst::ReadOutput { request, head });
                    }
                }
                TracePayload::Timing => {
                    insts.push(AttInst::RunAttentionBatch { request, head0: 0, n_heads: n_head });
                }
            }
        }
        insts.push(AttInst::Barrier { tag: (step + 1) as u32 });
    }

    for r in 0..schedule.requests.len() as u64 {
        insts.push(AttInst::UpdateRequest { request: r, remove: true });
    }
    Trace { insts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_model::DataType;

    fn tiny() -> ModelConfig {
        ModelConfig::builder("tiny")
            .decoders(2)
            .embedding(16)
            .heads(2)
            .feedforward(32)
            .vocab(100)
            .max_seq_len(128)
            .dtype(DataType::Fp16)
            .build()
            .unwrap()
    }

    #[test]
    fn functional_trace_has_expected_shape() {
        let sched = DecodeSchedule::uniform(
            2,
            3,
            2,
            KvPolicy::Full,
            TracePayload::Functional { seed: 7 },
        );
        let t = compile(&tiny(), &sched);
        let count = |op: &str| t.insts.iter().filter(|i| i.opcode() == op).count();
        assert_eq!(count("set_model"), 1);
        assert_eq!(count("admit"), 2);
        // 2 requests × 2 heads × (3 prompt + 2 decode) tokens.
        assert_eq!(count("append"), 2 * 2 * 5);
        assert_eq!(count("load_q"), 2 * 2 * 2);
        assert_eq!(count("run_batch"), 2 * 2);
        assert_eq!(count("read"), 2 * 2 * 2);
        assert_eq!(count("barrier"), 3); // prefill + 2 steps
        assert_eq!(count("retire"), 2);
    }

    #[test]
    fn timing_trace_uses_bulk_declarations() {
        let sched = DecodeSchedule::uniform(1, 512, 4, KvPolicy::Full, TracePayload::Timing);
        let t = compile(&tiny(), &sched);
        let count = |op: &str| t.insts.iter().filter(|i| i.opcode() == op).count();
        assert_eq!(count("append"), 0);
        assert_eq!(count("load_q"), 0);
        // Prefill: one declare_kv per head; decode: one per head per step.
        assert_eq!(count("declare_kv"), 2 + 2 * 4);
        assert_eq!(count("run_batch"), 4);
    }

    #[test]
    fn sliding_window_emits_evictions() {
        let sched = DecodeSchedule::uniform(
            1,
            6,
            3,
            KvPolicy::SlidingWindow { window: 4 },
            TracePayload::Timing,
        );
        let t = compile(&tiny(), &sched);
        let evicts = t.insts.iter().filter(|i| i.opcode() == "evict_kv").count();
        // Prefill trims 6 → 4, then every step trims 5 → 4: 4 events × 2 heads.
        assert_eq!(evicts, 4 * 2);
    }

    #[test]
    fn paged_trace_maps_sink_and_recent_pages() {
        let sched = DecodeSchedule::uniform(
            1,
            9,
            1,
            KvPolicy::Paged { tokens_per_page: 4, recent_pages: 1 },
            TracePayload::Timing,
        );
        let t = compile(&tiny(), &sched);
        assert!(t.insts.iter().any(|i| matches!(i, AttInst::ConfigPages { tokens_per_page: 4 })));
        // len 9 → pages {0, 2}; len 10 keeps {0, 2}: no unmap yet.
        let maps = t.insts.iter().filter(|i| i.opcode() == "map_page").count();
        assert_eq!(maps, 2 * 2, "sink + last page, per head");
        assert_eq!(t.insts.iter().filter(|i| i.opcode() == "unmap_page").count(), 0);
    }

    #[test]
    fn paged_resident_tracks_growth() {
        assert!(paged_resident(0, 4, 2).is_empty());
        assert_eq!(paged_resident(4, 4, 2), BTreeSet::from([0]));
        assert_eq!(paged_resident(9, 4, 2), BTreeSet::from([0, 1, 2]));
        assert_eq!(paged_resident(17, 4, 2), BTreeSet::from([0, 3, 4]));
    }

    #[test]
    fn seeded_payloads_are_deterministic_and_finite() {
        let (k1, v1) = kv_pair(9, 1, 2, 3, 8);
        let (k2, _) = kv_pair(9, 1, 2, 3, 8);
        assert_eq!(k1, k2);
        assert_ne!(k1, v1);
        let q = q_vector(9, 1, 2, 3, 8);
        for x in k1.iter().chain(&v1).chain(&q) {
            assert!(x.is_finite() && (-1.0..1.0).contains(x));
        }
    }

    #[test]
    fn heterogeneous_steps_retire_requests_early() {
        let sched = DecodeSchedule {
            requests: vec![
                RequestPlan { prompt_l: 2, decode_steps: 1 },
                RequestPlan { prompt_l: 2, decode_steps: 3 },
            ],
            policy: KvPolicy::Full,
            payload: TracePayload::Timing,
        };
        let t = compile(&tiny(), &sched);
        let runs_req0 = t
            .insts
            .iter()
            .filter(|i| matches!(i, AttInst::RunAttentionBatch { request: 0, .. }))
            .count();
        let runs_req1 = t
            .insts
            .iter()
            .filter(|i| matches!(i, AttInst::RunAttentionBatch { request: 1, .. }))
            .count();
        assert_eq!((runs_req0, runs_req1), (1, 3));
    }
}
