//! Functional trace replay through the [`AttAccController`].
//!
//! Replay is a thin loop: each instruction executes in order against
//! the controller's real dataflow, `read` outputs are collected in
//! trace order, and any failure is wrapped with
//! [`InstError::at_index`] so it names the offending trace line.

use crate::Trace;
use attacc_pim::{AttAccController, AttInst, InstError};

/// What a functional replay produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayOutcome {
    /// Context vectors returned by `read` instructions, in trace order,
    /// keyed by `(request, head)`.
    pub outputs: Vec<((u64, u32), Vec<f32>)>,
    /// Instructions executed.
    pub executed: usize,
}

/// Replays a trace through the functional controller.
///
/// # Errors
/// Returns the controller's error wrapped with the zero-based index of
/// the instruction that raised it ([`InstError::Trace`]).
pub fn replay(ctl: &mut AttAccController, trace: &Trace) -> Result<ReplayOutcome, InstError> {
    let mut outcome = ReplayOutcome::default();
    for (index, inst) in trace.insts.iter().enumerate() {
        let key = match *inst {
            AttInst::ReadOutput { request, head } => Some((request, head)),
            _ => None,
        };
        let result = ctl.execute(inst.clone()).map_err(|e| e.at_index(index))?;
        if let (Some(key), Some(out)) = (key, result) {
            outcome.outputs.push((key, out));
        }
        outcome.executed += 1;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, DecodeSchedule, KvPolicy, TracePayload};
    use attacc_model::{DataType, ModelConfig};
    use attacc_pim::gemv_unit::Precision;
    use attacc_hbm::StackGeometry;

    fn tiny() -> ModelConfig {
        ModelConfig::builder("tiny")
            .decoders(2)
            .embedding(16)
            .heads(2)
            .feedforward(32)
            .vocab(100)
            .max_seq_len(128)
            .dtype(DataType::Fp16)
            .build()
            .unwrap()
    }

    fn controller() -> AttAccController {
        let geom = StackGeometry {
            pseudo_channels: 4,
            bank_groups_per_rank: 2,
            ranks: 2,
            banks_per_group: 2,
            ..StackGeometry::hbm3_8hi()
        };
        AttAccController::new(&geom, 2, Precision::Exact)
    }

    #[test]
    fn compiled_trace_replays_cleanly() {
        let sched = DecodeSchedule::uniform(
            2,
            3,
            2,
            KvPolicy::Full,
            TracePayload::Functional { seed: 11 },
        );
        let trace = compile(&tiny(), &sched);
        let mut ctl = controller();
        let outcome = replay(&mut ctl, &trace).unwrap();
        assert_eq!(outcome.executed, trace.len());
        // 2 requests × 2 heads × 2 steps.
        assert_eq!(outcome.outputs.len(), 8);
        for ((_, _), out) in &outcome.outputs {
            assert_eq!(out.len(), 8); // d_head = 16/2
            assert!(out.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn replay_error_names_the_instruction() {
        let trace = Trace {
            insts: vec![
                AttInst::SetModel { n_head: 1, d_head: 4, max_l: 8 },
                AttInst::UpdateRequest { request: 0, remove: false },
                AttInst::RunAttention { request: 0, head: 0 },
            ],
        };
        let err = replay(&mut controller(), &trace).unwrap_err();
        assert_eq!(err.trace_index(), Some(2));
        assert_eq!(
            err,
            InstError::Trace { index: 2, cause: Box::new(InstError::EmptyKv) }
        );
    }

    #[test]
    fn sliding_window_and_paged_traces_replay() {
        for policy in [
            KvPolicy::SlidingWindow { window: 3 },
            KvPolicy::Paged { tokens_per_page: 2, recent_pages: 1 },
        ] {
            let sched =
                DecodeSchedule::uniform(1, 5, 3, policy, TracePayload::Functional { seed: 3 });
            let trace = compile(&tiny(), &sched);
            let outcome = replay(&mut controller(), &trace).unwrap();
            assert_eq!(outcome.outputs.len(), 2 * 3, "{policy:?}");
        }
    }
}
