//! Trace-driven execution for the AttAcc ISA.
//!
//! The AttAcc paper (§5.2) programs the device through a host-offload
//! instruction set; this crate makes that ISA the *interface to the
//! simulator itself*, in the mold of trace-driven frameworks like
//! PIMSIM-NN: workloads are instruction traces — data, not code — so a
//! new attention variant is a new trace, not a new simulator fork.
//!
//! Three pieces:
//!
//! * **Codec** ([`Trace`], [`parse_inst`]) — a compact one-line-per-
//!   instruction text format that round-trips byte-exactly through
//!   `AttInst`'s stable `Display`.
//! * **Compiler** ([`compile`], [`DecodeSchedule`], [`KvPolicy`]) —
//!   lowers an `attacc-model` transformer graph plus a decode schedule
//!   into a trace, with full, sliding-window, or paged (blocked) KV
//!   residency lowered to eviction/paging instructions.
//! * **Executors** — [`replay`] drives the functional
//!   [`attacc_pim::AttAccController`] (real vectors, bit-for-bit
//!   comparable to the direct attention path); [`execute_timing`]
//!   drives the `attacc-hbm` command engine via
//!   [`attacc_pim::timing_exec::execute_head`] and attributes
//!   time/energy per instruction in a [`TraceReport`].
//!
//! # Example
//!
//! ```
//! use attacc_trace::{compile, execute_timing, DecodeSchedule, KvPolicy,
//!                    TimingConfig, Trace, TracePayload};
//! use attacc_model::ModelConfig;
//!
//! let sched = DecodeSchedule::uniform(2, 128, 4, KvPolicy::Full, TracePayload::Timing);
//! let trace = compile(&ModelConfig::gpt3_175b(), &sched);
//! // The text form round-trips exactly.
//! let again = Trace::parse(&trace.to_text()).unwrap();
//! assert_eq!(again, trace);
//! let report = execute_timing(&TimingConfig::paper(), &trace).unwrap();
//! assert_eq!(report.heads_run, 2 * 4 * 96);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod compiler;
pub mod exec;
pub mod timing;

pub use codec::{parse_inst, Trace, TraceParseError};
pub use compiler::{
    compile, kv_pair, paged_resident, q_vector, DecodeSchedule, KvPolicy, RequestPlan,
    TracePayload,
};
pub use exec::{replay, ReplayOutcome};
pub use timing::{execute_timing, head_cost, HeadCost, OpcodeCost, TimingConfig, TraceReport};
