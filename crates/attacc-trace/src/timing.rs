//! Timing trace replay on the `attacc-hbm` command engine.
//!
//! The timing executor interprets the same instruction stream as the
//! functional controller but carries no data — only per-head KV lengths,
//! the paging state, and the window left by evictions. Every attention
//! launch lowers to [`execute_head`] on the event-driven engine (one
//! [`HeadJob`] per head over the *visible* context), so trace-driven
//! timing is the engine's ground truth by construction, not a parallel
//! model. Costs are attributed per instruction:
//!
//! * `run`/`run_batch` — the attention kernel: engine stream time for
//!   both GEMV halves, pipelined softmax occupancy, and the per-head
//!   overhead (command issue, Q broadcast, output drain). Energy adds
//!   the stream, the three-stage softmax, score movement over the TSVs,
//!   and the Q-in/context-out external transfers — term-for-term the
//!   model of [`attacc_pim::attention::attention_energy_j`].
//! * `append`/`declare_kv` — KV ingest over the external interface:
//!   bytes / external bandwidth, external-depth streaming energy.
//! * `load_q`/`read` — zero-cost markers: their traffic is already
//!   charged by the launch (see above), so pricing them again would
//!   double-count; they remain in the per-opcode table as counts.
//! * `evict_kv`/`config_pages`/`map_page`/`unmap_page`/`barrier` —
//!   bookkeeping, counted but free.
//!
//! Heads execute serially on one stack in trace order; distinct visible
//! lengths are memoized (the engine is deterministic, so a memoized
//! head is bit-identical to a re-simulated one).

use crate::Trace;
use attacc_hbm::{AccessDepth, HbmConfig};
use attacc_pim::timing_exec::execute_head;
use attacc_pim::{AttInst, GemvPlacement, HeadJob, HeadTrace, InstError, SoftmaxUnit};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Hardware configuration the timing executor replays against.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// The HBM stack (geometry, timing, energy).
    pub hbm: HbmConfig,
    /// GEMV-unit placement (bank-level in the paper's design point).
    pub placement: GemvPlacement,
    /// The buffer-die softmax unit.
    pub softmax: SoftmaxUnit,
    /// Bytes per KV element as stored in DRAM (2 = FP16).
    pub kv_dtype_bytes: u64,
}

impl TimingConfig {
    /// The paper's design point: HBM3 8-high, bank-level GEMV units,
    /// FP16 KV.
    #[must_use]
    pub fn paper() -> TimingConfig {
        TimingConfig {
            hbm: HbmConfig::hbm3_8hi(),
            placement: GemvPlacement::Bank,
            softmax: SoftmaxUnit::new(),
            kv_dtype_bytes: 2,
        }
    }
}

/// Cost of one attention head over a visible context of `l` tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadCost {
    /// Serial head time (score + softmax + context + overhead).
    pub time_s: f64,
    /// Head energy (stream + softmax + TSV scores + external Q/out).
    pub energy_j: f64,
    /// The engine-level trace behind the numbers.
    pub trace: HeadTrace,
}

/// Prices one head on the command engine: the single source of truth
/// shared by the trace executor and the direct (non-trace) path, so the
/// two agree bit-for-bit when they schedule the same heads.
#[must_use]
pub fn head_cost(cfg: &TimingConfig, l: u64, d_head: u64) -> HeadCost {
    let job = HeadJob::new(l, d_head, cfg.kv_dtype_bytes);
    let trace = execute_head(&cfg.hbm, cfg.placement, &cfg.softmax, job);
    let ext_pj_bit = cfg.hbm.energy.streaming_pj_per_bit(AccessDepth::External, false);
    let host_bytes = 2 * d_head * cfg.kv_dtype_bytes; // Q in, context out
    let score_bytes = 2 * l * 4; // FP32 scores to and from the softmax unit
    let energy_j = trace.energy_j
        + cfg.softmax.energy_pj(l) * 1e-12
        + score_bytes as f64 * 8.0 * cfg.hbm.energy.tsv_pj_per_bit * 1e-12
        + host_bytes as f64 * 8.0 * ext_pj_bit * 1e-12;
    HeadCost {
        time_s: trace.serial_s(),
        energy_j,
        trace,
    }
}

/// Per-opcode attribution entry of a [`TraceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpcodeCost {
    /// Instructions of this opcode executed.
    pub count: u64,
    /// Time attributed (seconds).
    pub time_s: f64,
    /// Energy attributed (joules).
    pub energy_j: f64,
}

/// Time/energy attribution of one timing replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Instructions executed.
    pub instructions: usize,
    /// Attention heads launched.
    pub heads_run: u64,
    /// Engine stream time of all score GEMVs (s).
    pub score_s: f64,
    /// Softmax occupancy of all heads (s).
    pub softmax_s: f64,
    /// Engine stream time of all context GEMVs (s).
    pub context_s: f64,
    /// Total attention kernel time including per-head overhead (s).
    pub attention_s: f64,
    /// KV-ingest time over the external interface (s).
    pub host_s: f64,
    /// KV bytes shipped over the external interface.
    pub host_bytes: u64,
    /// Total energy (J).
    pub energy_j: f64,
    /// MAC (column) commands issued across all launches.
    pub mac_commands: u64,
    /// Row activations issued across all launches.
    pub activates: u64,
    /// Barriers crossed (xPU↔PIM handoffs).
    pub barriers: u64,
    /// Per-opcode attribution, sorted by opcode mnemonic.
    pub per_opcode: Vec<(&'static str, OpcodeCost)>,
}

impl TraceReport {
    /// End-to-end replay time: attention kernels plus host KV ingest.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.attention_s + self.host_s
    }
}

#[derive(Default)]
struct DeviceState {
    n_head: u32,
    d_head: u64,
    configured: bool,
    requests: HashSet<u64>,
    /// Resident KV length per (request, head).
    lens: HashMap<(u64, u32), u64>,
    tokens_per_page: Option<u64>,
    mapped: HashMap<(u64, u32), BTreeSet<u64>>,
}

impl DeviceState {
    fn check(&self, request: u64, head: u32) -> Result<(), InstError> {
        if !self.configured {
            return Err(InstError::NotConfigured);
        }
        if !self.requests.contains(&request) {
            return Err(InstError::UnknownRequest(request));
        }
        if head >= self.n_head {
            return Err(InstError::UnknownHead(head));
        }
        Ok(())
    }

    /// Tokens an attention launch over this head actually streams.
    fn visible_len(&self, request: u64, head: u32) -> u64 {
        let len = self.lens.get(&(request, head)).copied().unwrap_or(0);
        match self.tokens_per_page {
            None => len,
            Some(tpp) => {
                let Some(pages) = self.mapped.get(&(request, head)) else { return 0 };
                pages
                    .iter()
                    .filter(|&&p| p * tpp < len)
                    .map(|&p| (len - p * tpp).min(tpp))
                    .sum()
            }
        }
    }
}

/// Replays a trace on the command engine, returning the attribution
/// report.
///
/// # Errors
/// Returns the failure wrapped with the zero-based instruction index
/// ([`InstError::Trace`]), exactly as functional replay does.
pub fn execute_timing(cfg: &TimingConfig, trace: &Trace) -> Result<TraceReport, InstError> {
    let mut state = DeviceState::default();
    let mut memo: HashMap<u64, HeadCost> = HashMap::new();
    let mut per_opcode: BTreeMap<&'static str, OpcodeCost> = BTreeMap::new();

    let mut report = TraceReport {
        instructions: 0,
        heads_run: 0,
        score_s: 0.0,
        softmax_s: 0.0,
        context_s: 0.0,
        attention_s: 0.0,
        host_s: 0.0,
        host_bytes: 0,
        energy_j: 0.0,
        mac_commands: 0,
        activates: 0,
        barriers: 0,
        per_opcode: Vec::new(),
    };

    let ext_bw = cfg.hbm.external_bandwidth_bytes_per_s();
    let ext_pj_bit = cfg.hbm.energy.streaming_pj_per_bit(AccessDepth::External, false);

    for (index, inst) in trace.insts.iter().enumerate() {
        let mut time_s = 0.0;
        let mut energy_j = 0.0;
        let mut ingest = |bytes: u64, time_s: &mut f64, energy_j: &mut f64| {
            *time_s += bytes as f64 / ext_bw;
            *energy_j += bytes as f64 * 8.0 * ext_pj_bit * 1e-12;
            report.host_s += bytes as f64 / ext_bw;
            report.host_bytes += bytes;
        };
        let step = |state: &mut DeviceState, request: u64, head: u32, tokens: u64| {
            *state.lens.entry((request, head)).or_insert(0) += tokens;
        };
        let run_one = |state: &DeviceState,
                       memo: &mut HashMap<u64, HeadCost>,
                       report: &mut TraceReport,
                       request: u64,
                       head: u32|
         -> Result<(f64, f64), InstError> {
            let len = state.lens.get(&(request, head)).copied().unwrap_or(0);
            if len == 0 {
                return Err(InstError::EmptyKv);
            }
            let l_eff = state.visible_len(request, head);
            if l_eff == 0 {
                return Err(InstError::NothingMapped);
            }
            let cost = *memo
                .entry(l_eff)
                .or_insert_with(|| head_cost(cfg, l_eff, state.d_head));
            report.heads_run += 1;
            report.score_s += cost.trace.score_s;
            report.softmax_s += cost.trace.softmax_s;
            report.context_s += cost.trace.context_s;
            report.attention_s += cost.time_s;
            report.mac_commands += cost.trace.mac_commands;
            report.activates += cost.trace.activates;
            Ok((cost.time_s, cost.energy_j))
        };

        match *inst {
            AttInst::SetModel { n_head, d_head, .. } => {
                state = DeviceState {
                    n_head,
                    d_head: d_head as u64,
                    configured: true,
                    ..DeviceState::default()
                };
                memo.clear();
            }
            AttInst::UpdateRequest { request, remove } => {
                if !state.configured {
                    return Err(InstError::NotConfigured.at_index(index));
                }
                if remove {
                    if !state.requests.remove(&request) {
                        return Err(InstError::UnknownRequest(request).at_index(index));
                    }
                    state.lens.retain(|&(r, _), _| r != request);
                    state.mapped.retain(|&(r, _), _| r != request);
                } else {
                    state.requests.insert(request);
                }
            }
            AttInst::AppendKv { request, head, .. } => {
                state.check(request, head).map_err(|e| e.at_index(index))?;
                step(&mut state, request, head, 1);
                ingest(2 * state.d_head * cfg.kv_dtype_bytes, &mut time_s, &mut energy_j);
            }
            AttInst::DeclareKv { request, head, tokens } => {
                state.check(request, head).map_err(|e| e.at_index(index))?;
                step(&mut state, request, head, tokens);
                ingest(
                    tokens * 2 * state.d_head * cfg.kv_dtype_bytes,
                    &mut time_s,
                    &mut energy_j,
                );
            }
            AttInst::LoadQ { request, head, .. } | AttInst::ReadOutput { request, head } => {
                state.check(request, head).map_err(|e| e.at_index(index))?;
            }
            AttInst::RunAttention { request, head } => {
                state.check(request, head).map_err(|e| e.at_index(index))?;
                let (t, e) =
                    run_one(&state, &mut memo, &mut report, request, head).map_err(|e| e.at_index(index))?;
                time_s += t;
                energy_j += e;
            }
            AttInst::RunAttentionBatch { request, head0, n_heads } => {
                for head in head0..head0.saturating_add(n_heads) {
                    state.check(request, head).map_err(|e| e.at_index(index))?;
                    let (t, e) = run_one(&state, &mut memo, &mut report, request, head)
                        .map_err(|e| e.at_index(index))?;
                    time_s += t;
                    energy_j += e;
                }
            }
            AttInst::EvictKv { request, head, keep_last } => {
                state.check(request, head).map_err(|e| e.at_index(index))?;
                let len = state.lens.entry((request, head)).or_insert(0);
                *len = (*len).min(keep_last);
            }
            AttInst::ConfigPages { tokens_per_page } => {
                if !state.configured {
                    return Err(InstError::NotConfigured.at_index(index));
                }
                state.tokens_per_page = Some(tokens_per_page.max(1));
            }
            AttInst::MapPage { request, head, page } => {
                if state.tokens_per_page.is_none() {
                    return Err(InstError::PagingNotConfigured.at_index(index));
                }
                state.check(request, head).map_err(|e| e.at_index(index))?;
                state.mapped.entry((request, head)).or_default().insert(page);
            }
            AttInst::UnmapPage { request, head, page } => {
                if state.tokens_per_page.is_none() {
                    return Err(InstError::PagingNotConfigured.at_index(index));
                }
                state.check(request, head).map_err(|e| e.at_index(index))?;
                let removed = state
                    .mapped
                    .get_mut(&(request, head))
                    .is_some_and(|pages| pages.remove(&page));
                if !removed {
                    return Err(InstError::PageNotMapped(page).at_index(index));
                }
            }
            AttInst::Barrier { .. } => {
                report.barriers += 1;
            }
        }

        report.energy_j += energy_j;
        report.instructions += 1;
        let entry = per_opcode.entry(inst.opcode()).or_default();
        entry.count += 1;
        entry.time_s += time_s;
        entry.energy_j += energy_j;
    }

    report.per_opcode = per_opcode.into_iter().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, DecodeSchedule, KvPolicy, TracePayload};
    use attacc_model::{DataType, ModelConfig};

    fn tiny() -> ModelConfig {
        ModelConfig::builder("tiny")
            .decoders(2)
            .embedding(256)
            .heads(2)
            .feedforward(512)
            .vocab(100)
            .max_seq_len(4096)
            .dtype(DataType::Fp16)
            .build()
            .unwrap()
    }

    fn timing_trace(policy: KvPolicy) -> Trace {
        compile(
            &tiny(),
            &DecodeSchedule::uniform(2, 64, 4, policy, TracePayload::Timing),
        )
    }

    #[test]
    fn report_matches_direct_head_schedule() {
        let cfg = TimingConfig::paper();
        let trace = timing_trace(KvPolicy::Full);
        let report = execute_timing(&cfg, &trace).unwrap();
        // The direct path: same heads in the same order, priced by the
        // same engine helper. Bit-exact, not approximately equal.
        let mut want_attention = 0.0f64;
        let mut heads = 0u64;
        for step in 0..4u64 {
            for _request in 0..2 {
                for _head in 0..2 {
                    let cost = head_cost(&cfg, 64 + step + 1, 128);
                    want_attention += cost.time_s;
                    heads += 1;
                }
            }
        }
        assert_eq!(report.heads_run, heads);
        assert_eq!(report.attention_s.to_bits(), want_attention.to_bits());
        assert!(report.host_s > 0.0 && report.energy_j > 0.0);
        assert_eq!(report.barriers, 5);
        assert_eq!(report.instructions, trace.len());
    }

    /// Context lengths long enough to straddle the engine's work
    /// quantum: bank-level parallelism prices every l ≤ 128 identically
    /// (one MAC row per bank), so short-context policies only show up in
    /// the clock once the full path exceeds that granule.
    fn long_trace(policy: KvPolicy) -> Trace {
        compile(
            &tiny(),
            &DecodeSchedule::uniform(2, 1024, 4, policy, TracePayload::Timing),
        )
    }

    #[test]
    fn sliding_window_caps_streamed_context() {
        let cfg = TimingConfig::paper();
        let full = execute_timing(&cfg, &long_trace(KvPolicy::Full)).unwrap();
        let windowed = execute_timing(
            &cfg,
            &long_trace(KvPolicy::SlidingWindow { window: 128 }),
        )
        .unwrap();
        assert!(windowed.attention_s < full.attention_s);
        assert_eq!(windowed.heads_run, full.heads_run);
        // Every windowed launch sees exactly `window` tokens: evictions
        // run before the launch in each decode step.
        let per_head = head_cost(&cfg, 128, 128).time_s;
        let want = per_head * windowed.heads_run as f64;
        assert!((windowed.attention_s - want).abs() < 1e-18);
    }

    #[test]
    fn paged_kv_streams_only_mapped_pages() {
        let cfg = TimingConfig::paper();
        let full = execute_timing(&cfg, &long_trace(KvPolicy::Full)).unwrap();
        let paged = execute_timing(
            &cfg,
            &long_trace(KvPolicy::Paged { tokens_per_page: 128, recent_pages: 1 }),
        )
        .unwrap();
        assert!(paged.attention_s < full.attention_s);
        // Sink page + one recent page: ≤ 256 visible tokens per head.
        let max_cost = head_cost(&cfg, 256, 128).time_s;
        assert!(paged.attention_s <= max_cost * paged.heads_run as f64 + 1e-12);
    }

    #[test]
    fn per_opcode_attribution_sums_to_totals() {
        let cfg = TimingConfig::paper();
        let report = execute_timing(&cfg, &timing_trace(KvPolicy::Full)).unwrap();
        let time: f64 = report.per_opcode.iter().map(|(_, c)| c.time_s).sum();
        let energy: f64 = report.per_opcode.iter().map(|(_, c)| c.energy_j).sum();
        let count: u64 = report.per_opcode.iter().map(|(_, c)| c.count).sum();
        assert_eq!(count as usize, report.instructions);
        assert!((time - report.total_s()).abs() < 1e-12 * time.max(1.0));
        assert!((energy - report.energy_j).abs() < 1e-12 * energy.max(1.0));
        let opcodes: Vec<&str> = report.per_opcode.iter().map(|(o, _)| *o).collect();
        let mut sorted = opcodes.clone();
        sorted.sort_unstable();
        assert_eq!(opcodes, sorted, "attribution is ordered by opcode");
    }

    #[test]
    fn errors_carry_the_instruction_index() {
        let cfg = TimingConfig::paper();
        let trace = Trace {
            insts: vec![
                AttInst::SetModel { n_head: 2, d_head: 128, max_l: 64 },
                AttInst::UpdateRequest { request: 0, remove: false },
                AttInst::RunAttention { request: 0, head: 0 },
            ],
        };
        let err = execute_timing(&cfg, &trace).unwrap_err();
        assert_eq!(err, InstError::EmptyKv.at_index(2));
        let bad_head = Trace {
            insts: vec![
                AttInst::SetModel { n_head: 2, d_head: 128, max_l: 64 },
                AttInst::UpdateRequest { request: 0, remove: false },
                AttInst::DeclareKv { request: 0, head: 9, tokens: 4 },
            ],
        };
        let err = execute_timing(&cfg, &bad_head).unwrap_err();
        assert_eq!(err, InstError::UnknownHead(9).at_index(2));
    }

    #[test]
    fn memoized_heads_match_fresh_simulation() {
        let cfg = TimingConfig::paper();
        let a = head_cost(&cfg, 777, 128);
        let b = head_cost(&cfg, 777, 128);
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }
}
