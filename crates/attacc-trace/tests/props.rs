//! Property-based tests for the trace subsystem: the text codec is a
//! byte-identical round trip over arbitrary compiled traces and
//! arbitrary well-formed instructions, and functional replay of a
//! compiled trace is bit-for-bit the direct attention pipeline.

use attacc_hbm::StackGeometry;
use attacc_pim::numeric::Matrix;
use attacc_pim::{
    AttAccController, AttInst, FaultPlan, GemvMode, MappingPolicy, Precision, ProtectedAttention,
};
use attacc_trace::{
    compile, kv_pair, paged_resident, q_vector, replay, DecodeSchedule, KvPolicy, RequestPlan,
    Trace, TracePayload,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_model(heads: u32, d_head: usize) -> attacc_model::ModelConfig {
    attacc_model::ModelConfig::builder("tiny")
        .decoders(2)
        .embedding(u64::from(heads) * d_head as u64)
        .heads(heads)
        .feedforward(4 * u64::from(heads) * d_head as u64)
        .vocab(100)
        .max_seq_len(256)
        .dtype(attacc_model::DataType::Fp16)
        .build()
        .unwrap()
}

fn small_controller() -> AttAccController {
    let geom = StackGeometry {
        pseudo_channels: 4,
        bank_groups_per_rank: 2,
        ranks: 2,
        banks_per_group: 2,
        ..StackGeometry::hbm3_8hi()
    };
    AttAccController::new(&geom, 2, Precision::Exact)
}

fn arb_policy() -> impl Strategy<Value = KvPolicy> {
    prop_oneof![
        Just(KvPolicy::Full),
        (1u64..6).prop_map(|window| KvPolicy::SlidingWindow { window }),
        (1u64..4, 1u64..3).prop_map(|(tokens_per_page, recent_pages)| KvPolicy::Paged {
            tokens_per_page,
            recent_pages,
        }),
    ]
}

fn arb_schedule() -> impl Strategy<Value = DecodeSchedule> {
    let plan = (1u64..6, 1u64..4)
        .prop_map(|(prompt_l, decode_steps)| RequestPlan { prompt_l, decode_steps });
    let payload = prop_oneof![
        Just(TracePayload::Timing),
        (u64::MIN..=u64::MAX).prop_map(|seed| TracePayload::Functional { seed }),
    ];
    (prop::collection::vec(plan, 1..3), arb_policy(), payload).prop_map(
        |(requests, policy, payload)| DecodeSchedule { requests, policy, payload },
    )
}

/// Finite f32s drawn uniformly from the bit space — subnormals, signed
/// zeros and extreme exponents included, the cases where shortest
/// round-trip printing earns its keep. An all-ones exponent (inf/NaN)
/// has one exponent bit cleared, which lands on a finite pattern.
fn arb_finite_f32() -> impl Strategy<Value = f32> {
    (u32::MIN..=u32::MAX).prop_map(|bits| {
        let bits = if (bits >> 23) & 0xff == 0xff { bits & !(1 << 23) } else { bits };
        f32::from_bits(bits)
    })
}

fn arb_vec_f32() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(arb_finite_f32(), 0..6)
}

fn arb_inst() -> impl Strategy<Value = AttInst> {
    prop_oneof![
        (1u32..8, 1usize..16, 1u64..100)
            .prop_map(|(n_head, d_head, max_l)| AttInst::SetModel { n_head, d_head, max_l }),
        (u64::MIN..=u64::MAX, 0u32..2)
            .prop_map(|(request, remove)| AttInst::UpdateRequest { request, remove: remove == 1 }),
        (0u64..8, 0u32..8, arb_vec_f32(), arb_vec_f32())
            .prop_map(|(request, head, k, v)| AttInst::AppendKv { request, head, k, v }),
        (0u64..8, 0u32..8, 0u64..1000)
            .prop_map(|(request, head, tokens)| AttInst::DeclareKv { request, head, tokens }),
        (0u64..8, 0u32..8, arb_vec_f32())
            .prop_map(|(request, head, q)| AttInst::LoadQ { request, head, q }),
        (0u64..8, 0u32..8).prop_map(|(request, head)| AttInst::RunAttention { request, head }),
        (0u64..8, 0u32..8, 1u32..16).prop_map(|(request, head0, n_heads)| {
            AttInst::RunAttentionBatch { request, head0, n_heads }
        }),
        (0u64..8, 0u32..8).prop_map(|(request, head)| AttInst::ReadOutput { request, head }),
        (0u64..8, 0u32..8, 0u64..1000)
            .prop_map(|(request, head, keep_last)| AttInst::EvictKv { request, head, keep_last }),
        (1u64..100).prop_map(|tokens_per_page| AttInst::ConfigPages { tokens_per_page }),
        (0u64..8, 0u32..8, 0u64..100)
            .prop_map(|(request, head, page)| AttInst::MapPage { request, head, page }),
        (0u64..8, 0u32..8, 0u64..100)
            .prop_map(|(request, head, page)| AttInst::UnmapPage { request, head, page }),
        (u32::MIN..=u32::MAX).prop_map(|tag| AttInst::Barrier { tag }),
    ]
}

/// The tokens a head actually attends over at decode step `step`
/// (0-based), for a request with `prompt_l` prompt tokens: the policy's
/// visibility rule, stated independently of the compiler's incremental
/// evict/map bookkeeping.
fn visible_tokens(policy: KvPolicy, prompt_l: u64, step: u64) -> Vec<u64> {
    let total = prompt_l + step + 1;
    match policy {
        KvPolicy::Full => (0..total).collect(),
        KvPolicy::SlidingWindow { window } => {
            let kept = total.min(window);
            (total - kept..total).collect()
        }
        KvPolicy::Paged { tokens_per_page, recent_pages } => {
            let pages = paged_resident(total, tokens_per_page, recent_pages);
            (0..total).filter(|t| pages.contains(&(t / tokens_per_page))).collect()
        }
    }
}

proptest! {
    /// `parse ∘ format` is the identity on every compiled trace — and
    /// `format ∘ parse` is the identity on its text, so the file format
    /// is canonical in both directions.
    #[test]
    fn compiled_traces_round_trip_byte_identically(
        schedule in arb_schedule(),
        heads in 1u32..3,
        d_head in prop_oneof![Just(4usize), Just(8usize)],
    ) {
        let trace = compile(&tiny_model(heads, d_head), &schedule);
        let text = trace.to_text();
        let back = Trace::parse(&text).unwrap();
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_text(), text);
    }

    /// Every well-formed instruction survives format → parse with its
    /// float payloads bit-identical.
    #[test]
    fn random_instructions_round_trip(insts in prop::collection::vec(arb_inst(), 0..20)) {
        let trace = Trace { insts };
        let text = trace.to_text();
        let back = Trace::parse(&text).unwrap();
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_text(), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Functional replay through the controller is bit-for-bit the
    /// direct `ProtectedAttention` pipeline over the policy's visible
    /// tokens — for full, sliding-window, and paged KV alike.
    #[test]
    fn replay_matches_direct_attention_bit_for_bit(
        policy in arb_policy(),
        seed in u64::MIN..=u64::MAX,
        batch in 1usize..3,
        prompt_l in 1u64..6,
        decode_steps in 1u64..4,
        heads in 1u32..3,
        d_head in prop_oneof![Just(4usize), Just(8usize)],
    ) {
        let schedule = DecodeSchedule::uniform(
            batch, prompt_l, decode_steps, policy, TracePayload::Functional { seed },
        );
        let trace = compile(&tiny_model(heads, d_head), &schedule);

        let mut ctl = small_controller();
        // Flat mapping (no hierarchy) on the exact datapath reproduces
        // the integrity pipeline's arithmetic exactly.
        ctl.set_policies(
            MappingPolicy { levels: vec![], unit_mode: GemvMode::AdderTree },
            MappingPolicy { levels: vec![], unit_mode: GemvMode::Accumulator },
        );
        let outcome = replay(&mut ctl, &trace).unwrap();
        prop_assert_eq!(
            outcome.outputs.len() as u64,
            batch as u64 * decode_steps * u64::from(heads)
        );

        let reference = ProtectedAttention::exact();
        let mut steps_seen: HashMap<(u64, u32), u64> = HashMap::new();
        for ((request, head), got) in &outcome.outputs {
            let step = steps_seen.entry((*request, *head)).or_insert(0);
            let tokens = visible_tokens(policy, prompt_l, *step);
            let l = tokens.len();
            let mut kt = Matrix::zeros(d_head, l);
            let mut v = Matrix::zeros(l, d_head);
            for (j, &tok) in tokens.iter().enumerate() {
                let (kv_k, kv_v) = kv_pair(seed, *request, *head, tok, d_head);
                for r in 0..d_head {
                    kt.set(r, j, kv_k[r]);
                    v.set(j, r, kv_v[r]);
                }
            }
            let q = q_vector(seed, *request, *head, *step, d_head);
            let want = reference.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
            prop_assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            *step += 1;
        }
    }
}
