//! Functional model of the §8 systolic GEMV-unit extension.
//!
//! Under GQA/MQA several query heads share one KV pair. The paper notes
//! that reconfiguring the GEMV units "into a systolic array at a higher
//! area cost" lets AttAcc reuse each streamed KV beat across the group's
//! query vectors. This module implements that dataflow functionally: the
//! unit holds `g` query vectors in its (double-buffered) input registers
//! and, as each matrix beat arrives from the bank, applies it to every
//! resident query before the next beat — one DRAM pass, `g` GEMV results.
//!
//! Tests prove the systolic pass is numerically identical to `g`
//! independent passes of the plain unit (same rounding points per query),
//! which is what justifies charging the KV stream once in the timing
//! model ([`crate::AttAccDevice::with_systolic`]).

use crate::gemv_unit::{GemvMode, GemvUnit};
use crate::numeric::Matrix;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A GEMV unit reconfigured as a systolic array over `g` resident query
/// vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SystolicGemvUnit {
    /// The underlying lane datapath.
    pub base: GemvUnit,
    /// Maximum resident query vectors (the GQA group size it supports).
    pub max_queries: usize,
}

impl SystolicGemvUnit {
    /// Wraps a unit with capacity for `max_queries` resident queries.
    ///
    /// # Panics
    /// Panics if `max_queries` is zero.
    #[must_use]
    pub fn new(base: GemvUnit, max_queries: usize) -> SystolicGemvUnit {
        assert!(max_queries > 0, "systolic unit needs at least one query slot");
        SystolicGemvUnit { base, max_queries }
    }

    /// Streams `m` once and computes `y_q = x_q · m` for every resident
    /// query `x_q`.
    ///
    /// # Panics
    /// Panics if more queries than slots are supplied, if no query is
    /// supplied, or if any query length differs from `m.rows()`.
    #[must_use]
    pub fn gemv_multi(&self, mode: GemvMode, queries: &[Vec<f32>], m: &Matrix) -> Vec<Vec<f32>> {
        assert!(!queries.is_empty(), "at least one query required");
        assert!(
            queries.len() <= self.max_queries,
            "{} queries exceed the {} systolic slots",
            queries.len(),
            self.max_queries
        );
        // Functionally the systolic schedule interleaves queries per beat;
        // since each query owns private accumulators/tree inputs, the
        // arithmetic (and its rounding points) per query is identical to a
        // solo pass — which the tests pin. We therefore compute per query
        // through the same datapath.
        queries
            .iter()
            .map(|q| {
                assert_eq!(q.len(), m.rows(), "query length must equal matrix rows");
                self.base.gemv(mode, q, m)
            })
            .collect()
    }

    /// DRAM beats fetched for a `k × n` matrix serving `q` queries:
    /// one matrix pass regardless of `q` (the whole point), versus
    /// `q` passes for the plain unit.
    #[must_use]
    pub fn beats_fetched(&self, matrix_bytes: u64, prefetch_bytes: u64) -> u64 {
        matrix_bytes.div_ceil(prefetch_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemv_unit::Precision;

    fn sample(k: usize, n: usize) -> Matrix {
        Matrix::from_vec(
            k,
            n,
            (0..k * n)
                .map(|i| ((i * 29 + 11) % 23) as f32 * 0.04 - 0.4)
                .collect(),
        )
    }

    fn queries(g: usize, k: usize) -> Vec<Vec<f32>> {
        (0..g)
            .map(|q| (0..k).map(|i| ((q * 17 + i * 7) % 19) as f32 * 0.1 - 0.9).collect())
            .collect()
    }

    #[test]
    fn systolic_pass_equals_independent_passes() {
        for precision in [Precision::Exact, Precision::Fp16] {
            let base = GemvUnit { lanes: 16, precision };
            let unit = SystolicGemvUnit::new(base, 8);
            let m = sample(24, 40);
            let qs = queries(8, 24);
            for mode in [GemvMode::AdderTree, GemvMode::Accumulator] {
                let multi = unit.gemv_multi(mode, &qs, &m);
                for (q, got) in qs.iter().zip(&multi) {
                    let solo = base.gemv(mode, q, &m);
                    assert_eq!(got, &solo, "{precision:?} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn beat_count_is_group_invariant() {
        let unit = SystolicGemvUnit::new(GemvUnit::new(), 8);
        // 2048×128 FP16 Kᵀ tile: beats depend only on the matrix.
        let beats = unit.beats_fetched(2048 * 128 * 2, 32);
        assert_eq!(beats, 2048 * 128 * 2 / 32);
    }

    #[test]
    #[should_panic(expected = "systolic slots")]
    fn too_many_queries_rejected() {
        let unit = SystolicGemvUnit::new(GemvUnit::new(), 2);
        let m = sample(4, 4);
        let _ = unit.gemv_multi(GemvMode::AdderTree, &queries(3, 4), &m);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_queries_rejected() {
        let unit = SystolicGemvUnit::new(GemvUnit::new(), 2);
        let m = sample(4, 4);
        let _ = unit.gemv_multi(GemvMode::AdderTree, &[], &m);
    }
}
