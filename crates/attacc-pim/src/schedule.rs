//! Lowering a head's attention to the PIM command schedule (§5.1–§5.2).
//!
//! `AttAcc::RunAttention` makes the controller emit, per pseudo-channel:
//!
//! ```text
//! PIM_SET_CONFIG                      (once per mapping change)
//! PIM_WR_GB   (broadcast Q into GEMV buffers)
//! repeat per Kᵀ row:  PIM_ACT_AB ; PIM_MAC_AB × beats ; (precharge)
//! PIM_MV_GB   (scores to the softmax buffer)
//! PIM_SFM     (3-stage softmax)
//! PIM_MV_SB   (weights back to the GEMV buffers)
//! repeat per V row:   PIM_ACT_AB ; PIM_MAC_AB × beats
//! PIM_RD_SB   (context vector to the host)
//! ```
//!
//! [`schedule_head`] produces that sequence with per-command issue counts
//! and a timing/energy roll-up consistent with the engine-level stream
//! model, giving the ISA a concrete cost semantics (and the tests a
//! cross-check against [`crate::timing_exec`]).

use crate::attention::HeadJob;
use crate::{GemvPlacement, SoftmaxUnit};
use attacc_hbm::engine::stream_time_estimate_ps;
use attacc_hbm::{HbmConfig, PimCommand, StreamSpec};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One entry of a head's command schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScheduledCommand {
    /// The PIM command.
    pub command: PimCommand,
    /// How many times it is issued (per pseudo-channel).
    pub count: u64,
    /// Time the phase containing this command occupies (seconds; phases
    /// with zero time piggyback on the surrounding stream).
    pub phase_s: f64,
}

/// A head's complete schedule with roll-up totals.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadSchedule {
    /// Commands in issue order.
    pub commands: Vec<ScheduledCommand>,
    /// Total busy time of the GEMV/softmax pipeline for this head (s).
    pub total_s: f64,
    /// MAC beats issued per pseudo-channel (score + context).
    pub mac_beats_per_pch: u64,
    /// All-bank activations issued per pseudo-channel.
    pub act_ab_per_pch: u64,
}

/// Builds the command schedule of one head on one stack.
///
/// # Panics
/// Panics if the job has zero context length.
#[must_use]
pub fn schedule_head(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    softmax: &SoftmaxUnit,
    job: HeadJob,
) -> HeadSchedule {
    assert!(job.l > 0, "attention over an empty context");
    let g = &hbm.geometry;
    let per_pch_bytes = job.k_bytes() / u64::from(g.pseudo_channels);
    let spec = StreamSpec {
        bytes_per_bank: StreamSpec::uniform(g, per_pch_bytes, 1).bytes_per_bank,
        max_active: placement.max_active_per_pch(hbm),
        depth: placement.depth(),
    };
    let beats: u64 = spec
        .bytes_per_bank
        .iter()
        .map(|b| b.div_ceil(g.prefetch_bytes))
        .sum();
    let rows_per_bank = spec
        .bytes_per_bank
        .iter()
        .map(|b| b.div_ceil(g.row_bytes).max(u64::from(*b > 0)))
        .max()
        .unwrap_or(0);
    let gemv_s = stream_time_estimate_ps(hbm, &spec) as f64 * 1e-12;
    let sfm_s = softmax.pipelined_occupancy_s(job.l);
    let q_bytes = job.d_head * job.kv_dtype_bytes;
    let score_bytes = job.l * 4; // FP32 scores

    let commands = vec![
        ScheduledCommand {
            command: PimCommand::SetConfig,
            count: 1,
            phase_s: 0.0,
        },
        ScheduledCommand {
            command: PimCommand::WrGb { bytes: q_bytes },
            count: 1,
            phase_s: q_bytes as f64 / hbm.external_bandwidth_bytes_per_s(),
        },
        ScheduledCommand {
            command: PimCommand::ActAb { row: 0 },
            count: rows_per_bank,
            phase_s: 0.0, // hidden inside the stream estimate
        },
        ScheduledCommand {
            command: PimCommand::MacAb,
            count: beats,
            phase_s: gemv_s,
        },
        ScheduledCommand {
            command: PimCommand::MvGb { bytes: score_bytes },
            count: 1,
            phase_s: 0.0,
        },
        ScheduledCommand {
            command: PimCommand::Sfm { elems: job.l },
            count: 1,
            phase_s: sfm_s,
        },
        ScheduledCommand {
            command: PimCommand::MvSb { bytes: score_bytes },
            count: 1,
            phase_s: 0.0,
        },
        ScheduledCommand {
            command: PimCommand::ActAb { row: 0 },
            count: rows_per_bank,
            phase_s: 0.0,
        },
        ScheduledCommand {
            command: PimCommand::MacAb,
            count: beats,
            phase_s: gemv_s,
        },
        ScheduledCommand {
            command: PimCommand::RdSb { bytes: q_bytes },
            count: 1,
            phase_s: q_bytes as f64 / hbm.external_bandwidth_bytes_per_s(),
        },
    ];
    let total_s = commands.iter().map(|c| c.phase_s).sum();
    HeadSchedule {
        commands,
        total_s,
        mac_beats_per_pch: 2 * beats,
        act_ab_per_pch: 2 * rows_per_bank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing_exec::execute_head;

    fn setup() -> (HbmConfig, SoftmaxUnit) {
        (HbmConfig::hbm3_8hi(), SoftmaxUnit::new())
    }

    fn job(l: u64) -> HeadJob {
        HeadJob::new(l, 128, 2)
    }

    #[test]
    fn schedule_covers_the_isa() {
        let (hbm, sm) = setup();
        let s = schedule_head(&hbm, GemvPlacement::Bank, &sm, job(2048));
        let kinds: Vec<_> = s.commands.iter().map(|c| std::mem::discriminant(&c.command)).collect();
        // SET_CONFIG, WR_GB, ACT_AB, MAC_AB, MV_GB, SFM, MV_SB, ACT_AB,
        // MAC_AB, RD_SB — all eight distinct commands appear.
        assert_eq!(s.commands.len(), 10);
        assert_eq!(
            kinds.iter().collect::<std::collections::HashSet<_>>().len(),
            8
        );
    }

    #[test]
    fn mac_beats_cover_kv_bytes() {
        let (hbm, sm) = setup();
        let j = job(4096);
        let s = schedule_head(&hbm, GemvPlacement::Bank, &sm, j);
        let bytes =
            s.mac_beats_per_pch * hbm.geometry.prefetch_bytes * u64::from(hbm.geometry.pseudo_channels);
        assert!(bytes >= j.kv_bytes(), "{bytes} < {}", j.kv_bytes());
        assert!(bytes < j.kv_bytes() + (1 << 21), "over-fetch bounded");
    }

    #[test]
    fn schedule_time_matches_engine_execution() {
        let (hbm, sm) = setup();
        for l in [2048u64, 8192] {
            let s = schedule_head(&hbm, GemvPlacement::Bank, &sm, job(l));
            let trace = execute_head(&hbm, GemvPlacement::Bank, &sm, job(l));
            let engine = trace.score_s + trace.softmax_s + trace.context_s;
            let err = (s.total_s - engine).abs() / engine;
            assert!(err < 0.20, "L={l}: schedule {} vs engine {engine}", s.total_s);
        }
    }

    #[test]
    fn activations_scale_with_rows() {
        let (hbm, sm) = setup();
        let small = schedule_head(&hbm, GemvPlacement::Bank, &sm, job(1024));
        let large = schedule_head(&hbm, GemvPlacement::Bank, &sm, job(64 * 1024));
        assert!(large.act_ab_per_pch > small.act_ab_per_pch);
    }

    #[test]
    #[should_panic(expected = "empty context")]
    fn empty_context_rejected() {
        let (hbm, sm) = setup();
        let _ = schedule_head(&hbm, GemvPlacement::Bank, &sm, job(0));
    }
}
