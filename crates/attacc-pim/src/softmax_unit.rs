//! The buffer-die softmax unit (§5.1).
//!
//! 256 FP32 exponent units, adders and multipliers, a comparator tree, an
//! adder tree and one divider, organized as a three-stage pipeline:
//! maximum-value calculation, exponent calculation, normalization. A
//! 512 KB SRAM buffer holds the score vector between the GEMV phases.

use crate::integrity::{flip_f32, FaultPlan};
use crate::numeric::{guard_finite, guard_normalized, GuardError};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Normalization tolerance of the output guard: an f32 adder-tree sum of
/// up to `max_vector_len` probabilities stays within ~1e-5 of 1, so 1e-3
/// leaves three orders of magnitude of no-false-positive margin while
/// still catching any corruption that matters at probability scale.
pub const SOFTMAX_GUARD_TOL: f64 = 1e-3;

/// Functional and timing model of one softmax unit.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SoftmaxUnit {
    /// Parallel FP32 lanes (256 in AttAcc).
    pub lanes: u64,
    /// Clock frequency in GHz (1.3 in AttAcc, §7.1).
    pub clock_ghz: f64,
    /// SRAM buffer capacity in bytes (512 KB).
    pub buffer_bytes: u64,
    /// Energy per element per pipeline stage in picojoules (FP32 op plus
    /// SRAM access at 7 nm).
    pub pj_per_elem_stage: f64,
}

impl Default for SoftmaxUnit {
    fn default() -> Self {
        SoftmaxUnit::new()
    }
}

impl SoftmaxUnit {
    /// The AttAcc configuration.
    #[must_use]
    pub fn new() -> SoftmaxUnit {
        SoftmaxUnit {
            lanes: 256,
            clock_ghz: 1.3,
            buffer_bytes: 512 * 1024,
            pj_per_elem_stage: 2.0,
        }
    }

    /// Runs softmax over `scores` in FP32, mirroring the hardware's three
    /// passes (max, exp with subtraction, normalize).
    #[must_use]
    pub fn compute(&self, scores: &[f32]) -> Vec<f32> {
        if scores.is_empty() {
            return Vec::new();
        }
        // Stage 1: comparator tree finds the maximum.
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Stage 2: exponent units compute exp(s - max); adder tree sums.
        let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        // Stage 3: the divider produces 1/sum; multipliers normalize.
        let inv = 1.0 / sum;
        exps.iter().map(|&e| e * inv).collect()
    }

    /// [`SoftmaxUnit::compute`] with an integrity-layer fault hook: score
    /// reads from the SRAM buffer consult `plan` and flip the planned
    /// bits before the comparator tree sees them. With an empty plan the
    /// arithmetic is identical to [`SoftmaxUnit::compute`].
    #[must_use]
    pub fn compute_with_faults(&self, scores: &[f32], plan: &FaultPlan) -> Vec<f32> {
        if plan.is_empty() {
            return self.compute(scores);
        }
        let flipped: Vec<f32> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| match plan.score_flip(i) {
                Some(bit) => flip_f32(s, bit),
                None => s,
            })
            .collect();
        self.compute(&flipped)
    }

    /// [`SoftmaxUnit::compute`] wrapped in the NaN/Inf/overflow guard:
    /// non-finite scores and denormalized outputs come back as
    /// [`GuardError`]s — *detected* errors the caller can recompute —
    /// instead of silent garbage flowing into the context GEMV.
    ///
    /// On healthy inputs the returned weights are bit-identical to
    /// [`SoftmaxUnit::compute`] (the guard only observes).
    pub fn compute_guarded(&self, scores: &[f32]) -> Result<Vec<f32>, GuardError> {
        guard_finite(scores)?;
        let out = self.compute(scores);
        guard_normalized(&out, SOFTMAX_GUARD_TOL)?;
        Ok(out)
    }

    /// Processing rate in elements per second (one stage).
    #[must_use]
    pub fn throughput_elems_per_s(&self) -> f64 {
        self.lanes as f64 * self.clock_ghz * 1e9
    }

    /// Latency to run all three stages over an `elems`-long score vector.
    /// The stages are pipelined across heads, so steady-state cost is one
    /// pass; the reported latency covers a single un-overlapped vector.
    #[must_use]
    pub fn latency_s(&self, elems: u64) -> f64 {
        let per_stage = (elems as f64 / self.lanes as f64).ceil() / (self.clock_ghz * 1e9);
        3.0 * per_stage
    }

    /// Steady-state (pipelined) occupancy per score vector: one stage pass.
    #[must_use]
    pub fn pipelined_occupancy_s(&self, elems: u64) -> f64 {
        (elems as f64 / self.lanes as f64).ceil() / (self.clock_ghz * 1e9)
    }

    /// Energy of processing `elems` score elements (all three stages), pJ.
    #[must_use]
    pub fn energy_pj(&self, elems: u64) -> f64 {
        3.0 * self.pj_per_elem_stage * elems as f64
    }

    /// Maximum score-vector length the 512 KB buffer can hold (FP32 in and
    /// out simultaneously → 8 bytes per element).
    #[must_use]
    pub fn max_vector_len(&self) -> u64 {
        self.buffer_bytes / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::softmax_ref;

    #[test]
    fn matches_reference_softmax() {
        let unit = SoftmaxUnit::new();
        let scores: Vec<f32> = (0..300).map(|i| ((i * 37) % 100) as f32 * 0.1 - 5.0).collect();
        let got = unit.compute(&scores);
        let mut want: Vec<f64> = scores.iter().map(|&s| f64::from(s)).collect();
        softmax_ref(&mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-6);
        }
    }

    #[test]
    fn output_sums_to_one() {
        let unit = SoftmaxUnit::new();
        let out = unit.compute(&[5.0, -3.0, 0.0, 100.0]);
        let sum: f32 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(SoftmaxUnit::new().compute(&[]).is_empty());
    }

    #[test]
    fn large_scores_do_not_overflow() {
        let out = SoftmaxUnit::new().compute(&[3.0e4, 3.0e4]);
        assert!((out[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn latency_scales_with_length() {
        let unit = SoftmaxUnit::new();
        let short = unit.latency_s(256);
        let long = unit.latency_s(2560);
        assert!((long / short - 10.0).abs() < 1e-9);
        assert!(unit.pipelined_occupancy_s(2560) < long);
    }

    #[test]
    fn throughput_matches_lanes_times_clock() {
        let unit = SoftmaxUnit::new();
        assert!((unit.throughput_elems_per_s() - 256.0 * 1.3e9).abs() < 1.0);
    }

    #[test]
    fn buffer_holds_long_contexts() {
        // 512 KB must hold the longest sequences the paper evaluates.
        let unit = SoftmaxUnit::new();
        assert!(unit.max_vector_len() >= 4096);
    }

    #[test]
    fn energy_is_linear() {
        let unit = SoftmaxUnit::new();
        assert!((unit.energy_pj(2000) - 2.0 * unit.energy_pj(1000)).abs() < 1e-9);
    }
}
