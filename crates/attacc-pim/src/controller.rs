//! The AttAcc controller: config memory, request/head state, and the
//! functional execution path (§5.1–§5.2).
//!
//! The controller executes [`AttInst`] instructions against real data: KV
//! vectors are appended per head (optionally rounded to FP16 as the HBM
//! cells would hold them), `RunAttention` drives score → softmax → context
//! through the §4.2 hierarchical mapping, and `ReadOutput` returns the
//! context vector. Property tests show the result matches a reference
//! attention implementation for arbitrary shapes.

use crate::accumulator::Accumulator;
use crate::gemv_unit::{GemvUnit, Precision};
use crate::isa::{AttInst, InstError};
use crate::kv_store::{KvHalf, KvStore};
use crate::mapping::{hierarchical_gemv, HeadAllocator, HeadId, MappingPolicy};
use crate::numeric::{f16_round, Matrix};
use crate::softmax_unit::SoftmaxUnit;
use attacc_hbm::StackGeometry;
use std::collections::{BTreeSet, HashMap};

/// Contents of the controller's config memory (§5.1): model geometry plus
/// per-request context lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigMemory {
    /// Query heads per request.
    pub n_head: u32,
    /// Per-head dimension.
    pub d_head: usize,
    /// Maximum context length a request may reach (sizes KV extents).
    pub max_l: u64,
    /// Context length of each resident request.
    pub request_len: HashMap<u64, u64>,
}

#[derive(Debug, Clone, Default)]
struct HeadStore {
    /// Key vectors, one per token (each `d_head` long). Kᵀ column j is
    /// `keys[j]`.
    keys: Vec<Vec<f32>>,
    /// Value vectors, one per token.
    values: Vec<Vec<f32>>,
    q: Option<Vec<f32>>,
    out: Option<Vec<f32>>,
}

/// The functional AttAcc controller.
#[derive(Debug, Clone)]
pub struct AttAccController {
    geom: StackGeometry,
    config: Option<ConfigMemory>,
    heads: HashMap<(u64, u32), HeadStore>,
    allocator: HeadAllocator,
    /// One physical KV placement manager per stack.
    stores: Vec<KvStore>,
    /// Stack owning each (request, head).
    head_stacks: HashMap<(u64, u32), usize>,
    score_policy: MappingPolicy,
    context_policy: MappingPolicy,
    gemv: GemvUnit,
    accum: Accumulator,
    softmax: SoftmaxUnit,
    kv_capacity_bytes: u64,
    kv_bytes_per_vector: u64,
    /// `Some(tokens_per_page)` once `ConfigPages` enables paged KV.
    tokens_per_page: Option<u64>,
    /// Pages each head currently streams from (paged mode only). A
    /// `BTreeSet` keeps iteration deterministic.
    mapped_pages: HashMap<(u64, u32), BTreeSet<u64>>,
}

impl AttAccController {
    /// A controller over `n_stacks` stacks with the paper's mapping
    /// policies on `geom`, using the given datapath precision.
    #[must_use]
    pub fn new(geom: &StackGeometry, n_stacks: usize, precision: Precision) -> AttAccController {
        let gemv = GemvUnit {
            lanes: 16,
            precision,
        };
        let accum = Accumulator { precision };
        AttAccController {
            geom: geom.clone(),
            config: None,
            heads: HashMap::new(),
            allocator: HeadAllocator::new(n_stacks),
            stores: Vec::new(),
            head_stacks: HashMap::new(),
            score_policy: MappingPolicy::paper_score(geom),
            context_policy: MappingPolicy::paper_context(geom),
            gemv,
            accum,
            softmax: SoftmaxUnit::new(),
            kv_capacity_bytes: geom.capacity_bytes * n_stacks as u64,
            kv_bytes_per_vector: 0,
            tokens_per_page: None,
            mapped_pages: HashMap::new(),
        }
    }

    /// Tokens per KV page, once `ConfigPages` has enabled paged mode.
    #[must_use]
    pub fn tokens_per_page(&self) -> Option<u64> {
        self.tokens_per_page
    }

    /// Pages a head currently has mapped (paged mode only).
    #[must_use]
    pub fn mapped_pages(&self, request: u64, head: u32) -> Option<&BTreeSet<u64>> {
        self.mapped_pages.get(&(request, head))
    }

    /// Physical (pCH, bank) span of a head's key matrix on its stack, if
    /// the head holds data — the streaming parallelism its GEMV pass sees.
    #[must_use]
    pub fn physical_span(&self, request: u64, head: u32) -> Option<usize> {
        let &stack = self.head_stacks.get(&(request, head))?;
        Some(self.stores[stack].banks_spanned(
            HeadId { request, head },
            KvHalf::Key,
        ))
    }

    /// Overrides the mapping policies (used by tests exploring the design
    /// space of §4.2).
    pub fn set_policies(&mut self, score: MappingPolicy, context: MappingPolicy) {
        self.score_policy = score;
        self.context_policy = context;
    }

    /// The config memory, if `SetModel` has run.
    #[must_use]
    pub fn config(&self) -> Option<&ConfigMemory> {
        self.config.as_ref()
    }

    /// The head→stack allocator state.
    #[must_use]
    pub fn allocator(&self) -> &HeadAllocator {
        &self.allocator
    }

    fn cfg(&self) -> Result<&ConfigMemory, InstError> {
        self.config.as_ref().ok_or(InstError::NotConfigured)
    }

    fn check_vec(&self, v: &[f32]) -> Result<(), InstError> {
        let d = self.cfg()?.d_head;
        if v.len() != d {
            return Err(InstError::DimensionMismatch {
                expected: d,
                got: v.len(),
            });
        }
        Ok(())
    }

    fn head_mut(&mut self, request: u64, head: u32) -> Result<&mut HeadStore, InstError> {
        let cfg = self.cfg()?;
        if !cfg.request_len.contains_key(&request) {
            return Err(InstError::UnknownRequest(request));
        }
        if head >= cfg.n_head {
            return Err(InstError::UnknownHead(head));
        }
        Ok(self.heads.entry((request, head)).or_default())
    }

    /// Executes one instruction. `ReadOutput` returns the context vector;
    /// every other instruction returns `None`.
    ///
    /// # Errors
    /// See [`InstError`] for each failure mode.
    pub fn execute(&mut self, inst: AttInst) -> Result<Option<Vec<f32>>, InstError> {
        match inst {
            AttInst::SetModel { n_head, d_head, max_l } => {
                self.config = Some(ConfigMemory {
                    n_head,
                    d_head,
                    max_l,
                    request_len: HashMap::new(),
                });
                self.kv_bytes_per_vector = d_head as u64 * 2;
                let n_stacks = self.allocator.n_stacks();
                self.stores = (0..n_stacks)
                    .map(|_| KvStore::new(self.geom.clone(), d_head as u64, 2, max_l))
                    .collect();
                self.head_stacks.clear();
                self.heads.clear();
                self.allocator = HeadAllocator::new(n_stacks);
                self.tokens_per_page = None;
                self.mapped_pages.clear();
                Ok(None)
            }
            AttInst::UpdateRequest { request, remove } => {
                let n_head = self.cfg()?.n_head;
                let cfg = self.config.as_mut().expect("checked above");
                if remove {
                    if cfg.request_len.remove(&request).is_none() {
                        return Err(InstError::UnknownRequest(request));
                    }
                    self.heads.retain(|&(r, _), _| r != request);
                    self.mapped_pages.retain(|&(r, _), _| r != request);
                    for h in 0..n_head {
                        if let Some(stack) = self.head_stacks.remove(&(request, h)) {
                            self.stores[stack].close_head(HeadId { request, head: h });
                        }
                    }
                    self.allocator.release(request);
                } else {
                    if self.allocator.total_load() >= self.kv_capacity_bytes {
                        return Err(InstError::CapacityExceeded);
                    }
                    cfg.request_len.insert(request, 0);
                    let placed = self.allocator.allocate(request, n_head, 0);
                    for (h, &stack) in placed.iter().enumerate() {
                        let head = HeadId {
                            request,
                            head: h as u32,
                        };
                        if self.stores[stack].open_head(head).is_err() {
                            // Roll back this request's placements.
                            for (hh, &s2) in placed.iter().enumerate().take(h) {
                                self.stores[s2].close_head(HeadId {
                                    request,
                                    head: hh as u32,
                                });
                                self.head_stacks.remove(&(request, hh as u32));
                            }
                            self.allocator.release(request);
                            self.config
                                .as_mut()
                                .expect("configured")
                                .request_len
                                .remove(&request);
                            return Err(InstError::CapacityExceeded);
                        }
                        self.head_stacks.insert((request, h as u32), stack);
                    }
                }
                Ok(None)
            }
            AttInst::AppendKv { request, head, k, v } => {
                self.check_vec(&k)?;
                self.check_vec(&v)?;
                let precision = self.gemv.precision;
                let rounded = move |vec: Vec<f32>| -> Vec<f32> {
                    match precision {
                        Precision::Exact => vec,
                        Precision::Fp16 => vec.into_iter().map(f16_round).collect(),
                    }
                };
                let store = self.head_mut(request, head)?;
                store.keys.push(rounded(k));
                store.values.push(rounded(v));
                // Mirror the append into the physical KV extents.
                if let Some(&stack) = self.head_stacks.get(&(request, head)) {
                    let id = HeadId { request, head };
                    let _ = self.stores[stack].append(id, KvHalf::Key);
                    let _ = self.stores[stack].append(id, KvHalf::Value);
                }
                // The config memory tracks L per request; heads advance in
                // lockstep, so update on head 0.
                if head == 0 {
                    let grow = 2 * self.kv_bytes_per_vector;
                    self.allocator.grow(request, grow);
                    let cfg = self.config.as_mut().expect("configured");
                    if let Some(l) = cfg.request_len.get_mut(&request) {
                        *l += 1;
                    }
                }
                Ok(None)
            }
            AttInst::LoadQ { request, head, q } => {
                self.check_vec(&q)?;
                let store = self.head_mut(request, head)?;
                store.q = Some(q);
                Ok(None)
            }
            AttInst::DeclareKv { request, head, tokens } => {
                let d_head = self.cfg()?.d_head;
                let store = self.head_mut(request, head)?;
                for _ in 0..tokens {
                    store.keys.push(vec![0.0; d_head]);
                    store.values.push(vec![0.0; d_head]);
                }
                if let Some(&stack) = self.head_stacks.get(&(request, head)) {
                    let id = HeadId { request, head };
                    for _ in 0..tokens {
                        let _ = self.stores[stack].append(id, KvHalf::Key);
                        let _ = self.stores[stack].append(id, KvHalf::Value);
                    }
                }
                if head == 0 {
                    self.allocator
                        .grow(request, tokens * 2 * self.kv_bytes_per_vector);
                    let cfg = self.config.as_mut().expect("configured");
                    if let Some(l) = cfg.request_len.get_mut(&request) {
                        *l += tokens;
                    }
                }
                Ok(None)
            }
            AttInst::RunAttention { request, head } => {
                self.run_attention_one(request, head)?;
                Ok(None)
            }
            AttInst::RunAttentionBatch { request, head0, n_heads } => {
                for head in head0..head0.saturating_add(n_heads) {
                    self.run_attention_one(request, head)?;
                }
                Ok(None)
            }
            AttInst::ReadOutput { request, head } => {
                let store = self.head_mut(request, head)?;
                store.out.take().map(Some).ok_or(InstError::NoOutput)
            }
            AttInst::EvictKv { request, head, keep_last } => {
                let store = self.head_mut(request, head)?;
                let l = store.keys.len() as u64;
                let evicted = l.saturating_sub(keep_last);
                if evicted > 0 {
                    store.keys.drain(..evicted as usize);
                    store.values.drain(..evicted as usize);
                }
                // Head 0 carries the bookkeeping, mirroring AppendKv.
                if head == 0 && evicted > 0 {
                    self.allocator
                        .shrink(request, evicted * 2 * self.kv_bytes_per_vector);
                    let cfg = self.config.as_mut().expect("configured");
                    if let Some(len) = cfg.request_len.get_mut(&request) {
                        *len -= evicted;
                    }
                }
                Ok(None)
            }
            AttInst::ConfigPages { tokens_per_page } => {
                self.cfg()?;
                self.tokens_per_page = Some(tokens_per_page.max(1));
                Ok(None)
            }
            AttInst::MapPage { request, head, page } => {
                if self.tokens_per_page.is_none() {
                    return Err(InstError::PagingNotConfigured);
                }
                self.head_mut(request, head)?;
                self.mapped_pages.entry((request, head)).or_default().insert(page);
                Ok(None)
            }
            AttInst::UnmapPage { request, head, page } => {
                if self.tokens_per_page.is_none() {
                    return Err(InstError::PagingNotConfigured);
                }
                self.head_mut(request, head)?;
                let mapped = self
                    .mapped_pages
                    .get_mut(&(request, head))
                    .ok_or(InstError::PageNotMapped(page))?;
                if !mapped.remove(&page) {
                    return Err(InstError::PageNotMapped(page));
                }
                Ok(None)
            }
            AttInst::Barrier { .. } => Ok(None),
        }
    }

    /// Score → softmax → context for one head: the body of
    /// `RunAttention`, shared with `RunAttentionBatch`. In paged mode
    /// only tokens on mapped pages participate.
    fn run_attention_one(&mut self, request: u64, head: u32) -> Result<(), InstError> {
        let d_head = self.cfg()?.d_head;
        let score_policy = self.score_policy.clone();
        let context_policy = self.context_policy.clone();
        let gemv = self.gemv;
        let accum = self.accum;
        let softmax = self.softmax.clone();
        // Paged mode: tokens on unmapped pages are skipped entirely (the
        // stream never touches their banks). Resolve visibility before
        // borrowing the head store.
        let visible_page = self.tokens_per_page.map(|tpp| {
            let mapped = self.mapped_pages.get(&(request, head)).cloned().unwrap_or_default();
            (tpp, mapped)
        });
        let store = self.head_mut(request, head)?;
        let l = store.keys.len();
        if l == 0 {
            return Err(InstError::EmptyKv);
        }
        let q = store.q.clone().ok_or(InstError::MissingQ)?;
        let tokens: Vec<usize> = (0..l)
            .filter(|&j| match &visible_page {
                None => true,
                Some((tpp, mapped)) => mapped.contains(&(j as u64 / tpp)),
            })
            .collect();
        if tokens.is_empty() {
            return Err(InstError::NothingMapped);
        }

        // Build Kᵀ (d_head × l_eff): column j is the j-th visible key.
        let l_eff = tokens.len();
        let mut kt = Matrix::zeros(d_head, l_eff);
        for (j, &tok) in tokens.iter().enumerate() {
            for (r, &val) in store.keys[tok].iter().enumerate() {
                kt.set(r, j, val);
            }
        }
        // GEMV_score with the 1/√d scale folded in. The scale is applied
        // in f64 exactly as `ProtectedAttention::scores` does, so the
        // controller path is bit-identical to the integrity path.
        let mut scores = hierarchical_gemv(&gemv, &accum, &score_policy, &q, &kt);
        let scale = 1.0 / (d_head as f64).sqrt();
        for s in &mut scores {
            *s = (f64::from(*s) * scale) as f32;
        }
        // PIM_SFM on the buffer die.
        let weights = softmax.compute(&scores);
        // Build V (l_eff × d_head) and run GEMV_context.
        let mut v = Matrix::zeros(l_eff, d_head);
        for (j, &tok) in tokens.iter().enumerate() {
            for (c, &val) in store.values[tok].iter().enumerate() {
                v.set(j, c, val);
            }
        }
        let out = hierarchical_gemv(&gemv, &accum, &context_policy, &weights, &v);
        store.out = Some(out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::attention_ref;

    fn small_geom() -> StackGeometry {
        // A shrunken stack keeps the functional hierarchy cheap in tests
        // while exercising every level.
        StackGeometry {
            pseudo_channels: 4,
            bank_groups_per_rank: 2,
            ranks: 2,
            banks_per_group: 2,
            ..StackGeometry::hbm3_8hi()
        }
    }

    fn controller() -> AttAccController {
        AttAccController::new(&small_geom(), 2, Precision::Exact)
    }

    fn run_one_head(ctl: &mut AttAccController, d: usize, l: usize) -> Vec<f32> {
        ctl.execute(AttInst::SetModel {
            n_head: 2,
            d_head: d,
            max_l: 4096,
        })
        .unwrap();
        ctl.execute(AttInst::UpdateRequest {
            request: 0,
            remove: false,
        })
        .unwrap();
        let gen = |seed: usize, i: usize| ((seed * 31 + i * 17) % 23) as f32 * 0.09 - 1.0;
        for tok in 0..l {
            let k: Vec<f32> = (0..d).map(|i| gen(tok, i)).collect();
            let v: Vec<f32> = (0..d).map(|i| gen(tok + 100, i)).collect();
            ctl.execute(AttInst::AppendKv {
                request: 0,
                head: 0,
                k,
                v,
            })
            .unwrap();
        }
        let q: Vec<f32> = (0..d).map(|i| gen(999, i)).collect();
        ctl.execute(AttInst::LoadQ {
            request: 0,
            head: 0,
            q,
        })
        .unwrap();
        ctl.execute(AttInst::RunAttention {
            request: 0,
            head: 0,
        })
        .unwrap();
        ctl.execute(AttInst::ReadOutput {
            request: 0,
            head: 0,
        })
        .unwrap()
        .unwrap()
    }

    #[test]
    fn attention_matches_reference() {
        let mut ctl = controller();
        let (d, l) = (8, 13);
        let out = run_one_head(&mut ctl, d, l);

        // Rebuild the same inputs for the reference.
        let gen = |seed: usize, i: usize| ((seed * 31 + i * 17) % 23) as f32 * 0.09 - 1.0;
        let mut kt = vec![0.0f32; d * l];
        let mut v = vec![0.0f32; l * d];
        for tok in 0..l {
            for i in 0..d {
                kt[i * l + tok] = gen(tok, i);
                v[tok * d + i] = gen(tok + 100, i);
            }
        }
        let q: Vec<f32> = (0..d).map(|i| gen(999, i)).collect();
        let want = attention_ref(&q, &kt, &v, l);
        assert_eq!(out.len(), d);
        for (g, w) in out.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn lifecycle_errors() {
        let mut ctl = controller();
        assert_eq!(
            ctl.execute(AttInst::UpdateRequest {
                request: 0,
                remove: false
            }),
            Err(InstError::NotConfigured)
        );
        ctl.execute(AttInst::SetModel {
            n_head: 1,
            d_head: 4,
            max_l: 4096,
        })
        .unwrap();
        assert_eq!(
            ctl.execute(AttInst::LoadQ {
                request: 7,
                head: 0,
                q: vec![0.0; 4]
            }),
            Err(InstError::UnknownRequest(7))
        );
        ctl.execute(AttInst::UpdateRequest {
            request: 7,
            remove: false,
        })
        .unwrap();
        assert_eq!(
            ctl.execute(AttInst::LoadQ {
                request: 7,
                head: 5,
                q: vec![0.0; 4]
            }),
            Err(InstError::UnknownHead(5))
        );
        assert_eq!(
            ctl.execute(AttInst::LoadQ {
                request: 7,
                head: 0,
                q: vec![0.0; 3]
            }),
            Err(InstError::DimensionMismatch {
                expected: 4,
                got: 3
            })
        );
        assert_eq!(
            ctl.execute(AttInst::RunAttention {
                request: 7,
                head: 0
            }),
            Err(InstError::EmptyKv)
        );
        ctl.execute(AttInst::AppendKv {
            request: 7,
            head: 0,
            k: vec![1.0; 4],
            v: vec![1.0; 4],
        })
        .unwrap();
        assert_eq!(
            ctl.execute(AttInst::RunAttention {
                request: 7,
                head: 0
            }),
            Err(InstError::MissingQ)
        );
        assert_eq!(
            ctl.execute(AttInst::ReadOutput {
                request: 7,
                head: 0
            }),
            Err(InstError::NoOutput)
        );
    }

    #[test]
    fn remove_releases_allocation() {
        let mut ctl = controller();
        ctl.execute(AttInst::SetModel {
            n_head: 4,
            d_head: 8,
            max_l: 4096,
        })
        .unwrap();
        ctl.execute(AttInst::UpdateRequest {
            request: 1,
            remove: false,
        })
        .unwrap();
        ctl.execute(AttInst::AppendKv {
            request: 1,
            head: 0,
            k: vec![0.0; 8],
            v: vec![0.0; 8],
        })
        .unwrap();
        assert!(ctl.allocator().total_load() > 0);
        ctl.execute(AttInst::UpdateRequest {
            request: 1,
            remove: true,
        })
        .unwrap();
        assert_eq!(ctl.allocator().total_load(), 0);
        assert_eq!(
            ctl.execute(AttInst::UpdateRequest {
                request: 1,
                remove: true
            }),
            Err(InstError::UnknownRequest(1))
        );
    }

    #[test]
    fn fp16_path_stays_close_to_reference() {
        let mut ctl = AttAccController::new(&small_geom(), 2, Precision::Fp16);
        let out = run_one_head(&mut ctl, 8, 13);
        let mut exact = controller();
        let want = run_one_head(&mut exact, 8, 13);
        for (g, w) in out.iter().zip(&want) {
            assert!((g - w).abs() < 0.02, "{g} vs {w}");
        }
    }

    #[test]
    fn config_memory_tracks_length() {
        let mut ctl = controller();
        let _ = run_one_head(&mut ctl, 4, 5);
        assert_eq!(ctl.config().unwrap().request_len[&0], 5);
        assert_eq!(ctl.config().unwrap().max_l, 4096);
    }

    #[test]
    fn physical_placement_tracks_appends() {
        let mut ctl = controller();
        let _ = run_one_head(&mut ctl, 8, 13);
        // Head 0 holds 13 tokens of 16 B: one beat each → ≥1 bank spanned,
        // growing with more data.
        let span = ctl.physical_span(0, 0).expect("head resident");
        assert!(span >= 1);
        assert!(ctl.physical_span(0, 1).is_some(), "sibling head placed too");
        assert!(ctl.physical_span(99, 0).is_none());
        // Retiring the request releases its physical extents.
        ctl.execute(AttInst::UpdateRequest {
            request: 0,
            remove: true,
        })
        .unwrap();
        assert!(ctl.physical_span(0, 0).is_none());
    }
}
