//! The per-bank GEMV unit: 16 FP16 multiply lanes with reconfigurable
//! adders (§5.1).
//!
//! Each unit holds 16 FP16 multipliers, 16 FP16 adders, and double-buffered
//! 256-bit input buffers. The adders act as an **adder tree** when the
//! matrix is row-partitioned across the lanes (the reduction dimension is
//! split, so lane partials must be summed) and as per-lane **accumulators**
//! when it is column-partitioned (each lane owns whole output elements).
//! The paper maps `Kᵀ` row-wise and `V` column-wise at this level to keep
//! appended KV vectors load-balanced (§4.2).

use crate::integrity::FaultPlan;
use crate::numeric::{f16_round, Matrix};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Numeric behaviour of the functional datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Precision {
    /// Accumulate in `f64` (order-insensitive reference behaviour).
    Exact,
    /// Round every product and sum to binary16, emulating the real unit.
    Fp16,
}

/// How the lanes partition the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum GemvMode {
    /// Row-wise lane partitioning (reduction split): adders form a tree.
    AdderTree,
    /// Column-wise lane partitioning (output split): adders accumulate.
    Accumulator,
}

/// A functional GEMV unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct GemvUnit {
    /// Number of multiply lanes (16 in AttAcc).
    pub lanes: usize,
    /// Datapath precision.
    pub precision: Precision,
}

impl Default for GemvUnit {
    fn default() -> Self {
        GemvUnit::new()
    }
}

impl GemvUnit {
    /// The AttAcc configuration: 16 lanes, FP16 datapath.
    #[must_use]
    pub const fn new() -> GemvUnit {
        GemvUnit {
            lanes: 16,
            precision: Precision::Fp16,
        }
    }

    /// An exact-arithmetic unit for equivalence testing.
    #[must_use]
    pub const fn exact() -> GemvUnit {
        GemvUnit {
            lanes: 16,
            precision: Precision::Exact,
        }
    }

    fn rnd(&self, x: f64) -> f64 {
        match self.precision {
            Precision::Exact => x,
            Precision::Fp16 => f64::from(f16_round(x as f32)),
        }
    }

    /// Computes `y[n] = Σ_k x[k] · m[k][n]` through the lane datapath in
    /// the given `mode`. Both modes produce the same mathematical result;
    /// in `Fp16` precision the rounding points differ slightly, exactly as
    /// they would in hardware.
    ///
    /// # Panics
    /// Panics if `x.len() != m.rows()`.
    #[must_use]
    pub fn gemv(&self, mode: GemvMode, x: &[f32], m: &Matrix) -> Vec<f32> {
        self.gemv_with_faults(mode, x, m, &FaultPlan::none())
    }

    /// [`GemvUnit::gemv`] with an integrity-layer fault hook: cell reads,
    /// input-register reads and product registers consult `plan` and flip
    /// the planned bits. With an empty plan the arithmetic is *identical*
    /// to the unhooked path — the lookups return `None` and every operand
    /// flows through unchanged, which is what keeps the faults-disabled
    /// contract bit-exact.
    ///
    /// # Panics
    /// Panics if `x.len() != m.rows()`.
    #[must_use]
    pub fn gemv_with_faults(
        &self,
        mode: GemvMode,
        x: &[f32],
        m: &Matrix,
        plan: &FaultPlan,
    ) -> Vec<f32> {
        self.gemv_with_faults_wide(mode, x, m, plan)
            .into_iter()
            .map(|v| v as f32)
            .collect()
    }

    /// [`GemvUnit::gemv_with_faults`] exposing the accumulator-width
    /// (pre-writeback-quantization) column values. The ABFT checker reads
    /// these: checking before the output quantizer keeps the fault-free
    /// residual at f64 noise level instead of f32 rounding level, which is
    /// what lets the checksum tolerance sit tight enough to catch
    /// single-bit product flips.
    ///
    /// # Panics
    /// Panics if `x.len() != m.rows()`.
    #[must_use]
    pub fn gemv_with_faults_wide(
        &self,
        mode: GemvMode,
        x: &[f32],
        m: &Matrix,
        plan: &FaultPlan,
    ) -> Vec<f64> {
        assert_eq!(x.len(), m.rows(), "input length must equal matrix rows");
        match mode {
            GemvMode::AdderTree => self.gemv_tree(x, m, plan),
            GemvMode::Accumulator => self.gemv_acc(x, m, plan),
        }
    }

    /// One fused multiply step with fault hooks on all three registers:
    /// the stored f16 cell, the f32 input register, and the rounded
    /// product.
    fn product(&self, x: &[f32], m: &Matrix, r: usize, j: usize, plan: &FaultPlan) -> f64 {
        let xv = match plan.input_flip(r) {
            Some(bit) => crate::integrity::flip_f32(x[r], bit),
            None => x[r],
        };
        let mv = match plan.cell_flip(r, j) {
            Some(bit) => crate::integrity::flip_f16_cell(m.get(r, j), bit),
            None => m.get(r, j),
        };
        let mut prod = self.rnd(f64::from(xv) * f64::from(mv));
        if let Some(bit) = plan.product_flip(r, j) {
            prod = f64::from(crate::integrity::flip_f32(prod as f32, bit));
        }
        prod
    }

    /// Row-partitioned: each lane owns a contiguous slab of reduction rows;
    /// per output element the lane partials are combined by a binary adder
    /// tree.
    #[allow(clippy::needless_range_loop)] // dual-operand indexing reads clearest
    fn gemv_tree(&self, x: &[f32], m: &Matrix, plan: &FaultPlan) -> Vec<f64> {
        let k = m.rows();
        let n = m.cols();
        let lanes = self.lanes.min(k.max(1));
        let base = k / lanes;
        let extra = k % lanes;
        let mut out = vec![0.0f64; n];
        for (j, out_j) in out.iter_mut().enumerate() {
            let mut partials = Vec::with_capacity(lanes);
            let mut r0 = 0;
            for lane in 0..lanes {
                let rows = base + usize::from(lane < extra);
                let mut acc = 0.0f64;
                for r in r0..r0 + rows {
                    let prod = self.product(x, m, r, j, plan);
                    acc = self.rnd(acc + prod);
                }
                partials.push(acc);
                r0 += rows;
            }
            // Binary adder tree over lane partials.
            while partials.len() > 1 {
                let mut next = Vec::with_capacity(partials.len().div_ceil(2));
                for pair in partials.chunks(2) {
                    next.push(if pair.len() == 2 {
                        self.rnd(pair[0] + pair[1])
                    } else {
                        pair[0]
                    });
                }
                partials = next;
            }
            *out_j = partials.first().copied().unwrap_or(0.0);
        }
        out
    }

    /// Column-partitioned: each lane owns whole output columns and
    /// accumulates over the full reduction dimension.
    #[allow(clippy::needless_range_loop)] // dual-operand indexing reads clearest
    fn gemv_acc(&self, x: &[f32], m: &Matrix, plan: &FaultPlan) -> Vec<f64> {
        let k = m.rows();
        let n = m.cols();
        let mut out = vec![0.0f64; n];
        // Lane assignment is round-robin over columns; since lanes are
        // independent accumulators the result only depends on per-column
        // serial order.
        for (j, out_j) in out.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for r in 0..k {
                let prod = self.product(x, m, r, j, plan);
                acc = self.rnd(acc + prod);
            }
            *out_j = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)]
    fn reference(x: &[f32], m: &Matrix) -> Vec<f64> {
        let mut y = vec![0.0f64; m.cols()];
        for (j, y_j) in y.iter_mut().enumerate() {
            for r in 0..m.rows() {
                *y_j += f64::from(x[r]) * f64::from(m.get(r, j));
            }
        }
        y
    }

    fn sample(k: usize, n: usize) -> (Vec<f32>, Matrix) {
        let x: Vec<f32> = (0..k).map(|i| ((i * 7 + 3) % 11) as f32 * 0.125 - 0.5).collect();
        let data: Vec<f32> = (0..k * n)
            .map(|i| ((i * 13 + 5) % 17) as f32 * 0.0625 - 0.5)
            .collect();
        (x, Matrix::from_vec(k, n, data))
    }

    #[test]
    fn exact_modes_match_reference() {
        let (x, m) = sample(37, 9);
        let unit = GemvUnit::exact();
        let r = reference(&x, &m);
        for mode in [GemvMode::AdderTree, GemvMode::Accumulator] {
            let y = unit.gemv(mode, &x, &m);
            for (a, b) in y.iter().zip(&r) {
                assert!((f64::from(*a) - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn fp16_modes_agree_within_tolerance() {
        let (x, m) = sample(64, 16);
        let unit = GemvUnit::new();
        let r = reference(&x, &m);
        let scale = r.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1.0);
        for mode in [GemvMode::AdderTree, GemvMode::Accumulator] {
            let y = unit.gemv(mode, &x, &m);
            for (a, b) in y.iter().zip(&r) {
                // Relative error a few f16 ulps over a 64-term reduction.
                assert!(
                    (f64::from(*a) - b).abs() / scale < 0.02,
                    "mode {mode:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn single_row_matrix_works() {
        let m = Matrix::from_vec(1, 3, vec![2.0, 4.0, 8.0]);
        let y = GemvUnit::exact().gemv(GemvMode::AdderTree, &[0.5], &m);
        assert_eq!(y, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn empty_output_dimension() {
        let m = Matrix::zeros(4, 0);
        let y = GemvUnit::exact().gemv(GemvMode::Accumulator, &[0.0; 4], &m);
        assert!(y.is_empty());
    }

    #[test]
    fn more_lanes_than_rows_is_fine() {
        let (x, m) = sample(3, 5);
        let y = GemvUnit::exact().gemv(GemvMode::AdderTree, &x, &m);
        let r = reference(&x, &m);
        for (a, b) in y.iter().zip(&r) {
            assert!((f64::from(*a) - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn dimension_mismatch_panics() {
        let m = Matrix::zeros(4, 2);
        let _ = GemvUnit::new().gemv(GemvMode::AdderTree, &[0.0; 3], &m);
    }
}
