//! Hierarchical accumulators (§5.1).
//!
//! When a level of the hierarchy partitions the *reduction* dimension
//! (row-wise), the partial GEMV results produced below it must be summed;
//! AttAcc places accumulators per bank group on the DRAM die and per
//! pseudo-channel on the buffer die. When a level partitions the *output*
//! dimension (column-wise), the accumulator is bypassed and results are
//! concatenated.

use crate::gemv_unit::Precision;
use crate::integrity::{flip_f32, FaultPlan};
use crate::numeric::f16_round;

/// A functional reduction/concatenation node of the accumulator tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator {
    /// Datapath precision of the adders.
    pub precision: Precision,
}

impl Accumulator {
    /// An FP16 accumulator (the DRAM-die configuration).
    #[must_use]
    pub const fn fp16() -> Accumulator {
        Accumulator {
            precision: Precision::Fp16,
        }
    }

    /// An exact accumulator for equivalence testing.
    #[must_use]
    pub const fn exact() -> Accumulator {
        Accumulator {
            precision: Precision::Exact,
        }
    }

    fn rnd(&self, x: f32) -> f32 {
        match self.precision {
            Precision::Exact => x,
            Precision::Fp16 => f16_round(x),
        }
    }

    /// Element-wise sum of equally sized partial vectors (row-wise level).
    ///
    /// # Panics
    /// Panics if the parts have different lengths.
    #[must_use]
    pub fn reduce(&self, parts: &[Vec<f32>]) -> Vec<f32> {
        self.reduce_with_faults(parts, &FaultPlan::none())
    }

    /// [`Accumulator::reduce`] with an integrity-layer fault hook: each
    /// partial-register read `parts[part][i]` consults `plan` for a
    /// planned bit flip. With an empty plan the arithmetic is identical
    /// to [`Accumulator::reduce`].
    ///
    /// # Panics
    /// Panics if the parts have different lengths.
    #[must_use]
    pub fn reduce_with_faults(&self, parts: &[Vec<f32>], plan: &FaultPlan) -> Vec<f32> {
        let Some(first) = parts.first() else {
            return Vec::new();
        };
        let n = first.len();
        let mut out = vec![0.0f32; n];
        for (part, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), n, "partial results must have equal length");
            for (i, (o, v)) in out.iter_mut().zip(p).enumerate() {
                let val = match plan.partial_flip(part, i) {
                    Some(bit) => flip_f32(*v, bit),
                    None => *v,
                };
                *o = self.rnd(*o + val);
            }
        }
        out
    }

    /// Concatenation of output slices (column-wise level; the accumulator
    /// is bypassed).
    #[must_use]
    pub fn concat(parts: &[Vec<f32>]) -> Vec<f32> {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend_from_slice(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sums_elementwise() {
        let acc = Accumulator::exact();
        let out = acc.reduce(&[vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]]);
        assert_eq!(out, vec![111.0, 222.0]);
    }

    #[test]
    fn reduce_empty_is_empty() {
        assert!(Accumulator::exact().reduce(&[]).is_empty());
    }

    #[test]
    fn concat_preserves_order() {
        let out = Accumulator::concat(&[vec![1.0], vec![2.0, 3.0], vec![]]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fp16_reduce_rounds() {
        let acc = Accumulator::fp16();
        // 2049 is not representable in binary16 (next above 2048 is 2050).
        let out = acc.reduce(&[vec![2048.0], vec![1.0]]);
        assert_eq!(out, vec![2048.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn reduce_rejects_ragged_input() {
        let _ = Accumulator::exact().reduce(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
