//! Functional fault injection, ABFT column checksums, and the protected
//! attention pipeline.
//!
//! The device layer ([`attacc_hbm::integrity`]) decides *whether* bits
//! flip; this module decides *where* a flip lands in the functional
//! dataflow and what the mitigations do about it:
//!
//! * [`FaultPlan`] — an explicit list of [`BitFlip`]s, each naming a
//!   pipeline [`Stage`] and a register-level [`Site`]. The fault hooks in
//!   `gemv_unit.rs`, `accumulator.rs` and `softmax_unit.rs` consult the
//!   plan on every operand read; an empty plan is exactly inert, which is
//!   what keeps faults-disabled runs bit-exact with the unhooked paths.
//! * [`AbftGemv`] — algorithm-based fault tolerance over the mapped GEMV
//!   column partitions (the §4.2 ColWise splits): each partition carries
//!   an f64 checksum column maintained at KV-append time; after the
//!   device computes a partition, the controller compares the partition's
//!   output sum against `x · checksum`. A residual above tolerance (or a
//!   non-finite output) *detects and localizes* the corrupt partition,
//!   which is then recomputed on the xPU (modeled as the fault-free
//!   device result) — only that partition's columns pay the recompute.
//! * [`ProtectedAttention`] — the full protected head pipeline: ABFT on
//!   the score GEMV, an exact checksum carried across the softmax SRAM
//!   buffer, the NaN/Inf guard around the softmax unit, and ABFT on the
//!   context GEMV. Under a single-bit fault anywhere in the covered
//!   dataflow the final attention output equals the fault-free output.

use crate::gemv_unit::{GemvMode, GemvUnit};
use crate::numeric::{f16_from_bits, f16_to_bits, Matrix};
use crate::softmax_unit::SoftmaxUnit;
use attacc_hbm::integrity::splitmix64;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Which phase of the attention pipeline a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Stage {
    /// The score GEMV (`q · Kᵀ`).
    Score,
    /// The softmax phase, including the SRAM score buffer.
    Softmax,
    /// The context GEMV (`weights · V`).
    Context,
}

/// A register-level fault site inside one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Site {
    /// A stored KV cell `(r, c)`: the flip lands in the *binary16 bit
    /// pattern* the DRAM array holds (`bit < 16`).
    Cell {
        /// Reduction-dimension row.
        r: usize,
        /// Output-dimension column.
        c: usize,
        /// Bit of the f16 pattern.
        bit: u8,
    },
    /// The f32 input register holding `x[k]` (`bit < 32`).
    Input {
        /// Input index.
        k: usize,
        /// Bit of the f32 pattern.
        bit: u8,
    },
    /// The rounded product register feeding column `c` at row `r`
    /// (`bit < 32`).
    Product {
        /// Reduction-dimension row.
        r: usize,
        /// Output-dimension column.
        c: usize,
        /// Bit of the f32 pattern.
        bit: u8,
    },
    /// Element `i` of partial vector `part` at an accumulator input
    /// (`bit < 32`).
    Partial {
        /// Which partial vector.
        part: usize,
        /// Element within the partial.
        i: usize,
        /// Bit of the f32 pattern.
        bit: u8,
    },
    /// Score `i` held in the softmax SRAM buffer (`bit < 32`).
    Score {
        /// Score index.
        i: usize,
        /// Bit of the f32 pattern.
        bit: u8,
    },
}

/// One planned bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BitFlip {
    /// The pipeline stage the flip strikes.
    pub stage: Stage,
    /// The register-level site within that stage.
    pub site: Site,
}

/// Flips bit `bit` of the f32 pattern of `v`.
#[must_use]
pub fn flip_f32(v: f32, bit: u8) -> f32 {
    f32::from_bits(v.to_bits() ^ (1u32 << (bit % 32)))
}

/// Flips bit `bit` of the *stored binary16 pattern* of `v` (the cell is
/// quantized to f16 on write, as the real array stores it), returning the
/// corrupted value widened back to f32.
#[must_use]
pub fn flip_f16_cell(v: f32, bit: u8) -> f32 {
    f16_from_bits(f16_to_bits(v) ^ (1u16 << (bit % 16)))
}

/// An explicit list of bit flips to inject. The default/empty plan is
/// exactly inert: every hook lookup returns `None` and the hooked
/// datapaths reduce to their unhooked arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FaultPlan {
    /// The planned flips.
    pub flips: Vec<BitFlip>,
}

impl FaultPlan {
    /// The empty (inert) plan.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan { flips: Vec::new() }
    }

    /// A plan holding exactly one flip.
    #[must_use]
    pub fn single(flip: BitFlip) -> FaultPlan {
        FaultPlan { flips: vec![flip] }
    }

    /// Whether the plan is inert.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// The sub-plan for one pipeline stage (unit-level hooks receive
    /// stage-filtered plans and match on sites alone).
    #[must_use]
    pub fn stage(&self, stage: Stage) -> FaultPlan {
        FaultPlan { flips: self.flips.iter().copied().filter(|f| f.stage == stage).collect() }
    }

    /// The sub-plan for a column tile `[c0, c0 + width)`, with `Cell` and
    /// `Product` columns rebased to the tile. `Input` flips apply to
    /// every tile (the x register is shared); `Partial`/`Score` sites are
    /// not tile-local and are dropped.
    #[must_use]
    pub fn shift_cols(&self, c0: usize, width: usize) -> FaultPlan {
        let flips = self
            .flips
            .iter()
            .filter_map(|f| {
                let site = match f.site {
                    Site::Cell { r, c, bit } if (c0..c0 + width).contains(&c) => {
                        Some(Site::Cell { r, c: c - c0, bit })
                    }
                    Site::Product { r, c, bit } if (c0..c0 + width).contains(&c) => {
                        Some(Site::Product { r, c: c - c0, bit })
                    }
                    Site::Input { .. } => Some(f.site),
                    _ => None,
                };
                site.map(|site| BitFlip { stage: f.stage, site })
            })
            .collect();
        FaultPlan { flips }
    }

    /// Planned flip of stored cell `(r, c)`, if any.
    #[must_use]
    pub fn cell_flip(&self, r: usize, c: usize) -> Option<u8> {
        self.flips.iter().find_map(|f| match f.site {
            Site::Cell { r: fr, c: fc, bit } if fr == r && fc == c => Some(bit),
            _ => None,
        })
    }

    /// Planned flip of input register `k`, if any.
    #[must_use]
    pub fn input_flip(&self, k: usize) -> Option<u8> {
        self.flips.iter().find_map(|f| match f.site {
            Site::Input { k: fk, bit } if fk == k => Some(bit),
            _ => None,
        })
    }

    /// Planned flip of the product register at `(r, c)`, if any.
    #[must_use]
    pub fn product_flip(&self, r: usize, c: usize) -> Option<u8> {
        self.flips.iter().find_map(|f| match f.site {
            Site::Product { r: fr, c: fc, bit } if fr == r && fc == c => Some(bit),
            _ => None,
        })
    }

    /// Planned flip of partial `part`, element `i`, if any.
    #[must_use]
    pub fn partial_flip(&self, part: usize, i: usize) -> Option<u8> {
        self.flips.iter().find_map(|f| match f.site {
            Site::Partial { part: fp, i: fi, bit } if fp == part && fi == i => Some(bit),
            _ => None,
        })
    }

    /// Planned flip of buffered score `i`, if any.
    #[must_use]
    pub fn score_flip(&self, i: usize) -> Option<u8> {
        self.flips.iter().find_map(|f| match f.site {
            Site::Score { i: fi, bit } if fi == i => Some(bit),
            _ => None,
        })
    }
}

/// Draws one uniformly placed single-bit fault over the attention
/// dataflow of a `d × l` head — deterministic in `seed`. Used by the
/// acceptance ensemble and the bench sweeps.
#[must_use]
pub fn sample_single_fault(seed: u64, d: usize, l: usize) -> BitFlip {
    let mut ctr = 0u64;
    let mut draw = |m: usize| -> usize {
        ctr += 1;
        (splitmix64(seed ^ ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % m as u64) as usize
    };
    match draw(6) {
        0 => BitFlip {
            stage: Stage::Score,
            site: Site::Cell { r: draw(d), c: draw(l), bit: draw(16) as u8 },
        },
        1 => BitFlip {
            stage: Stage::Score,
            site: Site::Input { k: draw(d), bit: draw(32) as u8 },
        },
        2 => BitFlip {
            stage: Stage::Score,
            site: Site::Product { r: draw(d), c: draw(l), bit: draw(32) as u8 },
        },
        3 => BitFlip {
            stage: Stage::Softmax,
            site: Site::Score { i: draw(l), bit: draw(32) as u8 },
        },
        4 => BitFlip {
            stage: Stage::Context,
            site: Site::Cell { r: draw(l), c: draw(d), bit: draw(16) as u8 },
        },
        _ => BitFlip {
            stage: Stage::Context,
            site: Site::Product { r: draw(l), c: draw(d), bit: draw(32) as u8 },
        },
    }
}

/// ABFT column checksums over the mapped GEMV partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AbftGemv {
    /// Column partitions checked independently — aligned with the §4.2
    /// ColWise mapping fanout, so "partition" here is the same unit of
    /// work a mapping level hands one bank group.
    pub partitions: usize,
    /// Relative residual tolerance. Residuals are compared against
    /// `rel_tol × Σ_k |x_k| · Σ_j |M_kj|` (the absolute-value checksum
    /// scale), so the threshold tracks the data magnitude.
    pub rel_tol: f64,
}

impl AbftGemv {
    /// Tuning for the `Exact` datapath: f64 accumulation noise is below
    /// `1e-13 × scale`, so `1e-11` never false-positives yet catches
    /// single-bit flips down to the low product mantissa.
    #[must_use]
    pub const fn exact() -> AbftGemv {
        AbftGemv { partitions: 16, rel_tol: 1e-11 }
    }

    /// Tuning for the `Fp16` datapath: binary16 rounding moves partition
    /// sums by up to ~2⁻¹¹ relative, so the tolerance must sit above it;
    /// low-mantissa flips below the rounding floor are indistinguishable
    /// from rounding and stay uncovered (the classic ABFT trade-off).
    #[must_use]
    pub const fn fp16() -> AbftGemv {
        AbftGemv { partitions: 16, rel_tol: 0.05 }
    }

    /// Runs `y = x · M` through `unit` partition-by-partition with the
    /// checksum check, recomputing any partition whose residual trips.
    ///
    /// # Panics
    /// Panics if `x.len() != m.rows()`.
    #[must_use]
    pub fn run(
        &self,
        unit: &GemvUnit,
        mode: GemvMode,
        x: &[f32],
        m: &Matrix,
        plan: &FaultPlan,
    ) -> AbftOutcome {
        assert_eq!(x.len(), m.rows(), "input length must equal matrix rows");
        // The 256-bit double-buffered input SRAM carries per-word parity:
        // a single-bit flip of an x register is always *detected at read*
        // and the word re-fetched from the clean source. This matters
        // because an input fault perturbs every column of a tile and the
        // column-sum checksum only sees the sum of those perturbations —
        // which can cancel exactly. Storage faults get storage
        // protection; the checksum covers the compute path.
        let input_repaired =
            plan.flips.iter().filter(|f| matches!(f.site, Site::Input { .. })).count();
        let plan = FaultPlan {
            flips: plan
                .flips
                .iter()
                .copied()
                .filter(|f| !matches!(f.site, Site::Input { .. }))
                .collect(),
        };
        let plan = &plan;
        let parts = self.partitions.min(m.cols().max(1));
        let tiles = m.split_cols(parts);
        let mut y = Vec::with_capacity(m.cols());
        let mut detected = Vec::new();
        let mut recomputed_cols = 0;
        let mut c0 = 0;
        for (p, tile) in tiles.iter().enumerate() {
            let tplan = plan.shift_cols(c0, tile.cols());
            // The checker reads the accumulator-width values *before* the
            // output quantizer: the fault-free residual then sits at f64
            // noise (~1e-15·scale) instead of f32 rounding (~1e-7·scale),
            // so the tolerance can stay tight enough to catch low-bit
            // product flips.
            let yw = unit.gemv_with_faults_wide(mode, x, tile, &tplan);
            let mut yp: Vec<f32> = yw.iter().map(|&v| v as f32).collect();
            // The checksum column c[k] = Σ_j M[k][j] is computed in f64 at
            // KV-append time from pristine data and held by the
            // controller, outside the faulted array.
            let mut y_chk = 0.0f64;
            let mut scale = 0.0f64;
            for (k, &xk) in x.iter().enumerate() {
                let mut rowsum = 0.0f64;
                let mut rowabs = 0.0f64;
                for j in 0..tile.cols() {
                    let v = f64::from(tile.get(k, j));
                    rowsum += v;
                    rowabs += v.abs();
                }
                y_chk += f64::from(xk) * rowsum;
                scale += f64::from(xk).abs() * rowabs;
            }
            let s: f64 = yw.iter().sum();
            let corrupt = !s.is_finite() || (s - y_chk).abs() > self.rel_tol * scale;
            if corrupt {
                // Localized to this partition: the xPU recomputes exactly
                // these columns from pristine operands (modeled as the
                // fault-free device result).
                yp = unit.gemv(mode, x, tile);
                detected.push(p);
                recomputed_cols += tile.cols();
            }
            y.extend_from_slice(&yp);
            c0 += tile.cols();
        }
        AbftOutcome { y, detected, recomputed_cols, input_repaired }
    }
}

/// Result of an ABFT-checked GEMV.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftOutcome {
    /// The (possibly partially recomputed) output.
    pub y: Vec<f32>,
    /// Indices of partitions whose residual tripped.
    pub detected: Vec<usize>,
    /// Output columns recomputed on the xPU.
    pub recomputed_cols: usize,
    /// Input-register words repaired by the input-buffer parity check.
    pub input_repaired: usize,
}

/// What the protected pipeline detected and repaired in one head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AttentionIntegrity {
    /// Input-register words repaired by input-buffer parity (both GEMVs).
    pub input_repaired: usize,
    /// Score-GEMV partitions caught by ABFT.
    pub score_detected: usize,
    /// Whether the carried checksum caught SRAM buffer corruption.
    pub buffer_detected: bool,
    /// Whether the softmax NaN/Inf/normalization guard tripped.
    pub softmax_detected: bool,
    /// Context-GEMV partitions caught by ABFT.
    pub context_detected: usize,
    /// Total output columns recomputed on the xPU.
    pub recomputed_cols: usize,
}

impl AttentionIntegrity {
    /// Whether any mitigation fired.
    #[must_use]
    pub fn any_detected(&self) -> bool {
        self.input_repaired > 0
            || self.score_detected > 0
            || self.buffer_detected
            || self.softmax_detected
            || self.context_detected > 0
    }
}

/// The protected single-head attention pipeline: ABFT on both GEMVs, a
/// carried checksum over the softmax SRAM buffer, and the numeric guard
/// around the softmax unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedAttention {
    /// The GEMV datapath.
    pub unit: GemvUnit,
    /// The buffer-die softmax unit.
    pub softmax: SoftmaxUnit,
    /// ABFT configuration shared by both GEMV phases.
    pub abft: AbftGemv,
}

impl ProtectedAttention {
    /// Exact-datapath pipeline (the configuration the acceptance ensemble
    /// pins: every covered single-bit fault is repaired to the bit).
    #[must_use]
    pub fn exact() -> ProtectedAttention {
        ProtectedAttention {
            unit: GemvUnit::exact(),
            softmax: SoftmaxUnit::new(),
            abft: AbftGemv::exact(),
        }
    }

    /// Fp16-datapath pipeline (hardware rounding; ABFT tolerance widened
    /// accordingly).
    #[must_use]
    pub fn fp16() -> ProtectedAttention {
        ProtectedAttention {
            unit: GemvUnit::new(),
            softmax: SoftmaxUnit::new(),
            abft: AbftGemv::fp16(),
        }
    }

    fn scores(&self, raw: &[f32], d: usize) -> Vec<f32> {
        let scale = 1.0 / (d as f64).sqrt();
        raw.iter().map(|&s| (f64::from(s) * scale) as f32).collect()
    }

    /// The protected pipeline: `softmax(q · Kᵀ / √d) · V` with every
    /// mitigation armed. Returns the context vector and what was
    /// detected/repaired. With an empty plan the output is bit-identical
    /// to [`ProtectedAttention::attention_unprotected`].
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent (`kt` must be
    /// `d × l`, `v` must be `l × d`).
    #[must_use]
    pub fn attention(
        &self,
        q: &[f32],
        kt: &Matrix,
        v: &Matrix,
        plan: &FaultPlan,
    ) -> (Vec<f32>, AttentionIntegrity) {
        let d = q.len();
        assert_eq!(kt.rows(), d, "Kᵀ must be d_head × l");
        assert_eq!(v.rows(), kt.cols(), "V must be l × d_head");
        assert_eq!(v.cols(), d, "V must be l × d_head");
        let mut report = AttentionIntegrity::default();

        // Phase 1: ABFT-checked score GEMV.
        let sa = self.abft.run(&self.unit, GemvMode::AdderTree, q, kt, &plan.stage(Stage::Score));
        report.score_detected = sa.detected.len();
        report.recomputed_cols += sa.recomputed_cols;
        report.input_repaired += sa.input_repaired;
        let scores = self.scores(&sa.y, d);

        // Phase 2: the scores sit in the softmax SRAM between GEMV
        // phases; an exact f64 checksum carried from the GEMV side
        // detects any storage corruption (same summation order on both
        // sides, so equality is bitwise on the fault-free path).
        let carried: f64 = scores.iter().map(|&s| f64::from(s)).sum();
        let sm_plan = plan.stage(Stage::Softmax);
        let stored: Vec<f32> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| match sm_plan.score_flip(i) {
                Some(bit) => flip_f32(s, bit),
                None => s,
            })
            .collect();
        let resummed: f64 = stored.iter().map(|&s| f64::from(s)).sum();
        let sm_in = if resummed.to_bits() == carried.to_bits() {
            stored
        } else {
            // Detected: restore from the (protected) GEMV-side copy.
            report.buffer_detected = true;
            scores.clone()
        };

        // Phase 3: guarded softmax; a tripped guard recomputes from the
        // restored scores.
        let weights = match self.softmax.compute_guarded(&sm_in) {
            Ok(w) => w,
            Err(_) => {
                report.softmax_detected = true;
                self.softmax.compute(&scores)
            }
        };

        // Phase 4: ABFT-checked context GEMV.
        let ca =
            self.abft.run(&self.unit, GemvMode::Accumulator, &weights, v, &plan.stage(Stage::Context));
        report.context_detected = ca.detected.len();
        report.recomputed_cols += ca.recomputed_cols;
        report.input_repaired += ca.input_repaired;
        (ca.y, report)
    }

    /// The same pipeline with every mitigation disarmed: faults flow
    /// straight through (this is what an unprotected run silently
    /// delivers). With an empty plan this is the baseline fault-free
    /// output.
    ///
    /// # Panics
    /// Panics if the dimensions are inconsistent.
    #[must_use]
    pub fn attention_unprotected(
        &self,
        q: &[f32],
        kt: &Matrix,
        v: &Matrix,
        plan: &FaultPlan,
    ) -> Vec<f32> {
        let d = q.len();
        assert_eq!(kt.rows(), d, "Kᵀ must be d_head × l");
        assert_eq!(v.rows(), kt.cols(), "V must be l × d_head");
        assert_eq!(v.cols(), d, "V must be l × d_head");
        let raw = self.unit.gemv_with_faults(GemvMode::AdderTree, q, kt, &plan.stage(Stage::Score));
        let scores = self.scores(&raw, d);
        let weights = self.softmax.compute_with_faults(&scores, &plan.stage(Stage::Softmax));
        self.unit.gemv_with_faults(GemvMode::Accumulator, &weights, v, &plan.stage(Stage::Context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulator::Accumulator;

    /// Deterministic head operands with no exact zeros (a zero cell makes
    /// low-bit flips sub-detectable *and* sub-observable; real KV data is
    /// dense). All values are exact binary16 multiples of 1/32.
    fn head(d: usize, l: usize) -> (Vec<f32>, Matrix, Matrix) {
        let q: Vec<f32> = (0..d).map(|i| ((i * 7 + 3) % 11) as f32 * 0.125 - 0.5625).collect();
        let kt = Matrix::from_vec(
            d,
            l,
            (0..d * l).map(|i| ((i * 13 + 5) % 17) as f32 * 0.0625 - 0.53125).collect(),
        );
        let v = Matrix::from_vec(
            l,
            d,
            (0..l * d).map(|i| ((i * 11 + 7) % 17) as f32 * 0.0625 - 0.53125).collect(),
        );
        (q, kt, v)
    }

    #[test]
    fn flip_helpers_are_involutions() {
        for bit in 0..32u8 {
            assert_eq!(flip_f32(flip_f32(1.375, bit), bit), 1.375);
        }
        for bit in 0..16u8 {
            // 0.25 is f16-exact, so cell flips round-trip.
            assert_eq!(flip_f16_cell(flip_f16_cell(0.25, bit), bit), 0.25);
        }
        assert_ne!(flip_f32(1.0, 0), 1.0);
        assert_ne!(flip_f16_cell(1.0, 0), 1.0);
    }

    #[test]
    fn empty_plan_is_inert_everywhere() {
        let (q, kt, v) = head(16, 32);
        let plan = FaultPlan::none();
        let unit = GemvUnit::exact();
        assert_eq!(unit.gemv_with_faults(GemvMode::AdderTree, &q, &kt, &plan), {
            unit.gemv(GemvMode::AdderTree, &q, &kt)
        });
        let p = ProtectedAttention::exact();
        let (protected, report) = p.attention(&q, &kt, &v, &plan);
        let unprotected = p.attention_unprotected(&q, &kt, &v, &plan);
        assert_eq!(protected, unprotected);
        assert!(!report.any_detected());
        assert_eq!(report.recomputed_cols, 0);
    }

    #[test]
    fn plan_lookups_and_stage_filtering() {
        let plan = FaultPlan {
            flips: vec![
                BitFlip { stage: Stage::Score, site: Site::Cell { r: 1, c: 2, bit: 3 } },
                BitFlip { stage: Stage::Softmax, site: Site::Score { i: 5, bit: 7 } },
            ],
        };
        assert_eq!(plan.stage(Stage::Score).flips.len(), 1);
        assert_eq!(plan.stage(Stage::Context).flips.len(), 0);
        assert_eq!(plan.stage(Stage::Score).cell_flip(1, 2), Some(3));
        assert_eq!(plan.stage(Stage::Score).cell_flip(0, 2), None);
        assert_eq!(plan.stage(Stage::Softmax).score_flip(5), Some(7));
        // Column rebasing keeps only in-range flips.
        let shifted = plan.stage(Stage::Score).shift_cols(2, 2);
        assert_eq!(shifted.cell_flip(1, 0), Some(3));
        assert!(plan.stage(Stage::Score).shift_cols(0, 2).is_empty());
    }

    #[test]
    fn abft_detects_and_localizes_cell_corruption() {
        let (q, kt, _) = head(32, 64);
        let unit = GemvUnit::exact();
        let abft = AbftGemv::exact();
        // Flip an exponent bit of a cell in the middle of the matrix.
        let plan = FaultPlan::single(BitFlip {
            stage: Stage::Score,
            site: Site::Cell { r: 10, c: 37, bit: 13 },
        });
        let clean = unit.gemv(GemvMode::AdderTree, &q, &kt);
        let out = abft.run(&unit, GemvMode::AdderTree, &q, &kt, &plan.stage(Stage::Score));
        assert_eq!(out.y, clean, "ABFT must repair to the fault-free output");
        // Column 37 of 64 over 16 partitions (4 cols each) → partition 9.
        assert_eq!(out.detected, vec![9]);
        assert_eq!(out.recomputed_cols, 4);
    }

    #[test]
    fn abft_handles_non_finite_blowups() {
        let (q, kt, _) = head(16, 16);
        let unit = GemvUnit::exact();
        // Exponent-bit flip on an input register can push a product to
        // huge magnitudes; sign-extend further via a product flip to the
        // top exponent bit → infinity.
        let plan = FaultPlan::single(BitFlip {
            stage: Stage::Score,
            site: Site::Product { r: 3, c: 3, bit: 30 },
        });
        let out = AbftGemv::exact().run(&unit, GemvMode::AdderTree, &q, &kt, &plan.stage(Stage::Score));
        assert_eq!(out.y, unit.gemv(GemvMode::AdderTree, &q, &kt));
        assert_eq!(out.detected.len(), 1);
    }

    #[test]
    fn carried_checksum_catches_buffer_corruption() {
        let (q, kt, v) = head(16, 32);
        let p = ProtectedAttention::exact();
        let baseline = p.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
        let plan = FaultPlan::single(BitFlip {
            stage: Stage::Softmax,
            site: Site::Score { i: 11, bit: 22 },
        });
        let (out, report) = p.attention(&q, &kt, &v, &plan);
        assert_eq!(out, baseline);
        assert!(report.buffer_detected);
        // The same flip unprotected changes the output.
        let corrupted = p.attention_unprotected(&q, &kt, &v, &plan);
        assert_ne!(corrupted, baseline);
    }

    #[test]
    fn softmax_guard_turns_blowup_into_detection() {
        let unit = SoftmaxUnit::new();
        assert!(unit.compute_guarded(&[1.0, f32::INFINITY]).is_err());
        assert!(unit.compute_guarded(&[f32::NAN]).is_err());
        let ok = unit.compute_guarded(&[0.5, -0.5, 1.5]).expect("healthy scores pass");
        assert_eq!(ok, unit.compute(&[0.5, -0.5, 1.5]));
    }

    #[test]
    fn accumulator_partial_faults_inject_and_detect() {
        let acc = Accumulator::exact();
        let parts = vec![vec![1.0f32, 2.0], vec![4.0, 8.0]];
        let clean = acc.reduce(&parts);
        let plan = FaultPlan::single(BitFlip {
            stage: Stage::Score,
            site: Site::Partial { part: 1, i: 0, bit: 23 },
        });
        let faulty = acc.reduce_with_faults(&parts, &plan);
        assert_ne!(faulty, clean);
        assert_eq!(acc.reduce_with_faults(&parts, &FaultPlan::none()), clean);
    }

    #[test]
    fn sampler_is_deterministic_and_covers_stages() {
        let mut stages = [false; 3];
        for seed in 0..64 {
            let a = sample_single_fault(seed, 32, 64);
            let b = sample_single_fault(seed, 32, 64);
            assert_eq!(a, b);
            match a.stage {
                Stage::Score => stages[0] = true,
                Stage::Softmax => stages[1] = true,
                Stage::Context => stages[2] = true,
            }
        }
        assert!(stages.iter().all(|&s| s), "64 seeds must hit every stage");
    }

    #[test]
    fn protected_pipeline_repairs_sampled_faults() {
        // A quick in-crate slice of the acceptance ensemble (the full
        // ≥100-seed run lives in tests/data_integrity.rs).
        let (q, kt, v) = head(32, 64);
        let p = ProtectedAttention::exact();
        let baseline = p.attention_unprotected(&q, &kt, &v, &FaultPlan::none());
        let mut detected = 0;
        for seed in 0..24 {
            let plan = FaultPlan::single(sample_single_fault(seed, 32, 64));
            let (out, report) = p.attention(&q, &kt, &v, &plan);
            assert_eq!(out, baseline, "seed {seed}: silent corruption");
            detected += usize::from(report.any_detected());
        }
        assert!(detected > 0, "some faults must be material enough to detect");
    }
}
