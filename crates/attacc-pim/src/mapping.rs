//! Data mapping for AttAcc (§4.2): head→HBM allocation and hierarchical
//! KV-matrix partitioning.
//!
//! Mapping is decided at three levels:
//!
//! 1. **HBM level** — each head lives entirely in one stack; heads of a new
//!    request are greedily placed on the least-loaded stacks at Sum time.
//! 2. **pCH / bank-group / bank level** — each `Kᵀ`/`V` is partitioned
//!    row-wise (reduction split, requires accumulation) or column-wise
//!    (output split, concatenation only). The paper selects
//!    (column, column, row) for `GEMV_score`/`Kᵀ` and (row, row, column)
//!    for `GEMV_context`/`V`.
//! 3. **multiplier level** — row-wise for `Kᵀ` (adder tree) and
//!    column-wise for `V` (accumulators), so that the KV vectors appended
//!    at every Gen stage never serialize onto a single multiplier.

use crate::accumulator::Accumulator;
use crate::gemv_unit::{GemvMode, GemvUnit};
use crate::numeric::Matrix;
use attacc_hbm::StackGeometry;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How one hierarchy level splits a `k × n` GEMV operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Partitioning {
    /// Split the reduction dimension `k`; partial results are summed by an
    /// accumulator at this level.
    RowWise,
    /// Split the output dimension `n`; results are concatenated and the
    /// accumulator is bypassed.
    ColWise,
}

/// Fanout and partitioning of one hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LevelSpec {
    /// Number of children (pCHs per stack, BGs per pCH, banks per BG).
    pub fanout: usize,
    /// Split direction at this level.
    pub partitioning: Partitioning,
}

/// A full mapping policy: per-level splits plus the multiplier-lane mode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MappingPolicy {
    /// Levels from outermost (pCH) to innermost (bank).
    pub levels: Vec<LevelSpec>,
    /// GEMV-unit lane partitioning.
    pub unit_mode: GemvMode,
}

impl MappingPolicy {
    /// The paper's `GEMV_score` mapping for `Kᵀ`: (column, column, row)
    /// across (pCH, BG, bank) and row-wise (adder tree) at the lanes.
    #[must_use]
    pub fn paper_score(geom: &StackGeometry) -> MappingPolicy {
        MappingPolicy {
            levels: vec![
                LevelSpec {
                    fanout: geom.pseudo_channels as usize,
                    partitioning: Partitioning::ColWise,
                },
                LevelSpec {
                    fanout: geom.bank_groups_per_pch() as usize,
                    partitioning: Partitioning::ColWise,
                },
                LevelSpec {
                    fanout: geom.banks_per_group as usize,
                    partitioning: Partitioning::RowWise,
                },
            ],
            unit_mode: GemvMode::AdderTree,
        }
    }

    /// The paper's `GEMV_context` mapping for `V`: (row, row, column)
    /// across (pCH, BG, bank) and column-wise (accumulators) at the lanes.
    #[must_use]
    pub fn paper_context(geom: &StackGeometry) -> MappingPolicy {
        MappingPolicy {
            levels: vec![
                LevelSpec {
                    fanout: geom.pseudo_channels as usize,
                    partitioning: Partitioning::RowWise,
                },
                LevelSpec {
                    fanout: geom.bank_groups_per_pch() as usize,
                    partitioning: Partitioning::RowWise,
                },
                LevelSpec {
                    fanout: geom.banks_per_group as usize,
                    partitioning: Partitioning::ColWise,
                },
            ],
            unit_mode: GemvMode::Accumulator,
        }
    }

    /// Total leaf count (GEMV units engaged).
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.levels.iter().map(|l| l.fanout).product()
    }
}

/// Executes `y = x · M` through the partitioned hierarchy: the matrix is
/// recursively split per [`MappingPolicy`], each leaf tile runs on a
/// [`GemvUnit`], and results flow back up through accumulators
/// (row-wise levels) or concatenation (column-wise levels).
///
/// This is the functional ground truth the timing model charges for;
/// property tests show it equals a reference GEMV for every policy.
///
/// # Panics
/// Panics if `x.len() != m.rows()`.
#[must_use]
pub fn hierarchical_gemv(
    unit: &GemvUnit,
    acc: &Accumulator,
    policy: &MappingPolicy,
    x: &[f32],
    m: &Matrix,
) -> Vec<f32> {
    assert_eq!(x.len(), m.rows(), "input length must equal matrix rows");
    gemv_level(unit, acc, &policy.levels, policy.unit_mode, x, m)
}

fn gemv_level(
    unit: &GemvUnit,
    acc: &Accumulator,
    levels: &[LevelSpec],
    mode: GemvMode,
    x: &[f32],
    m: &Matrix,
) -> Vec<f32> {
    let Some((level, rest)) = levels.split_first() else {
        return unit.gemv(mode, x, m);
    };
    match level.partitioning {
        Partitioning::RowWise => {
            let tiles = m.split_rows(level.fanout);
            let mut parts = Vec::with_capacity(level.fanout);
            let mut r0 = 0;
            for tile in tiles {
                let rows = tile.rows();
                parts.push(gemv_level(unit, acc, rest, mode, &x[r0..r0 + rows], &tile));
                r0 += rows;
            }
            acc.reduce(&parts)
        }
        Partitioning::ColWise => {
            let tiles = m.split_cols(level.fanout);
            let parts: Vec<Vec<f32>> = tiles
                .iter()
                .map(|tile| gemv_level(unit, acc, rest, mode, x, tile))
                .collect();
            Accumulator::concat(&parts)
        }
    }
}

/// Identifier of one attention head of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadId {
    /// Owning request.
    pub request: u64,
    /// Head index within the request.
    pub head: u32,
}

/// Greedy head→stack allocator (§4.2, HBM level).
///
/// Each head of a new request is placed on the currently least-loaded
/// stack (load measured in KV bytes), which keeps the per-stack imbalance
/// within one head's footprint of optimal. Gen stages grow every resident
/// head by one KV vector; completed requests release their heads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadAllocator {
    loads: Vec<u64>,
    assignments: HashMap<u64, Vec<(u32, usize, u64)>>,
    per_stack_capacity: u64,
}

/// Error returned by [`HeadAllocator::try_allocate`] when a request's
/// heads cannot fit under the per-stack capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackCapacityError {
    /// The stack that would overflow.
    pub stack: usize,
    /// Bytes the placement would require on it.
    pub required: u64,
    /// Its capacity.
    pub capacity: u64,
}

impl std::fmt::Display for StackCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stack {} would need {} bytes of {} available",
            self.stack, self.required, self.capacity
        )
    }
}

impl std::error::Error for StackCapacityError {}

impl HeadAllocator {
    /// An allocator over `n_stacks` empty stacks with unlimited capacity.
    ///
    /// # Panics
    /// Panics if `n_stacks` is zero.
    #[must_use]
    pub fn new(n_stacks: usize) -> HeadAllocator {
        HeadAllocator::with_capacity(n_stacks, u64::MAX)
    }

    /// An allocator whose stacks each hold at most `per_stack_capacity`
    /// bytes of KV data.
    ///
    /// # Panics
    /// Panics if `n_stacks` is zero.
    #[must_use]
    pub fn with_capacity(n_stacks: usize, per_stack_capacity: u64) -> HeadAllocator {
        assert!(n_stacks > 0, "need at least one stack");
        HeadAllocator {
            loads: vec![0; n_stacks],
            assignments: HashMap::new(),
            per_stack_capacity,
        }
    }

    /// Number of stacks.
    #[must_use]
    pub fn n_stacks(&self) -> usize {
        self.loads.len()
    }

    /// Places `n_head` heads of `request`, each initially occupying
    /// `kv_bytes_per_head`. Returns the chosen stack per head.
    ///
    /// # Panics
    /// Panics if the request already has an allocation, or if a per-stack
    /// capacity is configured and exceeded (use
    /// [`HeadAllocator::try_allocate`] for fallible placement).
    pub fn allocate(&mut self, request: u64, n_head: u32, kv_bytes_per_head: u64) -> Vec<usize> {
        self.try_allocate(request, n_head, kv_bytes_per_head)
            .expect("allocation exceeds per-stack capacity")
    }

    /// Fallible variant of [`HeadAllocator::allocate`]: respects the
    /// per-stack capacity and leaves the allocator untouched on failure.
    ///
    /// # Errors
    /// Returns [`StackCapacityError`] naming the stack that would
    /// overflow.
    ///
    /// # Panics
    /// Panics if the request already has an allocation.
    pub fn try_allocate(
        &mut self,
        request: u64,
        n_head: u32,
        kv_bytes_per_head: u64,
    ) -> Result<Vec<usize>, StackCapacityError> {
        assert!(
            !self.assignments.contains_key(&request),
            "request {request} already allocated"
        );
        let mut placed = Vec::with_capacity(n_head as usize);
        let mut record = Vec::with_capacity(n_head as usize);
        let mut loads = self.loads.clone();
        for h in 0..n_head {
            let stack = loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i)
                .expect("at least one stack");
            let new_load = loads[stack] + kv_bytes_per_head;
            if new_load > self.per_stack_capacity {
                return Err(StackCapacityError {
                    stack,
                    required: new_load,
                    capacity: self.per_stack_capacity,
                });
            }
            loads[stack] = new_load;
            placed.push(stack);
            record.push((h, stack, kv_bytes_per_head));
        }
        self.loads = loads;
        self.assignments.insert(request, record);
        Ok(placed)
    }

    /// Grows every head of `request` by `delta_bytes` (one Gen stage's
    /// appended KV vectors).
    ///
    /// # Panics
    /// Panics if the request is unknown.
    pub fn grow(&mut self, request: u64, delta_bytes: u64) {
        let heads = self
            .assignments
            .get_mut(&request)
            .unwrap_or_else(|| panic!("request {request} not allocated"));
        for (_, stack, bytes) in heads.iter_mut() {
            *bytes += delta_bytes;
            self.loads[*stack] += delta_bytes;
        }
    }

    /// Shrinks every head of `request` by `delta_bytes` (a KV eviction
    /// releasing old tokens back to the stack).
    ///
    /// # Panics
    /// Panics if the request is unknown or a head holds fewer than
    /// `delta_bytes`.
    pub fn shrink(&mut self, request: u64, delta_bytes: u64) {
        let heads = self
            .assignments
            .get_mut(&request)
            .unwrap_or_else(|| panic!("request {request} not allocated"));
        for (_, stack, bytes) in heads.iter_mut() {
            assert!(
                *bytes >= delta_bytes,
                "shrink of {delta_bytes} bytes exceeds the {bytes} resident"
            );
            *bytes -= delta_bytes;
            self.loads[*stack] -= delta_bytes;
        }
    }

    /// Releases all heads of a completed request, freeing their bytes.
    /// Unknown requests are ignored (idempotent).
    pub fn release(&mut self, request: u64) {
        if let Some(heads) = self.assignments.remove(&request) {
            for (_, stack, bytes) in heads {
                self.loads[stack] -= bytes;
            }
        }
    }

    /// Current KV load of `stack` in bytes.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn load(&self, stack: usize) -> u64 {
        self.loads[stack]
    }

    /// Heaviest stack load in bytes.
    #[must_use]
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Total KV bytes resident across all stacks.
    #[must_use]
    pub fn total_load(&self) -> u64 {
        self.loads.iter().sum()
    }

    /// Load imbalance: max / mean (1.0 = perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let total = self.total_load();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.loads.len() as f64;
        self.max_load() as f64 / mean
    }

    /// Stacks assigned to a request's heads (head index → stack), if
    /// resident.
    #[must_use]
    pub fn stacks_of(&self, request: u64) -> Option<Vec<(u32, usize)>> {
        self.assignments
            .get(&request)
            .map(|v| v.iter().map(|&(h, s, _)| (h, s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacc_hbm::StackGeometry;

    fn geom() -> StackGeometry {
        StackGeometry::hbm3_8hi()
    }

    #[test]
    fn paper_policies_cover_all_units() {
        let g = geom();
        let score = MappingPolicy::paper_score(&g);
        let ctx = MappingPolicy::paper_context(&g);
        assert_eq!(score.leaves(), 1024);
        assert_eq!(ctx.leaves(), 1024);
        assert_eq!(score.unit_mode, GemvMode::AdderTree);
        assert_eq!(ctx.unit_mode, GemvMode::Accumulator);
    }

    #[allow(clippy::needless_range_loop)]
    fn reference(x: &[f32], m: &Matrix) -> Vec<f64> {
        let mut y = vec![0.0f64; m.cols()];
        for (j, y_j) in y.iter_mut().enumerate() {
            for r in 0..m.rows() {
                *y_j += f64::from(x[r]) * f64::from(m.get(r, j));
            }
        }
        y
    }

    fn sample(k: usize, n: usize) -> (Vec<f32>, Matrix) {
        let x: Vec<f32> = (0..k).map(|i| ((i * 5 + 1) % 13) as f32 * 0.1 - 0.6).collect();
        let data: Vec<f32> = (0..k * n)
            .map(|i| ((i * 11 + 7) % 19) as f32 * 0.05 - 0.45)
            .collect();
        (x, Matrix::from_vec(k, n, data))
    }

    #[test]
    fn score_mapping_is_exact_gemv() {
        // Kᵀ of a small head: d_head = 24 rows, L = 50 columns, mapped with
        // a reduced-fanout version of the paper policy.
        let policy = MappingPolicy {
            levels: vec![
                LevelSpec { fanout: 4, partitioning: Partitioning::ColWise },
                LevelSpec { fanout: 2, partitioning: Partitioning::ColWise },
                LevelSpec { fanout: 3, partitioning: Partitioning::RowWise },
            ],
            unit_mode: GemvMode::AdderTree,
        };
        let (x, m) = sample(24, 50);
        let got = hierarchical_gemv(&GemvUnit::exact(), &Accumulator::exact(), &policy, &x, &m);
        let want = reference(&x, &m);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-4);
        }
    }

    #[test]
    fn context_mapping_is_exact_gemv() {
        let policy = MappingPolicy {
            levels: vec![
                LevelSpec { fanout: 4, partitioning: Partitioning::RowWise },
                LevelSpec { fanout: 2, partitioning: Partitioning::RowWise },
                LevelSpec { fanout: 3, partitioning: Partitioning::ColWise },
            ],
            unit_mode: GemvMode::Accumulator,
        };
        let (x, m) = sample(50, 24);
        let got = hierarchical_gemv(&GemvUnit::exact(), &Accumulator::exact(), &policy, &x, &m);
        let want = reference(&x, &m);
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-4);
        }
    }

    #[test]
    fn fanout_larger_than_dims_still_correct() {
        let policy = MappingPolicy {
            levels: vec![LevelSpec { fanout: 32, partitioning: Partitioning::RowWise }],
            unit_mode: GemvMode::AdderTree,
        };
        let (x, m) = sample(5, 3);
        let got = hierarchical_gemv(&GemvUnit::exact(), &Accumulator::exact(), &policy, &x, &m);
        let want = reference(&x, &m);
        for (g, w) in got.iter().zip(&want) {
            assert!((f64::from(*g) - w).abs() < 1e-5);
        }
    }

    #[test]
    fn allocator_balances_heads() {
        let mut a = HeadAllocator::new(5);
        a.allocate(0, 13, 100);
        // 13 heads on 5 stacks: loads differ by at most one head.
        let max = a.max_load();
        let min = (0..5).map(|s| a.load(s)).min().unwrap();
        assert!(max - min <= 100);
        assert_eq!(a.total_load(), 1300);
    }

    #[test]
    fn allocator_grow_and_release() {
        let mut a = HeadAllocator::new(2);
        a.allocate(1, 4, 10);
        a.grow(1, 5);
        assert_eq!(a.total_load(), 4 * 15);
        a.release(1);
        assert_eq!(a.total_load(), 0);
        a.release(1); // idempotent
        assert_eq!(a.imbalance(), 1.0);
    }

    #[test]
    fn allocator_shrink_reverses_grow() {
        let mut a = HeadAllocator::new(2);
        a.allocate(1, 4, 10);
        a.grow(1, 6);
        a.shrink(1, 4);
        assert_eq!(a.total_load(), 4 * 12);
        a.shrink(1, 12);
        assert_eq!(a.total_load(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn allocator_shrink_below_zero_panics() {
        let mut a = HeadAllocator::new(2);
        a.allocate(1, 1, 10);
        a.shrink(1, 11);
    }

    #[test]
    fn allocator_prefers_least_loaded() {
        let mut a = HeadAllocator::new(3);
        a.allocate(0, 1, 1000); // stack 0 heavy
        let placed = a.allocate(1, 2, 10);
        assert!(!placed.contains(&0), "new heads avoid the heavy stack");
    }

    #[test]
    fn capacity_limited_allocation() {
        let mut a = HeadAllocator::with_capacity(2, 100);
        a.allocate(0, 4, 50); // 2 heads per stack: both stacks full
        let err = a.try_allocate(1, 1, 10).unwrap_err();
        assert_eq!(err.capacity, 100);
        assert!(!err.to_string().is_empty());
        // The failed attempt left nothing behind.
        assert_eq!(a.total_load(), 200);
        assert!(a.stacks_of(1).is_none());
        // Releasing makes room again.
        a.release(0);
        assert!(a.try_allocate(1, 1, 10).is_ok());
    }

    #[test]
    fn failed_multi_head_allocation_is_atomic() {
        let mut a = HeadAllocator::with_capacity(2, 100);
        // 3 heads of 60: the third cannot fit anywhere.
        assert!(a.try_allocate(0, 3, 60).is_err());
        assert_eq!(a.total_load(), 0, "no partial placement survives");
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_panics() {
        let mut a = HeadAllocator::new(2);
        a.allocate(0, 1, 1);
        a.allocate(0, 1, 1);
    }

    #[test]
    fn stacks_of_reports_assignment() {
        let mut a = HeadAllocator::new(4);
        a.allocate(7, 3, 10);
        let got = a.stacks_of(7).unwrap();
        assert_eq!(got.len(), 3);
        assert!(a.stacks_of(8).is_none());
    }
}
