//! The AttAcc processing-in-memory architecture (§4–§6 of the paper).
//!
//! This crate implements both faces of AttAcc:
//!
//! * **Functional**: GEMV units (16 FP16 multiply lanes with adder-tree and
//!   accumulator modes), the 3-stage softmax unit, hierarchical
//!   accumulators, and the §4.2 data-mapping policies, all executing on
//!   real numbers. Property tests prove the partitioned dataflow is
//!   numerically equivalent to a reference attention implementation.
//! * **Timing/energy**: the design-space points AttAcc_buffer / AttAcc_BG /
//!   AttAcc_bank with their power-constrained internal bandwidths, the area
//!   model of §7.7, per-head attention execution with attention-level
//!   pipelining (§6.1), and the device-level model `attacc-sim` composes
//!   into the heterogeneous platform.
//!
//! # Example
//!
//! ```
//! use attacc_pim::{AttAccDevice, GemvPlacement};
//! use attacc_model::ModelConfig;
//!
//! let dev = AttAccDevice::paper_40_stacks(GemvPlacement::Bank);
//! let m = ModelConfig::gpt3_175b();
//! // One Gen-stage decoder of GPT-3 at batch 32, L = 2048:
//! let t = dev.attention_decoder_time(&m, &[(32, 2048)], true);
//! assert!(t.total_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod area;
pub mod attention;
pub mod bitwise;
pub mod controller;
pub mod device;
pub mod gemv_unit;
pub mod head_pipeline;
pub mod integrity;
pub mod isa;
pub mod kv_store;
pub mod mapping;
pub mod numeric;
pub mod placement;
pub mod schedule;
pub mod softmax_unit;
pub mod systolic;
pub mod timing_exec;

pub use area::{AreaReport, ProcessNode};
pub use attention::{AttentionTiming, HeadJob};
pub use controller::{AttAccController, ConfigMemory};
pub use device::AttAccDevice;
pub use gemv_unit::{GemvMode, GemvUnit, Precision};
pub use head_pipeline::{schedule_stack, HeadPhase, HeadTimeline, Segment};
pub use integrity::{
    flip_f16_cell, flip_f32, sample_single_fault, AbftGemv, AbftOutcome, AttentionIntegrity,
    BitFlip, FaultPlan, ProtectedAttention, Site, Stage,
};
pub use isa::{AttInst, InstError};
pub use kv_store::{KvHalf, KvStore, KvStoreFull};
pub use mapping::{HeadAllocator, LevelSpec, MappingPolicy, Partitioning};
pub use placement::GemvPlacement;
pub use schedule::{schedule_head, HeadSchedule, ScheduledCommand};
pub use softmax_unit::SoftmaxUnit;
pub use systolic::SystolicGemvUnit;
pub use timing_exec::{execute_head, HeadTrace};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    /// The sweep engine shares device models across worker threads by
    /// reference; every type it touches must be `Send + Sync`.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn timing_types_are_shareable_across_threads() {
        assert_send_sync::<AttAccDevice>();
        assert_send_sync::<AttentionTiming>();
        assert_send_sync::<AttAccController>();
        assert_send_sync::<GemvPlacement>();
        assert_send_sync::<MappingPolicy>();
        assert_send_sync::<AreaReport>();
    }
}
