//! The AttAcc instruction set (§5.2): one `Att_inst` per API function.
//!
//! The host programs AttAcc through a CUDA/OpenCL-style offload model:
//! `AttAcc::SetModel` and `AttAcc::UpdateRequest` fill the config memory,
//! `AttAcc::MemCopy` moves Q/K/V vectors and results, and
//! `AttAcc::RunAttention` launches one head's attention. The
//! [`crate::AttAccController`] executes these instructions functionally.
//!
//! Beyond the paper's API the ISA carries the timing-relevant
//! instructions trace-driven execution needs (`attacc-trace` compiles
//! model graphs into these): [`AttInst::RunAttentionBatch`] launches a
//! whole head group, [`AttInst::DeclareKv`] registers KV shipped in bulk
//! from a prefill node, [`AttInst::EvictKv`] trims a head's window,
//! [`AttInst::ConfigPages`]/[`AttInst::MapPage`]/[`AttInst::UnmapPage`]
//! implement paged (blocked) KV residency, and [`AttInst::Barrier`]
//! marks an xPU↔PIM handoff point.
//!
//! Every instruction has a stable one-line text form ([`fmt::Display`])
//! that the `attacc-trace` codec parses back; [`AttInst`] is `Eq` under
//! the codec's contract that vector payloads are finite (the parser
//! rejects NaN/Inf, so `PartialEq` is total on codec-legal traces).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction delivered to the AttAcc controller.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum AttInst {
    /// `AttAcc::SetModel`: configure head geometry. The config memory
    /// stores `N_head`, `d_head` and the maximum context length (§5.1),
    /// which sizes each head's physical KV extents.
    SetModel {
        /// Query heads per request.
        n_head: u32,
        /// Per-head dimension.
        d_head: usize,
        /// Maximum context length a request may reach.
        max_l: u64,
    },
    /// `AttAcc::UpdateRequest`: admit a request (KV length starts at 0) or
    /// remove a completed one, freeing its stacks.
    UpdateRequest {
        /// Request id.
        request: u64,
        /// `true` to remove, `false` to admit.
        remove: bool,
    },
    /// `AttAcc::MemCopy` toward AttAcc: append one token's K and V vectors
    /// to a head's matrices.
    AppendKv {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// New key vector (`d_head` values).
        k: Vec<f32>,
        /// New value vector (`d_head` values).
        v: Vec<f32>,
    },
    /// Bulk KV registration: `tokens` K/V vector pairs become resident on
    /// a head without their values crossing the instruction stream — the
    /// DMA path used when a prefill (Sum) node ships a finished KV block
    /// over the interconnect. The functional controller zero-fills the
    /// vectors (contents live in the DMA payload, not the trace); the
    /// timing executor charges the transfer and advances the context
    /// length.
    DeclareKv {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Number of token KV pairs registered.
        tokens: u64,
    },
    /// `AttAcc::MemCopy` of the Q vector into the head's GEMV buffers.
    LoadQ {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Query vector (`d_head` values).
        q: Vec<f32>,
    },
    /// `AttAcc::RunAttention`: execute score → softmax → context for one
    /// head using the loaded Q and resident KV.
    RunAttention {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
    },
    /// Batched `AttAcc::RunAttention` over a contiguous head group:
    /// heads `head0 .. head0 + n_heads` execute back-to-back, one command
    /// issue instead of `n_heads` (the §6.1 attention-level pipeline runs
    /// inside one launch).
    RunAttentionBatch {
        /// Owning request.
        request: u64,
        /// First head of the group.
        head0: u32,
        /// Number of consecutive heads launched.
        n_heads: u32,
    },
    /// `AttAcc::MemCopy` toward the host: read a head's context output.
    ReadOutput {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
    },
    /// Sliding-window eviction: drop a head's oldest KV vectors so at
    /// most `keep_last` tokens remain resident. Bookkeeping (context
    /// length, capacity accounting) follows head 0, mirroring
    /// [`AttInst::AppendKv`]'s lockstep convention.
    EvictKv {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Tokens to retain (the attention window).
        keep_last: u64,
    },
    /// Enables paged (blocked) KV: subsequent attention launches stream
    /// only the KV pages a head has mapped. Pages partition each head's
    /// token sequence into fixed blocks of `tokens_per_page` tokens
    /// (page `p` covers tokens `p·tokens_per_page ..`).
    ConfigPages {
        /// Tokens per KV page.
        tokens_per_page: u64,
    },
    /// Marks one KV page of a head resident for attention.
    MapPage {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Page index.
        page: u64,
    },
    /// Removes one KV page of a head from the attention stream (the page
    /// stays allocated; [`AttInst::EvictKv`] or request retirement frees
    /// capacity).
    UnmapPage {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Page index.
        page: u64,
    },
    /// xPU↔PIM synchronization marker: all preceding PIM work must drain
    /// before the host proceeds (the FC layers between attention layers
    /// run on the xPU). Functionally a no-op; trace executors use it as
    /// an attribution boundary.
    Barrier {
        /// Host-chosen tag identifying the sync point.
        tag: u32,
    },
}

/// `AttInst` equality is total in practice: the trace codec refuses
/// non-finite vector payloads (`NaN`/`Inf` never round-trip), so the
/// reflexivity `Eq` asserts holds on every codec-legal instruction.
impl Eq for AttInst {}

/// The stable opcode mnemonic of each instruction — the first token of
/// its [`fmt::Display`] line and the key trace reports aggregate by.
impl AttInst {
    /// Opcode mnemonic (stable across releases; the trace text format).
    #[must_use]
    pub fn opcode(&self) -> &'static str {
        match self {
            AttInst::SetModel { .. } => "set_model",
            AttInst::UpdateRequest { remove: false, .. } => "admit",
            AttInst::UpdateRequest { remove: true, .. } => "retire",
            AttInst::AppendKv { .. } => "append",
            AttInst::DeclareKv { .. } => "declare_kv",
            AttInst::LoadQ { .. } => "load_q",
            AttInst::RunAttention { .. } => "run",
            AttInst::RunAttentionBatch { .. } => "run_batch",
            AttInst::ReadOutput { .. } => "read",
            AttInst::EvictKv { .. } => "evict_kv",
            AttInst::ConfigPages { .. } => "config_pages",
            AttInst::MapPage { .. } => "map_page",
            AttInst::UnmapPage { .. } => "unmap_page",
            AttInst::Barrier { .. } => "barrier",
        }
    }
}

fn write_vec(f: &mut fmt::Formatter<'_>, name: &str, v: &[f32]) -> fmt::Result {
    write!(f, " {name}=")?;
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        // `{}` on f32 is the shortest representation that parses back to
        // the same bits, so the codec round-trips exactly.
        write!(f, "{x}")?;
    }
    Ok(())
}

/// The canonical one-line trace form: `opcode key=value ...`, keys in a
/// fixed order, floats in shortest round-trip notation. This format is
/// the trace file format — `attacc-trace::parse_inst` inverts it.
impl fmt::Display for AttInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.opcode())?;
        match self {
            AttInst::SetModel { n_head, d_head, max_l } => {
                write!(f, " n_head={n_head} d_head={d_head} max_l={max_l}")
            }
            AttInst::UpdateRequest { request, .. } => write!(f, " req={request}"),
            AttInst::AppendKv { request, head, k, v } => {
                write!(f, " req={request} head={head}")?;
                write_vec(f, "k", k)?;
                write_vec(f, "v", v)
            }
            AttInst::DeclareKv { request, head, tokens } => {
                write!(f, " req={request} head={head} tokens={tokens}")
            }
            AttInst::LoadQ { request, head, q } => {
                write!(f, " req={request} head={head}")?;
                write_vec(f, "q", q)
            }
            AttInst::RunAttention { request, head } | AttInst::ReadOutput { request, head } => {
                write!(f, " req={request} head={head}")
            }
            AttInst::RunAttentionBatch { request, head0, n_heads } => {
                write!(f, " req={request} head0={head0} n_heads={n_heads}")
            }
            AttInst::EvictKv { request, head, keep_last } => {
                write!(f, " req={request} head={head} keep_last={keep_last}")
            }
            AttInst::ConfigPages { tokens_per_page } => {
                write!(f, " tokens_per_page={tokens_per_page}")
            }
            AttInst::MapPage { request, head, page } | AttInst::UnmapPage { request, head, page } => {
                write!(f, " req={request} head={head} page={page}")
            }
            AttInst::Barrier { tag } => write!(f, " tag={tag}"),
        }
    }
}

/// Errors the controller can raise while executing instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstError {
    /// `SetModel` has not been executed yet.
    NotConfigured,
    /// The request is not resident in the config memory.
    UnknownRequest(u64),
    /// The head index exceeds the configured head count.
    UnknownHead(u32),
    /// A vector's length does not match `d_head`.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// `RunAttention` before any KV vectors were appended.
    EmptyKv,
    /// `RunAttention` with every resident token masked out (all pages
    /// unmapped, or the window evicted to zero).
    NothingMapped,
    /// `RunAttention` before the Q vector was loaded.
    MissingQ,
    /// `ReadOutput` before `RunAttention`.
    NoOutput,
    /// Admitting the request would exceed device KV capacity.
    CapacityExceeded,
    /// `MapPage`/`UnmapPage` before `ConfigPages`.
    PagingNotConfigured,
    /// `UnmapPage` of a page that is not mapped.
    PageNotMapped(u64),
    /// An error raised while replaying instruction `index` of a trace:
    /// trace executors wrap the underlying failure so it points at a
    /// line in the trace file (line = index + 1 plus any header lines).
    Trace {
        /// Zero-based index of the offending instruction in the trace.
        index: usize,
        /// The underlying failure.
        cause: Box<InstError>,
    },
}

impl InstError {
    /// Wraps an error with the trace-instruction index that raised it.
    /// Already-wrapped errors keep their original (innermost) index.
    #[must_use]
    pub fn at_index(self, index: usize) -> InstError {
        match self {
            InstError::Trace { .. } => self,
            other => InstError::Trace { index, cause: Box::new(other) },
        }
    }

    /// The trace-instruction index attached by [`InstError::at_index`],
    /// if any.
    #[must_use]
    pub fn trace_index(&self) -> Option<usize> {
        match self {
            InstError::Trace { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for InstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstError::NotConfigured => write!(f, "SetModel has not been executed"),
            InstError::UnknownRequest(r) => write!(f, "request {r} is not resident"),
            InstError::UnknownHead(h) => write!(f, "head {h} exceeds the configured head count"),
            InstError::DimensionMismatch { expected, got } => {
                write!(f, "vector length {got} does not match d_head {expected}")
            }
            InstError::EmptyKv => write!(f, "attention launched with an empty KV cache"),
            InstError::NothingMapped => {
                write!(f, "attention launched with every resident token masked out")
            }
            InstError::MissingQ => write!(f, "attention launched before the Q vector was loaded"),
            InstError::NoOutput => write!(f, "no attention output available to read"),
            InstError::CapacityExceeded => write!(f, "device KV capacity exceeded"),
            InstError::PagingNotConfigured => {
                write!(f, "page instruction before ConfigPages")
            }
            InstError::PageNotMapped(p) => write!(f, "page {p} is not mapped"),
            InstError::Trace { index, cause } => {
                write!(f, "trace instruction #{index}: {cause}")
            }
        }
    }
}

impl std::error::Error for InstError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstError::Trace { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        for e in [
            InstError::NotConfigured,
            InstError::UnknownRequest(3),
            InstError::UnknownHead(9),
            InstError::DimensionMismatch { expected: 4, got: 5 },
            InstError::EmptyKv,
            InstError::NothingMapped,
            InstError::MissingQ,
            InstError::NoOutput,
            InstError::CapacityExceeded,
            InstError::PagingNotConfigured,
            InstError::PageNotMapped(7),
            InstError::EmptyKv.at_index(12),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn instructions_have_useful_debug() {
        let inst = AttInst::LoadQ {
            request: 1,
            head: 2,
            q: vec![0.5, 1.0],
        };
        assert!(format!("{inst:?}").contains("LoadQ"));
    }

    #[test]
    fn display_is_the_stable_trace_line() {
        let cases = [
            (
                AttInst::SetModel { n_head: 96, d_head: 128, max_l: 2048 },
                "set_model n_head=96 d_head=128 max_l=2048",
            ),
            (AttInst::UpdateRequest { request: 3, remove: false }, "admit req=3"),
            (AttInst::UpdateRequest { request: 3, remove: true }, "retire req=3"),
            (
                AttInst::AppendKv { request: 0, head: 2, k: vec![0.5, -1.25], v: vec![0.0, 3.0] },
                "append req=0 head=2 k=0.5,-1.25 v=0,3",
            ),
            (
                AttInst::DeclareKv { request: 1, head: 0, tokens: 2048 },
                "declare_kv req=1 head=0 tokens=2048",
            ),
            (AttInst::LoadQ { request: 0, head: 1, q: vec![1.5] }, "load_q req=0 head=1 q=1.5"),
            (AttInst::RunAttention { request: 0, head: 5 }, "run req=0 head=5"),
            (
                AttInst::RunAttentionBatch { request: 0, head0: 0, n_heads: 96 },
                "run_batch req=0 head0=0 n_heads=96",
            ),
            (AttInst::ReadOutput { request: 0, head: 5 }, "read req=0 head=5"),
            (
                AttInst::EvictKv { request: 0, head: 5, keep_last: 256 },
                "evict_kv req=0 head=5 keep_last=256",
            ),
            (AttInst::ConfigPages { tokens_per_page: 64 }, "config_pages tokens_per_page=64"),
            (AttInst::MapPage { request: 0, head: 5, page: 3 }, "map_page req=0 head=5 page=3"),
            (
                AttInst::UnmapPage { request: 0, head: 5, page: 3 },
                "unmap_page req=0 head=5 page=3",
            ),
            (AttInst::Barrier { tag: 7 }, "barrier tag=7"),
        ];
        for (inst, line) in cases {
            assert_eq!(inst.to_string(), line);
            assert!(line.starts_with(inst.opcode()));
        }
    }

    #[test]
    fn eq_holds_on_finite_payloads() {
        let a = AttInst::LoadQ { request: 1, head: 2, q: vec![0.5, 1.0] };
        assert_eq!(a, a.clone());
        let b = AttInst::LoadQ { request: 1, head: 2, q: vec![0.5, 1.5] };
        assert_ne!(a, b);
    }

    #[test]
    fn trace_index_wraps_once() {
        let e = InstError::EmptyKv.at_index(4);
        assert_eq!(e.trace_index(), Some(4));
        assert_eq!(e.clone().at_index(9).trace_index(), Some(4));
        assert_eq!(InstError::EmptyKv.trace_index(), None);
        assert!(e.to_string().contains("#4"));
    }
}
