//! The AttAcc instruction set (§5.2): one `Att_inst` per API function.
//!
//! The host programs AttAcc through a CUDA/OpenCL-style offload model:
//! `AttAcc::SetModel` and `AttAcc::UpdateRequest` fill the config memory,
//! `AttAcc::MemCopy` moves Q/K/V vectors and results, and
//! `AttAcc::RunAttention` launches one head's attention. The
//! [`crate::AttAccController`] executes these instructions functionally.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction delivered to the AttAcc controller.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum AttInst {
    /// `AttAcc::SetModel`: configure head geometry. The config memory
    /// stores `N_head`, `d_head` and the maximum context length (§5.1),
    /// which sizes each head's physical KV extents.
    SetModel {
        /// Query heads per request.
        n_head: u32,
        /// Per-head dimension.
        d_head: usize,
        /// Maximum context length a request may reach.
        max_l: u64,
    },
    /// `AttAcc::UpdateRequest`: admit a request (KV length starts at 0) or
    /// remove a completed one, freeing its stacks.
    UpdateRequest {
        /// Request id.
        request: u64,
        /// `true` to remove, `false` to admit.
        remove: bool,
    },
    /// `AttAcc::MemCopy` toward AttAcc: append one token's K and V vectors
    /// to a head's matrices.
    AppendKv {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// New key vector (`d_head` values).
        k: Vec<f32>,
        /// New value vector (`d_head` values).
        v: Vec<f32>,
    },
    /// `AttAcc::MemCopy` of the Q vector into the head's GEMV buffers.
    LoadQ {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
        /// Query vector (`d_head` values).
        q: Vec<f32>,
    },
    /// `AttAcc::RunAttention`: execute score → softmax → context for one
    /// head using the loaded Q and resident KV.
    RunAttention {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
    },
    /// `AttAcc::MemCopy` toward the host: read a head's context output.
    ReadOutput {
        /// Owning request.
        request: u64,
        /// Head index.
        head: u32,
    },
}

/// Errors the controller can raise while executing instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstError {
    /// `SetModel` has not been executed yet.
    NotConfigured,
    /// The request is not resident in the config memory.
    UnknownRequest(u64),
    /// The head index exceeds the configured head count.
    UnknownHead(u32),
    /// A vector's length does not match `d_head`.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// `RunAttention` before any KV vectors were appended.
    EmptyKv,
    /// `RunAttention` before the Q vector was loaded.
    MissingQ,
    /// `ReadOutput` before `RunAttention`.
    NoOutput,
    /// Admitting the request would exceed device KV capacity.
    CapacityExceeded,
}

impl fmt::Display for InstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstError::NotConfigured => write!(f, "SetModel has not been executed"),
            InstError::UnknownRequest(r) => write!(f, "request {r} is not resident"),
            InstError::UnknownHead(h) => write!(f, "head {h} exceeds the configured head count"),
            InstError::DimensionMismatch { expected, got } => {
                write!(f, "vector length {got} does not match d_head {expected}")
            }
            InstError::EmptyKv => write!(f, "attention launched with an empty KV cache"),
            InstError::MissingQ => write!(f, "attention launched before the Q vector was loaded"),
            InstError::NoOutput => write!(f, "no attention output available to read"),
            InstError::CapacityExceeded => write!(f, "device KV capacity exceeded"),
        }
    }
}

impl std::error::Error for InstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        for e in [
            InstError::NotConfigured,
            InstError::UnknownRequest(3),
            InstError::UnknownHead(9),
            InstError::DimensionMismatch { expected: 4, got: 5 },
            InstError::EmptyKv,
            InstError::MissingQ,
            InstError::NoOutput,
            InstError::CapacityExceeded,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn instructions_have_useful_debug() {
        let inst = AttInst::LoadQ {
            request: 1,
            head: 2,
            q: vec![0.5, 1.0],
        };
        assert!(format!("{inst:?}").contains("LoadQ"));
    }
}
