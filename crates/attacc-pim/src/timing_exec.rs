//! Engine-backed timing execution: lowering head jobs to DRAM streams.
//!
//! [`crate::attention::stack_attention_timing`] uses a closed-form stream
//! model to stay cheap inside figure sweeps. This module provides the
//! ground truth it approximates: each head's `GEMV_score` and
//! `GEMV_context` become per-pseudo-channel [`StreamSpec`]s according to
//! the §4.2 mapping, executed on the event-driven command engine of
//! `attacc-hbm`. Tests (and the `timing_fidelity` integration suite) pin
//! the two within a few percent.

use crate::attention::{HeadJob, HEAD_OVERHEAD_S};
use crate::{GemvPlacement, SoftmaxUnit};
use attacc_hbm::engine::simulate_stream;
use attacc_hbm::{HbmConfig, StreamSpec};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Engine-level timing of one head on one stack.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadTrace {
    /// GEMV_score stream time (s).
    pub score_s: f64,
    /// Softmax occupancy (s).
    pub softmax_s: f64,
    /// GEMV_context stream time (s).
    pub context_s: f64,
    /// Column (MAC) commands issued across the stack.
    pub mac_commands: u64,
    /// Row activations issued across the stack.
    pub activates: u64,
    /// Stream energy (J).
    pub energy_j: f64,
}

impl HeadTrace {
    /// Serial head time: score + softmax + context plus the fixed per-head
    /// overhead.
    #[must_use]
    pub fn serial_s(&self) -> f64 {
        self.score_s + self.softmax_s + self.context_s + HEAD_OVERHEAD_S
    }
}

/// Builds the per-pCH stream of one GEMV half (`Kᵀ` or `V`) of a head:
/// the matrix bytes are spread evenly over the channel's banks per the
/// §4.2 mapping (every level splits either L or d_head, both ample for a
/// full stack), then executed with the placement's power-token limit.
#[must_use]
pub fn gemv_stream_spec(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    matrix_bytes_on_stack: u64,
) -> StreamSpec {
    // Round up: a tile that does not divide evenly still streams its
    // remainder bytes (the last pCH's beats), so truncating here would
    // undercharge small or odd-shaped heads.
    let per_pch = matrix_bytes_on_stack.div_ceil(u64::from(hbm.geometry.pseudo_channels));
    StreamSpec {
        bytes_per_bank: StreamSpec::uniform(&hbm.geometry, per_pch, 1).bytes_per_bank,
        max_active: placement.max_active_per_pch(hbm),
        depth: placement.depth(),
    }
}

/// Executes one head's attention at command level on one stack.
///
/// All pseudo-channels run the same stream in lockstep (the head's tile is
/// spread evenly), so one channel's engine time is the stack time.
#[must_use]
pub fn execute_head(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    softmax: &SoftmaxUnit,
    job: HeadJob,
) -> HeadTrace {
    let pchs = f64::from(hbm.geometry.pseudo_channels);
    let spec = gemv_stream_spec(hbm, placement, job.k_bytes());
    let score = simulate_stream(hbm, &spec);
    let context = simulate_stream(hbm, &spec);
    HeadTrace {
        score_s: score.elapsed_ps as f64 * 1e-12,
        softmax_s: softmax.pipelined_occupancy_s(job.l),
        context_s: context.elapsed_ps as f64 * 1e-12,
        mac_commands: (score.reads + context.reads) * hbm.geometry.pseudo_channels as u64,
        activates: (score.activates + context.activates) * hbm.geometry.pseudo_channels as u64,
        energy_j: (score.energy.total_pj() + context.energy.total_pj()) * pchs * 1e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::stack_attention_timing;

    fn setup() -> (HbmConfig, SoftmaxUnit) {
        (HbmConfig::hbm3_8hi(), SoftmaxUnit::new())
    }

    fn job(l: u64) -> HeadJob {
        HeadJob::new(l, 128, 2)
    }

    #[test]
    fn engine_and_closed_form_agree_on_large_heads() {
        let (hbm, sm) = setup();
        for l in [2048u64, 4096, 8192] {
            let trace = execute_head(&hbm, GemvPlacement::Bank, &sm, job(l));
            let closed =
                stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &[(1, job(l))], false);
            let err = (trace.serial_s() - closed.serial_s).abs() / trace.serial_s();
            assert!(
                err < 0.25,
                "L={l}: engine {:.3e} vs closed {:.3e} (err {:.1}%)",
                trace.serial_s(),
                closed.serial_s,
                err * 100.0
            );
        }
    }

    #[test]
    fn non_divisible_matrix_rounds_bytes_up() {
        let (hbm, _) = setup();
        let pchs = u64::from(hbm.geometry.pseudo_channels);
        // One byte more than an even split: the remainder must stream,
        // not vanish in integer division.
        let even = pchs * 1024;
        let spec_even = gemv_stream_spec(&hbm, GemvPlacement::Bank, even);
        let spec_odd = gemv_stream_spec(&hbm, GemvPlacement::Bank, even + 1);
        let total = |s: &StreamSpec| s.bytes_per_bank.iter().sum::<u64>();
        assert_eq!(total(&spec_even), 1024);
        assert!(
            total(&spec_odd) > total(&spec_even),
            "remainder byte dropped: {} vs {}",
            total(&spec_odd),
            total(&spec_even)
        );
        // Per-pCH bytes never undercount the stack tile.
        assert!(total(&spec_odd) * pchs > even);
    }

    #[test]
    fn engine_confirms_placement_ordering() {
        let (hbm, sm) = setup();
        let t = |p| execute_head(&hbm, p, &sm, job(4096)).serial_s();
        let bank = t(GemvPlacement::Bank);
        let bg = t(GemvPlacement::BankGroup);
        let buffer = t(GemvPlacement::Buffer);
        assert!(bank < bg && bg < buffer, "{bank} {bg} {buffer}");
    }

    #[test]
    fn mac_command_count_matches_data_volume() {
        let (hbm, sm) = setup();
        let j = job(2048);
        let trace = execute_head(&hbm, GemvPlacement::Bank, &sm, j);
        // Every KV byte is read exactly once: commands × 32 B ≈ kv_bytes
        // (± per-bank rounding to whole beats).
        let bytes = trace.mac_commands * hbm.geometry.prefetch_bytes;
        let kv = j.kv_bytes();
        assert!(
            bytes >= kv && bytes < kv + 32 * 1024 * 32,
            "{bytes} vs {kv}"
        );
    }

    #[test]
    fn engine_energy_close_to_closed_form() {
        let (hbm, sm) = setup();
        let j = job(4096);
        let trace = execute_head(&hbm, GemvPlacement::Bank, &sm, j);
        let closed_stream_j = j.kv_bytes() as f64
            * 8.0
            * GemvPlacement::Bank.stream_energy_pj_per_bit(&hbm)
            * 1e-12;
        let err = (trace.energy_j - closed_stream_j).abs() / closed_stream_j;
        assert!(err < 0.15, "engine {} vs closed {}", trace.energy_j, closed_stream_j);
    }
}
