//! Per-decoder attention execution on AttAcc: timing, pipelining, energy.
//!
//! A Gen-stage attention layer decomposes into one [`HeadJob`] per query
//! head per request. Heads are spread across the stacks (§4.2); within a
//! stack they execute back-to-back on the GEMV units while the buffer-die
//! softmax unit processes the previous head's scores — the §6.1
//! *attention-level pipelining*.

use crate::{GemvPlacement, SoftmaxUnit};
use attacc_hbm::{AccessDepth, HbmConfig};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// One KV-head's Gen-stage attention work: a GEMV_score over
/// `Kᵀ (d_head×l)`, softmax over `l` scores, and a GEMV_context over
/// `V (l×d_head)`.
///
/// `q_per_kv` > 1 models the §8 systolic extension under GQA/MQA: the
/// reconfigured GEMV units apply several query vectors to each streamed KV
/// beat, so the KV stream is paid once per *KV* head while softmax (and
/// host traffic) scale with the *query* heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadJob {
    /// Context length of the owning request.
    pub l: u64,
    /// Per-head dimension.
    pub d_head: u64,
    /// Bytes per KV element.
    pub kv_dtype_bytes: u64,
    /// Query heads served per KV stream pass (1 without systolic reuse).
    pub q_per_kv: u64,
}

impl HeadJob {
    /// A plain (non-systolic) head job.
    #[must_use]
    pub const fn new(l: u64, d_head: u64, kv_dtype_bytes: u64) -> HeadJob {
        HeadJob {
            l,
            d_head,
            kv_dtype_bytes,
            q_per_kv: 1,
        }
    }
    /// Bytes of `Kᵀ` (equal to the bytes of `V`).
    #[must_use]
    pub const fn k_bytes(&self) -> u64 {
        self.l * self.d_head * self.kv_dtype_bytes
    }

    /// Total KV bytes streamed for this head (K and V).
    #[must_use]
    pub const fn kv_bytes(&self) -> u64 {
        2 * self.k_bytes()
    }
}

/// Timing and energy of one decoder's attention layer on the device.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AttentionTiming {
    /// GEMV_score time on the critical stack (seconds).
    pub score_s: f64,
    /// Softmax time on the critical stack (seconds).
    pub softmax_s: f64,
    /// GEMV_context time on the critical stack (seconds).
    pub context_s: f64,
    /// Serial (un-pipelined) critical-stack time.
    pub serial_s: f64,
    /// Critical-stack time actually charged (pipelined if requested).
    pub total_s: f64,
    /// Energy over the whole device (joules).
    pub energy_j: f64,
    /// Head count on the critical stack.
    pub heads_on_critical_stack: u64,
}

/// Fixed per-head overhead: command issue, Q-vector broadcast into the
/// GEMV buffers, output drain (seconds). Small but keeps zero-length heads
/// from being free.
pub const HEAD_OVERHEAD_S: f64 = 30e-9;

/// Computes the critical-stack timing of one decoder's attention layer.
///
/// `stack_heads` lists, per distinct context length, how many heads the
/// *critical* (most loaded) stack executes. The caller (usually
/// [`crate::AttAccDevice`]) derives those counts from the batch shape and
/// the head allocator's balance guarantees.
#[must_use]
pub fn stack_attention_timing(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    softmax: &SoftmaxUnit,
    stack_heads: &[(u64, HeadJob)],
    pipelined: bool,
) -> AttentionTiming {
    let stack_bw = placement.stack_bandwidth_bytes_per_s(hbm);
    let t_rcd_s = hbm.timing.t_rcd as f64 * 1e-12;

    let mut score_s = 0.0;
    let mut context_s = 0.0;
    let mut softmax_s = 0.0;
    let mut heads_total = 0u64;
    let mut max_l = 0u64;
    for &(count, job) in stack_heads {
        let n = count as f64;
        let t_half = t_rcd_s + job.k_bytes() as f64 / stack_bw;
        score_s += n * t_half;
        context_s += n * t_half;
        softmax_s += n * job.q_per_kv.max(1) as f64 * softmax.pipelined_occupancy_s(job.l);
        heads_total += count;
        max_l = max_l.max(job.l);
    }
    let overhead = heads_total as f64 * HEAD_OVERHEAD_S;
    let gemv_s = score_s + context_s + overhead;
    let serial_s = score_s + context_s + softmax_s + overhead
        + if heads_total > 0 {
            softmax.latency_s(max_l) - softmax.pipelined_occupancy_s(max_l)
        } else {
            0.0
        };
    let pipelined_s = if heads_total == 0 {
        0.0
    } else {
        // GEMV and softmax streams overlap across heads; one softmax
        // latency is exposed at the pipeline tail.
        gemv_s.max(softmax_s) + softmax.latency_s(max_l)
    };
    AttentionTiming {
        score_s,
        softmax_s,
        context_s,
        serial_s,
        total_s: if pipelined { pipelined_s.min(serial_s) } else { serial_s },
        energy_j: 0.0, // filled by the device-level aggregation
        heads_on_critical_stack: heads_total,
    }
}

/// Energy of executing `heads` head jobs anywhere on the device (joules).
///
/// Streaming energy uses the placement's depth (activation amortized, MAC
/// included); softmax energy covers all three stages; Q-in and output-out
/// cross the external interface once per head.
#[must_use]
pub fn attention_energy_j(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    softmax: &SoftmaxUnit,
    heads: &[(u64, HeadJob)],
) -> f64 {
    let stream_pj_bit = placement.stream_energy_pj_per_bit(hbm);
    let ext_pj_bit = hbm.energy.streaming_pj_per_bit(AccessDepth::External, false);
    let mut pj = 0.0;
    for &(count, job) in heads {
        let n = count as f64;
        let q = job.q_per_kv.max(1) as f64;
        pj += n * job.kv_bytes() as f64 * 8.0 * stream_pj_bit;
        pj += n * q * softmax.energy_pj(job.l);
        // Q vectors in, context vectors out (one pair per query head),
        // softmax scores moved on-die (charged at TSV depth via
        // MvGb/MvSb).
        let host_bytes = 2 * job.d_head * job.kv_dtype_bytes;
        pj += n * q * host_bytes as f64 * 8.0 * ext_pj_bit;
        let score_bytes = 2 * job.l * 4; // FP32 scores to and from softmax
        pj += n * q * score_bytes as f64 * 8.0 * hbm.energy.tsv_pj_per_bit;
    }
    pj * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (HbmConfig, SoftmaxUnit) {
        (HbmConfig::hbm3_8hi(), SoftmaxUnit::new())
    }

    fn job(l: u64) -> HeadJob {
        HeadJob::new(l, 128, 2)
    }

    #[test]
    fn pipelining_never_hurts() {
        let (hbm, sm) = setup();
        let heads = [(120u64, job(2048))];
        let ser = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &heads, false);
        let pipe = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &heads, true);
        assert!(pipe.total_s <= ser.total_s);
        assert!(pipe.total_s > 0.0);
    }

    #[test]
    fn gemv_dominates_softmax() {
        // The design intent: the buffer-die softmax never becomes the
        // bottleneck (its required bandwidth is N_head/d_emb of GEMV's).
        let (hbm, sm) = setup();
        let heads = [(120u64, job(2048))];
        let t = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &heads, true);
        assert!(t.softmax_s < 0.3 * (t.score_s + t.context_s));
    }

    #[test]
    fn bank_placement_is_fastest() {
        let (hbm, sm) = setup();
        let heads = [(64u64, job(4096))];
        let t = |p| stack_attention_timing(&hbm, p, &sm, &heads, true).total_s;
        let buffer = t(GemvPlacement::Buffer);
        let bg = t(GemvPlacement::BankGroup);
        let bank = t(GemvPlacement::Bank);
        assert!(bank < bg && bg < buffer, "{bank} {bg} {buffer}");
        // Asymptotically the ratios approach 9:3:1.
        assert!((buffer / bank) > 6.0, "buffer/bank = {}", buffer / bank);
    }

    #[test]
    fn time_scales_linearly_with_heads() {
        let (hbm, sm) = setup();
        let t = |n| {
            stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &[(n, job(2048))], true).total_s
        };
        let ratio = t(100) / t(10);
        assert!((ratio - 10.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn empty_stack_takes_no_time() {
        let (hbm, sm) = setup();
        let t = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &[], true);
        assert_eq!(t.total_s, 0.0);
        assert_eq!(t.heads_on_critical_stack, 0);
    }

    #[test]
    fn energy_prefers_deeper_placement() {
        let (hbm, sm) = setup();
        let heads = [(64u64, job(2048))];
        let e = |p| attention_energy_j(&hbm, p, &sm, &heads);
        assert!(e(GemvPlacement::Bank) < e(GemvPlacement::BankGroup));
        assert!(e(GemvPlacement::BankGroup) < e(GemvPlacement::Buffer));
    }

    #[test]
    fn energy_linear_in_heads_and_length() {
        let (hbm, sm) = setup();
        let e1 = attention_energy_j(&hbm, GemvPlacement::Bank, &sm, &[(10, job(1024))]);
        let e2 = attention_energy_j(&hbm, GemvPlacement::Bank, &sm, &[(20, job(1024))]);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn head_job_byte_math() {
        let j = job(2048);
        assert_eq!(j.k_bytes(), 2048 * 128 * 2);
        assert_eq!(j.kv_bytes(), 2 * j.k_bytes());
        assert_eq!(j.q_per_kv, 1);
    }

    #[test]
    fn systolic_job_shares_kv_stream() {
        // A systolic job serving 8 query heads streams the same KV bytes
        // but pays 8× softmax and host traffic.
        let (hbm, sm) = setup();
        let plain = [(8u64, job(2048))];
        let systolic = [(1u64, HeadJob { q_per_kv: 8, ..job(2048) })];
        let t_plain = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &plain, true);
        let t_sys = stack_attention_timing(&hbm, GemvPlacement::Bank, &sm, &systolic, true);
        assert!(t_sys.total_s < t_plain.total_s / 4.0);
        assert!((t_sys.softmax_s - t_plain.softmax_s).abs() < 1e-12);
        let e_plain = attention_energy_j(&hbm, GemvPlacement::Bank, &sm, &plain);
        let e_sys = attention_energy_j(&hbm, GemvPlacement::Bank, &sm, &systolic);
        assert!(e_sys < e_plain);
    }
}
