//! Area model (§7.7).
//!
//! The constants come from the paper's post-synthesis numbers (Synopsys DC
//! with the ASAP7 predictive PDK, scaled to a 1z-nm DRAM process assuming
//! DRAM logic is 10× less dense than a logic process of the same feature
//! size): 0.094 mm² per GEMV unit and 0.036 mm² per accumulator on the
//! DRAM die, a 1.38 mm² softmax unit and 0.02 mm² accumulator on the
//! buffer die, against a 121 mm² HBM3 die.

use crate::GemvPlacement;
use attacc_hbm::HbmConfig;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Fabrication process of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ProcessNode {
    /// 7 nm logic (buffer die).
    Logic7nm,
    /// Third-generation 10 nm-class (1z-nm) DRAM process.
    Dram1z,
}

impl ProcessNode {
    /// Density penalty relative to the logic process (Devaux, Hot Chips'19:
    /// DRAM process is ~10× less dense).
    #[must_use]
    pub const fn density_penalty(self) -> f64 {
        match self {
            ProcessNode::Logic7nm => 1.0,
            ProcessNode::Dram1z => 10.0,
        }
    }
}

/// Synthesized unit areas (mm²) in the 1z-nm DRAM process.
pub mod unit_area {
    /// One 16-lane GEMV unit (DRAM process).
    pub const GEMV_DRAM_MM2: f64 = 0.094;
    /// One DRAM-die accumulator.
    pub const ACCUM_DRAM_MM2: f64 = 0.036;
    /// The softmax unit on the buffer die (7 nm logic).
    pub const SOFTMAX_LOGIC_MM2: f64 = 1.38;
    /// The per-buffer-die accumulator (7 nm logic).
    pub const ACCUM_LOGIC_MM2: f64 = 0.02;
    /// Area of one HBM3 DRAM die.
    pub const DRAM_DIE_MM2: f64 = 121.0;
}

/// Area multiplier of a systolic-configured GEMV unit relative to the
/// plain unit (§8: KV reuse for GQA "at a higher area cost": extra
/// per-lane query registers and a wider accumulator file roughly double
/// the arithmetic+buffer portion, which is 77% of the unit).
pub const SYSTOLIC_AREA_FACTOR: f64 = 1.77;

/// Area overhead of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct AreaReport {
    /// Added area per DRAM die (mm²).
    pub per_dram_die_mm2: f64,
    /// Added area per buffer die (mm²).
    pub per_buffer_die_mm2: f64,
    /// DRAM-die overhead as a fraction of the 121 mm² die.
    pub dram_die_overhead: f64,
}

impl AreaReport {
    /// Computes the overhead of `placement` on `cfg`'s stack.
    #[must_use]
    pub fn for_placement(placement: GemvPlacement, cfg: &HbmConfig) -> AreaReport {
        let g = &cfg.geometry;
        let dies = f64::from(g.dram_dies);
        let (dram_mm2, buffer_extra) = match placement {
            GemvPlacement::Bank => {
                // One GEMV unit per bank + one accumulator per bank group,
                // all in the DRAM process.
                let units = f64::from(g.total_banks()) / dies;
                let accs = f64::from(g.total_bank_groups()) / dies;
                (
                    units * unit_area::GEMV_DRAM_MM2 + accs * unit_area::ACCUM_DRAM_MM2,
                    0.0,
                )
            }
            GemvPlacement::BankGroup => {
                // One GEMV unit per bank group on the DRAM die.
                let units = f64::from(g.total_bank_groups()) / dies;
                (units * unit_area::GEMV_DRAM_MM2, 0.0)
            }
            GemvPlacement::Buffer => {
                // GEMV units live on the buffer die in the logic process:
                // 10× denser than the DRAM-process synthesis.
                let units = f64::from(g.pseudo_channels);
                (
                    0.0,
                    units * unit_area::GEMV_DRAM_MM2 / ProcessNode::Dram1z.density_penalty(),
                )
            }
        };
        let buffer =
            unit_area::SOFTMAX_LOGIC_MM2 + unit_area::ACCUM_LOGIC_MM2 + buffer_extra;
        AreaReport {
            per_dram_die_mm2: dram_mm2,
            per_buffer_die_mm2: buffer,
            dram_die_overhead: dram_mm2 / unit_area::DRAM_DIE_MM2,
        }
    }

    /// Total added silicon per stack (mm²).
    #[must_use]
    pub fn total_stack_mm2(&self, cfg: &HbmConfig) -> f64 {
        self.per_dram_die_mm2 * f64::from(cfg.geometry.dram_dies) + self.per_buffer_die_mm2
    }

    /// Overhead of `placement` with the §8 systolic GEMV-unit extension:
    /// every GEMV unit grows by [`SYSTOLIC_AREA_FACTOR`].
    #[must_use]
    pub fn for_placement_systolic(placement: GemvPlacement, cfg: &HbmConfig) -> AreaReport {
        let base = AreaReport::for_placement(placement, cfg);
        let g = &cfg.geometry;
        let dies = f64::from(g.dram_dies);
        let unit_extra = unit_area::GEMV_DRAM_MM2 * (SYSTOLIC_AREA_FACTOR - 1.0);
        let (dram_extra, buffer_extra) = match placement {
            GemvPlacement::Bank => (f64::from(g.total_banks()) / dies * unit_extra, 0.0),
            GemvPlacement::BankGroup => {
                (f64::from(g.total_bank_groups()) / dies * unit_extra, 0.0)
            }
            GemvPlacement::Buffer => (
                0.0,
                f64::from(g.pseudo_channels) * unit_extra / ProcessNode::Dram1z.density_penalty(),
            ),
        };
        let per_dram_die_mm2 = base.per_dram_die_mm2 + dram_extra;
        AreaReport {
            per_dram_die_mm2,
            per_buffer_die_mm2: base.per_buffer_die_mm2 + buffer_extra,
            dram_die_overhead: per_dram_die_mm2 / unit_area::DRAM_DIE_MM2,
        }
    }

    /// Whole-stack silicon area (base dies plus overhead, mm²) — the area
    /// term of the Fig. 7(d) EDAP comparison, where each design point pays
    /// for the entire (modified) stack, not just the added units.
    #[must_use]
    pub fn stack_silicon_mm2(&self, cfg: &HbmConfig) -> f64 {
        let dies = f64::from(cfg.geometry.dram_dies);
        dies * (unit_area::DRAM_DIE_MM2 + self.per_dram_die_mm2)
            + unit_area::DRAM_DIE_MM2
            + self.per_buffer_die_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HbmConfig {
        HbmConfig::hbm3_8hi()
    }

    #[test]
    fn bank_placement_matches_paper_numbers() {
        // §7.7: 13.12 mm² per DRAM die (10.84% of 121 mm²), 1.40 mm² per
        // buffer die.
        let r = AreaReport::for_placement(GemvPlacement::Bank, &cfg());
        assert!(
            (r.per_dram_die_mm2 - 13.12).abs() < 0.3,
            "per-die = {} mm²",
            r.per_dram_die_mm2
        );
        assert!(
            (r.dram_die_overhead - 0.1084).abs() < 0.003,
            "overhead = {}",
            r.dram_die_overhead
        );
        assert!((r.per_buffer_die_mm2 - 1.40).abs() < 0.01);
    }

    #[test]
    fn area_ordering_buffer_lt_bg_lt_bank() {
        let c = cfg();
        let total = |p| AreaReport::for_placement(p, &c).total_stack_mm2(&c);
        let buffer = total(GemvPlacement::Buffer);
        let bg = total(GemvPlacement::BankGroup);
        let bank = total(GemvPlacement::Bank);
        assert!(buffer < bg && bg < bank, "{buffer} {bg} {bank}");
    }

    #[test]
    fn buffer_placement_has_no_dram_die_overhead() {
        let r = AreaReport::for_placement(GemvPlacement::Buffer, &cfg());
        assert_eq!(r.per_dram_die_mm2, 0.0);
        assert!(r.per_buffer_die_mm2 > unit_area::SOFTMAX_LOGIC_MM2);
    }

    #[test]
    fn systolic_extension_costs_area() {
        let c = cfg();
        let plain = AreaReport::for_placement(GemvPlacement::Bank, &c);
        let sys = AreaReport::for_placement_systolic(GemvPlacement::Bank, &c);
        assert!(sys.per_dram_die_mm2 > plain.per_dram_die_mm2 * 1.5);
        assert!(sys.dram_die_overhead < 0.25, "still plausible: {}", sys.dram_die_overhead);
        // Buffer placement pays the systolic premium on the buffer die.
        let buf = AreaReport::for_placement_systolic(GemvPlacement::Buffer, &c);
        assert_eq!(buf.per_dram_die_mm2, 0.0);
        assert!(buf.per_buffer_die_mm2 > AreaReport::for_placement(GemvPlacement::Buffer, &c).per_buffer_die_mm2);
    }

    #[test]
    fn logic_units_are_10x_denser() {
        assert_eq!(ProcessNode::Dram1z.density_penalty(), 10.0);
        assert_eq!(ProcessNode::Logic7nm.density_penalty(), 1.0);
    }
}
