//! The §4.1 design space: where to put the GEMV units.

use attacc_hbm::{AccessDepth, HbmConfig};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// GEMV-unit placement within the HBM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum GemvPlacement {
    /// One unit per pseudo-channel on the buffer die (`AttAcc_buffer`):
    /// logic-process units, but no bandwidth gain over external I/O.
    Buffer,
    /// One unit per bank group at the GBUS controller (`AttAcc_BG`).
    BankGroup,
    /// One unit per bank beside the column decoder (`AttAcc_bank`) — the
    /// paper's chosen point.
    Bank,
}

impl GemvPlacement {
    /// All three design points, in paper order.
    pub const ALL: [GemvPlacement; 3] =
        [GemvPlacement::Buffer, GemvPlacement::BankGroup, GemvPlacement::Bank];

    /// The datapath depth at which streamed data is consumed.
    #[must_use]
    pub const fn depth(self) -> AccessDepth {
        match self {
            GemvPlacement::Buffer => AccessDepth::Buffer,
            GemvPlacement::BankGroup => AccessDepth::BankGroup,
            GemvPlacement::Bank => AccessDepth::Bank,
        }
    }

    /// GEMV units physically present per pseudo-channel.
    #[must_use]
    pub fn units_per_pch(self, cfg: &HbmConfig) -> u32 {
        match self {
            GemvPlacement::Buffer => 1,
            GemvPlacement::BankGroup => cfg.geometry.bank_groups_per_pch(),
            GemvPlacement::Bank => cfg.geometry.banks_per_pch(),
        }
    }

    /// GEMV units concurrently active per pseudo-channel under the IDD7
    /// power budget (1 / 6 / 18 with the paper's parameters).
    #[must_use]
    pub fn max_active_per_pch(self, cfg: &HbmConfig) -> u32 {
        cfg.power.max_active_units(self.depth(), &cfg.geometry)
    }

    /// Per-unit streaming rate in bytes/s: buffer units read at the channel
    /// (tCCDS) rate; in-die units read at the tCCDL rate.
    #[must_use]
    pub fn unit_rate_bytes_per_s(self, cfg: &HbmConfig) -> f64 {
        let interval = match self {
            GemvPlacement::Buffer => cfg.timing.tccd_s_s(),
            GemvPlacement::BankGroup | GemvPlacement::Bank => cfg.timing.tccd_l_s(),
        };
        cfg.geometry.prefetch_bytes as f64 / interval
    }

    /// Aggregate exploitable bandwidth of one stack in bytes/s (power
    /// constraint applied).
    #[must_use]
    pub fn stack_bandwidth_bytes_per_s(self, cfg: &HbmConfig) -> f64 {
        f64::from(self.max_active_per_pch(cfg))
            * self.unit_rate_bytes_per_s(cfg)
            * f64::from(cfg.geometry.pseudo_channels)
    }

    /// Bandwidth relative to the stack's external bandwidth (1 / 3 / 9).
    #[must_use]
    pub fn relative_bandwidth(self, cfg: &HbmConfig) -> f64 {
        self.stack_bandwidth_bytes_per_s(cfg) / cfg.external_bandwidth_bytes_per_s()
    }

    /// Per-bit energy of streaming into the units (activation amortized,
    /// MAC included), in pJ/bit.
    #[must_use]
    pub fn stream_energy_pj_per_bit(self, cfg: &HbmConfig) -> f64 {
        cfg.energy.streaming_pj_per_bit(self.depth(), true)
    }
}

impl fmt::Display for GemvPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GemvPlacement::Buffer => "AttAcc_buffer",
            GemvPlacement::BankGroup => "AttAcc_BG",
            GemvPlacement::Bank => "AttAcc_bank",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HbmConfig {
        HbmConfig::hbm3_8hi()
    }

    #[test]
    fn unit_counts_match_geometry() {
        let c = cfg();
        assert_eq!(GemvPlacement::Buffer.units_per_pch(&c), 1);
        assert_eq!(GemvPlacement::BankGroup.units_per_pch(&c), 8);
        assert_eq!(GemvPlacement::Bank.units_per_pch(&c), 32);
    }

    #[test]
    fn active_counts_match_paper() {
        let c = cfg();
        assert_eq!(GemvPlacement::Bank.max_active_per_pch(&c), 18);
        assert_eq!(GemvPlacement::BankGroup.max_active_per_pch(&c), 6);
        assert_eq!(GemvPlacement::Buffer.max_active_per_pch(&c), 1);
    }

    #[test]
    fn relative_bandwidths_are_1_3_9() {
        let c = cfg();
        let rel = |p: GemvPlacement| p.relative_bandwidth(&c);
        assert!((rel(GemvPlacement::Buffer) - 1.0).abs() < 0.05);
        assert!((rel(GemvPlacement::BankGroup) - 3.0).abs() < 0.1);
        assert!((rel(GemvPlacement::Bank) - 9.0).abs() < 0.3);
    }

    #[test]
    fn deeper_placement_streams_cheaper() {
        let c = cfg();
        let e = |p: GemvPlacement| p.stream_energy_pj_per_bit(&c);
        assert!(e(GemvPlacement::Bank) < e(GemvPlacement::BankGroup));
        assert!(e(GemvPlacement::BankGroup) < e(GemvPlacement::Buffer));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(GemvPlacement::Bank.to_string(), "AttAcc_bank");
        assert_eq!(GemvPlacement::BankGroup.to_string(), "AttAcc_BG");
    }
}
