//! Attention-level pipelining as an explicit schedule (§6.1, Fig. 11(a)).
//!
//! Within one stack, the GEMV units and the buffer-die softmax unit are
//! independent resources: while head *i*'s scores run through softmax,
//! head *i+1*'s `GEMV_score` already streams. This module builds the
//! explicit (head, phase, start, end) timeline for a stack's head queue
//! and proves the closed-form pipelined estimate of
//! [`crate::attention::stack_attention_timing`] against it.

use crate::attention::{HeadJob, HEAD_OVERHEAD_S};
use crate::{GemvPlacement, SoftmaxUnit};
use attacc_hbm::HbmConfig;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Which pipeline stage a segment occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum HeadPhase {
    /// `GEMV_score` on the GEMV units.
    Score,
    /// Softmax on the buffer die.
    Softmax,
    /// `GEMV_context` on the GEMV units.
    Context,
}

/// One scheduled segment of the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Segment {
    /// Index of the head in the stack's queue.
    pub head: usize,
    /// Stage.
    pub phase: HeadPhase,
    /// Start time (s).
    pub start_s: f64,
    /// End time (s).
    pub end_s: f64,
}

/// The complete timeline of a stack's head queue.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct HeadTimeline {
    /// Segments in schedule order.
    pub segments: Vec<Segment>,
    /// Makespan (s).
    pub total_s: f64,
    /// Busy fraction of the GEMV units.
    pub gemv_utilization: f64,
    /// Busy fraction of the softmax unit.
    pub softmax_utilization: f64,
}

/// Builds the attention-level-pipelined timeline of `heads` on one stack.
///
/// Scheduling rule (greedy list scheduling over two resources): each
/// head's score must precede its softmax, which precedes its context; the
/// GEMV units serialize score/context segments across heads; the softmax
/// unit serializes softmax segments. This is exactly the dataflow the
/// paper sketches in Fig. 11(a).
#[must_use]
pub fn schedule_stack(
    hbm: &HbmConfig,
    placement: GemvPlacement,
    softmax: &SoftmaxUnit,
    heads: &[HeadJob],
) -> HeadTimeline {
    let stack_bw = placement.stack_bandwidth_bytes_per_s(hbm);
    let t_rcd_s = hbm.timing.t_rcd as f64 * 1e-12;

    let mut segments = Vec::with_capacity(heads.len() * 3);
    let mut gemv_free = 0.0f64;
    let mut sfm_free = 0.0f64;
    let mut gemv_busy = 0.0f64;
    let mut sfm_busy = 0.0f64;
    // Per-head context segments become available once its softmax ends;
    // they queue on the GEMV resource behind later heads' scores only if
    // the GEMV unit is otherwise idle-ordered. Greedy: process per head,
    // scheduling score immediately, softmax after it, context after
    // softmax — the GEMV resource interleaves naturally because score of
    // head i+1 can start while softmax of head i runs.
    let mut pending_context: Vec<(usize, f64, f64)> = Vec::new(); // (head, ready, dur)
    for (i, job) in heads.iter().enumerate() {
        let gemv_dur = t_rcd_s + job.k_bytes() as f64 / stack_bw + HEAD_OVERHEAD_S / 2.0;
        // Drain any context segments that became ready before this score.
        let mut j = 0;
        while j < pending_context.len() {
            let (h, ready, dur) = pending_context[j];
            if ready <= gemv_free {
                let start = gemv_free.max(ready);
                segments.push(Segment {
                    head: h,
                    phase: HeadPhase::Context,
                    start_s: start,
                    end_s: start + dur,
                });
                gemv_free = start + dur;
                gemv_busy += dur;
                pending_context.remove(j);
            } else {
                j += 1;
            }
        }
        // Score.
        let s_start = gemv_free;
        segments.push(Segment {
            head: i,
            phase: HeadPhase::Score,
            start_s: s_start,
            end_s: s_start + gemv_dur,
        });
        gemv_free = s_start + gemv_dur;
        gemv_busy += gemv_dur;
        // Softmax.
        let sfm_dur = softmax.pipelined_occupancy_s(job.l);
        let f_start = gemv_free.max(sfm_free);
        segments.push(Segment {
            head: i,
            phase: HeadPhase::Softmax,
            start_s: f_start,
            end_s: f_start + sfm_dur,
        });
        sfm_free = f_start + sfm_dur;
        sfm_busy += sfm_dur;
        // Context becomes ready after softmax.
        pending_context.push((i, sfm_free, gemv_dur));
    }
    // Drain remaining contexts.
    pending_context.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (h, ready, dur) in pending_context {
        let start = gemv_free.max(ready);
        segments.push(Segment {
            head: h,
            phase: HeadPhase::Context,
            start_s: start,
            end_s: start + dur,
        });
        gemv_free = start + dur;
        gemv_busy += dur;
    }

    let total = segments.iter().map(|s| s.end_s).fold(0.0, f64::max);
    HeadTimeline {
        segments,
        total_s: total,
        gemv_utilization: if total > 0.0 { gemv_busy / total } else { 0.0 },
        softmax_utilization: if total > 0.0 { sfm_busy / total } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::stack_attention_timing;

    fn setup() -> (HbmConfig, SoftmaxUnit) {
        (HbmConfig::hbm3_8hi(), SoftmaxUnit::new())
    }

    fn jobs(n: usize, l: u64) -> Vec<HeadJob> {
        vec![HeadJob::new(l, 128, 2); n]
    }

    #[test]
    fn timeline_respects_dependencies_and_resources() {
        let (hbm, sm) = setup();
        let tl = schedule_stack(&hbm, GemvPlacement::Bank, &sm, &jobs(6, 2048));
        // Per head: score < softmax < context.
        for h in 0..6 {
            let find = |p| {
                tl.segments
                    .iter()
                    .find(|s| s.head == h && s.phase == p)
                    .copied()
                    .unwrap()
            };
            let s = find(HeadPhase::Score);
            let f = find(HeadPhase::Softmax);
            let c = find(HeadPhase::Context);
            assert!(s.end_s <= f.start_s + 1e-12);
            assert!(f.end_s <= c.start_s + 1e-12);
        }
        // GEMV segments never overlap; softmax segments never overlap.
        let mut gemv: Vec<_> = tl
            .segments
            .iter()
            .filter(|s| s.phase != HeadPhase::Softmax)
            .collect();
        gemv.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        for w in gemv.windows(2) {
            assert!(w[0].end_s <= w[1].start_s + 1e-12, "{:?} {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn timeline_matches_closed_form_pipelined_estimate() {
        let (hbm, sm) = setup();
        for n in [2usize, 8, 32, 96] {
            let tl = schedule_stack(&hbm, GemvPlacement::Bank, &sm, &jobs(n, 2048));
            let closed = stack_attention_timing(
                &hbm,
                GemvPlacement::Bank,
                &sm,
                &[(n as u64, HeadJob::new(2048, 128, 2))],
                true,
            );
            let err = (tl.total_s - closed.total_s).abs() / closed.total_s;
            assert!(
                err < 0.15,
                "n={n}: timeline {:.3e} vs closed {:.3e}",
                tl.total_s,
                closed.total_s
            );
        }
    }

    #[test]
    fn gemv_units_stay_nearly_saturated() {
        // With many heads the GEMV stream is the bottleneck; the softmax
        // unit idles (its bandwidth need is ~N_head/d_emb of GEMV's).
        let (hbm, sm) = setup();
        let tl = schedule_stack(&hbm, GemvPlacement::Bank, &sm, &jobs(64, 2048));
        assert!(tl.gemv_utilization > 0.95, "gemv util {}", tl.gemv_utilization);
        assert!(tl.softmax_utilization < 0.3, "sfm util {}", tl.softmax_utilization);
    }

    #[test]
    fn empty_queue_is_empty_timeline() {
        let (hbm, sm) = setup();
        let tl = schedule_stack(&hbm, GemvPlacement::Bank, &sm, &[]);
        assert!(tl.segments.is_empty());
        assert_eq!(tl.total_s, 0.0);
    }
}
