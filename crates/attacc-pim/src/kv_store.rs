//! Physical KV-cache placement inside a stack.
//!
//! The head allocator decides *which stack* holds a head (§4.2); this
//! module manages *where inside the stack* its KV vectors land. Each head
//! owns two growing regions — `Kᵀ` and `V` — carved from the stack in
//! row-interleaved extents so that streaming a head touches every bank of
//! every pseudo-channel (the property the GEMV timing model assumes).
//!
//! The store is functional: it resolves (head, token) to the physical
//! beats holding its elements, enforces per-stack capacity, and reclaims
//! extents when requests retire.

use crate::mapping::HeadId;
use attacc_hbm::{AddressMap, Interleave, PhysicalAddr, StackGeometry};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Error returned when the stack cannot hold another extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStoreFull {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes remaining.
    pub available: u64,
}

impl fmt::Display for KvStoreFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KV store full: {} bytes requested, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for KvStoreFull {}

/// Which of a head's two matrices a region belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum KvHalf {
    /// The transposed key matrix.
    Key,
    /// The value matrix.
    Value,
}

#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct Extent {
    /// First beat of the extent in the stack's linear beat space.
    start_beat: u64,
    /// Beats reserved.
    beats: u64,
    /// Beats currently used.
    used: u64,
}

/// A per-stack KV placement manager.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct KvStore {
    geom: StackGeometry,
    map: AddressMap,
    /// Next unallocated beat (bump allocation; retired extents go to the
    /// free list).
    next_beat: u64,
    free: Vec<(u64, u64)>, // (start, beats)
    extents: HashMap<(HeadId, KvHalf), Extent>,
    /// Beats one token's half-vector occupies.
    beats_per_token: u64,
    /// Tokens an extent is provisioned for.
    extent_tokens: u64,
}

impl KvStore {
    /// A store over `geom` for heads of `d_head` elements of
    /// `dtype_bytes`, provisioning extents of `extent_tokens` tokens
    /// (the request's maximum length, so growth never relocates).
    ///
    /// # Panics
    /// Panics if any argument is zero.
    #[must_use]
    pub fn new(geom: StackGeometry, d_head: u64, dtype_bytes: u64, extent_tokens: u64) -> KvStore {
        assert!(d_head > 0 && dtype_bytes > 0 && extent_tokens > 0, "zero dimension");
        let bytes_per_token = d_head * dtype_bytes;
        let beats_per_token = bytes_per_token.div_ceil(geom.prefetch_bytes).max(1);
        KvStore {
            map: AddressMap::new(geom.clone(), Interleave::RowInterleaved),
            geom,
            next_beat: 0,
            free: Vec::new(),
            extents: HashMap::new(),
            beats_per_token,
            extent_tokens,
        }
    }

    /// Total beats of the stack.
    #[must_use]
    pub fn capacity_beats(&self) -> u64 {
        self.map.total_beats()
    }

    /// Beats still unreserved.
    #[must_use]
    pub fn available_beats(&self) -> u64 {
        let freed: u64 = self.free.iter().map(|&(_, b)| b).sum();
        self.capacity_beats() - self.next_beat + freed
    }

    fn reserve(&mut self, beats: u64) -> Result<u64, KvStoreFull> {
        // First-fit on the free list.
        if let Some(i) = self.free.iter().position(|&(_, b)| b >= beats) {
            let (start, size) = self.free[i];
            if size == beats {
                self.free.remove(i);
            } else {
                self.free[i] = (start + beats, size - beats);
            }
            return Ok(start);
        }
        if self.next_beat + beats > self.capacity_beats() {
            return Err(KvStoreFull {
                requested: beats * self.geom.prefetch_bytes,
                available: self.available_beats() * self.geom.prefetch_bytes,
            });
        }
        let start = self.next_beat;
        self.next_beat += beats;
        Ok(start)
    }

    /// Opens both extents of a head (done at admission).
    ///
    /// # Errors
    /// Returns [`KvStoreFull`] if either extent cannot be reserved; no
    /// partial reservation survives.
    pub fn open_head(&mut self, head: HeadId) -> Result<(), KvStoreFull> {
        let beats = self.beats_per_token * self.extent_tokens;
        let k_start = self.reserve(beats)?;
        match self.reserve(beats) {
            Ok(v_start) => {
                self.extents.insert(
                    (head, KvHalf::Key),
                    Extent { start_beat: k_start, beats, used: 0 },
                );
                self.extents.insert(
                    (head, KvHalf::Value),
                    Extent { start_beat: v_start, beats, used: 0 },
                );
                Ok(())
            }
            Err(e) => {
                self.free.push((k_start, beats));
                Err(e)
            }
        }
    }

    /// Appends one token's vector to a head's half; returns the physical
    /// beats it occupies.
    ///
    /// # Panics
    /// Panics if the head was not opened or its extent is exhausted
    /// (requests never exceed their provisioned length by construction).
    pub fn append(&mut self, head: HeadId, half: KvHalf) -> Vec<PhysicalAddr> {
        let bpt = self.beats_per_token;
        let ext = self
            .extents
            .get_mut(&(head, half))
            .expect("head must be opened before appending");
        assert!(ext.used + bpt <= ext.beats, "extent exhausted");
        let first = ext.start_beat + ext.used;
        ext.used += bpt;
        (first..first + bpt).map(|b| self.map.decode(b)).collect()
    }

    /// Physical beats of a head's entire half (for streaming).
    #[must_use]
    pub fn beats_of(&self, head: HeadId, half: KvHalf) -> Option<Vec<u64>> {
        self.extents
            .get(&(head, half))
            .map(|e| (e.start_beat..e.start_beat + e.used).collect())
    }

    /// Distinct (pCH, bank) pairs a head's half currently spans — the
    /// streaming parallelism available to the GEMV units.
    #[must_use]
    pub fn banks_spanned(&self, head: HeadId, half: KvHalf) -> usize {
        let Some(beats) = self.beats_of(head, half) else {
            return 0;
        };
        let mut seen = std::collections::HashSet::new();
        for b in beats {
            let a = self.map.decode(b);
            seen.insert((a.pch, a.bank));
        }
        seen.len()
    }

    /// Releases both extents of a head (request retired).
    pub fn close_head(&mut self, head: HeadId) {
        for half in [KvHalf::Key, KvHalf::Value] {
            if let Some(e) = self.extents.remove(&(head, half)) {
                self.free.push((e.start_beat, e.beats));
            }
        }
    }

    /// Number of live extents (two per open head).
    #[must_use]
    pub fn live_extents(&self) -> usize {
        self.extents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        KvStore::new(StackGeometry::hbm3_8hi(), 128, 2, 4096)
    }

    fn head(r: u64, h: u32) -> HeadId {
        HeadId { request: r, head: h }
    }

    #[test]
    fn append_and_stream_roundtrip() {
        let mut s = store();
        s.open_head(head(0, 0)).unwrap();
        let beats_per_token = (128 * 2u64).div_ceil(32);
        for tok in 0..10u64 {
            let addrs = s.append(head(0, 0), KvHalf::Key);
            assert_eq!(addrs.len() as u64, beats_per_token);
            let _ = tok;
        }
        let all = s.beats_of(head(0, 0), KvHalf::Key).unwrap();
        assert_eq!(all.len() as u64, 10 * beats_per_token);
        // Contiguous beats within the extent.
        assert!(all.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn long_head_spans_many_banks() {
        let mut s = store();
        s.open_head(head(0, 0)).unwrap();
        for _ in 0..2048 {
            let _ = s.append(head(0, 0), KvHalf::Key);
        }
        // 2048 tokens × 256 B = 512 KiB: spans ≥ 32 banks under row
        // interleaving (one pCH's worth at 16 KiB per (pch, bank) row...).
        let spanned = s.banks_spanned(head(0, 0), KvHalf::Key);
        assert!(spanned >= 512, "spanned = {spanned}");
    }

    #[test]
    fn close_reclaims_space() {
        let mut s = store();
        s.open_head(head(0, 0)).unwrap();
        let before = s.available_beats();
        s.open_head(head(1, 0)).unwrap();
        assert!(s.available_beats() < before);
        s.close_head(head(1, 0));
        assert_eq!(s.available_beats(), before);
        // The freed extent is reused.
        s.open_head(head(2, 0)).unwrap();
        assert_eq!(s.live_extents(), 4);
    }

    #[test]
    fn capacity_is_enforced_atomically() {
        // Tiny stack: 1 MiB.
        let geom = StackGeometry {
            capacity_bytes: 1 << 20,
            ..StackGeometry::hbm3_8hi()
        };
        let mut s = KvStore::new(geom, 128, 2, 1024);
        // Each half-extent = 1024 tokens × 256 B = 256 KiB; a head = 512 KiB.
        s.open_head(head(0, 0)).unwrap();
        let before = s.available_beats();
        // Second head fits exactly; third cannot.
        s.open_head(head(0, 1)).unwrap();
        let err = s.open_head(head(0, 2)).unwrap_err();
        assert!(err.available < err.requested);
        assert!(!err.to_string().is_empty());
        let _ = before;
    }

    #[test]
    #[should_panic(expected = "opened before appending")]
    fn append_without_open_panics() {
        let mut s = store();
        let _ = s.append(head(9, 9), KvHalf::Value);
    }

    #[test]
    fn halves_are_disjoint() {
        let mut s = store();
        s.open_head(head(0, 0)).unwrap();
        let _ = s.append(head(0, 0), KvHalf::Key);
        let _ = s.append(head(0, 0), KvHalf::Value);
        let k = s.beats_of(head(0, 0), KvHalf::Key).unwrap();
        let v = s.beats_of(head(0, 0), KvHalf::Value).unwrap();
        assert!(k.iter().all(|b| !v.contains(b)));
    }
}
