//! Numeric helpers: FP16 datapath emulation and reference attention.
//!
//! The GEMV units carry 16-bit floating point (§5.1). To emulate that
//! datapath faithfully without an external half-precision crate,
//! [`f16_round`] rounds an `f32` to the nearest representable IEEE-754
//! binary16 value (round-to-nearest-even), staying in `f32` storage.

/// Rounds `x` to the nearest IEEE-754 binary16 value (ties to even),
/// returning the result widened back to `f32`.
///
/// Overflow saturates to ±∞, underflow flushes through subnormals exactly
/// as binary16 would.
///
/// # Example
/// ```
/// use attacc_pim::numeric::f16_round;
/// // 1/3 is not representable in binary16; nearest value is 0.33325195.
/// assert!((f16_round(1.0 / 3.0) - 0.333_251_95).abs() < 1e-7);
/// assert_eq!(f16_round(65504.0), 65504.0); // f16::MAX round-trips
/// assert!(f16_round(1e30).is_infinite());
/// ```
#[must_use]
pub fn f16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    let sign = bits & 0x8000_0000;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN pass through.
        return x;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        // Values in (65504, 65520) round down to 65504 (f16::MAX); beyond
        // the rounding midpoint, round-to-nearest overflows to infinity.
        let max_f16 = 65504.0f32;
        let abs = f32::from_bits(bits & 0x7fff_ffff);
        if abs < 65520.0 {
            return if sign != 0 { -max_f16 } else { max_f16 };
        }
        return if sign != 0 {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    if e >= -14 {
        // Normal range: keep 10 fraction bits of the 23.
        let shift = 13;
        let lsb = 1u32 << shift;
        let half = lsb >> 1;
        let rounded = {
            let tail = frac & (lsb - 1);
            let keep = frac >> shift;
            
            if tail > half || (tail == half && keep & 1 == 1) {
                keep + 1
            } else {
                keep
            }
        };
        // Handle fraction carry into the exponent.
        let (keep, e) = if rounded == 1 << 10 { (0, e + 1) } else { (rounded, e) };
        if e > 15 {
            return if sign != 0 {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            };
        }
        let out = sign | (((e + 127) as u32) << 23) | (keep << 13);
        return f32::from_bits(out);
    }
    // Subnormal range of binary16: magnitude below 2^-14.
    let abs = f32::from_bits(bits & 0x7fff_ffff);
    let scale = 2.0f32.powi(-14);
    let sub = (abs / scale * 1024.0).round_ties_even();
    if sub == 0.0 {
        return if sign != 0 { -0.0 } else { 0.0 };
    }
    let val = sub / 1024.0 * scale;
    if sign != 0 {
        -val
    } else {
        val
    }
}

/// Encodes `x` into the IEEE-754 binary16 bit pattern the DRAM cells
/// actually store (rounding with [`f16_round`] first). The integrity
/// layer flips bits of *this* pattern to model cell faults faithfully.
///
/// NaN encodes to the canonical quiet NaN `0x7e00`.
#[must_use]
pub fn f16_to_bits(x: f32) -> u16 {
    let r = f16_round(x);
    if r.is_nan() {
        return 0x7e00;
    }
    let bits = r.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    if r.is_infinite() {
        return sign | 0x7c00;
    }
    if r == 0.0 {
        return sign;
    }
    let exp = ((bits >> 23) & 0xff) as i32 - 127;
    if exp >= -14 {
        // Normal binary16: 5-bit exponent biased by 15, top 10 fraction
        // bits (exact after f16_round).
        let frac = ((bits >> 13) & 0x3ff) as u16;
        sign | (((exp + 15) as u16) << 10) | frac
    } else {
        // Subnormal: magnitude is frac/1024 × 2^-14 with frac in 1..1024.
        let mag = f32::from_bits(bits & 0x7fff_ffff);
        let frac = (mag / 2.0f32.powi(-14) * 1024.0).round_ties_even() as u16;
        sign | frac
    }
}

/// Decodes an IEEE-754 binary16 bit pattern into `f32`. Exact for every
/// pattern; the round-trip laws are
/// `f16_from_bits(f16_to_bits(x)) == f16_round(x)` and
/// `f16_to_bits(f16_from_bits(b)) == b` for non-NaN `b`.
#[must_use]
pub fn f16_from_bits(bits: u16) -> f32 {
    let sign = if bits & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let exp = ((bits >> 10) & 0x1f) as i32;
    let frac = f32::from(bits & 0x3ff);
    match exp {
        0 => sign * frac / 1024.0 * 2.0f32.powi(-14),
        0x1f => {
            if frac == 0.0 {
                sign * f32::INFINITY
            } else {
                f32::NAN
            }
        }
        _ => sign * (1.0 + frac / 1024.0) * 2.0f32.powi(exp - 15),
    }
}

/// A numerical blow-up caught by the integrity guards: instead of letting
/// a NaN/Inf/overflow propagate as silent garbage, the pipeline surfaces
/// it as a detected error and recomputes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardError {
    /// A non-finite value (NaN or ±∞) at the given index.
    NonFinite {
        /// Index of the offending element.
        index: usize,
    },
    /// A probability vector whose sum strayed from 1.
    NotNormalized {
        /// The observed sum.
        sum: f64,
    },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::NonFinite { index } => {
                write!(f, "non-finite value at index {index}")
            }
            GuardError::NotNormalized { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
        }
    }
}

/// Errors if any element is NaN or infinite.
pub fn guard_finite(values: &[f32]) -> Result<(), GuardError> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(GuardError::NonFinite { index }),
        None => Ok(()),
    }
}

/// Errors unless `probs` is finite and sums to 1 within `tol` (empty
/// vectors pass: softmax of nothing is nothing).
pub fn guard_normalized(probs: &[f32], tol: f64) -> Result<(), GuardError> {
    guard_finite(probs)?;
    if probs.is_empty() {
        return Ok(());
    }
    let sum: f64 = probs.iter().map(|&p| f64::from(p)).sum();
    if (sum - 1.0).abs() > tol {
        return Err(GuardError::NotNormalized { sum });
    }
    Ok(())
}

/// A dense row-major `f32` matrix used by the functional dataflow.
///
/// The GEMV convention throughout this crate is `y[n] = Σ_k x[k]·M[k][n]`,
/// i.e. the matrix is `k × n` with `k` the reduction dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows (the reduction dimension `k`).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the output dimension `n`).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row-major data slice.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Splits into `parts` row-contiguous chunks (sizes differ by ≤ 1).
    /// Splitting the reduction dimension requires downstream accumulation.
    #[must_use]
    pub fn split_rows(&self, parts: usize) -> Vec<Matrix> {
        assert!(parts > 0, "parts must be positive");
        let base = self.rows / parts;
        let extra = self.rows % parts;
        let mut out = Vec::with_capacity(parts);
        let mut r0 = 0;
        for p in 0..parts {
            let n = base + usize::from(p < extra);
            let data = self.data[r0 * self.cols..(r0 + n) * self.cols].to_vec();
            out.push(Matrix::from_vec(n, self.cols, data));
            r0 += n;
        }
        out
    }

    /// Splits into `parts` column-contiguous chunks (sizes differ by ≤ 1).
    /// Splitting the output dimension needs only concatenation downstream.
    #[must_use]
    pub fn split_cols(&self, parts: usize) -> Vec<Matrix> {
        assert!(parts > 0, "parts must be positive");
        let base = self.cols / parts;
        let extra = self.cols % parts;
        let mut out = Vec::with_capacity(parts);
        let mut c0 = 0;
        for p in 0..parts {
            let n = base + usize::from(p < extra);
            let mut data = Vec::with_capacity(self.rows * n);
            for r in 0..self.rows {
                data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c0 + n]);
            }
            out.push(Matrix::from_vec(self.rows, n, data));
            c0 += n;
        }
        out
    }
}

/// Numerically stable softmax over `scores`, in place, in `f64` (the
/// reference for the softmax unit).
pub fn softmax_ref(scores: &mut [f64]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// Reference single-head attention: `out = softmax(q · Kᵀ / √d) · V`.
///
/// * `q`: `d_head` query values.
/// * `kt`: key matrix transposed, row-major `d_head × l`.
/// * `v`: value matrix, row-major `l × d_head`.
///
/// Returns the `d_head`-element context vector, computed in `f64`.
///
/// # Panics
/// Panics if the dimensions are inconsistent.
#[must_use]
#[allow(clippy::needless_range_loop)] // dual-operand indexing reads clearest
pub fn attention_ref(q: &[f32], kt: &[f32], v: &[f32], l: usize) -> Vec<f64> {
    let d = q.len();
    assert_eq!(kt.len(), d * l, "Kᵀ must be d_head × l");
    assert_eq!(v.len(), l * d, "V must be l × d_head");
    let scale = 1.0 / (d as f64).sqrt();
    let mut scores = vec![0.0f64; l];
    for (j, s) in scores.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for r in 0..d {
            acc += f64::from(q[r]) * f64::from(kt[r * l + j]);
        }
        *s = acc * scale;
    }
    softmax_ref(&mut scores);
    let mut out = vec![0.0f64; d];
    for (j, &w) in scores.iter().enumerate() {
        for c in 0..d {
            out[c] += w * f64::from(v[j * d + c]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_split_rows_partitions() {
        let m = Matrix::from_vec(5, 2, (0..10).map(|i| i as f32).collect());
        let parts = m.split_rows(3);
        assert_eq!(parts.iter().map(Matrix::rows).collect::<Vec<_>>(), vec![2, 2, 1]);
        assert_eq!(parts[0].get(0, 0), 0.0);
        assert_eq!(parts[2].get(0, 1), 9.0);
        let total: usize = parts.iter().map(|p| p.data().len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn matrix_split_cols_partitions() {
        let m = Matrix::from_vec(2, 5, (0..10).map(|i| i as f32).collect());
        let parts = m.split_cols(2);
        assert_eq!(parts[0].cols(), 3);
        assert_eq!(parts[1].cols(), 2);
        assert_eq!(parts[1].get(1, 1), 9.0);
        assert_eq!(parts[0].get(1, 0), 5.0);
    }

    #[test]
    fn matrix_split_more_parts_than_dim_yields_empties() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let parts = m.split_rows(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[2].rows(), 0);
        assert_eq!(parts[3].rows(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matrix_checks_data_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn f16_round_exact_values_unchanged() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -0.25] {
            assert_eq!(f16_round(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn f16_round_is_idempotent() {
        for i in 0..1000 {
            let v = (i as f32 - 500.0) * 0.01713;
            let once = f16_round(v);
            assert_eq!(f16_round(once), once, "v = {v}");
        }
    }

    #[test]
    fn f16_round_error_within_ulp() {
        // Relative error of binary16 normals ≤ 2^-11.
        for i in 1..2000 {
            let v = i as f32 * 0.3941;
            let r = f16_round(v);
            assert!(((r - v) / v).abs() <= 1.0 / 2048.0, "v = {v}, r = {r}");
        }
    }

    #[test]
    fn f16_round_handles_overflow_and_subnormals() {
        assert!(f16_round(70000.0).is_infinite());
        assert_eq!(f16_round(-70000.0), f32::NEG_INFINITY);
        assert_eq!(f16_round(65505.0), 65504.0);
        // Smallest binary16 subnormal is 2^-24 ≈ 5.96e-8.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_round(tiny), tiny);
        assert_eq!(f16_round(tiny / 3.0), 0.0);
        assert!(f16_round(f32::NAN).is_nan());
    }

    #[test]
    fn f16_bits_round_trip_values() {
        for i in 0..4000 {
            let v = (i as f32 - 2000.0) * 0.7319;
            assert_eq!(f16_from_bits(f16_to_bits(v)), f16_round(v), "v = {v}");
        }
        for v in [0.0f32, -0.0, 65504.0, -65504.0, 2.0f32.powi(-24), f32::INFINITY] {
            assert_eq!(f16_from_bits(f16_to_bits(v)), f16_round(v), "v = {v}");
        }
    }

    #[test]
    fn f16_bits_round_trip_patterns() {
        // Every non-NaN binary16 pattern survives decode → encode.
        for bits in 0..=u16::MAX {
            let v = f16_from_bits(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f16_to_bits(v), bits, "pattern {bits:#06x}");
        }
    }

    #[test]
    fn f16_special_encodings() {
        assert_eq!(f16_to_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f16_to_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f16_to_bits(f32::NAN), 0x7e00);
        assert_eq!(f16_to_bits(0.0), 0x0000);
        assert_eq!(f16_to_bits(-0.0), 0x8000);
        assert_eq!(f16_to_bits(1.0), 0x3c00);
        assert_eq!(f16_to_bits(65504.0), 0x7bff);
        assert!(f16_from_bits(0x7e00).is_nan());
    }

    #[test]
    fn guards_accept_healthy_vectors() {
        assert_eq!(guard_finite(&[1.0, -2.0, 0.0]), Ok(()));
        assert_eq!(guard_normalized(&[0.25; 4], 1e-6), Ok(()));
        assert_eq!(guard_normalized(&[], 1e-6), Ok(()));
    }

    #[test]
    fn guards_catch_blowups() {
        assert_eq!(
            guard_finite(&[1.0, f32::NAN, 2.0]),
            Err(GuardError::NonFinite { index: 1 })
        );
        assert_eq!(
            guard_finite(&[f32::INFINITY]),
            Err(GuardError::NonFinite { index: 0 })
        );
        assert!(matches!(
            guard_normalized(&[0.9, 0.3], 1e-3),
            Err(GuardError::NotNormalized { .. })
        ));
        // A NaN in a probability vector reports NonFinite, not a sum.
        assert!(matches!(
            guard_normalized(&[f32::NAN], 1e-3),
            Err(GuardError::NonFinite { index: 0 })
        ));
        let msg = GuardError::NonFinite { index: 3 }.to_string();
        assert!(msg.contains("index 3"));
    }

    #[test]
    fn softmax_ref_sums_to_one() {
        let mut s = vec![1.0, 2.0, 3.0, -5.0];
        softmax_ref(&mut s);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&x| x > 0.0));
        // Larger score → larger weight.
        assert!(s[2] > s[1] && s[1] > s[0] && s[0] > s[3]);
    }

    #[test]
    fn softmax_ref_is_shift_invariant() {
        let mut a = vec![10.0, 11.0, 12.0];
        let mut b = vec![1010.0, 1011.0, 1012.0];
        softmax_ref(&mut a);
        softmax_ref(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn attention_ref_uniform_values_average() {
        // If all scores are equal, output is the mean of V's rows.
        let d = 4;
        let l = 8;
        let q = vec![0.0f32; d];
        let kt = vec![1.0f32; d * l];
        let v: Vec<f32> = (0..l * d).map(|i| (i / d) as f32).collect();
        let out = attention_ref(&q, &kt, &v, l);
        let mean = (0..l).map(|r| r as f64).sum::<f64>() / l as f64;
        for (c, val) in out.iter().enumerate() {
            assert!((val - mean).abs() < 1e-9, "out[{c}] = {val}");
        }
    }

    #[test]
    #[should_panic(expected = "d_head")]
    fn attention_ref_checks_dims() {
        let _ = attention_ref(&[0.0; 4], &[0.0; 7], &[0.0; 32], 8);
    }
}
